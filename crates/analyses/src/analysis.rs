//! The unified streaming interface of all analyses.
//!
//! An [`Analysis`] consumes one event at a time ([`feed`]) and produces
//! its report when the stream ends ([`finish`]) — the shape an online
//! system serving live event streams needs. Three kinds of analyses
//! implement it:
//!
//! * **Genuinely streaming** analyses ([`crate::hb::HbDetector`],
//!   [`crate::c11::C11Detector`]) update a growable
//!   [`csst_core::PartialOrderIndex`] per event and keep no event
//!   buffer: memory tracks the synchronization structure, not the
//!   trace length.
//! * **Predictive** analyses (races, deadlocks, memory bugs, …)
//!   fundamentally reason about *reorderings of the trace*. Their
//!   streaming form still builds the **base order** — fork/join,
//!   reads-from, issue/commit or real-time edges — incrementally per
//!   event through a [`crate::BaseOrderBuilder`]; only the candidate
//!   generation and witness checks run over buffered events at
//!   [`finish`] (or per window, below).
//! * **Windowed** predictive analyses bound that buffer: with
//!   `window: Some(n)` in their configuration, the stream is analyzed
//!   as consecutive *tumbling* windows of `n` events, candidates are
//!   emitted per window, and retirement removes the window's base-order
//!   edges via [`csst_core::PartialOrderIndex::delete_edge`], so peak
//!   buffered events never exceed `n`.
//!
//! Every batch entry point (`predict`, `detect`, `check`, `generate`,
//! `analyze`) is a thin wrapper that streams the given trace through
//! [`feed`], so batch and streaming runs are the same code path by
//! construction.
//!
//! # Windowing soundness contract
//!
//! Windowed runs trade completeness for bounded memory under a precise
//! contract:
//!
//! * **Each window is analyzed as an independent execution.** Every
//!   report is witnessed by a correct reordering of the events of its
//!   own window under the constraints observed *within* that window —
//!   no false positives with respect to the windowed observation, in
//!   exactly the sense that any predictive tool's report is relative to
//!   the trace it was shown.
//! * **No report spans a window boundary.** Candidate pairs, deadlock
//!   patterns and consistency violations involving events of different
//!   windows are never examined: reports beyond the window are
//!   *missed*, never misreported.
//! * **Boundary constraints are dropped conservatively for the
//!   window.** A read observing a retired writer contributes no
//!   reads-from constraint, a fork/join edge to a retired event is
//!   skipped, and a lock section spanning the boundary loses its
//!   mutual-exclusion pairing — each window sees exactly the
//!   constraints its own events generate.
//! * **Window-respecting traces lose nothing.** If every constraint
//!   and candidate pair of the trace falls within single windows (in
//!   particular, whenever the trace fits in one window), the windowed
//!   run produces exactly the batch report.
//!
//! [`feed`]: Analysis::feed
//! [`finish`]: Analysis::finish

use csst_core::ThreadId;
use csst_trace::{EventKind, Trace};

/// A dynamic concurrency analysis consuming an event stream.
///
/// ```
/// use csst_analyses::hb::HbDetector;
/// use csst_analyses::Analysis;
/// use csst_core::{ThreadId, VectorClockIndex};
/// use csst_trace::{EventKind, VarId};
///
/// let mut hb = HbDetector::<VectorClockIndex>::new(());
/// hb.feed(ThreadId(0), EventKind::Write { var: VarId(0), value: 1 });
/// hb.feed(ThreadId(1), EventKind::Read { var: VarId(0), value: 1 });
/// let report = hb.finish();
/// assert_eq!(report.races.len(), 1);
/// ```
pub trait Analysis: Sized {
    /// Configuration consumed at construction time.
    type Cfg;
    /// The analysis result produced by [`finish`](Self::finish).
    type Report;

    /// Creates the analysis in its initial state.
    fn new(cfg: Self::Cfg) -> Self;

    /// Consumes the next event of the stream: the event is appended to
    /// `thread`'s chain (positions are assigned in arrival order).
    ///
    /// Predictive analyses extend their base order here; windowed runs
    /// additionally emit the window's candidates and retire it when the
    /// window fills.
    fn feed(&mut self, thread: ThreadId, event: EventKind);

    /// Ends the stream and produces the report (analyzing the final —
    /// possibly partial — window first).
    fn finish(self) -> Self::Report;

    /// Streams a recorded trace through [`feed`](Self::feed) in its
    /// observed total order — what the batch entry points do.
    fn run(trace: &Trace, cfg: Self::Cfg) -> Self::Report {
        let mut analysis = Self::new(cfg);
        for (id, ev) in trace.iter_order() {
            analysis.feed(id.thread, ev.kind);
        }
        analysis.finish()
    }
}
