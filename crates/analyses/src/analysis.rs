//! The unified streaming interface of all analyses.
//!
//! An [`Analysis`] consumes one event at a time ([`feed`]) and produces
//! its report when the stream ends ([`finish`]) — the shape an online
//! system serving live event streams needs. Two kinds of analyses
//! implement it:
//!
//! * **Genuinely streaming** analyses (e.g. [`crate::hb::HbDetector`])
//!   update a growable [`csst_core::PartialOrderIndex`] per event and
//!   keep no event buffer: memory tracks the synchronization structure,
//!   not the trace length.
//! * **Predictive** analyses (races, deadlocks, memory bugs, …)
//!   fundamentally reason about *reorderings of the whole trace*, so
//!   their streaming form accumulates events into an internal
//!   [`Trace`] and runs the batch core at [`finish`] — the buffering is
//!   an implementation detail behind the same interface.
//!
//! Every batch entry point (`predict`, `detect`, `check`, `generate`,
//! `analyze`) is a thin wrapper that streams the given trace through
//! [`feed`], so batch and streaming runs are the same code path by
//! construction.
//!
//! [`feed`]: Analysis::feed
//! [`finish`]: Analysis::finish

use csst_core::ThreadId;
use csst_trace::{EventKind, Trace};

/// A dynamic concurrency analysis consuming an event stream.
///
/// ```
/// use csst_analyses::hb::HbDetector;
/// use csst_analyses::Analysis;
/// use csst_core::{ThreadId, VectorClockIndex};
/// use csst_trace::{EventKind, VarId};
///
/// let mut hb = HbDetector::<VectorClockIndex>::new(());
/// hb.feed(ThreadId(0), EventKind::Write { var: VarId(0), value: 1 });
/// hb.feed(ThreadId(1), EventKind::Read { var: VarId(0), value: 1 });
/// let report = hb.finish();
/// assert_eq!(report.races.len(), 1);
/// ```
pub trait Analysis: Sized {
    /// Configuration consumed at construction time.
    type Cfg;
    /// The analysis result produced by [`finish`](Self::finish).
    type Report;

    /// Creates the analysis in its initial state.
    fn new(cfg: Self::Cfg) -> Self;

    /// Consumes the next event of the stream: the event is appended to
    /// `thread`'s chain (positions are assigned in arrival order).
    fn feed(&mut self, thread: ThreadId, event: EventKind);

    /// Ends the stream and produces the report.
    fn finish(self) -> Self::Report;

    /// Streams a recorded trace through [`feed`](Self::feed) in its
    /// observed total order — what the batch entry points do.
    fn run(trace: &Trace, cfg: Self::Cfg) -> Self::Report {
        let mut analysis = Self::new(cfg);
        for (id, ev) in trace.iter_order() {
            analysis.feed(id.thread, ev.kind);
        }
        analysis.finish()
    }
}

/// Defines the streaming form of a *predictive* analysis: events are
/// buffered into an internal [`Trace`] and the batch core runs at
/// `finish` (prediction reasons about reorderings of the whole trace,
/// so no online algorithm exists).
macro_rules! buffered_analysis {
    (
        $(#[$meta:meta])*
        $name:ident { cfg: $cfg:ty, report: $report:ty, batch: $batch:path $(,)? }
    ) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name<P> {
            cfg: $cfg,
            trace: csst_trace::Trace,
            _index: std::marker::PhantomData<fn() -> P>,
        }

        impl<P: csst_core::PartialOrderIndex> $crate::Analysis for $name<P> {
            type Cfg = $cfg;
            type Report = $report;

            fn new(cfg: Self::Cfg) -> Self {
                $name {
                    cfg,
                    trace: csst_trace::Trace::new(0),
                    _index: std::marker::PhantomData,
                }
            }

            fn feed(&mut self, thread: csst_core::ThreadId, event: csst_trace::EventKind) {
                self.trace.push(thread, event);
            }

            fn finish(self) -> Self::Report {
                $batch(&self.trace, &self.cfg)
            }
        }
    };
}
pub(crate) use buffered_analysis;
