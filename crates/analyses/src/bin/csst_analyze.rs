//! `csst-analyze` — run any of the seven analyses on a trace file.
//!
//! ```text
//! csst-analyze <analysis> <trace-file> [--index csst|st|vc|graph] [--format text|rapid]
//!
//! analyses: race hb deadlock membug tso uaf c11 linearizability
//! trace formats: the native format of csst_trace::text (default) or
//! the RAPID/STD format of csst_trace::rapid
//! ```
//!
//! Example:
//!
//! ```text
//! $ cat trace.txt
//! t0 w x0 1
//! t1 w x0 2
//! $ csst-analyze race trace.txt
//! race between ⟨0, 0⟩ and ⟨1, 0⟩
//! 1 race(s) predicted from 1 candidate(s)
//! ```

use csst_analyses::{c11, deadlock, hb, linearizability, membug, race, tso, uaf};
use csst_core::{Csst, GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
use csst_trace::{text, Trace};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: csst-analyze <analysis> <trace-file> [--index csst|st|vc|graph] [--format text|rapid]\n\
         analyses: race hb deadlock membug tso uaf c11 linearizability"
    );
    ExitCode::from(2)
}

/// Dispatches an analysis generic over the incremental index choice.
macro_rules! with_index {
    ($index:expr, $f:ident, $trace:expr) => {
        match $index {
            "csst" => $f::<IncrementalCsst>($trace),
            "st" => $f::<SegTreeIndex>($trace),
            "vc" => $f::<VectorClockIndex>($trace),
            "graph" => $f::<GraphIndex>($trace),
            other => {
                eprintln!("unknown index `{other}`");
                return ExitCode::from(2);
            }
        }
    };
}

fn run_race<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = race::predict::<P>(trace, &race::RaceCfg::default());
    for (a, b) in &r.races {
        println!("race between {a} and {b}");
    }
    println!(
        "{} race(s) predicted from {} candidate(s)",
        r.races.len(),
        r.candidates
    );
    ExitCode::from((!r.races.is_empty()) as u8)
}

fn run_hb<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = hb::detect::<P>(trace);
    for (a, b) in r.races.iter().take(20) {
        println!("hb-race between {a} and {b}");
    }
    println!(
        "{} hb-race(s); {} synchronization edge(s)",
        r.races.len(),
        r.sync_edges
    );
    ExitCode::from((!r.races.is_empty()) as u8)
}

fn run_deadlock<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = deadlock::predict::<P>(trace, &deadlock::DeadlockCfg::default());
    for d in &r.deadlocks {
        println!(
            "deadlock: {} acquires {} holding {}, {} acquires {} holding {}",
            d.first.inner_acq,
            d.first.inner,
            d.first.outer,
            d.second.inner_acq,
            d.second.inner,
            d.second.outer
        );
    }
    println!(
        "{} deadlock(s) predicted from {} pattern(s)",
        r.deadlocks.len(),
        r.patterns
    );
    ExitCode::from((!r.deadlocks.is_empty()) as u8)
}

fn run_membug<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = membug::predict::<P>(trace, &membug::MemBugCfg::default());
    for bug in &r.bugs {
        match bug {
            membug::MemBug::UseAfterFree {
                obj,
                use_event,
                free_event,
            } => println!("use-after-free of {obj}: use {use_event} vs free {free_event}"),
            membug::MemBug::DoubleFree { obj, first, second } => {
                println!("double free of {obj}: {first} and {second}")
            }
        }
    }
    println!("{} bug(s) predicted", r.bugs.len());
    ExitCode::from((!r.bugs.is_empty()) as u8)
}

fn run_tso<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = tso::check::<P>(trace, &tso::TsoCheckCfg::default());
    println!(
        "history is {} under x86-TSO ({} ordering(s) inferred, {} round(s))",
        if r.consistent {
            "CONSISTENT"
        } else {
            "INCONSISTENT"
        },
        r.inserted,
        r.rounds
    );
    ExitCode::from((!r.consistent) as u8)
}

fn run_uaf<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = uaf::generate::<P>(trace, &uaf::UafCfg::default());
    for c in r.candidates.iter().take(20) {
        println!(
            "candidate: {} use {} vs free {} ({} constraints)",
            c.obj, c.use_event, c.free_event, c.constraints
        );
    }
    println!(
        "{} candidate(s) ({} pruned), {} total constraints for the solver",
        r.candidates.len(),
        r.pruned,
        r.total_constraints
    );
    ExitCode::SUCCESS
}

fn run_c11<P: csst_core::PartialOrderIndex>(trace: &Trace) -> ExitCode {
    let r = c11::detect::<P>(trace, &c11::C11Cfg::default());
    for (a, b) in r.races.iter().take(20) {
        println!("race between {a} and {b}");
    }
    println!(
        "{} race(s); {} synchronizes-with edge(s), {} from-read edge(s)",
        r.races.len(),
        r.sw_edges,
        r.fr_edges
    );
    ExitCode::from((!r.races.is_empty()) as u8)
}

fn run_linearizability(trace: &Trace, index: &str) -> ExitCode {
    let cfg = linearizability::LinCfg::default();
    let verdict = match index {
        "csst" => linearizability::analyze::<Csst>(trace, &cfg).verdict,
        "graph" => linearizability::analyze::<GraphIndex>(trace, &cfg).verdict,
        other => {
            eprintln!("linearizability needs a fully dynamic index (csst|graph), got `{other}`");
            return ExitCode::from(2);
        }
    };
    match verdict {
        linearizability::LinVerdict::Linearizable(order) => {
            println!(
                "linearizable; one witness order of {} ops found",
                order.len()
            );
            ExitCode::SUCCESS
        }
        linearizability::LinVerdict::Violation(rc) => {
            println!(
                "NOT linearizable; longest legal prefix has {} ops; blocked frontier: {:?}",
                rc.executed, rc.blocked
            );
            ExitCode::from(1)
        }
        linearizability::LinVerdict::Unknown => {
            println!("search budget exhausted");
            ExitCode::from(3)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let analysis = args[0].as_str();
    let path = args[1].as_str();
    let mut index = "csst";
    let mut format = "text";
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--index" if i + 1 < args.len() => {
                index = args[i + 1].as_str();
                i += 2;
            }
            "--format" if i + 1 < args.len() => {
                format = args[i + 1].as_str();
                i += 2;
            }
            _ => return usage(),
        }
    }
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let parsed = match format {
        "text" => text::parse(&input),
        "rapid" => csst_trace::rapid::parse(&input),
        other => {
            eprintln!("unknown format `{other}` (text|rapid)");
            return ExitCode::from(2);
        }
    };
    let trace = match parsed {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse error in {path}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "parsed {} events across {} threads",
        trace.total_events(),
        trace.num_threads()
    );
    match analysis {
        "race" => with_index!(index, run_race, &trace),
        "hb" => with_index!(index, run_hb, &trace),
        "deadlock" => with_index!(index, run_deadlock, &trace),
        "membug" => with_index!(index, run_membug, &trace),
        "tso" => with_index!(index, run_tso, &trace),
        "uaf" => with_index!(index, run_uaf, &trace),
        "c11" => with_index!(index, run_c11, &trace),
        "linearizability" => run_linearizability(&trace, index),
        _ => usage(),
    }
}
