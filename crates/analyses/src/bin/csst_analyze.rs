//! `csst-analyze` — run any registered analysis on a trace file.
//!
//! ```text
//! csst-analyze <analysis> <trace-file> [--index csst|st|vc|graph]
//!              [--format text|rapid] [--window N]
//! csst-analyze --list
//! ```
//!
//! Analyses are resolved through
//! [`csst_analyses::registry`] — `--list` prints every registered
//! name — so adding an analysis to the registry makes it available
//! here with no CLI changes. Trace formats: the native format of
//! `csst_trace::text` (default) or the RAPID/STD format of
//! `csst_trace::rapid`.
//!
//! `--window N` bounds the predictive analyses' memory: the trace is
//! analyzed as consecutive `N`-event windows, each window's base-order
//! edges are retired through `delete_edge` (fully dynamic index
//! required: `csst` or `graph`), and peak buffered events never exceed
//! `N`. Windowing is *sound per window* — every report is witnessed
//! within its own window — but reports spanning window boundaries are
//! missed.
//!
//! Example:
//!
//! ```text
//! $ cat trace.txt
//! t0 w x0 1
//! t1 w x0 2
//! $ csst-analyze race trace.txt
//! race between ⟨0, 0⟩ and ⟨1, 0⟩
//! 1 race(s) predicted from 1 candidate(s)
//! ```

use csst_analyses::registry::{self, IndexKind};
use csst_trace::text;
use std::process::ExitCode;

fn usage() -> ExitCode {
    let names: Vec<&str> = registry::entries().iter().map(|e| e.name).collect();
    eprintln!(
        "usage: csst-analyze <analysis> <trace-file> [--index csst|st|vc|graph] [--format text|rapid] [--window N]\n\
         \x20      csst-analyze --list\n\
         analyses: {}\n\
         --window N: bounded-memory mode — the trace is analyzed as consecutive\n\
         \x20   N-event windows (sound per window: reports never span a window\n\
         \x20   boundary and each is witnessed within its own window; reports\n\
         \x20   beyond the window are missed). Needs a fully dynamic index\n\
         \x20   (csst|graph), because window retirement deletes edges.",
        names.join(" ")
    );
    ExitCode::from(2)
}

fn list() -> ExitCode {
    for entry in registry::entries() {
        println!("{:<16} {}", entry.name, entry.description);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--list") {
        return list();
    }
    if args.len() < 2 {
        return usage();
    }
    let analysis = args[0].as_str();
    let path = args[1].as_str();
    let mut index = IndexKind::Csst;
    let mut format = "text";
    let mut window: Option<usize> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--index" if i + 1 < args.len() => {
                let Some(kind) = IndexKind::parse(&args[i + 1]) else {
                    eprintln!("unknown index `{}`", args[i + 1]);
                    return ExitCode::from(2);
                };
                index = kind;
                i += 2;
            }
            "--format" if i + 1 < args.len() => {
                format = args[i + 1].as_str();
                i += 2;
            }
            "--window" if i + 1 < args.len() => {
                match args[i + 1].parse::<usize>() {
                    Ok(n) if n > 0 => window = Some(n),
                    _ => {
                        eprintln!(
                            "--window needs a positive event count, got `{}`",
                            args[i + 1]
                        );
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            _ => return usage(),
        }
    }
    let entry = match registry::resolve(analysis) {
        Ok(entry) => entry,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let parsed = match format {
        "text" => text::parse(&input),
        "rapid" => csst_trace::rapid::parse(&input),
        other => {
            eprintln!("unknown format `{other}` (text|rapid)");
            return ExitCode::from(2);
        }
    };
    let trace = match parsed {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse error in {path}: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "parsed {} events across {} threads",
        trace.total_events(),
        trace.num_threads()
    );
    match entry.run(&trace, index, window) {
        Ok(out) => {
            for line in &out.lines {
                println!("{line}");
            }
            println!("{}", out.summary);
            ExitCode::from(out.exit_code)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
