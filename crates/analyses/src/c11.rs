//! C11Tester-style race detection for the C11 memory model (Table 6).
//!
//! C11Tester \[Luo & Demsky 2021\] constructs a trace incrementally,
//! mapping each atomic read to a write and maintaining a happens-before
//! partial order. The crucial structural property — and the paper's own
//! *negative result* — is that almost every ordering it inserts targets
//! the **current** event: a synchronizes-with edge from a release store
//! to the acquire load being processed. Such streaming insertions cost
//! vector clocks `O(k)` (no propagation), so VCs win on most Table 6
//! rows.
//!
//! The exception (`readerswriters`, `atomicblocks`) are programs whose
//! consistency constraints force orderings between *middle* events:
//! when a load observes an already-overwritten (stale) value, the
//! from-read constraint orders the load before the overwriting store,
//! which sits in the middle of the order and has many successors. The
//! [`middle_sync_frac`](csst_trace::gen::C11Cfg::middle_sync_frac) knob
//! of the generator controls how often that happens.
//!
//! **Classification:** genuinely online. *Detects* plain-access races
//! under C11 synchronization. *Base order:* happens-before from
//! synchronizes-with and from-read edges, built online per event — no
//! event is ever buffered. *Buffering:* none; **windowed** runs
//! ([`C11Cfg::window`]) only reset the synchronization state and
//! retire the window's edges to bound the live edge set.
//!
//! ```
//! use csst_analyses::c11::{self, C11Cfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::{MemOrder, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let (data, flag) = (b.var("data"), b.var("flag"));
//! b.on(0).write(data, 1);
//! b.on(0).atomic_store(flag, MemOrder::Release, 1);
//! b.on(1).atomic_load(flag, MemOrder::Acquire, 1);
//! b.on(1).read(data, 1);
//! let report = c11::detect::<IncrementalCsst>(&b.build(), &C11Cfg::default());
//! assert!(report.races.is_empty());
//! assert_eq!(report.window.peak_buffered, 0); // nothing is buffered
//! ```

use crate::common::{BaseOrderBuilder, WindowStats};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Trace, VarId};
use std::collections::HashMap;

/// Configuration of [`detect`].
#[derive(Debug, Clone, Default)]
pub struct C11Cfg {
    /// Also treat relaxed reads-from edges as ordering (off in C11).
    pub relaxed_orders: bool,
    /// Tumbling-window size: every `n` events the synchronization
    /// state is reset and the window's hb edges are retired, so the
    /// live edge set stays bounded. The detector itself buffers no
    /// events in any mode. See the [`Analysis`] soundness contract.
    pub window: Option<usize>,
}

/// Result of a C11 race detection run.
#[derive(Debug, Clone)]
pub struct C11Report<P> {
    /// The final happens-before order.
    pub hb: P,
    /// Races between plain accesses (pairs unordered by hb).
    pub races: Vec<(NodeId, NodeId)>,
    /// Synchronizes-with edges inserted (streaming: target is current).
    pub sw_edges: usize,
    /// From-read edges inserted (non-streaming: target is a middle
    /// event with successors).
    pub fr_edges: usize,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Atomic-store bookkeeping: the writing event and whether it carries
/// release semantics.
#[derive(Debug)]
struct StoreInfo {
    event: NodeId,
    release: bool,
}

/// Plain-access bookkeeping for the race check: per variable, the last
/// write and the last read of each thread.
#[derive(Debug, Clone, Default)]
struct PlainState {
    last_write: Option<NodeId>,
    last_read: Vec<Option<NodeId>>,
}

/// Genuinely online C11Tester-style detector: every [`feed`] updates
/// the happens-before index and checks conflicting plain accesses
/// immediately — no event is ever buffered, exactly like
/// [`crate::hb::HbDetector`]. With [`C11Cfg::window`] set, the
/// synchronization state resets every `n` events and the window's hb
/// edges are retired, bounding the live edge set.
///
/// [`feed`]: Analysis::feed
#[derive(Debug)]
pub struct C11Detector<P> {
    cfg: C11Cfg,
    builder: BaseOrderBuilder<P>,
    store_of_value: HashMap<u64, StoreInfo>,
    /// Coherence bookkeeping: the latest value of each atomic variable
    /// and, per value, the value that overwrote it.
    latest_of_var: HashMap<VarId, u64>,
    overwritten_by: HashMap<u64, u64>,
    plain: HashMap<VarId, PlainState>,
    races: Vec<(NodeId, NodeId)>,
    sw_edges: usize,
    fr_edges: usize,
}

impl<P: PartialOrderIndex> C11Detector<P> {
    /// Handles an atomic read (load or the read half of an RMW):
    /// inserts the synchronizes-with edge (streaming) and, for stale
    /// observations, the from-read edge (middle-of-trace).
    fn handle_atomic_read(&mut self, id: NodeId, value: u64, acquire: bool) {
        if value == 0 {
            return;
        }
        let Some(info) = self.store_of_value.get(&value) else {
            return;
        };
        let s = info.event;
        // Synchronizes-with: release store → acquire load. The target
        // is the current event: a streaming insertion.
        if s.thread != id.thread
            && (info.release && acquire || self.cfg.relaxed_orders)
            && self.builder.insert_logged_checked(s, id).is_ok()
        {
            self.sw_edges += 1;
        }
        // From-read: if the observed value is stale, the load is
        // coherence-ordered before the overwriting store — a
        // middle-of-trace target with successors.
        if let Some(&next) = self.overwritten_by.get(&value) {
            let s_next = self.store_of_value[&next].event;
            if s_next.thread != id.thread && self.builder.insert_logged_checked(id, s_next).is_ok()
            {
                self.fr_edges += 1;
            }
        }
    }

    fn record_store(&mut self, id: NodeId, var: VarId, value: u64, release: bool) {
        self.store_of_value
            .insert(value, StoreInfo { event: id, release });
        if let Some(prev) = self.latest_of_var.insert(var, value) {
            self.overwritten_by.insert(prev, value);
        }
    }

    fn read_slot(st: &mut PlainState, t: ThreadId) -> &mut Option<NodeId> {
        if t.index() >= st.last_read.len() {
            st.last_read.resize(t.index() + 1, None);
        }
        &mut st.last_read[t.index()]
    }
}

impl<P: PartialOrderIndex> Analysis for C11Detector<P> {
    type Cfg = C11Cfg;
    type Report = C11Report<P>;

    fn new(cfg: Self::Cfg) -> Self {
        C11Detector {
            builder: BaseOrderBuilder::counting(cfg.window),
            cfg,
            store_of_value: HashMap::new(),
            latest_of_var: HashMap::new(),
            overwritten_by: HashMap::new(),
            plain: HashMap::new(),
            races: Vec::new(),
            sw_edges: 0,
            fr_edges: 0,
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        let id = self.builder.feed(thread, event);
        match event {
            EventKind::AtomicLoad { order, value, .. } => {
                self.handle_atomic_read(id, value, order.is_acquire());
            }
            EventKind::AtomicRmw {
                var,
                order,
                read,
                write,
            } => {
                self.handle_atomic_read(id, read, order.is_acquire());
                self.record_store(id, var, write, order.is_release());
            }
            EventKind::AtomicStore { var, order, value } => {
                self.record_store(id, var, value, order.is_release());
            }
            EventKind::Read { var, .. } => {
                let st = self.plain.entry(var).or_default();
                if let Some(w) = st.last_write {
                    if w.thread != thread && !self.builder.po().reachable(w, id) {
                        self.races.push((w, id));
                    }
                }
                *Self::read_slot(st, thread) = Some(id);
            }
            EventKind::Write { var, .. } => {
                let st = self.plain.entry(var).or_default();
                if let Some(w) = st.last_write {
                    if w.thread != thread && !self.builder.po().reachable(w, id) {
                        self.races.push((w, id));
                    }
                }
                for r in st.last_read.iter().flatten() {
                    if r.thread != thread && !self.builder.po().reachable(*r, id) {
                        self.races.push((*r, id));
                    }
                }
                st.last_write = Some(id);
                st.last_read.clear();
            }
            _ => {}
        }
        if self.builder.window_full() {
            // Window boundary: retire the window's hb edges and reset
            // the synchronization state, so later events never pair
            // with retired ones.
            self.builder.retire_window();
            self.store_of_value.clear();
            self.latest_of_var.clear();
            self.overwritten_by.clear();
            self.plain.clear();
        }
    }

    fn finish(self) -> C11Report<P> {
        C11Report {
            races: self.races,
            sw_edges: self.sw_edges,
            fr_edges: self.fr_edges,
            window: self.builder.stats(),
            hb: self.builder.into_po(),
        }
    }
}

/// Processes the trace in order, maintaining hb and checking plain
/// accesses for races, mirroring the C11Tester op mix: a thin wrapper
/// streaming the trace through [`C11Detector`].
pub fn detect<P: PartialOrderIndex>(trace: &Trace, cfg: &C11Cfg) -> C11Report<P> {
    C11Detector::<P>::run(trace, cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{c11_program, C11Cfg as GenCfg};
    use csst_trace::{MemOrder, TraceBuilder};

    #[test]
    fn message_passing_with_release_acquire_is_race_free() {
        // T0: w(data); store-rel(flag, 1). T1: load-acq(flag)=1; r(data).
        let mut b = TraceBuilder::new();
        let data = b.var("data");
        let flag = b.var("flag");
        b.on(0).write(data, 1);
        b.on(0).atomic_store(flag, MemOrder::Release, 1);
        b.on(1).atomic_load(flag, MemOrder::Acquire, 1);
        b.on(1).read(data, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert_eq!(r.sw_edges, 1);
        assert!(r.races.is_empty(), "{:?}", r.races);
    }

    #[test]
    fn relaxed_flag_leaves_race() {
        let mut b = TraceBuilder::new();
        let data = b.var("data");
        let flag = b.var("flag");
        b.on(0).write(data, 1);
        b.on(0).atomic_store(flag, MemOrder::Relaxed, 1);
        b.on(1).atomic_load(flag, MemOrder::Relaxed, 1);
        b.on(1).read(data, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert_eq!(r.races.len(), 1, "relaxed sync does not order the reads");
    }

    #[test]
    fn stale_read_inserts_fr_edge() {
        let mut b = TraceBuilder::new();
        let flag = b.var("flag");
        b.on(0).atomic_store(flag, MemOrder::Release, 1);
        b.on(0).atomic_store(flag, MemOrder::Release, 2);
        // T1 observes the overwritten value 1: fr edge load → store(2).
        b.on(1).atomic_load(flag, MemOrder::Acquire, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert_eq!(r.sw_edges, 1);
        assert_eq!(r.fr_edges, 1);
    }

    #[test]
    fn rmw_chains_synchronize() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let data = b.var("d");
        b.on(0).write(data, 1);
        b.on(0).atomic_store(x, MemOrder::Release, 1);
        b.on(1).atomic_rmw(x, MemOrder::AcqRel, 1, 2);
        b.on(1).read(data, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert!(r.races.is_empty());
        assert_eq!(r.sw_edges, 1);
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for (seed, middle) in [(0u64, 0.0f64), (1, 0.0), (2, 0.3)] {
            let trace = c11_program(&GenCfg {
                threads: 4,
                events_per_thread: 150,
                middle_sync_frac: middle,
                seed,
                ..Default::default()
            });
            let cfg = C11Cfg::default();
            let a = detect::<IncrementalCsst>(&trace, &cfg);
            let b = detect::<SegTreeIndex>(&trace, &cfg);
            let c = detect::<VectorClockIndex>(&trace, &cfg);
            assert_eq!(a.races, b.races, "seed {seed}");
            assert_eq!(a.races, c.races, "seed {seed}");
            assert_eq!(a.sw_edges, b.sw_edges);
            assert_eq!(a.fr_edges, c.fr_edges);
        }
    }

    #[test]
    fn middle_sync_generates_fr_edges() {
        let trace = c11_program(&GenCfg {
            threads: 4,
            events_per_thread: 200,
            middle_sync_frac: 0.3,
            plain_frac: 0.2,
            seed: 9,
            ..Default::default()
        });
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert!(r.fr_edges > 0, "middle-sync workload must exercise fr");
    }
}
