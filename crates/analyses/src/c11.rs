//! C11Tester-style race detection for the C11 memory model (Table 6).
//!
//! C11Tester \[Luo & Demsky 2021\] constructs a trace incrementally,
//! mapping each atomic read to a write and maintaining a happens-before
//! partial order. The crucial structural property — and the paper's own
//! *negative result* — is that almost every ordering it inserts targets
//! the **current** event: a synchronizes-with edge from a release store
//! to the acquire load being processed. Such streaming insertions cost
//! vector clocks `O(k)` (no propagation), so VCs win on most Table 6
//! rows.
//!
//! The exception (`readerswriters`, `atomicblocks`) are programs whose
//! consistency constraints force orderings between *middle* events:
//! when a load observes an already-overwritten (stale) value, the
//! from-read constraint orders the load before the overwriting store,
//! which sits in the middle of the order and has many successors. The
//! [`middle_sync_frac`](csst_trace::gen::C11Cfg::middle_sync_frac) knob
//! of the generator controls how often that happens.

use crate::common::index_for_trace;
use csst_core::{NodeId, PartialOrderIndex};
use csst_trace::{EventKind, Trace, VarId};
use std::collections::HashMap;

/// Configuration of [`detect`].
#[derive(Debug, Clone, Default)]
pub struct C11Cfg {
    /// Also treat relaxed reads-from edges as ordering (off in C11).
    pub relaxed_orders: bool,
}

/// Result of a C11 race detection run.
#[derive(Debug, Clone)]
pub struct C11Report<P> {
    /// The final happens-before order.
    pub hb: P,
    /// Races between plain accesses (pairs unordered by hb).
    pub races: Vec<(NodeId, NodeId)>,
    /// Synchronizes-with edges inserted (streaming: target is current).
    pub sw_edges: usize,
    /// From-read edges inserted (non-streaming: target is a middle
    /// event with successors).
    pub fr_edges: usize,
}

/// Atomic-store bookkeeping: the writing event and whether it carries
/// release semantics.
struct StoreInfo {
    event: NodeId,
    release: bool,
}

/// Handles an atomic read (load or the read half of an RMW): inserts
/// the synchronizes-with edge (streaming) and, for stale observations,
/// the from-read edge (middle-of-trace). Returns `(sw, fr)` counts.
fn handle_atomic_read<P: PartialOrderIndex>(
    hb: &mut P,
    cfg: &C11Cfg,
    store_of_value: &HashMap<u64, StoreInfo>,
    overwritten_by: &HashMap<u64, u64>,
    id: NodeId,
    value: u64,
    acquire: bool,
) -> (usize, usize) {
    if value == 0 {
        return (0, 0);
    }
    let mut sw = 0usize;
    let mut fr = 0usize;
    let Some(info) = store_of_value.get(&value) else {
        return (0, 0);
    };
    let s = info.event;
    // Synchronizes-with: release store → acquire load. The target is
    // the current event: a streaming insertion.
    if s.thread != id.thread
        && (info.release && acquire || cfg.relaxed_orders)
        && hb.insert_edge_checked(s, id).is_ok()
    {
        sw += 1;
    }
    // From-read: if the observed value is stale, the load is
    // coherence-ordered before the overwriting store — a
    // middle-of-trace target with successors.
    if let Some(&next) = overwritten_by.get(&value) {
        let s_next = store_of_value[&next].event;
        if s_next.thread != id.thread && hb.insert_edge_checked(id, s_next).is_ok() {
            fr += 1;
        }
    }
    (sw, fr)
}

crate::analysis::buffered_analysis! {
    /// Streaming form of [`detect`]: buffers the event stream and runs
    /// the C11Tester-style detection at `finish` (from-read edges need
    /// the full modification order, so the pass is offline).
    C11Detector { cfg: C11Cfg, report: C11Report<P>, batch: detect_buffered }
}

/// Processes the trace in order, maintaining hb and checking plain
/// accesses for races, mirroring the C11Tester op mix: a thin wrapper
/// streaming the trace through [`C11Detector`].
pub fn detect<P: PartialOrderIndex>(trace: &Trace, cfg: &C11Cfg) -> C11Report<P> {
    use crate::Analysis;
    C11Detector::<P>::run(trace, cfg.clone())
}

fn detect_buffered<P: PartialOrderIndex>(trace: &Trace, cfg: &C11Cfg) -> C11Report<P> {
    let mut hb: P = index_for_trace(trace);
    let k = trace.num_threads();
    let mut sw_edges = 0usize;
    let mut fr_edges = 0usize;

    let mut store_of_value: HashMap<u64, StoreInfo> = HashMap::new();
    // Coherence bookkeeping: the latest value of each atomic variable
    // and, per value, the value that overwrote it.
    let mut latest_of_var: HashMap<VarId, u64> = HashMap::new();
    let mut overwritten_by: HashMap<u64, u64> = HashMap::new();

    // Plain-access bookkeeping for the race check: per variable, the
    // last write and the last read of each thread.
    #[derive(Clone)]
    struct PlainState {
        last_write: Option<NodeId>,
        last_read: Vec<Option<NodeId>>,
    }
    let mut plain: HashMap<VarId, PlainState> = HashMap::new();
    let mut races = Vec::new();

    let record_store = |store_of_value: &mut HashMap<u64, StoreInfo>,
                        latest_of_var: &mut HashMap<VarId, u64>,
                        overwritten_by: &mut HashMap<u64, u64>,
                        id: NodeId,
                        var: VarId,
                        value: u64,
                        release: bool| {
        store_of_value.insert(value, StoreInfo { event: id, release });
        if let Some(prev) = latest_of_var.insert(var, value) {
            overwritten_by.insert(prev, value);
        }
    };

    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::AtomicLoad { order, value, .. } => {
                let (sw, fr) = handle_atomic_read(
                    &mut hb,
                    cfg,
                    &store_of_value,
                    &overwritten_by,
                    id,
                    value,
                    order.is_acquire(),
                );
                sw_edges += sw;
                fr_edges += fr;
            }
            EventKind::AtomicRmw {
                var,
                order,
                read,
                write,
            } => {
                let (sw, fr) = handle_atomic_read(
                    &mut hb,
                    cfg,
                    &store_of_value,
                    &overwritten_by,
                    id,
                    read,
                    order.is_acquire(),
                );
                sw_edges += sw;
                fr_edges += fr;
                record_store(
                    &mut store_of_value,
                    &mut latest_of_var,
                    &mut overwritten_by,
                    id,
                    var,
                    write,
                    order.is_release(),
                );
            }
            EventKind::AtomicStore { var, order, value } => {
                record_store(
                    &mut store_of_value,
                    &mut latest_of_var,
                    &mut overwritten_by,
                    id,
                    var,
                    value,
                    order.is_release(),
                );
            }
            EventKind::Read { var, .. } => {
                let st = plain.entry(var).or_insert_with(|| PlainState {
                    last_write: None,
                    last_read: vec![None; k],
                });
                if let Some(w) = st.last_write {
                    if w.thread != id.thread && !hb.reachable(w, id) {
                        races.push((w, id));
                    }
                }
                st.last_read[id.thread.index()] = Some(id);
            }
            EventKind::Write { var, .. } => {
                let st = plain.entry(var).or_insert_with(|| PlainState {
                    last_write: None,
                    last_read: vec![None; k],
                });
                if let Some(w) = st.last_write {
                    if w.thread != id.thread && !hb.reachable(w, id) {
                        races.push((w, id));
                    }
                }
                for r in st.last_read.iter().flatten() {
                    if r.thread != id.thread && !hb.reachable(*r, id) {
                        races.push((*r, id));
                    }
                }
                st.last_write = Some(id);
                st.last_read = vec![None; k];
            }
            _ => {}
        }
    }

    C11Report {
        hb,
        races,
        sw_edges,
        fr_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{c11_program, C11Cfg as GenCfg};
    use csst_trace::{MemOrder, TraceBuilder};

    #[test]
    fn message_passing_with_release_acquire_is_race_free() {
        // T0: w(data); store-rel(flag, 1). T1: load-acq(flag)=1; r(data).
        let mut b = TraceBuilder::new();
        let data = b.var("data");
        let flag = b.var("flag");
        b.on(0).write(data, 1);
        b.on(0).atomic_store(flag, MemOrder::Release, 1);
        b.on(1).atomic_load(flag, MemOrder::Acquire, 1);
        b.on(1).read(data, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert_eq!(r.sw_edges, 1);
        assert!(r.races.is_empty(), "{:?}", r.races);
    }

    #[test]
    fn relaxed_flag_leaves_race() {
        let mut b = TraceBuilder::new();
        let data = b.var("data");
        let flag = b.var("flag");
        b.on(0).write(data, 1);
        b.on(0).atomic_store(flag, MemOrder::Relaxed, 1);
        b.on(1).atomic_load(flag, MemOrder::Relaxed, 1);
        b.on(1).read(data, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert_eq!(r.races.len(), 1, "relaxed sync does not order the reads");
    }

    #[test]
    fn stale_read_inserts_fr_edge() {
        let mut b = TraceBuilder::new();
        let flag = b.var("flag");
        b.on(0).atomic_store(flag, MemOrder::Release, 1);
        b.on(0).atomic_store(flag, MemOrder::Release, 2);
        // T1 observes the overwritten value 1: fr edge load → store(2).
        b.on(1).atomic_load(flag, MemOrder::Acquire, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert_eq!(r.sw_edges, 1);
        assert_eq!(r.fr_edges, 1);
    }

    #[test]
    fn rmw_chains_synchronize() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let data = b.var("d");
        b.on(0).write(data, 1);
        b.on(0).atomic_store(x, MemOrder::Release, 1);
        b.on(1).atomic_rmw(x, MemOrder::AcqRel, 1, 2);
        b.on(1).read(data, 1);
        let trace = b.build();
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert!(r.races.is_empty());
        assert_eq!(r.sw_edges, 1);
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for (seed, middle) in [(0u64, 0.0f64), (1, 0.0), (2, 0.3)] {
            let trace = c11_program(&GenCfg {
                threads: 4,
                events_per_thread: 150,
                middle_sync_frac: middle,
                seed,
                ..Default::default()
            });
            let cfg = C11Cfg::default();
            let a = detect::<IncrementalCsst>(&trace, &cfg);
            let b = detect::<SegTreeIndex>(&trace, &cfg);
            let c = detect::<VectorClockIndex>(&trace, &cfg);
            assert_eq!(a.races, b.races, "seed {seed}");
            assert_eq!(a.races, c.races, "seed {seed}");
            assert_eq!(a.sw_edges, b.sw_edges);
            assert_eq!(a.fr_edges, c.fr_edges);
        }
    }

    #[test]
    fn middle_sync_generates_fr_edges() {
        let trace = c11_program(&GenCfg {
            threads: 4,
            events_per_thread: 200,
            middle_sync_frac: 0.3,
            plain_frac: 0.2,
            seed: 9,
            ..Default::default()
        });
        let r = detect::<IncrementalCsst>(&trace, &C11Cfg::default());
        assert!(r.fr_edges > 0, "middle-sync workload must exercise fr");
    }
}
