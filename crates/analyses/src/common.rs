//! Shared infrastructure for the analyses: index construction helpers,
//! operation counting, and ordering primitives.

use csst_core::{NodeId, PartialOrderIndex, PoError, Pos, ThreadId};
use csst_trace::{EventKind, Trace};
use std::cell::Cell;

/// Creates an index pre-sized for `trace`: one chain per thread,
/// capacity hint equal to the longest thread chain (at least 1).
/// Purely an allocation hint — the index still grows on demand.
pub fn index_for_trace<P: PartialOrderIndex>(trace: &Trace) -> P {
    P::with_capacity(trace.num_threads().max(1), trace.max_chain_len().max(1))
}

/// Inserts the fork/join structure of `trace` into `po`: a `fork(c)`
/// event precedes the first event of `c`; the last event of `c`
/// precedes a `join(c)` event.
pub fn insert_fork_join<P: PartialOrderIndex>(po: &mut P, trace: &Trace) {
    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Fork { child } if trace.thread_len(child) > 0 && child != id.thread => {
                let first = NodeId::new(child, 0);
                let _ = po.insert_edge_checked(id, first);
            }
            EventKind::Join { child } => {
                let len = trace.thread_len(child);
                if len > 0 && child != id.thread {
                    let last = NodeId::new(child, (len - 1) as u32);
                    let _ = po.insert_edge_checked(last, id);
                }
            }
            _ => {}
        }
    }
}

/// Outcome of [`require_order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderOutcome {
    /// The ordering already held (or is implied by program order).
    AlreadyOrdered,
    /// A new edge was inserted.
    Inserted,
    /// The ordering contradicts the current partial order (a cycle):
    /// the constraint set is infeasible.
    Contradiction,
}

/// Enforces `from → to` in `po`, classifying the result. This is the
/// primitive all saturation rules are built from.
pub fn require_order<P: PartialOrderIndex>(po: &mut P, from: NodeId, to: NodeId) -> OrderOutcome {
    if from.thread == to.thread {
        return if from.pos <= to.pos {
            OrderOutcome::AlreadyOrdered
        } else {
            OrderOutcome::Contradiction
        };
    }
    if po.reachable(from, to) {
        return OrderOutcome::AlreadyOrdered;
    }
    match po.insert_edge_checked(from, to) {
        Ok(()) => OrderOutcome::Inserted,
        Err(PoError::WouldCycle { .. }) => OrderOutcome::Contradiction,
        Err(e) => panic!("unexpected partial-order error: {e}"),
    }
}

/// Operation counters shared by [`CountingIndex`]; interior-mutable so
/// queries through `&self` can count.
#[derive(Debug, Clone, Default)]
pub struct OpCounters {
    /// `insert_edge` calls.
    pub inserts: Cell<u64>,
    /// `delete_edge` calls.
    pub deletes: Cell<u64>,
    /// `reachable` calls.
    pub reachables: Cell<u64>,
    /// `successor` calls.
    pub successors: Cell<u64>,
    /// `predecessor` calls.
    pub predecessors: Cell<u64>,
}

impl OpCounters {
    /// Total updates (inserts + deletes).
    pub fn updates(&self) -> u64 {
        self.inserts.get() + self.deletes.get()
    }

    /// Total queries.
    pub fn queries(&self) -> u64 {
        self.reachables.get() + self.successors.get() + self.predecessors.get()
    }
}

/// A transparent wrapper counting every operation issued to the inner
/// index — the instrumentation behind the op-mix columns of
/// EXPERIMENTS.md.
///
/// ```
/// use csst_analyses::CountingIndex;
/// use csst_core::{Csst, NodeId, PartialOrderIndex};
///
/// let mut po: CountingIndex<Csst> = CountingIndex::new();
/// po.insert_edge(NodeId::new(0, 1), NodeId::new(1, 2)).unwrap();
/// po.reachable(NodeId::new(0, 0), NodeId::new(1, 5));
/// assert_eq!(po.counters().inserts.get(), 1);
/// assert_eq!(po.counters().reachables.get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CountingIndex<P> {
    inner: P,
    counters: OpCounters,
}

impl<P: PartialOrderIndex> CountingIndex<P> {
    /// The counters accumulated so far.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// The wrapped index.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner index.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: PartialOrderIndex> PartialOrderIndex for CountingIndex<P> {
    fn new() -> Self {
        CountingIndex {
            inner: P::new(),
            counters: OpCounters::default(),
        }
    }

    fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        CountingIndex {
            inner: P::with_capacity(chains, chain_capacity),
            counters: OpCounters::default(),
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn chains(&self) -> usize {
        self.inner.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.inner.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.inner.ensure_chain(chain);
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.inner.ensure_len(chain, len);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        self.counters.inserts.set(self.counters.inserts.get() + 1);
        self.inner.insert_edge_raw(from, to)
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.counters.deletes.set(self.counters.deletes.get() + 1);
        self.inner.delete_edge_raw(from, to)
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.counters
            .reachables
            .set(self.counters.reachables.get() + 1);
        self.inner.reachable(from, to)
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        self.counters
            .successors
            .set(self.counters.successors.get() + 1);
        self.inner.successor(from, chain)
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        self.counters
            .predecessors
            .set(self.counters.predecessors.get() + 1);
        self.inner.predecessor(from, chain)
    }

    fn supports_deletion(&self) -> bool {
        self.inner.supports_deletion()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{Csst, IncrementalCsst};
    use csst_trace::TraceBuilder;

    #[test]
    fn require_order_classification() {
        let mut po = Csst::new();
        let u = NodeId::new(0, 1);
        let v = NodeId::new(1, 2);
        assert_eq!(require_order(&mut po, u, v), OrderOutcome::Inserted);
        assert_eq!(require_order(&mut po, u, v), OrderOutcome::AlreadyOrdered);
        assert_eq!(
            require_order(&mut po, v, u),
            OrderOutcome::Contradiction,
            "reverse edge closes a cycle"
        );
        // Same-chain cases.
        assert_eq!(
            require_order(&mut po, NodeId::new(0, 1), NodeId::new(0, 5)),
            OrderOutcome::AlreadyOrdered
        );
        assert_eq!(
            require_order(&mut po, NodeId::new(0, 5), NodeId::new(0, 1)),
            OrderOutcome::Contradiction
        );
    }

    #[test]
    fn fork_join_structure() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).fork(1);
        b.on(1).write(x, 1);
        b.on(1).write(x, 2);
        b.on(0).join(1);
        let trace = b.build();
        let mut po: IncrementalCsst = index_for_trace(&trace);
        insert_fork_join(&mut po, &trace);
        // fork (0,0) → first of child (1,0); last of child (1,1) → join (0,1).
        assert!(po.reachable(NodeId::new(0, 0), NodeId::new(1, 1)));
        assert!(po.reachable(NodeId::new(1, 0), NodeId::new(0, 1)));
        assert!(!po.reachable(NodeId::new(0, 1), NodeId::new(1, 0)));
    }

    #[test]
    fn counting_index_counts() {
        let mut po: CountingIndex<Csst> = CountingIndex::with_capacity(3, 10);
        po.insert_edge(NodeId::new(0, 0), NodeId::new(1, 1))
            .unwrap();
        po.insert_edge(NodeId::new(1, 2), NodeId::new(2, 3))
            .unwrap();
        po.delete_edge(NodeId::new(1, 2), NodeId::new(2, 3))
            .unwrap();
        po.reachable(NodeId::new(0, 0), NodeId::new(1, 5));
        po.successor(NodeId::new(0, 0), ThreadId(1));
        po.predecessor(NodeId::new(1, 5), ThreadId(0));
        let c = po.counters();
        assert_eq!(c.inserts.get(), 2);
        assert_eq!(c.deletes.get(), 1);
        assert_eq!(c.updates(), 3);
        assert_eq!(c.queries(), 3);
        assert_eq!(po.name(), "CSSTs");
        assert!(po.supports_deletion());
    }
}
