//! Shared infrastructure for the analyses: streaming base-order
//! construction, windowed retirement, index construction helpers,
//! operation counting, and ordering primitives.
//!
//! The centerpiece is [`BaseOrderBuilder`], the component every
//! predictive analysis embeds to grow its *base order* incrementally
//! while events are [fed](crate::Analysis::feed), and to bound its
//! event buffer with a tumbling window whose retirement exercises the
//! CSST deletion path ([`PartialOrderIndex::delete_edge`]).

use csst_core::{NodeId, PartialOrderIndex, PoError, Pos, ThreadId};
use csst_trace::{EventKind, Trace, VarId};
use std::cell::Cell;
use std::collections::HashMap;

/// Creates an index pre-sized for `trace`: one chain per thread,
/// capacity hint equal to the longest thread chain (at least 1).
/// Purely an allocation hint — the index still grows on demand.
pub fn index_for_trace<P: PartialOrderIndex>(trace: &Trace) -> P {
    P::with_capacity(trace.num_threads().max(1), trace.max_chain_len().max(1))
}

/// Inserts the fork/join structure of `trace` into `po`: a `fork(c)`
/// event precedes the first event of `c`; the last event of `c`
/// precedes a `join(c)` event.
pub fn insert_fork_join<P: PartialOrderIndex>(po: &mut P, trace: &Trace) {
    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Fork { child } if trace.thread_len(child) > 0 && child != id.thread => {
                let first = NodeId::new(child, 0);
                let _ = po.insert_edge_checked(id, first);
            }
            EventKind::Join { child } => {
                let len = trace.thread_len(child);
                if len > 0 && child != id.thread {
                    let last = NodeId::new(child, (len - 1) as u32);
                    let _ = po.insert_edge_checked(last, id);
                }
            }
            _ => {}
        }
    }
}

/// Outcome of [`require_order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderOutcome {
    /// The ordering already held (or is implied by program order).
    AlreadyOrdered,
    /// A new edge was inserted.
    Inserted,
    /// The ordering contradicts the current partial order (a cycle):
    /// the constraint set is infeasible.
    Contradiction,
}

/// Enforces `from → to` in `po`, classifying the result. This is the
/// primitive all saturation rules are built from.
pub fn require_order<P: PartialOrderIndex>(po: &mut P, from: NodeId, to: NodeId) -> OrderOutcome {
    if from.thread == to.thread {
        return if from.pos <= to.pos {
            OrderOutcome::AlreadyOrdered
        } else {
            OrderOutcome::Contradiction
        };
    }
    if po.reachable(from, to) {
        return OrderOutcome::AlreadyOrdered;
    }
    match po.insert_edge_checked(from, to) {
        Ok(()) => OrderOutcome::Inserted,
        Err(PoError::WouldCycle { .. }) => OrderOutcome::Contradiction,
        Err(e) => panic!("unexpected partial-order error: {e}"),
    }
}

/// Counters describing one streaming run of a windowed analysis.
///
/// Unwindowed runs keep `windows`, `retired_events` and `deleted_edges`
/// at zero; `peak_buffered` then equals the total stream length for
/// buffering analyses (and zero for genuinely online ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Completed windows retired so far.
    pub windows: usize,
    /// Peak number of simultaneously buffered events.
    pub peak_buffered: usize,
    /// Events whose buffered bodies were dropped by retirement.
    pub retired_events: usize,
    /// Edges removed from the base order via
    /// [`PartialOrderIndex::delete_edge`] during retirement.
    pub deleted_edges: usize,
}

/// Streaming builder of an analysis's *base order*: a growable
/// partial-order index that is extended one event at a time inside
/// [`Analysis::feed`](crate::Analysis::feed), plus the bounded-memory
/// windowing layer shared by all seven predictive analyses.
///
/// # Modes
///
/// * [`observing`](Self::observing) — the builder buffers events and
///   inserts the *observation* edges (fork/join structure plus
///   reads-from, exactly the edge set of
///   [`insert_observation`](crate::saturation::insert_observation))
///   online as events arrive. Used by `race`, `deadlock`, `membug` and
///   `uaf`.
/// * [`counting`](Self::counting) — no event bodies are stored at
///   all; the builder only assigns global [`NodeId`]s, tracks the
///   window boundary and logs the edges the analysis inserts through
///   [`require_logged`](Self::require_logged) /
///   [`insert_logged`](Self::insert_logged). Used by the genuinely
///   online `c11` and by `tso` and `linearizability`, which buffer
///   their own derived tables (loads/commits, completed operations)
///   instead of raw events, reporting them via
///   [`note_buffered`](Self::note_buffered).
///
/// # Windowing
///
/// With `window = Some(n)` the stream is cut into consecutive
/// *tumbling* windows of `n` events. When a window fills, the analysis
/// runs its per-window core over the buffered events and then calls
/// [`retire_window`](Self::retire_window): every edge inserted for the
/// window is removed from the index via `delete_edge`, the buffered
/// event bodies are dropped, and the per-thread retirement offsets
/// advance. Peak buffered events never exceed `n`, and the index's
/// live edge set only ever spans one window. Events keep their
/// *global* ids — chains grow monotonically — so reports from
/// different windows are directly comparable.
///
/// Constraints that would span a window boundary (a read observing a
/// retired writer, a fork/join edge to a retired event) are dropped:
/// each window is analyzed as an independent execution. See the
/// [`Analysis`](crate::Analysis) docs for the resulting soundness
/// contract.
#[derive(Debug)]
pub struct BaseOrderBuilder<P> {
    po: P,
    /// Window-local buffered events (empty in counting mode).
    buf: Trace,
    /// Global number of events fed per thread.
    counts: Vec<Pos>,
    /// Global number of retired events per thread; the global id of
    /// buffered local event `⟨t, i⟩` is `⟨t, retired[t] + i⟩`.
    retired: Vec<Pos>,
    window: Option<usize>,
    /// Events fed since the last retirement.
    in_window: usize,
    observation: bool,
    store_events: bool,
    /// Latest plain write per variable (global id), for online rf.
    last_write: HashMap<VarId, NodeId>,
    /// Fork events whose child has not produced an event yet.
    pending_forks: HashMap<ThreadId, Vec<NodeId>>,
    /// Edges inserted for the current window (global ids), to be
    /// deleted at retirement.
    window_edges: Vec<(NodeId, NodeId)>,
    /// Reads-from edges actually inserted (the base-order statistic
    /// the predictive reports expose).
    base_inserted: usize,
    stats: WindowStats,
}

impl<P: PartialOrderIndex> BaseOrderBuilder<P> {
    fn with_modes(window: Option<usize>, observation: bool, store_events: bool) -> Self {
        let po = P::new();
        let window = window.map(|n| n.max(1));
        assert!(
            window.is_none() || po.supports_deletion(),
            "windowed retirement needs a fully dynamic index, not {}",
            po.name()
        );
        BaseOrderBuilder {
            po,
            buf: Trace::new(0),
            counts: Vec::new(),
            retired: Vec::new(),
            window,
            in_window: 0,
            observation,
            store_events,
            last_write: HashMap::new(),
            pending_forks: HashMap::new(),
            window_edges: Vec::new(),
            base_inserted: 0,
            stats: WindowStats::default(),
        }
    }

    /// Builder that buffers events and maintains the observation order
    /// (fork/join + reads-from) online.
    pub fn observing(window: Option<usize>) -> Self {
        Self::with_modes(window, true, true)
    }

    /// Builder that stores no event bodies: it only assigns global ids,
    /// tracks the window boundary and logs edges.
    pub fn counting(window: Option<usize>) -> Self {
        Self::with_modes(window, false, false)
    }

    /// The configured window size.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Feeds one event: assigns its global id, appends it to the
    /// buffer (unless counting), grows the index's witnessed domain,
    /// and — in observation mode — inserts the fork/join and
    /// reads-from edges it induces.
    pub fn feed(&mut self, thread: ThreadId, event: EventKind) -> NodeId {
        if thread.index() >= self.counts.len() {
            self.counts.resize(thread.index() + 1, 0);
        }
        let id = NodeId::new(thread, self.counts[thread.index()]);
        self.counts[thread.index()] += 1;
        if self.store_events {
            self.buf.push(thread, event);
        }
        self.in_window += 1;
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buf.total_events());
        if self.observation {
            self.po.ensure_len(thread, id.pos as usize + 1);
            self.observe(id, event);
        }
        id
    }

    fn observe(&mut self, id: NodeId, event: EventKind) {
        // A chain's first *live* event resolves the forks waiting for
        // it (in the current window, a chain restarts at its retirement
        // offset). All resolved edges target `id` — a fresh event with
        // no outgoing order yet — so they are filtered against the
        // current order plus the batch itself (exactly what sequential
        // `require_order` calls would see) and inserted through the
        // batched [`PartialOrderIndex::insert_edges`] path.
        if id.pos == self.retired.get(id.thread.index()).copied().unwrap_or(0) {
            let forks = self.pending_forks.remove(&id.thread).unwrap_or_default();
            if !forks.is_empty() {
                let mut batch: Vec<(NodeId, NodeId)> = Vec::with_capacity(forks.len());
                for fork in forks {
                    if !self.live(fork) {
                        continue;
                    }
                    let ordered = self.po.reachable(fork, id)
                        || batch.iter().any(|&(f, _)| self.po.reachable(fork, f));
                    if !ordered {
                        batch.push((fork, id));
                    }
                }
                if !batch.is_empty() {
                    self.insert_batch_logged(&batch)
                        .expect("pending fork edges are valid");
                }
            }
        }
        match event {
            EventKind::Write { var, .. } => {
                self.last_write.insert(var, id);
            }
            EventKind::Read { var, .. } => {
                if let Some(&w) = self.last_write.get(&var) {
                    if self.live(w) && self.log_require(w, id) == OrderOutcome::Inserted {
                        self.base_inserted += 1;
                    }
                }
            }
            EventKind::Fork { child } if child != id.thread => {
                // The fork precedes the child's first event *of this
                // window* — exactly the edge per-window batch analysis
                // derives from the window's sub-trace.
                let live_start = self.retired.get(child.index()).copied().unwrap_or(0);
                if self.counts.get(child.index()).copied().unwrap_or(0) > live_start {
                    self.log_require(id, NodeId::new(child, live_start));
                } else {
                    self.pending_forks.entry(child).or_default().push(id);
                }
            }
            EventKind::Join { child } if child != id.thread => {
                let len = self.counts.get(child.index()).copied().unwrap_or(0);
                if len > 0 {
                    let last = NodeId::new(child, len - 1);
                    if self.live(last) {
                        self.log_require(last, id);
                    }
                }
            }
            _ => {}
        }
    }

    fn log_require(&mut self, from: NodeId, to: NodeId) -> OrderOutcome {
        let out = require_order(&mut self.po, from, to);
        if out == OrderOutcome::Inserted {
            self.window_edges.push((from, to));
        }
        out
    }

    /// Enforces `from → to` in the base order (global ids), logging the
    /// edge for retirement if it was inserted. The entry point for
    /// analyses that maintain their own edge structure.
    pub fn require_logged(&mut self, from: NodeId, to: NodeId) -> OrderOutcome {
        self.log_require(from, to)
    }

    /// Inserts `from → to` unconditionally (global ids), logging it for
    /// retirement.
    ///
    /// # Errors
    ///
    /// Propagates [`PartialOrderIndex::insert_edge`] validation errors.
    pub fn insert_logged(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.po.insert_edge(from, to)?;
        self.window_edges.push((from, to));
        Ok(())
    }

    /// Inserts `from → to` unless it would close a cycle (global ids),
    /// logging it for retirement.
    ///
    /// # Errors
    ///
    /// Propagates [`PartialOrderIndex::insert_edge_checked`] errors.
    pub fn insert_logged_checked(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.po.insert_edge_checked(from, to)?;
        self.window_edges.push((from, to));
        Ok(())
    }

    /// Inserts a batch of edges (global ids) through the amortized
    /// [`PartialOrderIndex::insert_edges`] path, logging every edge for
    /// retirement. The batch is applied atomically: on a validation
    /// error nothing is inserted or logged.
    ///
    /// Like `insert_edges`, there is no cycle check — callers batch
    /// edge sets that are acyclic by construction (e.g. all edges
    /// targeting a freshly created event).
    ///
    /// # Errors
    ///
    /// Propagates [`PartialOrderIndex::insert_edges`] validation
    /// errors.
    pub fn insert_batch_logged(&mut self, edges: &[(NodeId, NodeId)]) -> Result<(), PoError> {
        self.po.insert_edges(edges)?;
        self.window_edges.extend_from_slice(edges);
        Ok(())
    }

    /// `true` once the current window holds `window` events — time to
    /// run the per-window core and [`retire_window`](Self::retire_window).
    pub fn window_full(&self) -> bool {
        self.window.is_some_and(|n| self.in_window >= n)
    }

    /// Retires the current window: deletes every logged edge from the
    /// index (the CSST deletion path), drops the buffered event bodies
    /// and advances the retirement offsets.
    pub fn retire_window(&mut self) {
        let edges = std::mem::take(&mut self.window_edges);
        self.stats.deleted_edges += edges.len();
        for (from, to) in edges {
            self.po
                .delete_edge(from, to)
                .expect("every logged edge is present and deletable");
        }
        self.stats.windows += 1;
        self.stats.retired_events += self.in_window;
        self.in_window = 0;
        self.retired.clear();
        self.retired.extend_from_slice(&self.counts);
        if self.store_events {
            self.buf = Trace::new(self.buf.num_threads());
        }
    }

    /// `true` if the (global) event id has not been retired.
    pub fn live(&self, id: NodeId) -> bool {
        id.pos >= self.retired.get(id.thread.index()).copied().unwrap_or(0)
    }

    /// Translates a window-local id (as used by the buffered trace) to
    /// the event's global id.
    pub fn to_global(&self, local: NodeId) -> NodeId {
        NodeId::new(
            local.thread,
            local.pos + self.retired.get(local.thread.index()).copied().unwrap_or(0),
        )
    }

    /// The window-local buffered trace (empty in counting mode).
    pub fn buffered(&self) -> &Trace {
        &self.buf
    }

    /// Splits the builder into the buffered window trace and a
    /// [`WindowIndex`] over the base order, so per-window cores can
    /// keep working entirely in window-local coordinates.
    pub fn split(&mut self) -> (&Trace, WindowIndex<'_, P>) {
        (
            &self.buf,
            WindowIndex {
                po: &mut self.po,
                retired: &self.retired,
                window_edges: &mut self.window_edges,
            },
        )
    }

    /// Records analysis-private buffering (e.g. pending operations)
    /// into [`WindowStats::peak_buffered`].
    pub fn note_buffered(&mut self, buffered: usize) {
        self.stats.peak_buffered = self.stats.peak_buffered.max(buffered);
    }

    /// Reads-from edges inserted into the base order so far.
    pub fn base_inserted(&self) -> usize {
        self.base_inserted
    }

    /// The streaming counters accumulated so far.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// The base order (global coordinates).
    pub fn po(&self) -> &P {
        &self.po
    }

    /// Mutable access to the base order for queries and *unlogged*
    /// structural growth. Edges inserted through this reference are
    /// **not** retired; analyses must use the `*_logged` methods for
    /// anything that must be deleted when the window closes.
    pub fn po_mut(&mut self) -> &mut P {
        &mut self.po
    }

    /// Consumes the builder, returning the base order.
    pub fn into_po(self) -> P {
        self.po
    }
}

/// A window-local view of a [`BaseOrderBuilder`]'s base order: every
/// operation translates positions by the per-thread retirement offsets,
/// so analysis cores written against window-local event ids (the ids of
/// the buffered trace) can query — and, for saturation, extend — the
/// incrementally built base order directly. Edges inserted through the
/// view are logged for retirement like any other window edge.
#[derive(Debug)]
pub struct WindowIndex<'a, P> {
    po: &'a mut P,
    retired: &'a [Pos],
    window_edges: &'a mut Vec<(NodeId, NodeId)>,
}

impl<P: PartialOrderIndex> WindowIndex<'_, P> {
    fn offset(&self, chain: ThreadId) -> Pos {
        self.retired.get(chain.index()).copied().unwrap_or(0)
    }

    /// Translates a window-local id to the event's global id.
    pub fn to_global(&self, id: NodeId) -> NodeId {
        NodeId::new(id.thread, id.pos + self.offset(id.thread))
    }
}

impl<P: PartialOrderIndex> PartialOrderIndex for WindowIndex<'_, P> {
    fn new() -> Self {
        panic!("WindowIndex views a BaseOrderBuilder; obtain one via BaseOrderBuilder::split")
    }

    fn name(&self) -> &'static str {
        self.po.name()
    }

    fn chains(&self) -> usize {
        self.po.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.po
            .chain_len(chain)
            .saturating_sub(self.offset(chain) as usize)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.po.ensure_chain(chain);
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.po.ensure_len(chain, len + self.offset(chain) as usize);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        let (from, to) = (self.to_global(from), self.to_global(to));
        self.window_edges.push((from, to));
        self.po.insert_edge_raw(from, to);
    }

    fn insert_edges_raw(&mut self, edges: &[(NodeId, NodeId)]) {
        let translated: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(f, t)| (self.to_global(f), self.to_global(t)))
            .collect();
        self.window_edges.extend_from_slice(&translated);
        self.po.insert_edges_raw(&translated);
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        let (from, to) = (self.to_global(from), self.to_global(to));
        self.po.delete_edge_raw(from, to)?;
        if let Some(i) = self.window_edges.iter().position(|&e| e == (from, to)) {
            self.window_edges.swap_remove(i);
        }
        Ok(())
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        self.po.reachable(self.to_global(from), self.to_global(to))
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let p = self.po.successor(self.to_global(from), chain)?;
        let off = self.offset(chain);
        // A pre-window answer names a retired event the view cannot
        // represent; report "no in-window successor" instead of
        // clamping to local position 0 (which would alias a live
        // event). Stale base-order edges can produce these in release
        // builds where the old `debug_assert` compiled away.
        if p < off {
            return None;
        }
        Some(p - off)
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let p = self.po.predecessor(self.to_global(from), chain)?;
        let off = self.offset(chain);
        // Same retired-position guard as `successor`: clamping a
        // pre-window predecessor to 0 would fabricate an ordering from
        // a live event that does not have one.
        if p < off {
            return None;
        }
        Some(p - off)
    }

    fn reachable_batch(&self, probes: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.resize(probes.len(), false);
        let mut fwd = Vec::with_capacity(probes.len());
        let mut idx = Vec::with_capacity(probes.len());
        for (i, &(from, to)) in probes.iter().enumerate() {
            if from.thread == to.thread {
                out[i] = from.pos <= to.pos;
            } else {
                fwd.push((self.to_global(from), self.to_global(to)));
                idx.push(i);
            }
        }
        let mut inner = Vec::new();
        self.po.reachable_batch(&fwd, &mut inner);
        for (&i, v) in idx.iter().zip(inner) {
            out[i] = v;
        }
    }

    fn successor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        let fwd: Vec<(NodeId, ThreadId)> = probes
            .iter()
            .map(|&(from, chain)| (self.to_global(from), chain))
            .collect();
        self.po.successor_batch(&fwd, out);
        for (o, &(_, chain)) in out.iter_mut().zip(probes) {
            let off = self.offset(chain);
            *o = o.filter(|&p| p >= off).map(|p| p - off);
        }
    }

    fn predecessor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        let fwd: Vec<(NodeId, ThreadId)> = probes
            .iter()
            .map(|&(from, chain)| (self.to_global(from), chain))
            .collect();
        self.po.predecessor_batch(&fwd, out);
        for (o, &(_, chain)) in out.iter_mut().zip(probes) {
            let off = self.offset(chain);
            *o = o.filter(|&p| p >= off).map(|p| p - off);
        }
    }

    fn supports_deletion(&self) -> bool {
        self.po.supports_deletion()
    }

    fn memory_bytes(&self) -> usize {
        self.po.memory_bytes()
    }
}

/// Operation counters shared by [`CountingIndex`]; interior-mutable so
/// queries through `&self` can count.
#[derive(Debug, Clone, Default)]
pub struct OpCounters {
    /// `insert_edge` calls.
    pub inserts: Cell<u64>,
    /// `delete_edge` calls.
    pub deletes: Cell<u64>,
    /// `reachable` calls.
    pub reachables: Cell<u64>,
    /// `successor` calls.
    pub successors: Cell<u64>,
    /// `predecessor` calls.
    pub predecessors: Cell<u64>,
}

impl OpCounters {
    /// Total updates (inserts + deletes).
    pub fn updates(&self) -> u64 {
        self.inserts.get() + self.deletes.get()
    }

    /// Total queries.
    pub fn queries(&self) -> u64 {
        self.reachables.get() + self.successors.get() + self.predecessors.get()
    }
}

/// A transparent wrapper counting every operation issued to the inner
/// index — the instrumentation behind the op-mix columns of
/// EXPERIMENTS.md.
///
/// ```
/// use csst_analyses::CountingIndex;
/// use csst_core::{Csst, NodeId, PartialOrderIndex};
///
/// let mut po: CountingIndex<Csst> = CountingIndex::new();
/// po.insert_edge(NodeId::new(0, 1), NodeId::new(1, 2)).unwrap();
/// po.reachable(NodeId::new(0, 0), NodeId::new(1, 5));
/// assert_eq!(po.counters().inserts.get(), 1);
/// assert_eq!(po.counters().reachables.get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CountingIndex<P> {
    inner: P,
    counters: OpCounters,
}

impl<P: PartialOrderIndex> CountingIndex<P> {
    /// The counters accumulated so far.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// The wrapped index.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the inner index.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: PartialOrderIndex> PartialOrderIndex for CountingIndex<P> {
    fn new() -> Self {
        CountingIndex {
            inner: P::new(),
            counters: OpCounters::default(),
        }
    }

    fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        CountingIndex {
            inner: P::with_capacity(chains, chain_capacity),
            counters: OpCounters::default(),
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn chains(&self) -> usize {
        self.inner.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.inner.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.inner.ensure_chain(chain);
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.inner.ensure_len(chain, len);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        self.counters.inserts.set(self.counters.inserts.get() + 1);
        self.inner.insert_edge_raw(from, to)
    }

    fn insert_edges_raw(&mut self, edges: &[(NodeId, NodeId)]) {
        self.counters
            .inserts
            .set(self.counters.inserts.get() + edges.len() as u64);
        self.inner.insert_edges_raw(edges)
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.counters.deletes.set(self.counters.deletes.get() + 1);
        self.inner.delete_edge_raw(from, to)
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.counters
            .reachables
            .set(self.counters.reachables.get() + 1);
        self.inner.reachable(from, to)
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        self.counters
            .successors
            .set(self.counters.successors.get() + 1);
        self.inner.successor(from, chain)
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        self.counters
            .predecessors
            .set(self.counters.predecessors.get() + 1);
        self.inner.predecessor(from, chain)
    }

    fn reachable_batch(&self, probes: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        self.counters
            .reachables
            .set(self.counters.reachables.get() + probes.len() as u64);
        self.inner.reachable_batch(probes, out)
    }

    fn successor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        self.counters
            .successors
            .set(self.counters.successors.get() + probes.len() as u64);
        self.inner.successor_batch(probes, out)
    }

    fn predecessor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        self.counters
            .predecessors
            .set(self.counters.predecessors.get() + probes.len() as u64);
        self.inner.predecessor_batch(probes, out)
    }

    fn supports_deletion(&self) -> bool {
        self.inner.supports_deletion()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{Csst, IncrementalCsst};
    use csst_trace::TraceBuilder;

    #[test]
    fn require_order_classification() {
        let mut po = Csst::new();
        let u = NodeId::new(0, 1);
        let v = NodeId::new(1, 2);
        assert_eq!(require_order(&mut po, u, v), OrderOutcome::Inserted);
        assert_eq!(require_order(&mut po, u, v), OrderOutcome::AlreadyOrdered);
        assert_eq!(
            require_order(&mut po, v, u),
            OrderOutcome::Contradiction,
            "reverse edge closes a cycle"
        );
        // Same-chain cases.
        assert_eq!(
            require_order(&mut po, NodeId::new(0, 1), NodeId::new(0, 5)),
            OrderOutcome::AlreadyOrdered
        );
        assert_eq!(
            require_order(&mut po, NodeId::new(0, 5), NodeId::new(0, 1)),
            OrderOutcome::Contradiction
        );
    }

    #[test]
    fn fork_join_structure() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).fork(1);
        b.on(1).write(x, 1);
        b.on(1).write(x, 2);
        b.on(0).join(1);
        let trace = b.build();
        let mut po: IncrementalCsst = index_for_trace(&trace);
        insert_fork_join(&mut po, &trace);
        // fork (0,0) → first of child (1,0); last of child (1,1) → join (0,1).
        assert!(po.reachable(NodeId::new(0, 0), NodeId::new(1, 1)));
        assert!(po.reachable(NodeId::new(1, 0), NodeId::new(0, 1)));
        assert!(!po.reachable(NodeId::new(0, 1), NodeId::new(1, 0)));
    }

    #[test]
    fn counting_index_counts() {
        let mut po: CountingIndex<Csst> = CountingIndex::with_capacity(3, 10);
        po.insert_edge(NodeId::new(0, 0), NodeId::new(1, 1))
            .unwrap();
        po.insert_edge(NodeId::new(1, 2), NodeId::new(2, 3))
            .unwrap();
        po.delete_edge(NodeId::new(1, 2), NodeId::new(2, 3))
            .unwrap();
        po.reachable(NodeId::new(0, 0), NodeId::new(1, 5));
        po.successor(NodeId::new(0, 0), ThreadId(1));
        po.predecessor(NodeId::new(1, 5), ThreadId(0));
        let c = po.counters();
        assert_eq!(c.inserts.get(), 2);
        assert_eq!(c.deletes.get(), 1);
        assert_eq!(c.updates(), 3);
        assert_eq!(c.queries(), 3);
        assert_eq!(po.name(), "CSSTs");
        assert!(po.supports_deletion());
    }

    #[test]
    fn counting_index_counts_batches() {
        let mut po: CountingIndex<Csst> = CountingIndex::with_capacity(2, 10);
        po.insert_edge(NodeId::new(0, 0), NodeId::new(1, 1))
            .unwrap();
        let reach = [(NodeId::new(0, 0), NodeId::new(1, 5)); 3];
        let node = [(NodeId::new(0, 0), ThreadId(1)); 4];
        let (mut r, mut s, mut p) = (vec![], vec![], vec![]);
        po.reachable_batch(&reach, &mut r);
        po.successor_batch(&node, &mut s);
        po.predecessor_batch(&node, &mut p);
        assert_eq!(po.counters().reachables.get(), 3);
        assert_eq!(po.counters().successors.get(), 4);
        assert_eq!(po.counters().predecessors.get(), 4);
        assert_eq!(po.counters().queries(), 11);
    }

    #[test]
    fn window_index_hides_retired_answers() {
        // Global picture: chain 0's first 3 positions are retired;
        // stale base-order edges still land on them.
        let mut po = Csst::with_capacity(2, 16);
        po.insert_edge(NodeId::new(0, 1), NodeId::new(1, 5))
            .unwrap(); // both ends pre-window on chain 0
        po.insert_edge(NodeId::new(1, 2), NodeId::new(0, 3))
            .unwrap(); // lands exactly on the boundary
        let retired = vec![3, 0];
        let mut edges = vec![];
        let win = WindowIndex {
            po: &mut po,
            retired: &retired,
            window_edges: &mut edges,
        };
        // The latest chain-0 predecessor of ⟨1,5⟩ is the retired ⟨0,1⟩:
        // the view must report None, not clamp to live local 0.
        assert_eq!(win.predecessor(NodeId::new(1, 5), ThreadId(0)), None);
        // The earliest chain-0 successor of ⟨1,2⟩ is global 3 == the
        // offset: first live position, local 0.
        assert_eq!(win.successor(NodeId::new(1, 2), ThreadId(0)), Some(0));
        // Batched answers agree with the sequential ones, including the
        // retired→None translation.
        let node_probes = [
            (NodeId::new(1, 5), ThreadId(0)),
            (NodeId::new(1, 2), ThreadId(0)),
            (NodeId::new(1, 1), ThreadId(1)),
        ];
        let (mut s, mut p) = (vec![], vec![]);
        win.successor_batch(&node_probes, &mut s);
        win.predecessor_batch(&node_probes, &mut p);
        for (i, &(u, c)) in node_probes.iter().enumerate() {
            assert_eq!(s[i], win.successor(u, c), "successor probe {i}");
            assert_eq!(p[i], win.predecessor(u, c), "predecessor probe {i}");
        }
        let reach_probes = [
            (NodeId::new(1, 2), NodeId::new(0, 0)),
            (NodeId::new(0, 0), NodeId::new(1, 5)),
            (NodeId::new(1, 1), NodeId::new(1, 4)),
        ];
        let mut r = vec![];
        win.reachable_batch(&reach_probes, &mut r);
        for (i, &(u, v)) in reach_probes.iter().enumerate() {
            assert_eq!(r[i], win.reachable(u, v), "reachable probe {i}");
        }
    }
}
