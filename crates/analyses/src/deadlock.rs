//! SeqCheck-style dynamic deadlock prediction (Table 2).
//!
//! The analysis of \[Cai et al. 2021\] identifies *potential* deadlock
//! patterns from lock-acquisition orders — pairs of threads that nest
//! the same two locks in opposite orders — and then tries to witness
//! each pattern by a valid reordering of the observed trace. The
//! witness check reasons over an incrementally maintained partial
//! order: both inner acquisitions must be co-enabled while each thread
//! already holds the other thread's requested lock.
//!
//! **Classification:** predictive. *Detects* deadlocks witnessable by
//! reordering the observed trace (inverse lock nestings that can be
//! co-enabled). *Base order:* the observation (fork/join +
//! reads-from), built online per event. *Buffering:* buffered pattern
//! mining at `finish`, or **windowed** via [`DeadlockCfg::window`].
//!
//! ```
//! use csst_analyses::deadlock::{self, DeadlockCfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let (la, lb) = (b.lock("a"), b.lock("b"));
//! b.on(0).acquire(la);
//! b.on(0).acquire(lb);
//! b.on(0).release(lb);
//! b.on(0).release(la);
//! b.on(1).acquire(lb);
//! b.on(1).acquire(la);
//! b.on(1).release(la);
//! b.on(1).release(lb);
//! let report = deadlock::predict::<IncrementalCsst>(&b.build(), &DeadlockCfg::default());
//! assert_eq!(report.deadlocks.len(), 1);
//! ```

use crate::common::{BaseOrderBuilder, WindowIndex, WindowStats};
use crate::saturation::{witness_co_enabled, ClosureCtx, SaturationCfg};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, LockId, Trace};
use std::collections::{HashMap, HashSet};

/// One nested acquisition: thread holds `outer` (acquired at
/// `outer_acq`) while acquiring `inner` at `inner_acq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nesting {
    /// The lock held.
    pub outer: LockId,
    /// The lock being acquired under `outer`.
    pub inner: LockId,
    /// Acquire event of `outer`.
    pub outer_acq: NodeId,
    /// Acquire event of `inner`.
    pub inner_acq: NodeId,
}

/// A predicted deadlock: two nestings of the same lock pair in opposite
/// orders, witnessed as co-enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadlock {
    /// First thread's nesting.
    pub first: Nesting,
    /// Second thread's (inverted) nesting.
    pub second: Nesting,
}

/// Configuration of [`predict`].
#[derive(Debug, Clone, Default)]
pub struct DeadlockCfg {
    /// Saturation settings.
    pub saturation: SaturationCfg,
    /// Maximum number of patterns to witness-check (across windows).
    pub max_patterns: usize,
    /// Tumbling-window size bounding the event buffer; `None` buffers
    /// the whole stream. See the [`Analysis`] soundness contract.
    pub window: Option<usize>,
}

/// Result of a deadlock prediction run.
#[derive(Debug, Clone)]
pub struct DeadlockReport<P> {
    /// The observed base partial order (final window's edges only in
    /// windowed runs).
    pub base: P,
    /// Potential patterns found from lock orders alone.
    pub patterns: usize,
    /// Patterns with a feasible co-enabling witness (global event ids).
    pub deadlocks: Vec<Deadlock>,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Extracts all nested acquisitions from the trace.
pub fn nestings(trace: &Trace) -> Vec<Nesting> {
    let mut result = Vec::new();
    for t in 0..trace.num_threads() {
        let tid = csst_core::ThreadId(t as u32);
        let mut stack: Vec<(LockId, NodeId)> = Vec::new();
        for (i, ev) in trace.events_of(tid).iter().enumerate() {
            let here = NodeId::new(tid, i as u32);
            match ev.kind {
                EventKind::Acquire { lock } => {
                    for &(outer, outer_acq) in &stack {
                        result.push(Nesting {
                            outer,
                            inner: lock,
                            outer_acq,
                            inner_acq: here,
                        });
                    }
                    stack.push((lock, here));
                }
                EventKind::Release { lock } => {
                    if let Some(i) = stack.iter().rposition(|&(l, _)| l == lock) {
                        stack.remove(i);
                    }
                }
                _ => {}
            }
        }
    }
    result
}

/// Streaming form of [`predict`]: the observation base order grows per
/// event inside `feed`; pattern mining and the SeqCheck-style witness
/// checks run over the buffered events at `finish` — or per window when
/// [`DeadlockCfg::window`] bounds the buffer.
#[derive(Debug)]
pub struct DeadlockPredictor<P> {
    cfg: DeadlockCfg,
    builder: BaseOrderBuilder<P>,
    patterns: usize,
    deadlocks: Vec<Deadlock>,
    reported: HashSet<(NodeId, NodeId)>,
}

impl<P: PartialOrderIndex> DeadlockPredictor<P> {
    fn analyze_window(&mut self) {
        let (trace, win) = self.builder.split();
        if trace.total_events() == 0 {
            return;
        }
        let ctx = ClosureCtx::new(trace, None);

        let all = nestings(trace);
        // Group by unordered lock pair.
        let mut by_pair: HashMap<(LockId, LockId), Vec<&Nesting>> = HashMap::new();
        for n in &all {
            if n.outer != n.inner {
                let key = (n.outer.min(n.inner), n.outer.max(n.inner));
                by_pair.entry(key).or_default().push(n);
            }
        }

        let max_patterns = if self.cfg.max_patterns == 0 {
            usize::MAX
        } else {
            self.cfg.max_patterns
        };
        let mut groups: Vec<(&(LockId, LockId), &Vec<&Nesting>)> = by_pair.iter().collect();
        groups.sort_unstable_by_key(|(k, _)| **k);
        'outer: for (_, group) in groups {
            for (i, &a) in group.iter().enumerate() {
                for &b in group.iter().skip(i + 1) {
                    if self.patterns >= max_patterns {
                        break 'outer;
                    }
                    // Opposite nesting orders in different threads.
                    if a.inner_acq.thread == b.inner_acq.thread
                        || a.outer != b.inner
                        || a.inner != b.outer
                    {
                        continue;
                    }
                    // Guarded by a common lock (other than the pair):
                    // the inversion is benign.
                    if guarded(trace, a, b) {
                        continue;
                    }
                    self.patterns += 1;
                    let key = (win.to_global(a.inner_acq), win.to_global(b.inner_acq));
                    if witness::<_, P>(&win, &ctx, &self.cfg.saturation, a, b)
                        && self.reported.insert(key)
                    {
                        self.deadlocks.push(Deadlock {
                            first: globalize(&win, a),
                            second: globalize(&win, b),
                        });
                    }
                }
            }
        }
    }
}

impl<P: PartialOrderIndex> Analysis for DeadlockPredictor<P> {
    type Cfg = DeadlockCfg;
    type Report = DeadlockReport<P>;

    fn new(cfg: Self::Cfg) -> Self {
        DeadlockPredictor {
            builder: BaseOrderBuilder::observing(cfg.window),
            cfg,
            patterns: 0,
            deadlocks: Vec::new(),
            reported: HashSet::new(),
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        self.builder.feed(thread, event);
        if self.builder.window_full() {
            self.analyze_window();
            self.builder.retire_window();
        }
    }

    fn finish(mut self) -> DeadlockReport<P> {
        self.analyze_window();
        DeadlockReport {
            patterns: self.patterns,
            deadlocks: self.deadlocks,
            window: self.builder.stats(),
            base: self.builder.into_po(),
        }
    }
}

/// Runs deadlock prediction over `trace` using representation `P`: a
/// thin wrapper streaming the trace through [`DeadlockPredictor`].
pub fn predict<P: PartialOrderIndex>(trace: &Trace, cfg: &DeadlockCfg) -> DeadlockReport<P> {
    DeadlockPredictor::<P>::run(trace, cfg.clone())
}

/// Translates a window-local nesting into global event ids.
fn globalize<P: PartialOrderIndex>(win: &WindowIndex<'_, P>, n: &Nesting) -> Nesting {
    Nesting {
        outer: n.outer,
        inner: n.inner,
        outer_acq: win.to_global(n.outer_acq),
        inner_acq: win.to_global(n.inner_acq),
    }
}

/// `true` if both inner acquisitions happen while holding a common lock
/// other than the inverted pair itself.
fn guarded(trace: &Trace, a: &Nesting, b: &Nesting) -> bool {
    let ha: HashSet<LockId> = trace
        .locks_held_at(a.inner_acq)
        .into_iter()
        .filter(|&l| l != a.outer && l != a.inner)
        .collect();
    if ha.is_empty() {
        return false;
    }
    trace
        .locks_held_at(b.inner_acq)
        .into_iter()
        .filter(|&l| l != b.outer && l != b.inner)
        .any(|l| ha.contains(&l))
}

/// Witness check: both inner acquires co-enabled by a correct
/// reordering of a trace prefix. The prefix keeps each thread's outer
/// section open (the thread holds the lock the other thread requests),
/// so the open-section rules of [`witness_co_enabled`] enforce the
/// deadlock semantics. `base` filters ordered pairs; the fresh witness
/// index is built over `P`.
fn witness<B: PartialOrderIndex, P: PartialOrderIndex>(
    base: &B,
    ctx: &ClosureCtx<'_>,
    sat: &SaturationCfg,
    a: &Nesting,
    b: &Nesting,
) -> bool {
    // Already ordered: the two sections can never overlap.
    if base.reachable(a.inner_acq, b.outer_acq) || base.reachable(b.inner_acq, a.outer_acq) {
        return false;
    }
    witness_co_enabled::<P>(ctx, sat, &[a.inner_acq, b.inner_acq])
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{lock_program, LockProgramCfg};
    use csst_trace::TraceBuilder;

    fn classic_inversion() -> Trace {
        // T0: acq(a) acq(b) rel(b) rel(a); T1: acq(b) acq(a) rel(a) rel(b).
        let mut b = TraceBuilder::new();
        let la = b.lock("a");
        let lb = b.lock("b");
        b.on(0).acquire(la);
        b.on(0).acquire(lb);
        b.on(0).release(lb);
        b.on(0).release(la);
        b.on(1).acquire(lb);
        b.on(1).acquire(la);
        b.on(1).release(la);
        b.on(1).release(lb);
        b.build()
    }

    #[test]
    fn nesting_extraction() {
        let trace = classic_inversion();
        let ns = nestings(&trace);
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0].outer, LockId(0));
        assert_eq!(ns[0].inner, LockId(1));
        assert_eq!(ns[1].outer, LockId(1));
        assert_eq!(ns[1].inner, LockId(0));
    }

    #[test]
    fn detects_classic_deadlock() {
        let trace = classic_inversion();
        let report = predict::<IncrementalCsst>(&trace, &DeadlockCfg::default());
        assert_eq!(report.patterns, 1);
        assert_eq!(report.deadlocks.len(), 1);
    }

    #[test]
    fn gate_lock_suppresses_deadlock() {
        // Same inversion but both nestings guarded by gate lock g.
        let mut b = TraceBuilder::new();
        let la = b.lock("a");
        let lb = b.lock("b");
        let g = b.lock("g");
        b.on(0).acquire(g);
        b.on(0).acquire(la);
        b.on(0).acquire(lb);
        b.on(0).release(lb);
        b.on(0).release(la);
        b.on(0).release(g);
        b.on(1).acquire(g);
        b.on(1).acquire(lb);
        b.on(1).acquire(la);
        b.on(1).release(la);
        b.on(1).release(lb);
        b.on(1).release(g);
        let trace = b.build();
        let report = predict::<IncrementalCsst>(&trace, &DeadlockCfg::default());
        assert!(report.deadlocks.is_empty(), "gate lock makes it benign");
    }

    #[test]
    fn ordering_suppresses_deadlock() {
        // The inversion exists but a fork edge orders T0's section
        // entirely before T1 starts: no witness.
        let mut b = TraceBuilder::new();
        let la = b.lock("a");
        let lb = b.lock("b");
        b.on(0).acquire(la);
        b.on(0).acquire(lb);
        b.on(0).release(lb);
        b.on(0).release(la);
        b.on(0).fork(1);
        b.on(1).acquire(lb);
        b.on(1).acquire(la);
        b.on(1).release(la);
        b.on(1).release(lb);
        let trace = b.build();
        let report = predict::<IncrementalCsst>(&trace, &DeadlockCfg::default());
        assert!(report.deadlocks.is_empty());
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for seed in 0..3 {
            let trace = lock_program(&LockProgramCfg {
                threads: 4,
                blocks_per_thread: 20,
                inversion_frac: 0.3,
                seed,
                ..Default::default()
            });
            let cfg = DeadlockCfg {
                max_patterns: 40,
                ..Default::default()
            };
            let a = predict::<IncrementalCsst>(&trace, &cfg);
            let b = predict::<SegTreeIndex>(&trace, &cfg);
            let c = predict::<VectorClockIndex>(&trace, &cfg);
            let d = predict::<GraphIndex>(&trace, &cfg);
            fn key<P>(r: &DeadlockReport<P>) -> Vec<(NodeId, NodeId)> {
                r.deadlocks
                    .iter()
                    .map(|d| (d.first.inner_acq, d.second.inner_acq))
                    .collect()
            }
            assert_eq!(key(&a), key(&b), "seed {seed}");
            assert_eq!(key(&a), key(&c), "seed {seed}");
            assert_eq!(key(&a), key(&d), "seed {seed}");
        }
    }
}
