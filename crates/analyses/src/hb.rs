//! Streaming happens-before race detection (FastTrack-style).
//!
//! Not one of the paper's seven evaluated analyses, but its explicit
//! *counterpoint* (§1): "in the streaming setting, Vector Clocks are
//! arguably the best data structure to represent a partial order."
//! Here every ordering targets the event currently being processed —
//! release-to-acquire edges per lock, fork/join edges — so insertions
//! never propagate and `O(1)` VC queries shine.
//!
//! [`HbDetector`] is *genuinely* streaming: it holds no event buffer.
//! Each [`feed`](crate::Analysis::feed) appends the event to a growable
//! [`PartialOrderIndex`] (via [`PartialOrderIndex::append`]), inserts
//! the synchronization edges it induces, and checks conflicting
//! accesses immediately — memory tracks the synchronization structure,
//! not the trace length, so it can serve an unbounded live stream.
//!
//! Running this module over the same traces as [`crate::race`] shows
//! the two regimes side by side: sound-but-incomplete streaming HB
//! detection (only races adjacent in the synchronization order) versus
//! predictive reordering with per-candidate closures.
//!
//! **Classification:** genuinely online. *Detects* happens-before
//! races between conflicting accesses adjacent in the synchronization
//! order. *Base order:* happens-before from lock and fork/join
//! synchronization, built online per event — no event is ever
//! buffered, so windowing does not apply.
//!
//! ```
//! use csst_analyses::hb;
//! use csst_core::VectorClockIndex;
//! use csst_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.on(0).write(x, 1);
//! b.on(1).write(x, 2);
//! let report = hb::detect::<VectorClockIndex>(&b.build());
//! assert_eq!(report.races.len(), 1);
//! ```

use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, LockId, Trace, VarId};
use std::collections::HashMap;

/// Result of a streaming HB pass.
#[derive(Debug, Clone)]
pub struct HbReport<P> {
    /// The final happens-before order.
    pub hb: P,
    /// HB-races: conflicting plain accesses unordered at detection
    /// time.
    pub races: Vec<(NodeId, NodeId)>,
    /// Synchronization edges inserted (all targeting the current
    /// event: the streaming pattern).
    pub sync_edges: usize,
}

/// Derives the synchronization edges a streamed event induces, with no
/// index attached: event-id assignment (one append per event), lock
/// release→acquire matching, and fork/join resolution are pure
/// bookkeeping over per-thread counters.
///
/// [`HbDetector`] runs one of these in front of its index; the sharded
/// ingest pipeline (`csst-serve`) runs the *same* tracker on the router
/// thread and broadcasts the emitted edges to every shard replica —
/// sharing the implementation is what makes the sharded and sequential
/// detectors agree edge-for-edge.
#[derive(Debug, Default)]
pub struct SyncTracker {
    /// Events seen so far per thread (the next event's position).
    counts: HashMap<ThreadId, u32>,
    last_release: HashMap<LockId, NodeId>,
    /// Fork events whose child has not produced an event yet: the
    /// fork→first-event edge is emitted when (and if) the child
    /// starts, mirroring the batch rule "fork edges only into
    /// non-empty chains".
    pending_forks: HashMap<ThreadId, Vec<NodeId>>,
}

impl SyncTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        SyncTracker::default()
    }

    /// Assigns the next [`NodeId`] for an event of `thread` and appends
    /// the synchronization edges it induces to `edges`: pending-fork
    /// edges into a freshly started chain first, then the event's own
    /// edge (release→acquire, fork→first, last→join), matching the
    /// online detector's insertion order. Guards (`child != thread`,
    /// cross-thread release) replicate [`HbDetector`] exactly.
    pub fn feed(
        &mut self,
        thread: ThreadId,
        event: &EventKind,
        edges: &mut Vec<(NodeId, NodeId)>,
    ) -> NodeId {
        let pos = self.counts.entry(thread).or_insert(0);
        let id = NodeId::new(thread, *pos);
        *pos += 1;
        // A freshly started chain resolves the forks waiting for it.
        if id.pos == 0 {
            for fork in self.pending_forks.remove(&thread).unwrap_or_default() {
                edges.push((fork, id));
            }
        }
        match *event {
            EventKind::Acquire { lock } => {
                if let Some(rel) = self.last_release.get(&lock) {
                    if rel.thread != thread {
                        edges.push((*rel, id));
                    }
                }
            }
            EventKind::Release { lock } => {
                self.last_release.insert(lock, id);
            }
            EventKind::Fork { child } if child != thread => {
                let started = self.counts.get(&child).copied().unwrap_or(0);
                if started > 0 {
                    edges.push((id, NodeId::new(child, 0)));
                } else {
                    self.pending_forks.entry(child).or_default().push(id);
                }
            }
            EventKind::Join { child } => {
                let len = self.counts.get(&child).copied().unwrap_or(0);
                if child != thread && len > 0 {
                    edges.push((NodeId::new(child, len - 1), id));
                }
            }
            _ => {}
        }
        id
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.counts.capacity() * size_of::<(ThreadId, u32)>()
            + self.last_release.capacity() * size_of::<(LockId, NodeId)>()
            + self.pending_forks.capacity() * size_of::<(ThreadId, Vec<NodeId>)>()
    }
}

#[derive(Debug)]
struct VarState {
    last_write: Option<NodeId>,
    /// Last read per thread, indexed by thread id (grown on demand).
    last_read: Vec<Option<NodeId>>,
}

/// The per-variable access frontier of the streaming detector: the last
/// write plus every thread's last read, checked against each new access
/// by reachability probes into a caller-supplied index.
///
/// This is the expensive half of HB detection (the probes), split out
/// so the sharded pipeline can partition it by variable: each shard
/// worker owns the frontier of the variables routed to it and probes
/// its own index replica. Race callbacks report `(probe_idx, src)`
/// where `probe_idx` is the position within the event's deterministic
/// probe order (last write first, then last reads by thread index), so
/// callers can reconstruct the sequential detector's exact race order.
#[derive(Debug, Default)]
pub struct AccessFrontier {
    vars: HashMap<VarId, VarState>,
    /// Scratch for the write-case frontier check: the last write plus
    /// every thread's last read, probed in one
    /// [`reachable_batch`](PartialOrderIndex::reachable_batch) call.
    probe_buf: Vec<(NodeId, NodeId)>,
    reach_buf: Vec<bool>,
}

impl AccessFrontier {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        AccessFrontier::default()
    }

    fn read_slot(st: &mut VarState, t: ThreadId) -> &mut Option<NodeId> {
        if t.index() >= st.last_read.len() {
            st.last_read.resize(t.index() + 1, None);
        }
        &mut st.last_read[t.index()]
    }

    /// Checks access `id` to `var` against the frontier over `po`,
    /// calling `report(probe_idx, src)` for every unordered conflicting
    /// source, then advances the frontier.
    pub fn on_access<P: PartialOrderIndex>(
        &mut self,
        po: &P,
        id: NodeId,
        var: VarId,
        is_write: bool,
        mut report: impl FnMut(usize, NodeId),
    ) {
        let st = self.vars.entry(var).or_insert_with(|| VarState {
            last_write: None,
            last_read: Vec::new(),
        });
        if !is_write {
            if let Some(w) = st.last_write {
                if w.thread != id.thread && !po.reachable(w, id) {
                    report(0, w);
                }
            }
            *Self::read_slot(st, id.thread) = Some(id);
            return;
        }
        // The write conflicts with the whole access frontier
        // (last write + last read of every thread); probe it in
        // one batched sweep so closure-based indexes amortize
        // the propagation from shared sources.
        self.probe_buf.clear();
        if let Some(w) = st.last_write {
            if w.thread != id.thread {
                self.probe_buf.push((w, id));
            }
        }
        for r in st.last_read.iter().flatten() {
            if r.thread != id.thread {
                self.probe_buf.push((*r, id));
            }
        }
        po.reachable_batch(&self.probe_buf, &mut self.reach_buf);
        for (i, (&(src, _), &ordered)) in self.probe_buf.iter().zip(&self.reach_buf).enumerate() {
            if !ordered {
                report(i, src);
            }
        }
        st.last_write = Some(id);
        st.last_read.clear();
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self
                .vars
                .values()
                .map(|st| {
                    size_of::<(VarId, VarState)>()
                        + st.last_read.capacity() * size_of::<Option<NodeId>>()
                })
                .sum::<usize>()
            + self.probe_buf.capacity() * size_of::<(NodeId, NodeId)>()
            + self.reach_buf.capacity()
    }
}

/// Online happens-before detector over a growable partial-order index.
///
/// See the [module docs](self) for the streaming/batch contrast; batch
/// [`detect`] is a thin wrapper feeding a recorded trace through this
/// type. Internally it composes the two reusable halves of the
/// analysis: a [`SyncTracker`] deriving synchronization edges and an
/// [`AccessFrontier`] probing conflicting accesses.
#[derive(Debug)]
pub struct HbDetector<P> {
    hb: P,
    sync: SyncTracker,
    frontier: AccessFrontier,
    races: Vec<(NodeId, NodeId)>,
    sync_edges: usize,
    edge_buf: Vec<(NodeId, NodeId)>,
}

impl<P: PartialOrderIndex> HbDetector<P> {
    /// The happens-before index built so far (for online ordering
    /// queries against the live detector — `csst-serve`'s degraded
    /// mode answers `ordered` queries from here).
    pub fn index(&self) -> &P {
        &self.hb
    }

    /// The races found so far.
    pub fn races(&self) -> &[(NodeId, NodeId)] {
        &self.races
    }

    /// Synchronization edges inserted so far.
    pub fn sync_edges(&self) -> usize {
        self.sync_edges
    }
}

impl<P: PartialOrderIndex> Analysis for HbDetector<P> {
    type Cfg = ();
    type Report = HbReport<P>;

    fn new(_cfg: ()) -> Self {
        HbDetector {
            hb: P::new(),
            sync: SyncTracker::new(),
            frontier: AccessFrontier::new(),
            races: Vec::new(),
            sync_edges: 0,
            edge_buf: Vec::new(),
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        self.edge_buf.clear();
        let id = self.sync.feed(thread, &event, &mut self.edge_buf);
        let appended = self.hb.append(thread);
        debug_assert_eq!(appended, id, "tracker and index disagree on ids");
        for &(src, dst) in &self.edge_buf {
            if self.hb.insert_edge_checked(src, dst).is_ok() {
                self.sync_edges += 1;
            }
        }
        match event {
            EventKind::Read { var, .. } | EventKind::Write { var, .. } => {
                let is_write = matches!(event, EventKind::Write { .. });
                let races = &mut self.races;
                self.frontier
                    .on_access(&self.hb, id, var, is_write, |_, src| {
                        races.push((src, id));
                    });
            }
            _ => {}
        }
    }

    fn finish(self) -> HbReport<P> {
        HbReport {
            hb: self.hb,
            races: self.races,
            sync_edges: self.sync_edges,
        }
    }
}

/// Processes the trace in order, building hb from lock and fork/join
/// synchronization and flagging unordered conflicting accesses: a thin
/// wrapper streaming the trace through [`HbDetector`].
pub fn detect<P: PartialOrderIndex>(trace: &Trace) -> HbReport<P> {
    HbDetector::<P>::run(trace, ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{racy_program, RacyProgramCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn lock_ordering_prevents_hb_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.on(0).acquire(m);
        b.on(0).write(x, 1);
        b.on(0).release(m);
        b.on(1).acquire(m);
        b.on(1).write(x, 2);
        b.on(1).release(m);
        let trace = b.build();
        let r = detect::<VectorClockIndex>(&trace);
        assert!(r.races.is_empty());
        assert_eq!(r.sync_edges, 1, "one release→acquire edge");
    }

    #[test]
    fn unordered_conflicts_are_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(1).read(x, 1);
        let trace = b.build();
        let r = detect::<VectorClockIndex>(&trace);
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn fork_join_synchronize() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(0).fork(1);
        b.on(1).write(x, 2);
        b.on(0).join(1);
        b.on(0).write(x, 3);
        let trace = b.build();
        let r = detect::<VectorClockIndex>(&trace);
        assert!(r.races.is_empty(), "{:?}", r.races);
        assert_eq!(r.sync_edges, 2);
    }

    #[test]
    fn detector_consumes_a_live_stream_without_a_trace() {
        // No Trace is ever built: events are fed as they "happen".
        use csst_trace::EventKind as K;
        let (x, m) = (VarId(0), LockId(0));
        let mut hb = HbDetector::<VectorClockIndex>::new(());
        hb.feed(ThreadId(0), K::Acquire { lock: m });
        hb.feed(ThreadId(0), K::Write { var: x, value: 1 });
        hb.feed(ThreadId(0), K::Release { lock: m });
        hb.feed(ThreadId(1), K::Acquire { lock: m });
        hb.feed(ThreadId(1), K::Write { var: x, value: 2 });
        // Unprotected third thread races with the protected writes.
        hb.feed(ThreadId(2), K::Write { var: x, value: 3 });
        hb.feed(ThreadId(1), K::Release { lock: m });
        let r = hb.finish();
        assert_eq!(r.sync_edges, 1);
        assert_eq!(r.races, vec![(NodeId::new(1, 1), NodeId::new(2, 0))]);
        assert_eq!(r.hb.chains(), 3, "the index grew with the stream");
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for seed in 0..3 {
            let trace = racy_program(&RacyProgramCfg {
                threads: 5,
                events_per_thread: 200,
                vars: 5,
                locks: 2,
                lock_frac: 0.6,
                shared_frac: 0.3,
                seed,
                ..Default::default()
            });
            let vc = detect::<VectorClockIndex>(&trace);
            let csst = detect::<IncrementalCsst>(&trace);
            let st = detect::<SegTreeIndex>(&trace);
            assert_eq!(vc.races, csst.races, "seed {seed}");
            assert_eq!(vc.races, st.races, "seed {seed}");
            assert_eq!(vc.sync_edges, csst.sync_edges);
            // Streaming HB finds races on these workloads (it checks
            // only adjacent conflicting pairs, but unprotected sharing
            // produces plenty).
            assert!(!vc.races.is_empty(), "seed {seed}: no HB races found");
        }
    }
}
