//! Streaming happens-before race detection (FastTrack-style).
//!
//! Not one of the paper's seven evaluated analyses, but its explicit
//! *counterpoint* (§1): "in the streaming setting, Vector Clocks are
//! arguably the best data structure to represent a partial order."
//! Here every ordering targets the event currently being processed —
//! release-to-acquire edges per lock, fork/join edges — so insertions
//! never propagate and `O(1)` VC queries shine.
//!
//! Running this module over the same traces as [`crate::race`] shows
//! the two regimes side by side: sound-but-incomplete streaming HB
//! detection (only races adjacent in the synchronization order) versus
//! predictive reordering with per-candidate closures.

use crate::common::index_for_trace;
use csst_core::{NodeId, PartialOrderIndex};
use csst_trace::{EventKind, LockId, Trace, VarId};
use std::collections::HashMap;

/// Result of a streaming HB pass.
#[derive(Debug, Clone)]
pub struct HbReport<P> {
    /// The final happens-before order.
    pub hb: P,
    /// HB-races: conflicting plain accesses unordered at detection
    /// time.
    pub races: Vec<(NodeId, NodeId)>,
    /// Synchronization edges inserted (all targeting the current
    /// event: the streaming pattern).
    pub sync_edges: usize,
}

/// Processes the trace in order, building hb from lock and fork/join
/// synchronization and flagging unordered conflicting accesses.
pub fn detect<P: PartialOrderIndex>(trace: &Trace) -> HbReport<P> {
    let mut hb: P = index_for_trace(trace);
    let k = trace.num_threads();
    let mut sync_edges = 0usize;

    let mut last_release: HashMap<LockId, NodeId> = HashMap::new();
    struct VarState {
        last_write: Option<NodeId>,
        last_read: Vec<Option<NodeId>>,
    }
    let mut vars: HashMap<VarId, VarState> = HashMap::new();
    let mut races = Vec::new();

    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Acquire { lock } => {
                if let Some(rel) = last_release.get(&lock) {
                    if rel.thread != id.thread && hb.insert_edge_checked(*rel, id).is_ok() {
                        sync_edges += 1;
                    }
                }
            }
            EventKind::Release { lock } => {
                last_release.insert(lock, id);
            }
            EventKind::Fork { child } if child != id.thread && trace.thread_len(child) > 0 => {
                let first = NodeId::new(child, 0);
                if hb.insert_edge_checked(id, first).is_ok() {
                    sync_edges += 1;
                }
            }
            EventKind::Join { child } => {
                let len = trace.thread_len(child);
                if child != id.thread && len > 0 {
                    let last = NodeId::new(child, (len - 1) as u32);
                    if hb.insert_edge_checked(last, id).is_ok() {
                        sync_edges += 1;
                    }
                }
            }
            EventKind::Read { var, .. } => {
                let st = vars.entry(var).or_insert_with(|| VarState {
                    last_write: None,
                    last_read: vec![None; k],
                });
                if let Some(w) = st.last_write {
                    if w.thread != id.thread && !hb.reachable(w, id) {
                        races.push((w, id));
                    }
                }
                st.last_read[id.thread.index()] = Some(id);
            }
            EventKind::Write { var, .. } => {
                let st = vars.entry(var).or_insert_with(|| VarState {
                    last_write: None,
                    last_read: vec![None; k],
                });
                if let Some(w) = st.last_write {
                    if w.thread != id.thread && !hb.reachable(w, id) {
                        races.push((w, id));
                    }
                }
                for r in st.last_read.iter().flatten() {
                    if r.thread != id.thread && !hb.reachable(*r, id) {
                        races.push((*r, id));
                    }
                }
                st.last_write = Some(id);
                st.last_read = vec![None; k];
            }
            _ => {}
        }
    }

    HbReport {
        hb,
        races,
        sync_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{racy_program, RacyProgramCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn lock_ordering_prevents_hb_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.on(0).acquire(m);
        b.on(0).write(x, 1);
        b.on(0).release(m);
        b.on(1).acquire(m);
        b.on(1).write(x, 2);
        b.on(1).release(m);
        let trace = b.build();
        let r = detect::<VectorClockIndex>(&trace);
        assert!(r.races.is_empty());
        assert_eq!(r.sync_edges, 1, "one release→acquire edge");
    }

    #[test]
    fn unordered_conflicts_are_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(1).read(x, 1);
        let trace = b.build();
        let r = detect::<VectorClockIndex>(&trace);
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn fork_join_synchronize() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(0).fork(1);
        b.on(1).write(x, 2);
        b.on(0).join(1);
        b.on(0).write(x, 3);
        let trace = b.build();
        let r = detect::<VectorClockIndex>(&trace);
        assert!(r.races.is_empty(), "{:?}", r.races);
        assert_eq!(r.sync_edges, 2);
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for seed in 0..3 {
            let trace = racy_program(&RacyProgramCfg {
                threads: 5,
                events_per_thread: 200,
                vars: 5,
                locks: 2,
                lock_frac: 0.6,
                shared_frac: 0.3,
                seed,
                ..Default::default()
            });
            let vc = detect::<VectorClockIndex>(&trace);
            let csst = detect::<IncrementalCsst>(&trace);
            let st = detect::<SegTreeIndex>(&trace);
            assert_eq!(vc.races, csst.races, "seed {seed}");
            assert_eq!(vc.races, st.races, "seed {seed}");
            assert_eq!(vc.sync_edges, csst.sync_edges);
            // Streaming HB finds races on these workloads (it checks
            // only adjacent conflicting pairs, but unprotected sharing
            // produces plenty).
            assert!(!vc.races.is_empty(), "seed {seed}: no HB races found");
        }
    }
}
