//! # csst-analyses — dynamic concurrency analyses over pluggable
//! partial-order indexes
//!
//! The CSSTs paper (§5) evaluates its data structure inside seven
//! published dynamic analyses. This crate reimplements the
//! *partial-order cores* of those analyses — the exact mix of
//! `insertEdge` / `deleteEdge` / `reachable` / `successor` /
//! `predecessor` operations each analysis issues — generically over
//! [`csst_core::PartialOrderIndex`], so that every analysis can run on
//! CSSTs, segment trees, vector clocks, or plain graphs, exactly like
//! the paper's Tables 1–7:
//!
//! | module | analysis | paper table | streaming form |
//! |---|---|---|---|
//! | [`race`] | M2-style data race prediction | Table 1 | online base, windowable |
//! | [`deadlock`] | SeqCheck-style deadlock prediction | Table 2 | online base, windowable |
//! | [`membug`] | ConVulPOE-style memory-bug prediction | Table 3 | online base, windowable |
//! | [`tso`] | x86-TSO consistency checking (Roy et al.) | Table 4 | online base, windowable |
//! | [`uaf`] | UFO-style use-after-free query generation | Table 5 | online base, windowable |
//! | [`c11`] | C11Tester-style race detection | Table 6 | genuinely online |
//! | [`linearizability`] | root-causing linearizability violations | Table 7 | online base, windowable |
//!
//! [`hb`] adds the paper's streaming *counterpoint* (FastTrack-style
//! happens-before detection), where vector clocks are the right tool.
//!
//! Every analysis implements the unified streaming [`Analysis`] trait
//! (`feed` one event at a time, `finish` for the report); the batch
//! entry points are thin wrappers over it. The predictive analyses
//! build their **base order** incrementally inside `feed` through the
//! shared [`BaseOrderBuilder`], and accept a `window` in their
//! configuration that bounds buffered events to tumbling windows whose
//! retirement deletes the window's edges (the CSST deletion path) —
//! see the [`Analysis`] docs for the windowing soundness contract. The
//! [`registry`] maps analysis names to runnable entries so front ends
//! select analyses (and windows) by string instead of hard-coded match
//! arms.
//!
//! The shared [`saturation`] engine implements the ordering-inference
//! rules (reads-from maximality and lock mutual exclusion) used by the
//! predictive analyses — the "saturation" process of the paper's §1.1
//! motivating example.
//!
//! ## Example
//!
//! ```
//! use csst_analyses::race::{self, RaceCfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::gen::{racy_program, RacyProgramCfg};
//!
//! let trace = racy_program(&RacyProgramCfg::default());
//! let report = race::predict::<IncrementalCsst>(&trace, &RaceCfg::default());
//! println!("{} candidate pairs, {} races", report.candidates, report.races.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod c11;
pub mod common;
pub mod deadlock;
pub mod hb;
pub mod linearizability;
pub mod membug;
pub mod race;
pub mod registry;
pub mod saturation;
pub mod tso;
pub mod uaf;

pub use analysis::Analysis;
pub use common::{
    BaseOrderBuilder, CountingIndex, OpCounters, OrderOutcome, WindowIndex, WindowStats,
};
