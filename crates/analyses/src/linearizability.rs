//! Root-causing linearizability violations (Table 7).
//!
//! The analysis of \[Çirisci et al. 2020\] takes a violating history of
//! a concurrent object and searches for the root cause by exploring
//! linearizations: operations are committed one at a time against the
//! sequential specification, each commitment inserting ordering edges;
//! dead ends *delete* those edges and backtrack.
//!
//! This is the paper's only fully dynamic workload — both incremental
//! and decremental updates — so vector clocks and the incremental
//! structures are out, and the baseline is a plain graph (the
//! representation used by the original tool). Table 7 shows CSSTs
//! beating it by orders of magnitude as histories grow.
//!
//! **Classification:** predictive. *Detects* non-linearizable
//! histories of a concurrent set and root-causes them. *Base order:*
//! the op-level real-time order, built online as operations complete.
//! *Buffering:* completed operations until the backtracking search at
//! `finish`, or **windowed** via [`LinCfg::window`] (the witnessed
//! specification state carries across windows).
//!
//! ```
//! use csst_analyses::linearizability::{self, LinCfg, LinVerdict};
//! use csst_core::Csst;
//! use csst_trace::{Method, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let (_, add) = b.on(0).invoke(Method::Add, 5);
//! b.on(0).respond(add, 1);
//! let (_, has) = b.on(1).invoke(Method::Contains, 5);
//! b.on(1).respond(has, 1);
//! let report = linearizability::analyze::<Csst>(&b.build(), &LinCfg::default());
//! assert!(matches!(report.verdict, LinVerdict::Linearizable(_)));
//! ```

use crate::common::{BaseOrderBuilder, WindowStats};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Method, OpId, Trace};
use std::collections::{HashMap, HashSet};

/// One operation interval of the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// The operation instance id.
    pub op: OpId,
    /// The method.
    pub method: Method,
    /// The argument.
    pub arg: u64,
    /// The recorded result.
    pub result: u64,
    /// Invocation event in the trace.
    pub invoke: NodeId,
    /// Response event in the trace.
    pub response: NodeId,
    /// The operation's node in the op-level chain DAG: chain = thread,
    /// position = index among the thread's operations.
    pub node: NodeId,
}

/// Configuration of [`analyze`].
#[derive(Debug, Clone)]
pub struct LinCfg {
    /// Abort the search after this many committed steps (safety valve
    /// for adversarial histories; shared across windows).
    pub max_steps: u64,
    /// Tumbling-window size bounding the buffered operations: every
    /// `n` events the completed operations are searched and retired,
    /// carrying the witnessed specification state into the next window.
    /// An operation belongs to the window of its *response* — an
    /// invocation interval may span boundaries, in which case the
    /// real-time edges from retired operations are dropped (they are
    /// satisfied by the window concatenation anyway). `None` searches
    /// the whole history at once. See the [`Analysis`] soundness
    /// contract.
    pub window: Option<usize>,
}

impl Default for LinCfg {
    fn default() -> Self {
        LinCfg {
            max_steps: 2_000_000,
            window: None,
        }
    }
}

/// Verdict of the linearizability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinVerdict {
    /// A legal linearization exists (op ids in order).
    Linearizable(Vec<OpId>),
    /// No linearization exists; the root cause is reported as the
    /// frontier at the deepest point of the search.
    Violation(RootCause),
    /// The step budget was exhausted.
    Unknown,
}

/// The deepest failure the search encountered: after linearizing
/// `executed` operations, none of `blocked` could be committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootCause {
    /// Length of the longest legal linearization prefix found.
    pub executed: usize,
    /// The frontier operations that all failed the specification at
    /// that point.
    pub blocked: Vec<OpId>,
}

/// Result of [`analyze`], with the op mix the search issued.
#[derive(Debug, Clone)]
pub struct LinReport<P> {
    /// The partial order at the end of the search.
    pub po: P,
    /// The verdict.
    pub verdict: LinVerdict,
    /// Committed search steps (each inserts frontier edges).
    pub steps: u64,
    /// Backtracks (each deletes the edges of the undone step).
    pub backtracks: u64,
    /// Edges inserted over the search.
    pub inserted: u64,
    /// Edges deleted over the search.
    pub deleted: u64,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Extracts the per-thread operation sequences of a history trace.
pub fn operations(trace: &Trace) -> Vec<Operation> {
    let mut pending: std::collections::HashMap<OpId, (NodeId, Method, u64)> =
        std::collections::HashMap::new();
    let mut per_thread_count = vec![0u32; trace.num_threads()];
    let mut ops = Vec::new();
    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Invoke { op, method, arg } => {
                pending.insert(op, (id, method, arg));
            }
            EventKind::Response { op, result } => {
                // A response without a matching invoke (e.g. an
                // operation cut in half by a window boundary) is
                // skipped: only complete operations participate.
                let Some((invoke, method, arg)) = pending.remove(&op) else {
                    continue;
                };
                let t = invoke.thread;
                let node = NodeId::new(t, per_thread_count[t.index()]);
                per_thread_count[t.index()] += 1;
                ops.push(Operation {
                    op,
                    method,
                    arg,
                    result,
                    invoke,
                    response: id,
                    node,
                });
            }
            _ => {}
        }
    }
    ops
}

/// One completed operation with its global response arrival position
/// (what real-time edge construction compares invocations against).
#[derive(Debug, Clone, Copy)]
struct CompletedOp {
    op: Operation,
    resp_pos: u64,
}

/// Streaming form of [`analyze`]: the real-time base order grows inside
/// `feed` as operations complete; the backtracking search runs over the
/// buffered operations at `finish` — or per window when
/// [`LinCfg::window`] bounds the buffer, carrying the witnessed
/// specification state from one window into the next.
#[derive(Debug)]
pub struct LinAnalyzer<P> {
    cfg: LinCfg,
    builder: BaseOrderBuilder<P>,
    /// Global arrival counter (the trace position of batch runs).
    arrival: u64,
    /// Invoked but not yet responded operations.
    pending: HashMap<OpId, (NodeId, u64, Method, u64)>,
    /// Completed operations of the current window.
    ops: Vec<CompletedOp>,
    /// Indices into `ops` per thread, in completion order.
    per_thread: Vec<Vec<usize>>,
    /// Retired operations per thread: the op-level node of the next
    /// completion of thread `t` is `⟨t, op_base[t] + window ops⟩`.
    op_base: Vec<u32>,
    /// Specification state carried across windows (the set contents
    /// along the committed linearization witness).
    set: HashSet<u64>,
    /// Sticky verdict: the first violation (or budget exhaustion) ends
    /// the analysis — later windows' initial state is unknown.
    verdict: Option<LinVerdict>,
    /// Concatenated linearization witness across windows.
    lin_order: Vec<OpId>,
    steps: u64,
    backtracks: u64,
    inserted: u64,
    deleted: u64,
}
impl<P: PartialOrderIndex> LinAnalyzer<P> {
    /// Runs the backtracking search over the current window's completed
    /// operations, continuing from the carried specification state.
    fn search_window(&mut self) {
        if self.verdict.is_some() || self.ops.is_empty() {
            return;
        }
        let k = self.per_thread.len();
        let ops = &self.ops;
        let per_thread = &self.per_thread;
        let op_base = &self.op_base;
        let po = self.builder.po_mut();
        let set = &mut self.set;
        // Window-local cursors: committed operations per thread.
        let mut cursor = vec![0usize; k];
        let mut executed = 0usize;
        let total = ops.len();

        // Per depth: (op chosen, tried-set, edges inserted, spec-undo).
        struct Frame {
            candidates: Vec<usize>, // op indices still to try
            committed: Option<Committed>,
            /// Memoization key of the state this frame explores:
            /// (per-thread cursors, sorted set contents). Sound because
            /// committed frontier edges always originate from already
            /// executed operations and thus never block future
            /// candidates — the remaining search depends only on this
            /// key.
            key: (Vec<usize>, Vec<u64>),
        }
        struct Committed {
            op_idx: usize,
            edges: Vec<(NodeId, NodeId)>,
            set_delta: SetDelta,
        }
        #[derive(Clone, Copy)]
        enum SetDelta {
            None,
            Added(u64),
            Removed(u64),
        }
        let mut best_executed = 0usize;
        let mut best_blocked: Vec<OpId> = Vec::new();

        // Enumerate current frontier candidates (per-thread cursor ops
        // with all cross-thread predecessors executed). Predecessor
        // positions are global op positions, hence the `op_base`
        // offsets.
        let frontier = |po: &P, cursor: &[usize]| {
            let mut c = Vec::new();
            #[allow(clippy::needless_range_loop)] // t indexes three tables at once
            for t in 0..k {
                let Some(&i) = per_thread[t].get(cursor[t]) else {
                    continue;
                };
                let node = ops[i].op.node;
                let mut ready = true;
                #[allow(clippy::needless_range_loop)] // t2 indexes cursor and op_base
                for t2 in 0..k {
                    if t2 == t {
                        continue;
                    }
                    if let Some(p) = po.predecessor(node, ThreadId(t2 as u32)) {
                        if p as usize >= op_base[t2] as usize + cursor[t2] {
                            ready = false;
                            break;
                        }
                    }
                }
                if ready {
                    c.push(i);
                }
            }
            c
        };

        let state_key = |cursor: &[usize], set: &HashSet<u64>| -> (Vec<usize>, Vec<u64>) {
            let mut s: Vec<u64> = set.iter().copied().collect();
            s.sort_unstable();
            (cursor.to_vec(), s)
        };
        // States whose entire subtree was explored without success.
        let mut dead: HashSet<(Vec<usize>, Vec<u64>)> = HashSet::new();

        let mut stack: Vec<Frame> = vec![Frame {
            candidates: frontier(po, &cursor),
            committed: None,
            key: state_key(&cursor, set),
        }];

        let verdict = loop {
            if self.steps >= self.cfg.max_steps {
                break LinVerdict::Unknown;
            }
            let Some(frame) = stack.last_mut() else {
                // Root exhausted: violation.
                break LinVerdict::Violation(RootCause {
                    executed: best_executed,
                    blocked: best_blocked.clone(),
                });
            };
            // Undo the previous commitment at this frame, if any.
            if let Some(c) = frame.committed.take() {
                let op = &ops[c.op_idx].op;
                let t = op.node.thread.index();
                cursor[t] -= 1;
                executed -= 1;
                match c.set_delta {
                    SetDelta::None => {}
                    SetDelta::Added(v) => {
                        set.remove(&v);
                    }
                    SetDelta::Removed(v) => {
                        set.insert(v);
                    }
                }
                for (u, v) in c.edges.iter().rev() {
                    po.delete_edge(*u, *v).expect("undo of inserted edge");
                    self.deleted += 1;
                }
            }
            // Try the next candidate.
            let Some(op_idx) = frame.candidates.pop() else {
                let exhausted = stack.pop().expect("frame exists");
                dead.insert(exhausted.key);
                self.backtracks += 1;
                continue;
            };
            let op = ops[op_idx].op;
            // Specification check.
            let (applies, set_delta) = match op.method {
                Method::Add => {
                    let fresh = !set.contains(&op.arg);
                    if (fresh as u64) == op.result {
                        if fresh {
                            set.insert(op.arg);
                            (true, SetDelta::Added(op.arg))
                        } else {
                            (true, SetDelta::None)
                        }
                    } else {
                        (false, SetDelta::None)
                    }
                }
                Method::Remove => {
                    let present = set.contains(&op.arg);
                    if (present as u64) == op.result {
                        if present {
                            set.remove(&op.arg);
                            (true, SetDelta::Removed(op.arg))
                        } else {
                            (true, SetDelta::None)
                        }
                    } else {
                        (false, SetDelta::None)
                    }
                }
                Method::Contains => (set.contains(&op.arg) as u64 == op.result, SetDelta::None),
            };
            if !applies {
                continue;
            }
            // Commit: the chosen op precedes every other thread's
            // frontier.
            self.steps += 1;
            let t = op.node.thread.index();
            let mut edges = Vec::new();
            for t2 in 0..k {
                if t2 == t {
                    continue;
                }
                let Some(&j) = per_thread[t2].get(cursor[t2]) else {
                    continue;
                };
                let next = ops[j].op.node;
                if !po.reachable(op.node, next) {
                    po.insert_edge(op.node, next)
                        .expect("frontier edge is valid");
                    self.inserted += 1;
                    edges.push((op.node, next));
                }
            }
            cursor[t] += 1;
            executed += 1;
            if executed > best_executed {
                best_executed = executed;
                best_blocked.clear();
            }
            stack.last_mut().expect("frame exists").committed = Some(Committed {
                op_idx,
                edges,
                set_delta,
            });
            if executed == total {
                // Reconstruct the linearization from the stack.
                let order: Vec<OpId> = stack
                    .iter()
                    .filter_map(|f| f.committed.as_ref())
                    .map(|c| ops[c.op_idx].op.op)
                    .collect();
                self.lin_order.extend(order);
                // In windowed runs the committed frontier edges must
                // not outlive the window: the search owns them, so it
                // removes them before retirement.
                if self.cfg.window.is_some() {
                    for f in stack.iter().rev() {
                        if let Some(c) = f.committed.as_ref() {
                            for (u, v) in c.edges.iter().rev() {
                                po.delete_edge(*u, *v).expect("undo of committed edge");
                                self.deleted += 1;
                            }
                        }
                    }
                }
                return;
            }
            let key = state_key(&cursor, set);
            let next_candidates = if dead.contains(&key) {
                Vec::new() // already proven fruitless: force a backtrack
            } else {
                frontier(po, &cursor)
            };
            if executed == best_executed {
                // Record the blocked frontier at the deepest point.
                best_blocked = (0..k)
                    .filter_map(|t2| per_thread[t2].get(cursor[t2]))
                    .map(|&j| ops[j].op.op)
                    .collect();
            }
            stack.push(Frame {
                candidates: next_candidates,
                committed: None,
                key,
            });
        };
        // A Violation exits with an empty, fully unwound stack, but a
        // budget-exhausted search (Unknown) breaks mid-descent with its
        // committed frontier edges still in the index. Mirror the
        // success path: in windowed runs, search edges must not outlive
        // the window.
        if self.cfg.window.is_some() {
            for f in stack.iter().rev() {
                if let Some(c) = f.committed.as_ref() {
                    for (u, v) in c.edges.iter().rev() {
                        po.delete_edge(*u, *v).expect("undo of committed edge");
                        self.deleted += 1;
                    }
                }
            }
        }
        self.verdict = Some(verdict);
    }

    /// Retires the searched window: deletes the logged real-time edges
    /// and advances the per-thread operation offsets.
    fn retire(&mut self) {
        self.builder.retire_window();
        for (t, list) in self.per_thread.iter_mut().enumerate() {
            self.op_base[t] += list.len() as u32;
            list.clear();
        }
        self.ops.clear();
    }
}

impl<P: PartialOrderIndex> Analysis for LinAnalyzer<P> {
    type Cfg = LinCfg;
    type Report = LinReport<P>;

    fn new(cfg: Self::Cfg) -> Self {
        let builder: BaseOrderBuilder<P> = BaseOrderBuilder::counting(cfg.window);
        assert!(
            builder.po().supports_deletion(),
            "linearizability root-causing needs a fully dynamic index"
        );
        LinAnalyzer {
            builder,
            cfg,
            arrival: 0,
            pending: HashMap::new(),
            ops: Vec::new(),
            per_thread: Vec::new(),
            op_base: Vec::new(),
            set: HashSet::new(),
            verdict: None,
            lin_order: Vec::new(),
            steps: 0,
            backtracks: 0,
            inserted: 0,
            deleted: 0,
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        let id = self.builder.feed(thread, event);
        let pos = self.arrival;
        self.arrival += 1;
        match event {
            EventKind::Invoke { op, method, arg } => {
                self.pending.insert(op, (id, pos, method, arg));
            }
            EventKind::Response { op, result } => {
                // An operation belongs to the window of its *response*;
                // `pending` survives retirement, so an op whose invoke
                // fell into an earlier window still completes here
                // (dropping it would corrupt the carried specification
                // state). Responses with no invoke at all are skipped.
                if let Some((invoke, invoke_pos, method, arg)) = self.pending.remove(&op) {
                    self.complete(op, method, arg, result, invoke, invoke_pos, id, pos);
                }
            }
            _ => {}
        }
        if self.builder.window_full() {
            self.search_window();
            self.retire();
        }
    }

    fn finish(mut self) -> LinReport<P> {
        self.search_window();
        let verdict = self
            .verdict
            .unwrap_or(LinVerdict::Linearizable(self.lin_order));
        LinReport {
            verdict,
            steps: self.steps,
            backtracks: self.backtracks,
            inserted: self.inserted,
            deleted: self.deleted,
            window: self.builder.stats(),
            po: self.builder.into_po(),
        }
    }
}

impl<P: PartialOrderIndex> LinAnalyzer<P> {
    /// Completes an operation: assigns its op-level node, inserts its
    /// real-time edges into the base order (the incremental part of the
    /// analysis) and buffers it for the window's search.
    #[allow(clippy::too_many_arguments)] // one call site, plain data
    fn complete(
        &mut self,
        op: OpId,
        method: Method,
        arg: u64,
        result: u64,
        invoke: NodeId,
        invoke_pos: u64,
        response: NodeId,
        resp_pos: u64,
    ) {
        let t = invoke.thread;
        if t.index() >= self.per_thread.len() {
            self.per_thread.resize(t.index() + 1, Vec::new());
            self.op_base.resize(t.index() + 1, 0);
        }
        let node = NodeId::new(
            t,
            self.op_base[t.index()] + self.per_thread[t.index()].len() as u32,
        );
        // Real-time order: one edge from the latest op of every other
        // thread that responded before this op invoked (earlier ones
        // follow transitively through the chain). Operations of retired
        // windows are already ordered before this one by construction.
        // All edges target `node` — a freshly minted op with no
        // outgoing order — so redundancy is checked against the current
        // order plus the batch itself (exactly what inserting one at a
        // time would see) and the survivors go in as one batch.
        let mut batch: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.per_thread.len());
        for t2 in 0..self.per_thread.len() {
            if t2 == t.index() {
                continue;
            }
            let list = &self.per_thread[t2];
            let i = list.partition_point(|&j| self.ops[j].resp_pos < invoke_pos);
            if i > 0 {
                let prev = self.ops[list[i - 1]].op.node;
                let ordered = self.builder.po().reachable(prev, node)
                    || batch
                        .iter()
                        .any(|&(p, _)| self.builder.po().reachable(prev, p));
                if !ordered {
                    batch.push((prev, node));
                }
            }
        }
        if !batch.is_empty() {
            self.inserted += batch.len() as u64;
            self.builder
                .insert_batch_logged(&batch)
                .expect("real-time edges are acyclic");
        }
        let idx = self.ops.len();
        self.ops.push(CompletedOp {
            op: Operation {
                op,
                method,
                arg,
                result,
                invoke,
                response,
                node,
            },
            resp_pos,
        });
        self.per_thread[t.index()].push(idx);
        self.builder.note_buffered(self.ops.len());
    }
}

/// Runs the root-cause analysis over a history trace using the fully
/// dynamic representation `P` (must support deletion): a thin wrapper
/// streaming the trace through [`LinAnalyzer`].
///
/// # Panics
///
/// Panics if `P` does not support deletion.
pub fn analyze<P: PartialOrderIndex>(trace: &Trace, cfg: &LinCfg) -> LinReport<P> {
    LinAnalyzer::<P>::run(trace, cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{Csst, GraphIndex};
    use csst_trace::gen::{object_history, ObjectHistoryCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn sequential_history_linearizes() {
        let mut b = TraceBuilder::new();
        let (_, op1) = b.on(0).invoke(Method::Add, 5);
        b.on(0).respond(op1, 1);
        let (_, op2) = b.on(0).invoke(Method::Contains, 5);
        b.on(0).respond(op2, 1);
        let (_, op3) = b.on(0).invoke(Method::Remove, 5);
        b.on(0).respond(op3, 1);
        let trace = b.build();
        let r = analyze::<Csst>(&trace, &LinCfg::default());
        assert!(matches!(r.verdict, LinVerdict::Linearizable(_)));
    }

    #[test]
    fn concurrent_history_linearizes_out_of_real_time_order() {
        // T0: add(1) → true   overlapping   T1: contains(1) → true.
        // Only the order add < contains explains the results.
        let mut b = TraceBuilder::new();
        let (_, op_c) = b.on(1).invoke(Method::Contains, 1);
        let (_, op_a) = b.on(0).invoke(Method::Add, 1);
        b.on(0).respond(op_a, 1);
        b.on(1).respond(op_c, 1);
        let trace = b.build();
        let r = analyze::<Csst>(&trace, &LinCfg::default());
        match r.verdict {
            LinVerdict::Linearizable(order) => {
                let pa = order.iter().position(|&o| o == op_a).unwrap();
                let pc = order.iter().position(|&o| o == op_c).unwrap();
                assert!(pa < pc, "add must linearize before contains");
            }
            v => panic!("expected linearizable, got {v:?}"),
        }
    }

    #[test]
    fn real_time_violation_detected() {
        // contains(1) → true completes strictly BEFORE add(1) → true
        // begins: no linearization.
        let mut b = TraceBuilder::new();
        let (_, op_c) = b.on(1).invoke(Method::Contains, 1);
        b.on(1).respond(op_c, 1);
        let (_, op_a) = b.on(0).invoke(Method::Add, 1);
        b.on(0).respond(op_a, 1);
        let trace = b.build();
        let r = analyze::<Csst>(&trace, &LinCfg::default());
        assert!(
            matches!(r.verdict, LinVerdict::Violation(_)),
            "{:?}",
            r.verdict
        );
        assert!(r.backtracks > 0 || r.steps > 0);
    }

    #[test]
    fn generated_clean_histories_linearize() {
        for seed in 0..4 {
            let trace = object_history(&ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 15,
                seed,
                ..Default::default()
            });
            let r = analyze::<Csst>(&trace, &LinCfg::default());
            assert!(
                matches!(r.verdict, LinVerdict::Linearizable(_)),
                "seed {seed}: {:?}",
                r.verdict
            );
        }
    }

    #[test]
    fn injected_violations_are_detected() {
        let mut found = 0;
        let mut total_deleted = 0;
        for seed in 0..6 {
            let trace = object_history(&ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 12,
                key_range: 4,
                violation: true,
                seed,
            });
            let r = analyze::<Csst>(&trace, &LinCfg::default());
            match r.verdict {
                LinVerdict::Violation(rc) => {
                    found += 1;
                    total_deleted += r.deleted;
                    assert!(rc.executed < operations(&trace).len());
                }
                LinVerdict::Linearizable(_) => {
                    // A flipped result can occasionally still be
                    // explainable; that is fine for some seeds.
                }
                LinVerdict::Unknown => panic!("budget exhausted on tiny history"),
            }
        }
        assert!(found >= 3, "most corrupted histories must be violations");
        assert!(
            total_deleted > 0,
            "backtracking across the violating seeds must delete edges"
        );
    }

    #[test]
    fn graph_and_csst_agree() {
        for seed in 0..4 {
            let trace = object_history(&ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 10,
                key_range: 3,
                violation: seed % 2 == 0,
                seed,
            });
            let cfg = LinCfg::default();
            let a = analyze::<Csst>(&trace, &cfg);
            let b = analyze::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.verdict, b.verdict, "seed {seed}");
            assert_eq!(a.steps, b.steps, "identical search paths");
            assert_eq!(a.inserted, b.inserted);
            assert_eq!(a.deleted, b.deleted);
        }
    }

    #[test]
    #[should_panic(expected = "fully dynamic")]
    fn incremental_index_rejected() {
        let trace = object_history(&ObjectHistoryCfg::default());
        let _ = analyze::<csst_core::IncrementalCsst>(&trace, &LinCfg::default());
    }
}
