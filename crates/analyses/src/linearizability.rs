//! Root-causing linearizability violations (Table 7).
//!
//! The analysis of \[Çirisci et al. 2020\] takes a violating history of
//! a concurrent object and searches for the root cause by exploring
//! linearizations: operations are committed one at a time against the
//! sequential specification, each commitment inserting ordering edges;
//! dead ends *delete* those edges and backtrack.
//!
//! This is the paper's only fully dynamic workload — both incremental
//! and decremental updates — so vector clocks and the incremental
//! structures are out, and the baseline is a plain graph (the
//! representation used by the original tool). Table 7 shows CSSTs
//! beating it by orders of magnitude as histories grow.

use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Method, OpId, Trace};
use std::collections::HashSet;

/// One operation interval of the history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// The operation instance id.
    pub op: OpId,
    /// The method.
    pub method: Method,
    /// The argument.
    pub arg: u64,
    /// The recorded result.
    pub result: u64,
    /// Invocation event in the trace.
    pub invoke: NodeId,
    /// Response event in the trace.
    pub response: NodeId,
    /// The operation's node in the op-level chain DAG: chain = thread,
    /// position = index among the thread's operations.
    pub node: NodeId,
}

/// Configuration of [`analyze`].
#[derive(Debug, Clone)]
pub struct LinCfg {
    /// Abort the search after this many committed steps (safety valve
    /// for adversarial histories).
    pub max_steps: u64,
}

impl Default for LinCfg {
    fn default() -> Self {
        LinCfg {
            max_steps: 2_000_000,
        }
    }
}

/// Verdict of the linearizability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinVerdict {
    /// A legal linearization exists (op ids in order).
    Linearizable(Vec<OpId>),
    /// No linearization exists; the root cause is reported as the
    /// frontier at the deepest point of the search.
    Violation(RootCause),
    /// The step budget was exhausted.
    Unknown,
}

/// The deepest failure the search encountered: after linearizing
/// `executed` operations, none of `blocked` could be committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootCause {
    /// Length of the longest legal linearization prefix found.
    pub executed: usize,
    /// The frontier operations that all failed the specification at
    /// that point.
    pub blocked: Vec<OpId>,
}

/// Result of [`analyze`], with the op mix the search issued.
#[derive(Debug, Clone)]
pub struct LinReport<P> {
    /// The partial order at the end of the search.
    pub po: P,
    /// The verdict.
    pub verdict: LinVerdict,
    /// Committed search steps (each inserts frontier edges).
    pub steps: u64,
    /// Backtracks (each deletes the edges of the undone step).
    pub backtracks: u64,
    /// Edges inserted over the search.
    pub inserted: u64,
    /// Edges deleted over the search.
    pub deleted: u64,
}

/// Extracts the per-thread operation sequences of a history trace.
pub fn operations(trace: &Trace) -> Vec<Operation> {
    let mut pending: std::collections::HashMap<OpId, (NodeId, Method, u64)> =
        std::collections::HashMap::new();
    let mut per_thread_count = vec![0u32; trace.num_threads()];
    let mut ops = Vec::new();
    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Invoke { op, method, arg } => {
                pending.insert(op, (id, method, arg));
            }
            EventKind::Response { op, result } => {
                let (invoke, method, arg) = pending
                    .remove(&op)
                    .expect("response without matching invoke");
                let t = invoke.thread;
                let node = NodeId::new(t, per_thread_count[t.index()]);
                per_thread_count[t.index()] += 1;
                ops.push(Operation {
                    op,
                    method,
                    arg,
                    result,
                    invoke,
                    response: id,
                    node,
                });
            }
            _ => {}
        }
    }
    ops
}

crate::analysis::buffered_analysis! {
    /// Streaming form of [`analyze`]: buffers the history and runs the
    /// backtracking search at `finish` (the search explores
    /// linearizations of the complete history).
    LinAnalyzer { cfg: LinCfg, report: LinReport<P>, batch: analyze_buffered }
}

/// Runs the root-cause analysis over a history trace using the fully
/// dynamic representation `P` (must support deletion): a thin wrapper
/// streaming the trace through [`LinAnalyzer`].
///
/// # Panics
///
/// Panics if `P` does not support deletion.
pub fn analyze<P: PartialOrderIndex>(trace: &Trace, cfg: &LinCfg) -> LinReport<P> {
    use crate::Analysis;
    LinAnalyzer::<P>::run(trace, cfg.clone())
}

fn analyze_buffered<P: PartialOrderIndex>(trace: &Trace, cfg: &LinCfg) -> LinReport<P> {
    let ops = operations(trace);
    let k = trace.num_threads().max(1);
    let mut per_thread: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, op) in ops.iter().enumerate() {
        per_thread[op.node.thread.index()].push(i);
    }
    let cap = per_thread.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let mut po = P::with_capacity(k, cap);
    assert!(
        po.supports_deletion(),
        "linearizability root-causing needs a fully dynamic index"
    );

    let mut inserted = 0u64;
    // Real-time order: for each op, one edge from the latest op of
    // every other thread that responded before this op invoked
    // (earlier ones follow transitively through the chain).
    for op in &ops {
        #[allow(clippy::needless_range_loop)] // t is also a chain id
        for t in 0..k {
            if ThreadId(t as u32) == op.node.thread {
                continue;
            }
            let latest = per_thread[t]
                .iter()
                .map(|&j| &ops[j])
                .take_while(|o| trace.trace_pos(o.response) < trace.trace_pos(op.invoke))
                .last();
            if let Some(prev) = latest {
                if !po.reachable(prev.node, op.node) {
                    po.insert_edge(prev.node, op.node)
                        .expect("real-time edges are acyclic");
                    inserted += 1;
                }
            }
        }
    }

    // Backtracking search state.
    let mut set: HashSet<u64> = HashSet::new();
    let mut cursor = vec![0usize; k]; // next op index per thread
    let mut executed = 0usize;
    let total = ops.len();
    let mut steps = 0u64;
    let mut backtracks = 0u64;
    let mut deleted = 0u64;
    // Per depth: (thread chosen, tried-set, edges inserted, spec-undo).
    struct Frame {
        candidates: Vec<usize>, // op indices still to try
        committed: Option<Committed>,
        /// Memoization key of the state this frame explores:
        /// (per-thread cursors, sorted set contents). Sound because
        /// committed frontier edges always originate from already
        /// executed operations and thus never block future candidates
        /// — the remaining search depends only on this key.
        key: (Vec<usize>, Vec<u64>),
    }
    struct Committed {
        op_idx: usize,
        edges: Vec<(NodeId, NodeId)>,
        set_delta: SetDelta,
    }
    #[derive(Clone, Copy)]
    enum SetDelta {
        None,
        Added(u64),
        Removed(u64),
    }
    let mut best_executed = 0usize;
    let mut best_blocked: Vec<OpId> = Vec::new();

    // Enumerate current frontier candidates (per-thread cursor ops with
    // all cross-thread predecessors executed).
    let frontier = |po: &P, cursor: &[usize], ops: &[Operation], per_thread: &[Vec<usize>]| {
        let mut c = Vec::new();
        #[allow(clippy::needless_range_loop)] // t indexes three tables at once
        for t in 0..k {
            let Some(&i) = per_thread[t].get(cursor[t]) else {
                continue;
            };
            let node = ops[i].node;
            let mut ready = true;
            #[allow(clippy::needless_range_loop)] // t2 indexes cursor and per_thread
            for t2 in 0..k {
                if t2 == t {
                    continue;
                }
                if let Some(p) = po.predecessor(node, ThreadId(t2 as u32)) {
                    if p as usize >= cursor[t2] {
                        ready = false;
                        break;
                    }
                }
            }
            if ready {
                c.push(i);
            }
        }
        c
    };

    let state_key = |cursor: &[usize], set: &HashSet<u64>| -> (Vec<usize>, Vec<u64>) {
        let mut s: Vec<u64> = set.iter().copied().collect();
        s.sort_unstable();
        (cursor.to_vec(), s)
    };
    // States whose entire subtree was explored without success.
    let mut dead: HashSet<(Vec<usize>, Vec<u64>)> = HashSet::new();

    let mut stack: Vec<Frame> = vec![Frame {
        candidates: frontier(&po, &cursor, &ops, &per_thread),
        committed: None,
        key: state_key(&cursor, &set),
    }];

    let verdict = loop {
        if steps >= cfg.max_steps {
            break LinVerdict::Unknown;
        }
        let Some(frame) = stack.last_mut() else {
            // Root exhausted: violation.
            break LinVerdict::Violation(RootCause {
                executed: best_executed,
                blocked: best_blocked.clone(),
            });
        };
        // Undo the previous commitment at this frame, if any.
        if let Some(c) = frame.committed.take() {
            let op = &ops[c.op_idx];
            let t = op.node.thread.index();
            cursor[t] -= 1;
            executed -= 1;
            match c.set_delta {
                SetDelta::None => {}
                SetDelta::Added(v) => {
                    set.remove(&v);
                }
                SetDelta::Removed(v) => {
                    set.insert(v);
                }
            }
            for (u, v) in c.edges.iter().rev() {
                po.delete_edge(*u, *v).expect("undo of inserted edge");
                deleted += 1;
            }
        }
        // Try the next candidate.
        let Some(op_idx) = frame.candidates.pop() else {
            let exhausted = stack.pop().expect("frame exists");
            dead.insert(exhausted.key);
            backtracks += 1;
            continue;
        };
        let op = ops[op_idx];
        // Specification check.
        let (applies, set_delta) = match op.method {
            Method::Add => {
                let fresh = !set.contains(&op.arg);
                if (fresh as u64) == op.result {
                    if fresh {
                        set.insert(op.arg);
                        (true, SetDelta::Added(op.arg))
                    } else {
                        (true, SetDelta::None)
                    }
                } else {
                    (false, SetDelta::None)
                }
            }
            Method::Remove => {
                let present = set.contains(&op.arg);
                if (present as u64) == op.result {
                    if present {
                        set.remove(&op.arg);
                        (true, SetDelta::Removed(op.arg))
                    } else {
                        (true, SetDelta::None)
                    }
                } else {
                    (false, SetDelta::None)
                }
            }
            Method::Contains => (set.contains(&op.arg) as u64 == op.result, SetDelta::None),
        };
        if !applies {
            continue;
        }
        // Commit: the chosen op precedes every other thread's frontier.
        steps += 1;
        let t = op.node.thread.index();
        let mut edges = Vec::new();
        for t2 in 0..k {
            if t2 == t {
                continue;
            }
            let Some(&j) = per_thread[t2].get(cursor[t2]) else {
                continue;
            };
            let next = ops[j].node;
            if !po.reachable(op.node, next) {
                po.insert_edge(op.node, next)
                    .expect("frontier edge is valid");
                inserted += 1;
                edges.push((op.node, next));
            }
        }
        cursor[t] += 1;
        executed += 1;
        if executed > best_executed {
            best_executed = executed;
            best_blocked.clear();
        }
        stack.last_mut().expect("frame exists").committed = Some(Committed {
            op_idx,
            edges,
            set_delta,
        });
        if executed == total {
            // Reconstruct the linearization from the stack.
            let order = stack
                .iter()
                .filter_map(|f| f.committed.as_ref())
                .map(|c| ops[c.op_idx].op)
                .collect();
            break LinVerdict::Linearizable(order);
        }
        let key = state_key(&cursor, &set);
        let next_candidates = if dead.contains(&key) {
            Vec::new() // already proven fruitless: force a backtrack
        } else {
            frontier(&po, &cursor, &ops, &per_thread)
        };
        if executed == best_executed {
            // Record the blocked frontier at the deepest point.
            best_blocked = (0..k)
                .filter_map(|t2| per_thread[t2].get(cursor[t2]))
                .map(|&j| ops[j].op)
                .collect();
        }
        stack.push(Frame {
            candidates: next_candidates,
            committed: None,
            key,
        });
    };

    LinReport {
        po,
        verdict,
        steps,
        backtracks,
        inserted,
        deleted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{Csst, GraphIndex};
    use csst_trace::gen::{object_history, ObjectHistoryCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn sequential_history_linearizes() {
        let mut b = TraceBuilder::new();
        let (_, op1) = b.on(0).invoke(Method::Add, 5);
        b.on(0).respond(op1, 1);
        let (_, op2) = b.on(0).invoke(Method::Contains, 5);
        b.on(0).respond(op2, 1);
        let (_, op3) = b.on(0).invoke(Method::Remove, 5);
        b.on(0).respond(op3, 1);
        let trace = b.build();
        let r = analyze::<Csst>(&trace, &LinCfg::default());
        assert!(matches!(r.verdict, LinVerdict::Linearizable(_)));
    }

    #[test]
    fn concurrent_history_linearizes_out_of_real_time_order() {
        // T0: add(1) → true   overlapping   T1: contains(1) → true.
        // Only the order add < contains explains the results.
        let mut b = TraceBuilder::new();
        let (_, op_c) = b.on(1).invoke(Method::Contains, 1);
        let (_, op_a) = b.on(0).invoke(Method::Add, 1);
        b.on(0).respond(op_a, 1);
        b.on(1).respond(op_c, 1);
        let trace = b.build();
        let r = analyze::<Csst>(&trace, &LinCfg::default());
        match r.verdict {
            LinVerdict::Linearizable(order) => {
                let pa = order.iter().position(|&o| o == op_a).unwrap();
                let pc = order.iter().position(|&o| o == op_c).unwrap();
                assert!(pa < pc, "add must linearize before contains");
            }
            v => panic!("expected linearizable, got {v:?}"),
        }
    }

    #[test]
    fn real_time_violation_detected() {
        // contains(1) → true completes strictly BEFORE add(1) → true
        // begins: no linearization.
        let mut b = TraceBuilder::new();
        let (_, op_c) = b.on(1).invoke(Method::Contains, 1);
        b.on(1).respond(op_c, 1);
        let (_, op_a) = b.on(0).invoke(Method::Add, 1);
        b.on(0).respond(op_a, 1);
        let trace = b.build();
        let r = analyze::<Csst>(&trace, &LinCfg::default());
        assert!(
            matches!(r.verdict, LinVerdict::Violation(_)),
            "{:?}",
            r.verdict
        );
        assert!(r.backtracks > 0 || r.steps > 0);
    }

    #[test]
    fn generated_clean_histories_linearize() {
        for seed in 0..4 {
            let trace = object_history(&ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 15,
                seed,
                ..Default::default()
            });
            let r = analyze::<Csst>(&trace, &LinCfg::default());
            assert!(
                matches!(r.verdict, LinVerdict::Linearizable(_)),
                "seed {seed}: {:?}",
                r.verdict
            );
        }
    }

    #[test]
    fn injected_violations_are_detected() {
        let mut found = 0;
        let mut total_deleted = 0;
        for seed in 0..6 {
            let trace = object_history(&ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 12,
                key_range: 4,
                violation: true,
                seed,
            });
            let r = analyze::<Csst>(&trace, &LinCfg::default());
            match r.verdict {
                LinVerdict::Violation(rc) => {
                    found += 1;
                    total_deleted += r.deleted;
                    assert!(rc.executed < operations(&trace).len());
                }
                LinVerdict::Linearizable(_) => {
                    // A flipped result can occasionally still be
                    // explainable; that is fine for some seeds.
                }
                LinVerdict::Unknown => panic!("budget exhausted on tiny history"),
            }
        }
        assert!(found >= 3, "most corrupted histories must be violations");
        assert!(
            total_deleted > 0,
            "backtracking across the violating seeds must delete edges"
        );
    }

    #[test]
    fn graph_and_csst_agree() {
        for seed in 0..4 {
            let trace = object_history(&ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 10,
                key_range: 3,
                violation: seed % 2 == 0,
                seed,
            });
            let cfg = LinCfg::default();
            let a = analyze::<Csst>(&trace, &cfg);
            let b = analyze::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.verdict, b.verdict, "seed {seed}");
            assert_eq!(a.steps, b.steps, "identical search paths");
            assert_eq!(a.inserted, b.inserted);
            assert_eq!(a.deleted, b.deleted);
        }
    }

    #[test]
    #[should_panic(expected = "fully dynamic")]
    fn incremental_index_rejected() {
        let trace = object_history(&ObjectHistoryCfg::default());
        let _ = analyze::<csst_core::IncrementalCsst>(&trace, &LinCfg::default());
    }
}
