//! ConVulPOE-style prediction of concurrency memory bugs (Table 3).
//!
//! The analysis of \[Yu et al. 2021\] detects memory vulnerabilities
//! (use-after-free, double-free) that can be *exposed by reordering*
//! the observed trace: the observed execution is clean, but a different
//! interleaving consistent with the program's synchronization would
//! free an object before a use. Its partial-order core mirrors race
//! prediction: a saturated base order filters ordered pairs, and each
//! surviving (use, free) candidate is witness-checked for
//! co-enabledness via prefix reconstruction.
//!
//! **Classification:** predictive. *Detects* use-after-free and
//! double-free bugs exposable by reordering. *Base order:* the
//! observation (fork/join + reads-from), built online per event.
//! *Buffering:* buffered candidate generation at `finish`, or
//! **windowed** via [`MemBugCfg::window`].
//!
//! ```
//! use csst_analyses::membug::{self, MemBugCfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let o = b.obj("o");
//! b.on(0).alloc(o);
//! b.on(0).deref(o, false);
//! b.on(1).free(o);
//! let report = membug::predict::<IncrementalCsst>(&b.build(), &MemBugCfg::default());
//! assert_eq!(report.bugs.len(), 1);
//! ```

use crate::common::{BaseOrderBuilder, WindowStats};
use crate::saturation::{common_lock, witness_co_enabled, ClosureCtx, SaturationCfg};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, ObjId, Trace};
use std::collections::HashMap;

/// A predicted memory bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemBug {
    /// The dereference can be reordered after the free.
    UseAfterFree {
        /// The object.
        obj: ObjId,
        /// The dereference event.
        use_event: NodeId,
        /// The free event.
        free_event: NodeId,
    },
    /// Two frees of the same object can both execute.
    DoubleFree {
        /// The object.
        obj: ObjId,
        /// First free.
        first: NodeId,
        /// Second free.
        second: NodeId,
    },
}

/// Configuration of [`predict`].
#[derive(Debug, Clone)]
pub struct MemBugCfg {
    /// Maximum number of candidates to witness-check (across windows).
    pub max_candidates: usize,
    /// Saturation settings.
    pub saturation: SaturationCfg,
    /// Tumbling-window size bounding the event buffer; `None` buffers
    /// the whole stream. See the [`Analysis`] soundness contract.
    pub window: Option<usize>,
}

impl Default for MemBugCfg {
    fn default() -> Self {
        MemBugCfg {
            max_candidates: 400,
            saturation: SaturationCfg::default(),
            window: None,
        }
    }
}

/// Result of a memory-bug prediction run.
#[derive(Debug, Clone)]
pub struct MemBugReport<P> {
    /// The observed base partial order (final window's edges only in
    /// windowed runs).
    pub base: P,
    /// Number of candidates examined.
    pub candidates: usize,
    /// Predicted bugs (global event ids).
    pub bugs: Vec<MemBug>,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Streaming form of [`predict`]: the observation base order grows per
/// event inside `feed`; candidate generation and witness checks run
/// over the buffered events at `finish` — or per window when
/// [`MemBugCfg::window`] bounds the buffer.
#[derive(Debug)]
pub struct MemBugPredictor<P> {
    cfg: MemBugCfg,
    builder: BaseOrderBuilder<P>,
    candidates: usize,
    bugs: Vec<MemBug>,
}

impl<P: PartialOrderIndex> MemBugPredictor<P> {
    fn analyze_window(&mut self) {
        let (trace, win) = self.builder.split();
        if trace.total_events() == 0 {
            return;
        }
        let ctx = ClosureCtx::new(trace, None);

        // Object lifecycle events.
        #[derive(Default)]
        struct Life {
            frees: Vec<NodeId>,
            uses: Vec<NodeId>,
        }
        let mut lives: HashMap<ObjId, Life> = HashMap::new();
        for (id, ev) in trace.iter_order() {
            match ev.kind {
                EventKind::Free { obj } => lives.entry(obj).or_default().frees.push(id),
                EventKind::Deref { obj, .. } => lives.entry(obj).or_default().uses.push(id),
                _ => {}
            }
        }
        let mut objs: Vec<(&ObjId, &Life)> = lives.iter().collect();
        objs.sort_unstable_by_key(|(o, _)| **o);

        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut probes: Vec<(NodeId, NodeId)> = Vec::new();
        let mut ordered: Vec<bool> = Vec::new();
        'outer: for (&obj, life) in objs {
            // Use-after-free: use vs free co-enabled. Cross-thread
            // pairs are enumerated up front so the ordered-pair filter
            // can prefetch both reachability directions per chunk
            // through the batched API (one closure sweep per chunk
            // instead of two probes per pair).
            pairs.clear();
            for &f in &life.frees {
                for &u in &life.uses {
                    if u.thread != f.thread {
                        pairs.push((u, f)); // cross-thread: PO can't decide
                    }
                }
            }
            for chunk in pairs.chunks(64) {
                if self.candidates >= self.cfg.max_candidates {
                    break 'outer;
                }
                probes.clear();
                for &(u, f) in chunk {
                    probes.push((u, f));
                    probes.push((f, u));
                }
                win.reachable_batch(&probes, &mut ordered);
                for (ci, &(u, f)) in chunk.iter().enumerate() {
                    if self.candidates >= self.cfg.max_candidates {
                        break 'outer;
                    }
                    if ordered[2 * ci] || ordered[2 * ci + 1] {
                        continue;
                    }
                    if common_lock(trace, u, f) {
                        continue;
                    }
                    self.candidates += 1;
                    if witness_co_enabled::<P>(&ctx, &self.cfg.saturation, &[u, f]) {
                        self.bugs.push(MemBug::UseAfterFree {
                            obj,
                            use_event: win.to_global(u),
                            free_event: win.to_global(f),
                        });
                    }
                }
            }
            // Double free: two frees co-enabled (or unordered).
            for (i, &f1) in life.frees.iter().enumerate() {
                for &f2 in life.frees.iter().skip(i + 1) {
                    if self.candidates >= self.cfg.max_candidates {
                        break 'outer;
                    }
                    if f1.thread == f2.thread {
                        // Same thread: both execute regardless — a bug
                        // by construction.
                        self.bugs.push(MemBug::DoubleFree {
                            obj,
                            first: win.to_global(f1),
                            second: win.to_global(f2),
                        });
                        continue;
                    }
                    self.candidates += 1;
                    // Both frees execute in any correct reordering; a
                    // double free needs no witness beyond both existing.
                    self.bugs.push(MemBug::DoubleFree {
                        obj,
                        first: win.to_global(f1),
                        second: win.to_global(f2),
                    });
                }
            }
        }
    }
}

impl<P: PartialOrderIndex> Analysis for MemBugPredictor<P> {
    type Cfg = MemBugCfg;
    type Report = MemBugReport<P>;

    fn new(cfg: Self::Cfg) -> Self {
        MemBugPredictor {
            builder: BaseOrderBuilder::observing(cfg.window),
            cfg,
            candidates: 0,
            bugs: Vec::new(),
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        self.builder.feed(thread, event);
        if self.builder.window_full() {
            self.analyze_window();
            self.builder.retire_window();
        }
    }

    fn finish(mut self) -> MemBugReport<P> {
        self.analyze_window();
        MemBugReport {
            candidates: self.candidates,
            bugs: self.bugs,
            window: self.builder.stats(),
            base: self.builder.into_po(),
        }
    }
}

/// Runs memory-bug prediction over `trace` using representation `P`: a
/// thin wrapper streaming the trace through [`MemBugPredictor`].
pub fn predict<P: PartialOrderIndex>(trace: &Trace, cfg: &MemBugCfg) -> MemBugReport<P> {
    MemBugPredictor::<P>::run(trace, cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{alloc_program, AllocProgramCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn detects_reorderable_uaf() {
        // T0 allocs and uses o; T1 frees o with no synchronization. The
        // observed order (use before free) can be flipped.
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        b.on(0).alloc(o);
        b.on(0).deref(o, false);
        b.on(1).free(o);
        let trace = b.build();
        let r = predict::<IncrementalCsst>(&trace, &MemBugCfg::default());
        assert_eq!(r.bugs.len(), 1);
        assert!(matches!(r.bugs[0], MemBug::UseAfterFree { .. }));
    }

    #[test]
    fn lock_protection_suppresses_uaf() {
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        let m = b.lock("m");
        b.on(0).alloc(o);
        b.on(0).acquire(m);
        b.on(0).deref(o, false);
        b.on(0).release(m);
        b.on(1).acquire(m);
        b.on(1).free(o);
        b.on(1).release(m);
        let trace = b.build();
        let r = predict::<IncrementalCsst>(&trace, &MemBugCfg::default());
        // The sections are still reorderable as wholes (free section
        // first is a correct reordering) — the lock alone does NOT
        // protect against UAF, and ConVulPOE reports exactly these.
        // But the common-lock prefilter in this core skips pairs that
        // hold a common lock, mirroring the tool's suppression of
        // lock-ordered pairs.
        assert!(r.bugs.is_empty());
    }

    #[test]
    fn rf_ordering_suppresses_uaf() {
        // The free is gated on a flag written after the use: any
        // correct reordering keeps use before free.
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        let x = b.var("done");
        b.on(0).alloc(o);
        b.on(0).deref(o, false);
        b.on(0).write(x, 1);
        b.on(1).read(x, 1); // T1 waits for the flag
        b.on(1).free(o);
        let trace = b.build();
        let r = predict::<IncrementalCsst>(&trace, &MemBugCfg::default());
        assert!(r.bugs.is_empty(), "{:?}", r.bugs);
    }

    #[test]
    fn detects_double_free() {
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        b.on(0).alloc(o);
        b.on(0).free(o);
        b.on(1).free(o);
        let trace = b.build();
        let r = predict::<IncrementalCsst>(&trace, &MemBugCfg::default());
        assert!(r
            .bugs
            .iter()
            .any(|b| matches!(b, MemBug::DoubleFree { .. })));
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for seed in 0..3 {
            let trace = alloc_program(&AllocProgramCfg {
                threads: 4,
                objects: 20,
                derefs_per_object: 4,
                protected_frac: 0.5,
                seed,
                ..Default::default()
            });
            let cfg = MemBugCfg {
                max_candidates: 100,
                ..Default::default()
            };
            let a = predict::<IncrementalCsst>(&trace, &cfg);
            let b = predict::<SegTreeIndex>(&trace, &cfg);
            let c = predict::<VectorClockIndex>(&trace, &cfg);
            let d = predict::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.bugs, b.bugs, "seed {seed}");
            assert_eq!(a.bugs, c.bugs, "seed {seed}");
            assert_eq!(a.bugs, d.bugs, "seed {seed}");
            assert!(a.candidates > 0, "workload must produce candidates");
        }
    }
}
