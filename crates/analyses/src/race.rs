//! M2-style dynamic data race prediction (Table 1).
//!
//! The M2 detector \[Pavlogiannis 2019\] observes (possibly race-free)
//! traces and attempts to *permute* them into correct reorderings that
//! expose a race. Its partial-order core:
//!
//! 1. build the light observed order (fork/join + reads-from) used to
//!    filter ordered pairs;
//! 2. enumerate conflicting access pairs within a trace window
//!    (candidates);
//! 3. for each candidate, check the feasibility of a correct
//!    reordering of a trace prefix that co-enables both accesses
//!    ([`witness_co_enabled`]): the closure is rebuilt and saturated
//!    *per candidate*, exactly like M2's per-race closure computation.
//!
//! Step 3 inserts orderings between events in the middle of the trace —
//! the non-streaming pattern where vector clocks degrade to `O(n)` per
//! insertion and CSSTs stay logarithmic.
//!
//! **Classification:** predictive. *Detects* data races exposable by
//! reordering the observed trace. *Base order:* the light observation
//! (fork/join + reads-from), built online per event. *Buffering:*
//! buffered candidate generation at `finish`, or **windowed** via
//! [`RaceCfg::window`].
//!
//! ```
//! use csst_analyses::race::{self, RaceCfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.on(0).write(x, 1);
//! b.on(1).write(x, 2);
//! let report = race::predict::<IncrementalCsst>(&b.build(), &RaceCfg::default());
//! assert_eq!(report.races.len(), 1);
//! ```

use crate::common::{BaseOrderBuilder, WindowStats};
use crate::saturation::{common_lock, witness_co_enabled, ClosureCtx, SaturationCfg};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Trace, VarId};
use std::collections::HashMap;

/// Configuration of [`predict`].
#[derive(Debug, Clone)]
pub struct RaceCfg {
    /// Maximum number of candidate pairs to witness-check (in trace
    /// order, across all windows); practical tools window their search
    /// the same way.
    pub max_candidates: usize,
    /// Pair every access with at most this many preceding accesses of
    /// the same variable (the candidate window).
    pub recent: usize,
    /// Saturation settings used by the per-candidate witness checks.
    pub saturation: SaturationCfg,
    /// Tumbling-window size bounding the event buffer; `None` buffers
    /// the whole stream. See the [`Analysis`] soundness contract.
    pub window: Option<usize>,
}

impl Default for RaceCfg {
    fn default() -> Self {
        RaceCfg {
            max_candidates: 200,
            recent: 24,
            saturation: SaturationCfg::default(),
            window: None,
        }
    }
}

/// Result of a race prediction run.
#[derive(Debug, Clone)]
pub struct RaceReport<P> {
    /// The light observed base order (useful for density stats). In
    /// windowed runs only the final window's edges are still live.
    pub base: P,
    /// Number of candidate pairs examined (witness-checked).
    pub candidates: usize,
    /// Predicted races: conflicting pairs with a feasible witness
    /// (global event ids).
    pub races: Vec<(NodeId, NodeId)>,
    /// Edges inserted while building the base order.
    pub base_inserted: usize,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Enumerates candidate pairs: conflicting plain accesses to the same
/// variable within the `recent`-access recency window, from different
/// threads, in trace order.
///
/// Pure over the (window-local) trace — no index involved — so the
/// sharded pipeline runs it once on the coordinator and fans only the
/// per-candidate witness checks out to workers.
pub fn enumerate_candidates(trace: &Trace, recent: usize) -> Vec<(NodeId, NodeId)> {
    let mut buf_by_var: HashMap<VarId, Vec<(NodeId, bool)>> = HashMap::new();
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for (id, ev) in trace.iter_order() {
        let Some(var) = ev.kind.var() else { continue };
        if !(ev.kind.is_plain_read() || ev.kind.is_plain_write()) {
            continue;
        }
        let is_write = ev.kind.is_plain_write();
        let buf = buf_by_var.entry(var).or_default();
        for &(prev, prev_write) in buf.iter() {
            if prev.thread != id.thread && (is_write || prev_write) {
                candidates.push((prev, id));
            }
        }
        buf.push((id, is_write));
        if buf.len() > recent {
            buf.remove(0);
        }
    }
    candidates
}

/// Filters `candidates` down to the pairs that reach the witness check:
/// unordered in the base order `win` (both directions probed through
/// the batched API), not protected by a common lock, and within the
/// first `cap` survivors (the candidate budget).
///
/// Deterministic and independent of any witness outcome, which is what
/// lets the sharded pipeline check the selected pairs in parallel and
/// still report the sequential predictor's exact race list.
pub fn select_candidates<P: PartialOrderIndex>(
    win: &P,
    trace: &Trace,
    candidates: &[(NodeId, NodeId)],
    cap: usize,
) -> Vec<(NodeId, NodeId)> {
    // The ordered-pair filter needs both directions per candidate;
    // prefetch them in chunks through the batched API so the base
    // order answers 128 probes per closure sweep instead of two.
    // The cap counts only pairs that reach the witness check, so
    // prefetching reachability (a pure query) cannot change which
    // candidates are examined.
    let mut selected: Vec<(NodeId, NodeId)> = Vec::new();
    let mut probes: Vec<(NodeId, NodeId)> = Vec::new();
    let mut ordered: Vec<bool> = Vec::new();
    'chunks: for chunk in candidates.chunks(64) {
        if selected.len() >= cap {
            break;
        }
        probes.clear();
        for &(e1, e2) in chunk {
            probes.push((e1, e2));
            probes.push((e2, e1));
        }
        win.reachable_batch(&probes, &mut ordered);
        for (ci, &(e1, e2)) in chunk.iter().enumerate() {
            if selected.len() >= cap {
                break 'chunks;
            }
            if ordered[2 * ci] || ordered[2 * ci + 1] {
                continue; // ordered: not a candidate
            }
            if common_lock(trace, e1, e2) {
                continue; // protected: cannot be co-enabled
            }
            selected.push((e1, e2));
        }
    }
    selected
}

/// Streaming form of [`predict`]: the observation base order (fork/
/// join and reads-from) grows per event inside `feed`; candidate
/// generation and the M2-style witness checks run over the buffered
/// events at `finish` — or per window when [`RaceCfg::window`] bounds
/// the buffer.
#[derive(Debug)]
pub struct RacePredictor<P> {
    cfg: RaceCfg,
    builder: BaseOrderBuilder<P>,
    races: Vec<(NodeId, NodeId)>,
    candidates: usize,
}

impl<P: PartialOrderIndex> RacePredictor<P> {
    /// Runs candidate generation + witness checks over the buffered
    /// window (the whole trace when unwindowed).
    fn analyze_window(&mut self) {
        let (trace, win) = self.builder.split();
        if trace.total_events() == 0 {
            return;
        }
        let candidates = enumerate_candidates(trace, self.cfg.recent);
        let remaining = self.cfg.max_candidates.saturating_sub(self.candidates);
        let checked = select_candidates(&win, trace, &candidates, remaining);
        if checked.is_empty() {
            return;
        }
        let ctx = ClosureCtx::new(trace, None);
        for &(e1, e2) in &checked {
            self.candidates += 1;
            if witness_co_enabled::<P>(&ctx, &self.cfg.saturation, &[e1, e2]) {
                self.races.push((win.to_global(e1), win.to_global(e2)));
            }
        }
    }
}

impl<P: PartialOrderIndex> Analysis for RacePredictor<P> {
    type Cfg = RaceCfg;
    type Report = RaceReport<P>;

    fn new(cfg: Self::Cfg) -> Self {
        RacePredictor {
            builder: BaseOrderBuilder::observing(cfg.window),
            cfg,
            races: Vec::new(),
            candidates: 0,
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        self.builder.feed(thread, event);
        if self.builder.window_full() {
            self.analyze_window();
            self.builder.retire_window();
        }
    }

    fn finish(mut self) -> RaceReport<P> {
        self.analyze_window();
        RaceReport {
            candidates: self.candidates,
            races: self.races,
            base_inserted: self.builder.base_inserted(),
            window: self.builder.stats(),
            base: self.builder.into_po(),
        }
    }
}

/// Runs race prediction over `trace` using partial-order representation
/// `P`: a thin wrapper streaming the trace through [`RacePredictor`].
pub fn predict<P: PartialOrderIndex>(trace: &Trace, cfg: &RaceCfg) -> RaceReport<P> {
    RacePredictor::<P>::run(trace, cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{racy_program, RacyProgramCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn detects_textbook_race() {
        // Two unprotected writes to x from different threads.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(1).write(x, 2);
        let trace = b.build();
        let report = predict::<IncrementalCsst>(&trace, &RaceCfg::default());
        assert_eq!(report.races.len(), 1);
    }

    #[test]
    fn lock_protected_accesses_are_not_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.on(0).acquire(m);
        b.on(0).write(x, 1);
        b.on(0).release(m);
        b.on(1).acquire(m);
        b.on(1).write(x, 2);
        b.on(1).release(m);
        let trace = b.build();
        let report = predict::<IncrementalCsst>(&trace, &RaceCfg::default());
        assert!(report.races.is_empty());
    }

    #[test]
    fn fork_join_ordering_prevents_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(0).fork(1);
        b.on(1).write(x, 2);
        b.on(0).join(1);
        b.on(0).write(x, 3);
        let trace = b.build();
        let report = predict::<IncrementalCsst>(&trace, &RaceCfg::default());
        assert!(
            report.races.is_empty(),
            "fork/join orders all accesses: {:?}",
            report.races
        );
    }

    #[test]
    fn rf_constraint_can_rule_out_witness() {
        // The second access's prefix observes a write that po-follows
        // the first access: the prefix closure pulls the first access
        // in, so the pair cannot be co-enabled.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1); // (0,0) — candidate access 1
        b.on(0).write(y, 1); // (0,1)
        b.on(1).read(y, 1); // (1,0) observes (0,1)
        b.on(1).write(x, 2); // (1,1) — candidate access 2
        let trace = b.build();
        let report = predict::<IncrementalCsst>(&trace, &RaceCfg::default());
        assert!(
            report.races.is_empty(),
            "rf chain must rule out the race: {:?}",
            report.races
        );
    }

    #[test]
    fn representations_agree_on_generated_traces() {
        for seed in 0..3 {
            let trace = racy_program(&RacyProgramCfg {
                threads: 4,
                events_per_thread: 60,
                vars: 4,
                locks: 2,
                lock_frac: 0.5,
                write_frac: 0.5,
                shared_frac: 0.6,
                seed,
            });
            let cfg = RaceCfg {
                max_candidates: 50,
                ..Default::default()
            };
            let a = predict::<IncrementalCsst>(&trace, &cfg);
            let b = predict::<SegTreeIndex>(&trace, &cfg);
            let c = predict::<VectorClockIndex>(&trace, &cfg);
            let d = predict::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.races, b.races, "seed {seed}: CSST vs ST");
            assert_eq!(a.races, c.races, "seed {seed}: CSST vs VC");
            assert_eq!(a.races, d.races, "seed {seed}: CSST vs Graph");
            assert_eq!(a.candidates, b.candidates);
        }
    }

    #[test]
    fn candidate_cap_respected() {
        let trace = racy_program(&RacyProgramCfg {
            threads: 4,
            events_per_thread: 80,
            lock_frac: 0.0,
            ..Default::default()
        });
        let report = predict::<IncrementalCsst>(
            &trace,
            &RaceCfg {
                max_candidates: 5,
                ..Default::default()
            },
        );
        assert!(report.candidates <= 5);
    }

    #[test]
    fn private_variables_never_race() {
        let trace = racy_program(&RacyProgramCfg {
            threads: 3,
            events_per_thread: 50,
            shared_frac: 0.0, // all accesses thread-private
            lock_frac: 0.0,
            ..Default::default()
        });
        let report = predict::<IncrementalCsst>(&trace, &RaceCfg::default());
        assert_eq!(report.candidates, 0);
        assert!(report.races.is_empty());
    }
}
