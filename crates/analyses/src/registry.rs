//! Name-based analysis registry.
//!
//! One table maps analysis names (`race`, `hb`, `deadlock`, …) to
//! runnable entries, so front ends — the `csst-analyze` CLI, the bench
//! harness — select analyses and index representations by string
//! instead of hard-coding one match arm per analysis. Adding an
//! analysis means adding one [`AnalysisEntry`] here.
//!
//! Runs take an optional **window** (the `--window N` of the CLI):
//! predictive analyses then bound their event buffer to `N`-event
//! tumbling windows, retiring each window's base-order edges through
//! `delete_edge` — which is why windowed runs are restricted to the
//! fully dynamic representations (`csst`, `graph`). See the
//! [`crate::Analysis`] soundness contract.

use crate::{c11, deadlock, hb, linearizability, membug, race, tso, uaf};
use csst_core::{Csst, GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
use csst_trace::gen;
use csst_trace::Trace;

/// Index representation selected by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Incremental CSSTs (`csst`) — or the fully dynamic [`Csst`] for
    /// analyses that delete edges.
    Csst,
    /// Dense segment trees (`st`).
    SegTree,
    /// Vector clocks (`vc`).
    VectorClock,
    /// Plain graphs (`graph`).
    Graph,
}

impl IndexKind {
    /// Every selectable representation.
    pub const ALL: [IndexKind; 4] = [
        IndexKind::Csst,
        IndexKind::SegTree,
        IndexKind::VectorClock,
        IndexKind::Graph,
    ];

    /// Parses a CLI name (`csst`, `st`, `vc`, `graph`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "csst" => Some(IndexKind::Csst),
            "st" => Some(IndexKind::SegTree),
            "vc" => Some(IndexKind::VectorClock),
            "graph" => Some(IndexKind::Graph),
            _ => None,
        }
    }

    /// The CLI name of the representation.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Csst => "csst",
            IndexKind::SegTree => "st",
            IndexKind::VectorClock => "vc",
            IndexKind::Graph => "graph",
        }
    }
}

/// Console-ready result of a registry run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Per-finding detail lines (already capped where the analysis
    /// caps its own output).
    pub lines: Vec<String>,
    /// One-line summary.
    pub summary: String,
    /// Process exit code the CLI should report (0 = nothing found).
    pub exit_code: u8,
}

/// A runnable analysis, selectable by name.
pub struct AnalysisEntry {
    /// CLI name of the analysis.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    run: fn(&Trace, IndexKind, Option<usize>) -> Result<RunOutput, String>,
    demo: fn() -> Trace,
}

impl AnalysisEntry {
    /// Runs the analysis on `trace` with the given representation and
    /// optional window size.
    ///
    /// # Errors
    ///
    /// A human-readable message when the representation does not fit
    /// the analysis (e.g. linearizability and windowed runs need edge
    /// deletion) or when the analysis does not support windowing.
    pub fn run(
        &self,
        trace: &Trace,
        index: IndexKind,
        window: Option<usize>,
    ) -> Result<RunOutput, String> {
        (self.run)(trace, index, window)
    }

    /// A small deterministic workload of this analysis's family, for
    /// smoke tests and benchmarks.
    pub fn demo_trace(&self) -> Trace {
        (self.demo)()
    }
}

/// All registered analyses.
pub fn entries() -> &'static [AnalysisEntry] {
    &ENTRIES
}

/// Looks up an analysis by CLI name.
pub fn find(name: &str) -> Option<&'static AnalysisEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// Looks up an analysis by CLI name, producing an actionable error —
/// listing every valid name — when the registry does not know it.
///
/// # Errors
///
/// A message of the form ``unknown analysis `foo`; valid analyses:
/// race, hb, …`` for unknown names.
pub fn resolve(name: &str) -> Result<&'static AnalysisEntry, String> {
    find(name).ok_or_else(|| {
        let names: Vec<&str> = entries().iter().map(|e| e.name).collect();
        format!(
            "unknown analysis `{name}`; valid analyses: {}",
            names.join(", ")
        )
    })
}

/// Dispatches a generic runner: over every representation when
/// unwindowed, over the fully dynamic ones (`csst` → [`Csst`],
/// `graph`) when a window is set — retirement deletes edges.
macro_rules! streaming_dispatch {
    ($index:expr, $window:expr, $run:ident, $trace:expr) => {
        match ($window, $index) {
            (None, IndexKind::Csst) => Ok($run::<IncrementalCsst>($trace, None)),
            (None, IndexKind::SegTree) => Ok($run::<SegTreeIndex>($trace, None)),
            (None, IndexKind::VectorClock) => Ok($run::<VectorClockIndex>($trace, None)),
            (None, IndexKind::Graph) => Ok($run::<GraphIndex>($trace, None)),
            (Some(w), IndexKind::Csst) => Ok($run::<Csst>($trace, Some(w))),
            (Some(w), IndexKind::Graph) => Ok($run::<GraphIndex>($trace, Some(w))),
            (Some(_), other) => Err(format!(
                "--window retires edges and needs a fully dynamic index (csst|graph), got `{}`",
                other.name()
            )),
        }
    };
}

static ENTRIES: [AnalysisEntry; 8] = [
    AnalysisEntry {
        name: "race",
        description: "M2-style data race prediction (Table 1)",
        run: |trace, index, window| streaming_dispatch!(index, window, run_race, trace),
        demo: || {
            gen::racy_program(&gen::RacyProgramCfg {
                threads: 4,
                events_per_thread: 120,
                shared_frac: 0.15,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "hb",
        description: "streaming FastTrack-style happens-before detection",
        run: run_hb_entry,
        demo: || {
            gen::racy_program(&gen::RacyProgramCfg {
                threads: 6,
                events_per_thread: 600,
                lock_frac: 0.6,
                shared_frac: 0.3,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "deadlock",
        description: "SeqCheck-style deadlock prediction (Table 2)",
        run: |trace, index, window| streaming_dispatch!(index, window, run_deadlock, trace),
        demo: || {
            gen::lock_program(&gen::LockProgramCfg {
                threads: 4,
                blocks_per_thread: 60,
                inversion_frac: 0.1,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "membug",
        description: "ConVulPOE-style memory-bug prediction (Table 3)",
        run: |trace, index, window| streaming_dispatch!(index, window, run_membug, trace),
        demo: || {
            gen::alloc_program(&gen::AllocProgramCfg {
                threads: 5,
                objects: 150,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "tso",
        description: "x86-TSO consistency checking (Table 4)",
        run: |trace, index, window| streaming_dispatch!(index, window, run_tso, trace),
        demo: || {
            gen::tso_history(&gen::TsoCfg {
                threads: 5,
                events_per_thread: 500,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "uaf",
        description: "UFO-style use-after-free query generation (Table 5)",
        run: |trace, index, window| streaming_dispatch!(index, window, run_uaf, trace),
        demo: || {
            gen::alloc_program(&gen::AllocProgramCfg {
                threads: 5,
                objects: 150,
                remote_free_frac: 0.6,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "c11",
        description: "C11Tester-style race detection (Table 6)",
        run: |trace, index, window| streaming_dispatch!(index, window, run_c11, trace),
        demo: || {
            gen::c11_program(&gen::C11Cfg {
                threads: 6,
                events_per_thread: 800,
                middle_sync_frac: 0.1,
                ..Default::default()
            })
        },
    },
    AnalysisEntry {
        name: "linearizability",
        description: "root-causing linearizability violations (Table 7, fully dynamic)",
        run: run_linearizability,
        demo: || {
            gen::object_history(&gen::ObjectHistoryCfg {
                threads: 3,
                ops_per_thread: 120,
                violation: true,
                ..Default::default()
            })
        },
    },
];

fn run_race<P: csst_core::PartialOrderIndex>(trace: &Trace, window: Option<usize>) -> RunOutput {
    let cfg = race::RaceCfg {
        window,
        ..Default::default()
    };
    let r = race::predict::<P>(trace, &cfg);
    RunOutput {
        lines: r
            .races
            .iter()
            .map(|(a, b)| format!("race between {a} and {b}"))
            .collect(),
        summary: format!(
            "{} race(s) predicted from {} candidate(s)",
            r.races.len(),
            r.candidates
        ),
        exit_code: (!r.races.is_empty()) as u8,
    }
}

fn run_hb_entry(
    trace: &Trace,
    index: IndexKind,
    window: Option<usize>,
) -> Result<RunOutput, String> {
    if window.is_some() {
        return Err(
            "hb is genuinely online and buffers nothing; --window does not apply".to_string(),
        );
    }
    match index {
        IndexKind::Csst => Ok(run_hb::<IncrementalCsst>(trace)),
        IndexKind::SegTree => Ok(run_hb::<SegTreeIndex>(trace)),
        IndexKind::VectorClock => Ok(run_hb::<VectorClockIndex>(trace)),
        IndexKind::Graph => Ok(run_hb::<GraphIndex>(trace)),
    }
}

fn run_hb<P: csst_core::PartialOrderIndex>(trace: &Trace) -> RunOutput {
    let r = hb::detect::<P>(trace);
    RunOutput {
        lines: r
            .races
            .iter()
            .take(20)
            .map(|(a, b)| format!("hb-race between {a} and {b}"))
            .collect(),
        summary: format!(
            "{} hb-race(s); {} synchronization edge(s)",
            r.races.len(),
            r.sync_edges
        ),
        exit_code: (!r.races.is_empty()) as u8,
    }
}

fn run_deadlock<P: csst_core::PartialOrderIndex>(
    trace: &Trace,
    window: Option<usize>,
) -> RunOutput {
    let cfg = deadlock::DeadlockCfg {
        window,
        ..Default::default()
    };
    let r = deadlock::predict::<P>(trace, &cfg);
    RunOutput {
        lines: r
            .deadlocks
            .iter()
            .map(|d| {
                format!(
                    "deadlock: {} acquires {} holding {}, {} acquires {} holding {}",
                    d.first.inner_acq,
                    d.first.inner,
                    d.first.outer,
                    d.second.inner_acq,
                    d.second.inner,
                    d.second.outer
                )
            })
            .collect(),
        summary: format!(
            "{} deadlock(s) predicted from {} pattern(s)",
            r.deadlocks.len(),
            r.patterns
        ),
        exit_code: (!r.deadlocks.is_empty()) as u8,
    }
}

fn run_membug<P: csst_core::PartialOrderIndex>(trace: &Trace, window: Option<usize>) -> RunOutput {
    let cfg = membug::MemBugCfg {
        window,
        ..Default::default()
    };
    let r = membug::predict::<P>(trace, &cfg);
    RunOutput {
        lines: r
            .bugs
            .iter()
            .map(|bug| match bug {
                membug::MemBug::UseAfterFree {
                    obj,
                    use_event,
                    free_event,
                } => format!("use-after-free of {obj}: use {use_event} vs free {free_event}"),
                membug::MemBug::DoubleFree { obj, first, second } => {
                    format!("double free of {obj}: {first} and {second}")
                }
            })
            .collect(),
        summary: format!("{} bug(s) predicted", r.bugs.len()),
        exit_code: (!r.bugs.is_empty()) as u8,
    }
}

fn run_tso<P: csst_core::PartialOrderIndex>(trace: &Trace, window: Option<usize>) -> RunOutput {
    let cfg = tso::TsoCheckCfg {
        window,
        ..Default::default()
    };
    let r = tso::check::<P>(trace, &cfg);
    RunOutput {
        lines: Vec::new(),
        summary: format!(
            "history is {} under x86-TSO ({} ordering(s) inferred, {} round(s))",
            if r.consistent {
                "CONSISTENT"
            } else {
                "INCONSISTENT"
            },
            r.inserted,
            r.rounds
        ),
        exit_code: (!r.consistent) as u8,
    }
}

fn run_uaf<P: csst_core::PartialOrderIndex>(trace: &Trace, window: Option<usize>) -> RunOutput {
    let cfg = uaf::UafCfg {
        window,
        ..Default::default()
    };
    let r = uaf::generate::<P>(trace, &cfg);
    RunOutput {
        lines: r
            .candidates
            .iter()
            .take(20)
            .map(|c| {
                format!(
                    "candidate: {} use {} vs free {} ({} constraints)",
                    c.obj, c.use_event, c.free_event, c.constraints
                )
            })
            .collect(),
        summary: format!(
            "{} candidate(s) ({} pruned), {} total constraints for the solver",
            r.candidates.len(),
            r.pruned,
            r.total_constraints
        ),
        exit_code: 0,
    }
}

fn run_c11<P: csst_core::PartialOrderIndex>(trace: &Trace, window: Option<usize>) -> RunOutput {
    let cfg = c11::C11Cfg {
        window,
        ..Default::default()
    };
    let r = c11::detect::<P>(trace, &cfg);
    RunOutput {
        lines: r
            .races
            .iter()
            .take(20)
            .map(|(a, b)| format!("race between {a} and {b}"))
            .collect(),
        summary: format!(
            "{} race(s); {} synchronizes-with edge(s), {} from-read edge(s)",
            r.races.len(),
            r.sw_edges,
            r.fr_edges
        ),
        exit_code: (!r.races.is_empty()) as u8,
    }
}

fn run_linearizability(
    trace: &Trace,
    index: IndexKind,
    window: Option<usize>,
) -> Result<RunOutput, String> {
    let cfg = linearizability::LinCfg {
        window,
        ..Default::default()
    };
    let verdict = match index {
        IndexKind::Csst => linearizability::analyze::<Csst>(trace, &cfg).verdict,
        IndexKind::Graph => linearizability::analyze::<GraphIndex>(trace, &cfg).verdict,
        other => {
            return Err(format!(
                "linearizability needs a fully dynamic index (csst|graph), got `{}`",
                other.name()
            ))
        }
    };
    Ok(match verdict {
        linearizability::LinVerdict::Linearizable(order) => RunOutput {
            lines: Vec::new(),
            summary: format!(
                "linearizable; one witness order of {} ops found",
                order.len()
            ),
            exit_code: 0,
        },
        linearizability::LinVerdict::Violation(rc) => RunOutput {
            lines: Vec::new(),
            summary: format!(
                "NOT linearizable; longest legal prefix has {} ops; blocked frontier: {:?}",
                rc.executed, rc.blocked
            ),
            exit_code: 1,
        },
        linearizability::LinVerdict::Unknown => RunOutput {
            lines: Vec::new(),
            summary: "search budget exhausted".into(),
            exit_code: 3,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_run_on_their_demo_traces() {
        for entry in entries() {
            let trace = entry.demo_trace();
            assert!(trace.total_events() > 0, "{}: empty demo", entry.name);
            let out = entry
                .run(&trace, IndexKind::Csst, None)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert!(!out.summary.is_empty(), "{}: empty summary", entry.name);
        }
    }

    #[test]
    fn all_predictive_entries_run_windowed_on_csst() {
        for entry in entries() {
            if entry.name == "hb" {
                continue; // genuinely online: windowing does not apply
            }
            let trace = entry.demo_trace();
            let out = entry
                .run(&trace, IndexKind::Csst, Some(64))
                .unwrap_or_else(|e| panic!("{} windowed: {e}", entry.name));
            assert!(!out.summary.is_empty(), "{}: empty summary", entry.name);
        }
    }

    #[test]
    fn lookup_and_index_parsing() {
        assert!(find("race").is_some());
        assert!(find("nonsense").is_none());
        assert_eq!(entries().len(), 8);
        for kind in IndexKind::ALL {
            assert_eq!(IndexKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(IndexKind::parse("bogus"), None);
    }

    #[test]
    fn resolve_error_lists_every_valid_name() {
        assert!(resolve("race").is_ok());
        let err = resolve("rcae").err().expect("unknown name must error");
        assert!(err.contains("unknown analysis `rcae`"), "{err}");
        for entry in entries() {
            assert!(
                err.contains(entry.name),
                "error must list `{}`: {err}",
                entry.name
            );
        }
    }

    #[test]
    fn linearizability_rejects_insert_only_indexes() {
        let entry = find("linearizability").unwrap();
        let trace = entry.demo_trace();
        assert!(entry.run(&trace, IndexKind::VectorClock, None).is_err());
        assert!(entry.run(&trace, IndexKind::Graph, None).is_ok());
    }

    #[test]
    fn windowed_runs_reject_insert_only_indexes() {
        let entry = find("race").unwrap();
        let trace = entry.demo_trace();
        for kind in [IndexKind::SegTree, IndexKind::VectorClock] {
            let err = entry.run(&trace, kind, Some(50)).unwrap_err();
            assert!(err.contains("fully dynamic"), "{err}");
        }
        assert!(entry.run(&trace, IndexKind::Graph, Some(50)).is_ok());
    }

    #[test]
    fn hb_rejects_windowing() {
        let entry = find("hb").unwrap();
        let trace = entry.demo_trace();
        let err = entry.run(&trace, IndexKind::Csst, Some(10)).unwrap_err();
        assert!(err.contains("does not apply"), "{err}");
    }
}
