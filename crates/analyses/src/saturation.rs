//! The saturation engine: closure of a partial order under
//! reads-from-maximality and lock-mutual-exclusion rules.
//!
//! Given a trace, a reads-from map, and a partial-order index, the
//! engine repeatedly infers *necessary* orderings (§1.1: "the process
//! of inferring such orderings is known as saturation, and is used
//! widely in dynamic analyses"):
//!
//! * **Reads-from maximality** — if read `r` observes write `w`, every
//!   conflicting write `w'` must be ordered either before `w` or after
//!   `r`; when the current order places `w'` before `r`, the edge
//!   `w' → w` becomes mandatory, and when it places `w` before `w'`,
//!   the edge `r → w'` becomes mandatory.
//! * **Lock mutual exclusion** — two critical sections on the same
//!   lock cannot overlap: once one acquire is ordered before the other
//!   section's release, the first release must precede the second
//!   acquire.
//!
//! The fixpoint works on *frontiers*: each rule asks the index for the
//! latest predecessor / earliest successor per chain (the
//! `predecessor`/`successor` operations of §2.2) and relates only the
//! boundary event — all others follow by program order. This is how
//! the real tools drive the data structure, and it keeps the query
//! count proportional to the constraint count.
//!
//! The engine also runs in *prefix-restricted* mode, the workhorse of
//! the predictive witness checks (race/deadlock/memory bugs): a witness
//! is a correct reordering of a *prefix* of the trace that co-enables
//! the candidate events, so only prefix events participate in the
//! rules, sections left open by the prefix must not collide, and closed
//! sections must complete before open ones begin.
//!
//! Witness checks run once per candidate over a fresh index, so all
//! trace-level preprocessing (per-variable write tables, section lists,
//! the grouped reads-from list) is hoisted into a [`ClosureCtx`] built
//! once per analysis.

use crate::common::{require_order, OrderOutcome};
use csst_core::{NodeId, PartialOrderIndex, Pos, ThreadId};
use csst_trace::{CriticalSection, EventKind, LockId, Trace, VarId};
use std::collections::{HashMap, HashSet};

/// Saturation statistics and verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationOutcome {
    /// `false` if a rule derived a contradiction (the observation is
    /// infeasible under the current constraints).
    pub consistent: bool,
    /// Number of edges inserted across all rounds.
    pub inserted: usize,
    /// Number of fixpoint rounds executed.
    pub rounds: usize,
}

impl SaturationOutcome {
    fn inconsistent(inserted: usize, rounds: usize) -> Self {
        SaturationOutcome {
            consistent: false,
            inserted,
            rounds,
        }
    }
}

/// Configuration of the saturation engine.
#[derive(Debug, Clone)]
pub struct SaturationCfg {
    /// Apply the lock mutual-exclusion rule.
    pub locks: bool,
    /// Only relate events whose trace-order distance is below this
    /// window (mirrors the windowing of practical predictive tools);
    /// `None` disables windowing.
    pub window: Option<u32>,
    /// Safety valve: stop after this many rounds.
    pub max_rounds: usize,
}

impl Default for SaturationCfg {
    fn default() -> Self {
        SaturationCfg {
            locks: true,
            window: None,
            max_rounds: 64,
        }
    }
}

/// Per-thread exclusive prefix bounds: event `⟨t, i⟩` belongs to the
/// prefix iff `i < bounds[t]`.
pub type PrefixBounds = Vec<u32>;

/// Trace-level tables shared by every closure/witness computation of
/// one analysis run: the reads-from map grouped per variable, the
/// per-(variable, chain) write positions, the thread-locality filter,
/// the critical sections, and the fork structure.
#[derive(Debug)]
pub struct ClosureCtx<'t> {
    /// The underlying trace.
    pub trace: &'t Trace,
    /// The observation: read → writer.
    pub rf: HashMap<NodeId, NodeId>,
    /// rf pairs grouped by (variable, read position): the closure
    /// engine works constraint-by-constraint, *not* in trace order —
    /// every variable group restarts from the beginning of the trace,
    /// so insertions repeatedly target events deep inside the partial
    /// order (the non-streaming pattern of §1.1). The streaming
    /// alternative is [`insert_observation`], used for base orders.
    rf_grouped: Vec<(NodeId, NodeId)>,
    /// Sorted write positions per (variable, chain).
    writes_at: HashMap<(VarId, usize), Vec<Pos>>,
    /// Variables accessed by more than one thread; all others are
    /// skipped by the rules (the standard thread-local filter).
    multi_vars: HashSet<VarId>,
    /// All critical sections of the trace.
    sections: Vec<CriticalSection>,
    /// Fork event per child thread.
    forker: Vec<Option<NodeId>>,
    /// All fork/join events, for prefix-restricted edge insertion.
    fork_join: Vec<(NodeId, EventKind)>,
}

impl<'t> ClosureCtx<'t> {
    /// Builds the context (one linear pass over the trace, plus the
    /// trace's own reads-from map if `rf` is `None`).
    pub fn new(trace: &'t Trace, rf: Option<HashMap<NodeId, NodeId>>) -> Self {
        let rf = rf.unwrap_or_else(|| trace.reads_from());
        let k = trace.num_threads();
        let mut writes_at: HashMap<(VarId, usize), Vec<Pos>> = HashMap::new();
        let mut var_thread: HashMap<VarId, Option<ThreadId>> = HashMap::new();
        let mut forker: Vec<Option<NodeId>> = vec![None; k];
        let mut fork_join = Vec::new();
        for (id, ev) in trace.iter_order() {
            if let Some(var) = ev.kind.var() {
                var_thread
                    .entry(var)
                    .and_modify(|t| {
                        if *t != Some(id.thread) {
                            *t = None;
                        }
                    })
                    .or_insert(Some(id.thread));
            }
            match ev.kind {
                EventKind::Write { var, .. } => {
                    writes_at
                        .entry((var, id.thread.index()))
                        .or_default()
                        .push(id.pos);
                }
                EventKind::Fork { child } => {
                    if child.index() < k && forker[child.index()].is_none() {
                        forker[child.index()] = Some(id);
                    }
                    fork_join.push((id, ev.kind));
                }
                EventKind::Join { .. } => fork_join.push((id, ev.kind)),
                _ => {}
            }
        }
        let multi_vars: HashSet<VarId> = var_thread
            .iter()
            .filter(|(_, t)| t.is_none())
            .map(|(&v, _)| v)
            .collect();
        // Thread-local reads are no-ops for every rule (their rf edge
        // is implied by program order and no cross-chain constraint can
        // involve them), so they are filtered out once and for all.
        let mut rf_grouped: Vec<(NodeId, NodeId)> = rf
            .iter()
            .filter(|(r, _)| {
                trace
                    .kind(**r)
                    .var()
                    .is_some_and(|v| multi_vars.contains(&v))
            })
            .map(|(&r, &w)| (r, w))
            .collect();
        rf_grouped
            .sort_unstable_by_key(|&(r, _)| (trace.kind(r).var().map(|v| v.0), trace.trace_pos(r)));
        ClosureCtx {
            trace,
            rf,
            rf_grouped,
            writes_at,
            multi_vars,
            sections: trace.critical_sections(),
            forker,
            fork_join,
        }
    }

    /// Number of reads-from constraints.
    pub fn rf_count(&self) -> usize {
        self.rf.len()
    }
}

/// Computes a downward-closed prefix containing, for each root
/// `⟨t, i⟩`, the events `⟨t, 0⟩ … ⟨t, i−1⟩`, closed under:
///
/// * **reads-from** — a read in the prefix pulls in its writer;
/// * **fork** — a thread with prefix events pulls in its forking event;
/// * **join** — a join in the prefix pulls in the entire joined thread;
/// * **section rounding** — a cut landing inside a critical section of
///   a *non-root* thread is extended past the release (the thread can
///   always be run until it drops its locks; only the root threads are
///   frozen at their roots, deliberately holding whatever they hold).
///
/// Returns `None` when the closure is forced to include a root itself —
/// the roots cannot be co-enabled.
pub fn prefix_closure(ctx: &ClosureCtx<'_>, roots: &[NodeId]) -> Option<PrefixBounds> {
    let trace = ctx.trace;
    let k = trace.num_threads();
    let mut root_thread = vec![false; k];
    for r in roots {
        root_thread[r.thread.index()] = true;
    }
    let mut upto: PrefixBounds = vec![0; k];
    for r in roots {
        upto[r.thread.index()] = upto[r.thread.index()].max(r.pos);
    }
    let mut scanned: Vec<u32> = vec![0; k];
    let grow = |upto: &mut PrefixBounds, t: usize, bound: u32| {
        if bound > upto[t] {
            upto[t] = bound;
        }
    };
    loop {
        let mut changed = false;
        for t in 0..k {
            let tid = ThreadId(t as u32);
            let hi = upto[t].min(trace.thread_len(tid) as u32);
            while scanned[t] < hi {
                let id = NodeId::new(tid, scanned[t]);
                scanned[t] += 1;
                match *trace.kind(id) {
                    EventKind::Read { .. } => {
                        if let Some(&w) = ctx.rf.get(&id) {
                            if w.pos + 1 > upto[w.thread.index()] {
                                grow(&mut upto, w.thread.index(), w.pos + 1);
                                changed = true;
                            }
                        }
                    }
                    EventKind::Join { child } if child.index() < k => {
                        let len = trace.thread_len(child) as u32;
                        if len > upto[child.index()] {
                            grow(&mut upto, child.index(), len);
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
            // Fork rule: any included event needs its thread forked.
            if upto[t] > 0 {
                if let Some(f) = ctx.forker[t] {
                    if f.pos + 1 > upto[f.thread.index()] {
                        grow(&mut upto, f.thread.index(), f.pos + 1);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            // Section rounding for non-root threads.
            for cs in &ctx.sections {
                let t = cs.acquire.thread.index();
                if root_thread[t] || cs.acquire.pos >= upto[t] {
                    continue;
                }
                if let Some(rel) = cs.release {
                    if rel.pos >= upto[t] {
                        grow(&mut upto, t, rel.pos + 1);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    for r in roots {
        if upto[r.thread.index()] > r.pos {
            return None;
        }
    }
    Some(upto)
}

/// Runs saturation of `po` under the observation of `ctx` until
/// fixpoint, optionally restricted to a prefix.
///
/// The rf edges themselves are inserted first (restricted to the
/// prefix when one is given). With a prefix, critical sections left
/// *open* by it participate specially: two open sections on one lock
/// are an immediate contradiction, and closed sections must complete
/// before open ones begin.
pub fn saturate_within<P: PartialOrderIndex>(
    po: &mut P,
    ctx: &ClosureCtx<'_>,
    cfg: &SaturationCfg,
    prefix: Option<&PrefixBounds>,
) -> SaturationOutcome {
    let trace = ctx.trace;
    let in_prefix = |id: NodeId| -> bool {
        match prefix {
            None => true,
            Some(upto) => id.pos < upto[id.thread.index()],
        }
    };
    let prefix_bound = |t: usize| -> Pos {
        match prefix {
            None => Pos::MAX,
            Some(upto) => upto[t],
        }
    };
    let mut inserted = 0usize;

    // Observation edges, constraint-grouped (see ClosureCtx docs).
    for &(r, w) in &ctx.rf_grouped {
        if !in_prefix(r) {
            continue;
        }
        debug_assert!(in_prefix(w), "prefix closure must include writers");
        match require_order(po, w, r) {
            OrderOutcome::Inserted => inserted += 1,
            OrderOutcome::AlreadyOrdered => {}
            OrderOutcome::Contradiction => return SaturationOutcome::inconsistent(inserted, 0),
        }
    }

    // Critical sections, split by the prefix into closed and open.
    let mut closed_at: HashMap<(LockId, usize), Vec<(Pos, Pos)>> = HashMap::new();
    let mut closed_flat: Vec<(LockId, NodeId, NodeId)> = Vec::new();
    if cfg.locks {
        let mut open: HashMap<LockId, Vec<NodeId>> = HashMap::new();
        for cs in &ctx.sections {
            if !in_prefix(cs.acquire) {
                continue;
            }
            match cs.release.filter(|&r| in_prefix(r)) {
                Some(rel) => {
                    closed_at
                        .entry((cs.lock, cs.acquire.thread.index()))
                        .or_default()
                        .push((cs.acquire.pos, rel.pos));
                    closed_flat.push((cs.lock, cs.acquire, rel));
                }
                None => open.entry(cs.lock).or_default().push(cs.acquire),
            }
        }
        // Two sections left open on the same lock cannot both hold it.
        for acquires in open.values() {
            for (i, a) in acquires.iter().enumerate() {
                if acquires[i + 1..].iter().any(|b| b.thread != a.thread) {
                    return SaturationOutcome::inconsistent(inserted, 0);
                }
            }
        }
        // Closed sections complete before open ones begin.
        for (lock, acquires) in &open {
            for &oa in acquires {
                for &(_, ca, crel) in closed_flat.iter().filter(|&&(l, _, _)| l == *lock) {
                    if ca.thread == oa.thread {
                        continue;
                    }
                    match require_order(po, crel, oa) {
                        OrderOutcome::Inserted => inserted += 1,
                        OrderOutcome::AlreadyOrdered => {}
                        OrderOutcome::Contradiction => {
                            return SaturationOutcome::inconsistent(inserted, 0)
                        }
                    }
                }
            }
        }
        // Release-sorted per (lock, chain) for frontier lookups;
        // acquire-sorted flat list for deterministic iteration.
        for v in closed_at.values_mut() {
            v.sort_unstable_by_key(|&(_, rel)| rel);
        }
        closed_flat.sort_unstable_by_key(|&(_, a, _)| trace.trace_pos(a));
    }

    let in_window = |a: NodeId, b: NodeId| -> bool {
        match cfg.window {
            None => true,
            Some(win) => trace.trace_pos(a).abs_diff(trace.trace_pos(b)) <= win,
        }
    };
    let k = trace.num_threads();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        let apply = |po: &mut P, from: NodeId, to: NodeId| -> Result<bool, ()> {
            match require_order(po, from, to) {
                OrderOutcome::Inserted => Ok(true),
                OrderOutcome::AlreadyOrdered => Ok(false),
                OrderOutcome::Contradiction => Err(()),
            }
        };

        // Rule 1: reads-from maximality (frontier form).
        for &(r, w) in &ctx.rf_grouped {
            if !in_prefix(r) {
                continue;
            }
            let var = trace
                .kind(r)
                .var()
                .expect("rf keys are reads of a variable");
            if !ctx.multi_vars.contains(&var) {
                continue;
            }
            for t in 0..k {
                // (a) The latest conflicting write reaching r (per
                // chain) must be ordered before the observed writer.
                if let Some(p) = po.predecessor(r, ThreadId(t as u32)) {
                    if let Some(ws) = ctx.writes_at.get(&(var, t)) {
                        let i = ws.partition_point(|&x| x <= p);
                        if i > 0 {
                            let w2 = NodeId::new(t as u32, ws[i - 1]);
                            if w2 != w && in_window(w2, r) {
                                match apply(po, w2, w) {
                                    Ok(ins) => {
                                        inserted += ins as usize;
                                        changed |= ins;
                                    }
                                    Err(()) => {
                                        return SaturationOutcome::inconsistent(inserted, rounds)
                                    }
                                }
                            }
                        }
                    }
                }
                // (b) The earliest conflicting write reachable from the
                // observed writer (per chain) must be ordered after r.
                if let Some(s) = po.successor(w, ThreadId(t as u32)) {
                    if let Some(ws) = ctx.writes_at.get(&(var, t)) {
                        let mut i = ws.partition_point(|&x| x < s);
                        if i < ws.len() && NodeId::new(t as u32, ws[i]) == w {
                            i += 1;
                        }
                        if i < ws.len() && ws[i] < prefix_bound(t) {
                            let w2 = NodeId::new(t as u32, ws[i]);
                            if in_window(w2, r) {
                                match apply(po, r, w2) {
                                    Ok(ins) => {
                                        inserted += ins as usize;
                                        changed |= ins;
                                    }
                                    Err(()) => {
                                        return SaturationOutcome::inconsistent(inserted, rounds)
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // Rule 2: lock mutual exclusion. For each closed section and
        // chain, the first same-lock section whose release is
        // reachable from our acquire overlaps us unless it starts
        // after our release.
        for &(lock, a1, r1) in &closed_flat {
            for t in 0..k {
                if t == a1.thread.index() {
                    continue;
                }
                let Some(s) = po.successor(a1, ThreadId(t as u32)) else {
                    continue;
                };
                let Some(sects) = closed_at.get(&(lock, t)) else {
                    continue;
                };
                let i = sects.partition_point(|&(_, rel)| rel < s);
                if i >= sects.len() {
                    continue;
                }
                let a2 = NodeId::new(t as u32, sects[i].0);
                if !in_window(a1, a2) {
                    continue;
                }
                match apply(po, r1, a2) {
                    Ok(ins) => {
                        inserted += ins as usize;
                        changed |= ins;
                    }
                    Err(()) => return SaturationOutcome::inconsistent(inserted, rounds),
                }
            }
        }

        if !changed || rounds >= cfg.max_rounds {
            break;
        }
    }

    SaturationOutcome {
        consistent: true,
        inserted,
        rounds,
    }
}

/// Full-trace saturation (no prefix restriction).
pub fn saturate<P: PartialOrderIndex>(
    po: &mut P,
    ctx: &ClosureCtx<'_>,
    cfg: &SaturationCfg,
) -> SaturationOutcome {
    saturate_within(po, ctx, cfg, None)
}

/// Builds the *light* observed order of a trace: fork/join structure
/// plus the trace's reads-from edges in trace order (the streaming
/// order a real analysis uses for its base), without any saturation
/// fixpoint. The predictive analyses build exactly this edge set
/// incrementally per event through
/// [`crate::BaseOrderBuilder::observing`] and use it for candidate
/// filtering — the expensive closure happens per candidate in
/// [`witness_co_enabled`], exactly as in M2. This batch form remains
/// the one-shot equivalent for recorded traces.
///
/// Returns the number of edges inserted.
pub fn insert_observation<P: PartialOrderIndex>(
    po: &mut P,
    trace: &Trace,
    rf: &HashMap<NodeId, NodeId>,
) -> usize {
    crate::common::insert_fork_join(po, trace);
    let mut rf_sorted: Vec<(NodeId, NodeId)> = rf.iter().map(|(&r, &w)| (r, w)).collect();
    rf_sorted.sort_unstable_by_key(|&(r, _)| trace.trace_pos(r));
    let mut inserted = 0usize;
    for (r, w) in rf_sorted {
        if require_order(po, w, r) == OrderOutcome::Inserted {
            inserted += 1;
        }
    }
    inserted
}

/// Builds the *observed* partial order of a trace: fork/join structure,
/// the trace's own reads-from map, and full saturation.
pub fn saturate_observed<P: PartialOrderIndex>(
    po: &mut P,
    trace: &Trace,
    cfg: &SaturationCfg,
) -> SaturationOutcome {
    crate::common::insert_fork_join(po, trace);
    let ctx = ClosureCtx::new(trace, None);
    saturate(po, &ctx, cfg)
}

/// The witness check shared by the predictive analyses: are the `roots`
/// co-enabled by some correct reordering of a trace prefix?
///
/// Computes the prefix closure of the roots, then builds a *fresh*
/// index over the prefix (fork/join edges, reads-from, saturation,
/// open-section constraints) and reports whether it stayed acyclic.
/// This per-candidate reconstruction is exactly the non-streaming
/// workload the paper's Table 1–3 analyses impose on the data
/// structure.
pub fn witness_co_enabled<P: PartialOrderIndex>(
    ctx: &ClosureCtx<'_>,
    cfg: &SaturationCfg,
    roots: &[NodeId],
) -> bool {
    let Some(upto) = prefix_closure(ctx, roots) else {
        return false;
    };
    let trace = ctx.trace;
    let mut po = P::with_capacity(trace.num_threads().max(1), trace.max_chain_len().max(1));
    // Fork/join edges restricted to the prefix.
    for &(id, kind) in &ctx.fork_join {
        if id.pos >= upto[id.thread.index()] {
            continue;
        }
        match kind {
            EventKind::Fork { child } if child != id.thread && upto[child.index()] > 0 => {
                let _ = po.insert_edge_checked(id, NodeId::new(child, 0));
            }
            EventKind::Join { child } => {
                let len = trace.thread_len(child) as u32;
                if child != id.thread && len > 0 {
                    let _ = po.insert_edge_checked(NodeId::new(child, len - 1), id);
                }
            }
            _ => {}
        }
    }
    saturate_within(&mut po, ctx, cfg, Some(&upto)).consistent
}

/// `true` if the two events hold a common lock in the observed trace
/// (a cheap pre-filter used by the predictive analyses).
pub fn common_lock(trace: &Trace, a: NodeId, b: NodeId) -> bool {
    let la = trace.locks_held_at(a);
    if la.is_empty() {
        return false;
    }
    let lb = trace.locks_held_at(b);
    la.iter().any(|l| lb.contains(l))
}

/// Critical sections of `trace` whose acquire lies in the prefix,
/// partitioned into closed and open. Exposed for analyses that need
/// the raw section structure.
pub fn sections_in_prefix(
    trace: &Trace,
    upto: &PrefixBounds,
) -> (Vec<CriticalSection>, Vec<CriticalSection>) {
    let mut closed = Vec::new();
    let mut open = Vec::new();
    for cs in trace.critical_sections() {
        if cs.acquire.pos >= upto[cs.acquire.thread.index()] {
            continue;
        }
        match cs.release {
            Some(r) if r.pos < upto[r.thread.index()] => closed.push(cs),
            _ => open.push(cs),
        }
    }
    (closed, open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{IncrementalCsst, NodeId};
    use csst_trace::TraceBuilder;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    fn fresh<'t>(trace: &'t Trace) -> (IncrementalCsst, ClosureCtx<'t>) {
        let po = crate::common::index_for_trace(trace);
        let ctx = ClosureCtx::new(trace, None);
        (po, ctx)
    }

    #[test]
    fn rf_edges_inserted() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1); // (0,0)
        b.on(1).read(x, 1); // (1,0)
        let trace = b.build();
        let mut po: IncrementalCsst = crate::common::index_for_trace(&trace);
        let out = saturate_observed(&mut po, &trace, &SaturationCfg::default());
        assert!(out.consistent);
        assert!(po.reachable(n(0, 0), n(1, 0)));
    }

    #[test]
    fn maximality_orders_interfering_write() {
        // w1(x)=1 [t0]; w2(x)=2 [t1]; r(x)=2 [t2]  (r observes w2).
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1); // (0,0) = w1
        b.on(1).write(x, 2); // (1,0) = w2
        b.on(2).read(x, 2); // (2,0) = r
        let trace = b.build();
        let (mut po, ctx) = fresh(&trace);
        // Force w1 → r (e.g. discovered by an analysis), then saturate.
        po.insert_edge(n(0, 0), n(2, 0)).unwrap();
        assert_eq!(ctx.rf[&n(2, 0)], n(1, 0));
        let out = saturate(&mut po, &ctx, &SaturationCfg::default());
        assert!(out.consistent);
        assert!(
            po.reachable(n(0, 0), n(1, 0)),
            "saturation must order w1 before w2"
        );
    }

    #[test]
    fn read_before_later_write() {
        // r observes w, and w is ordered before w': then r → w'.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1); // (0,0) = w
        b.on(1).read(x, 1); // (1,0) = r
        b.on(2).write(x, 2); // (2,0) = w'
        let trace = b.build();
        let (mut po, ctx) = fresh(&trace);
        po.insert_edge(n(0, 0), n(2, 0)).unwrap(); // w → w'
        let out = saturate(&mut po, &ctx, &SaturationCfg::default());
        assert!(out.consistent);
        assert!(po.reachable(n(1, 0), n(2, 0)), "r must precede w'");
    }

    #[test]
    fn lock_rule_orders_sections() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.on(0).acquire(m); // (0,0)
        b.on(0).write(x, 1); // (0,1)
        b.on(0).release(m); // (0,2)
        b.on(1).acquire(m); // (1,0)
        b.on(1).read(x, 1); // (1,1)
        b.on(1).release(m); // (1,2)
        let trace = b.build();
        let mut po: IncrementalCsst = crate::common::index_for_trace(&trace);
        let out = saturate_observed(&mut po, &trace, &SaturationCfg::default());
        assert!(out.consistent);
        assert!(
            po.reachable(n(0, 2), n(1, 0)),
            "release of CS1 must precede acquire of CS2"
        );
    }

    #[test]
    fn contradiction_detected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1); // (0,0) = w
        b.on(1).read(x, 1); // (1,0) = r
        let trace = b.build();
        let (mut po, ctx) = fresh(&trace);
        po.insert_edge(n(1, 0), n(0, 0)).unwrap(); // r → w
        let out = saturate(&mut po, &ctx, &SaturationCfg::default());
        assert!(!out.consistent);
    }

    #[test]
    fn prefix_closure_follows_rf_fork_join() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1); // (0,0)
        b.on(0).fork(1); // (0,1)
        b.on(1).write(y, 1); // (1,0)
        b.on(2).read(y, 1); // (2,0)
        b.on(2).write(x, 9); // (2,1)  ← root
        let trace = b.build();
        let ctx = ClosureCtx::new(&trace, None);
        let upto = prefix_closure(&ctx, &[n(2, 1)]).unwrap();
        // (2,1)'s prefix contains (2,0) which reads (1,0); thread 1
        // needs its fork (0,1).
        assert_eq!(upto[2], 1);
        assert_eq!(upto[1], 1);
        assert_eq!(upto[0], 2);
    }

    #[test]
    fn prefix_closure_detects_uncoenablable_roots() {
        // Root e1 = (0,0); root e2's prefix reads a write po-after e1.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1); // (0,0) — root 1
        b.on(0).write(y, 1); // (0,1)
        b.on(1).read(y, 1); // (1,0) observes (0,1)
        b.on(1).write(x, 2); // (1,1) — root 2
        let trace = b.build();
        let ctx = ClosureCtx::new(&trace, None);
        assert_eq!(prefix_closure(&ctx, &[n(0, 0), n(1, 1)]), None);
    }

    #[test]
    fn witness_open_sections_conflict() {
        // Both roots sit inside sections on the same lock: not
        // co-enabled.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.on(0).acquire(m); // (0,0)
        b.on(0).write(x, 1); // (0,1) — root 1
        b.on(0).release(m);
        b.on(1).acquire(m); // (1,0)
        b.on(1).write(x, 2); // (1,1) — root 2
        b.on(1).release(m);
        let trace = b.build();
        let ctx = ClosureCtx::new(&trace, None);
        assert!(!witness_co_enabled::<IncrementalCsst>(
            &ctx,
            &SaturationCfg::default(),
            &[n(0, 1), n(1, 1)]
        ));
    }

    #[test]
    fn witness_feasible_for_plain_race() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(1).write(x, 2);
        let trace = b.build();
        let ctx = ClosureCtx::new(&trace, None);
        assert!(witness_co_enabled::<IncrementalCsst>(
            &ctx,
            &SaturationCfg::default(),
            &[n(0, 0), n(1, 0)]
        ));
    }

    #[test]
    fn sections_partition() {
        let mut b = TraceBuilder::new();
        let m = b.lock("m");
        let g = b.lock("g");
        b.on(0).acquire(m); // (0,0)
        b.on(0).release(m); // (0,1)
        b.on(0).acquire(g); // (0,2)
        b.on(0).release(g); // (0,3)
        let trace = b.build();
        let (closed, open) = sections_in_prefix(&trace, &vec![3u32]);
        assert_eq!(closed.len(), 1);
        assert_eq!(open.len(), 1, "g's section is cut open by the prefix");
        assert_eq!(open[0].lock, g);
    }

    #[test]
    fn windowing_skips_far_pairs() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        for _ in 0..50 {
            b.on(2).read(x, 1);
        }
        b.on(1).write(x, 2);
        b.on(2).read(x, 2);
        let trace = b.build();
        let (mut po, ctx) = fresh(&trace);
        po.insert_edge(n(0, 0), n(2, 50)).unwrap();
        let narrow = saturate(
            &mut po,
            &ctx,
            &SaturationCfg {
                window: Some(1),
                ..Default::default()
            },
        );
        assert!(narrow.consistent);
    }

    #[test]
    fn thread_local_variables_are_filtered() {
        let mut b = TraceBuilder::new();
        let private = b.var("private");
        let shared = b.var("shared");
        b.on(0).write(private, 1);
        b.on(0).read(private, 1);
        b.on(0).write(shared, 1);
        b.on(1).read(shared, 1);
        let trace = b.build();
        let ctx = ClosureCtx::new(&trace, None);
        assert!(ctx.multi_vars.contains(&shared));
        assert!(!ctx.multi_vars.contains(&private));
    }

    #[test]
    fn common_lock_prefilter() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let m = b.lock("m");
        b.on(0).acquire(m);
        let a = b.on(0).write(x, 1);
        b.on(0).release(m);
        b.on(1).acquire(m);
        let c = b.on(1).write(x, 2);
        b.on(1).release(m);
        let d = b.on(1).write(x, 3); // outside any lock
        let trace = b.build();
        assert!(common_lock(&trace, a, c));
        assert!(!common_lock(&trace, a, d));
    }
}
