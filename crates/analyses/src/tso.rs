//! x86-TSO consistency checking (Table 4).
//!
//! Following the polynomial-time heuristic of \[Roy et al. 2006\], the
//! checker verifies that a history of loads and stores (with a
//! reads-from map recovered from unique written values) is consistent
//! with the TSO memory model.
//!
//! The chain DAG has **two chains per thread** (§5.2(4) of the CSSTs
//! paper): the *issue* chain carries the thread's instructions in
//! program order; the *commit* chain carries its stores' commits to
//! memory (the store buffer drains FIFO, so commit order equals issue
//! order of stores). TSO's `W→R` relaxation falls out naturally: a
//! load is ordered after earlier loads (issue chain) and before later
//! commits (`issue(s) → commit(s)`), but nothing forces it after the
//! commit of an earlier own store.
//!
//! Saturation rules per load `l` observing store `s`, against every
//! other store `s'` on the same variable:
//!
//! * `commit(s') →* l`  ⟹  `commit(s') → commit(s)` (coherence);
//! * `commit(s) →* commit(s')`  ⟹  `l → commit(s')` (no overwrite
//!   before the read);
//! * `l` reads the initial value  ⟹  `l → commit(s')` for all `s'`.
//!
//! A derived cycle means the history is not TSO-consistent. These
//! insertions hit events deep inside the partial order, which is why
//! Table 4 shows the largest vector-clock blowups.

use crate::common::{require_order, OrderOutcome};
use csst_core::{NodeId, PartialOrderIndex, Pos, ThreadId};
use csst_trace::{EventKind, Trace, VarId};
use std::collections::HashMap;

/// Configuration of [`check`].
#[derive(Debug, Clone)]
pub struct TsoCheckCfg {
    /// Safety valve for the saturation fixpoint.
    pub max_rounds: usize,
}

impl Default for TsoCheckCfg {
    fn default() -> Self {
        TsoCheckCfg { max_rounds: 64 }
    }
}

/// Result of a TSO consistency check.
#[derive(Debug, Clone)]
pub struct TsoReport<P> {
    /// The final partial order over `2k` chains.
    pub po: P,
    /// Whether the history is TSO-consistent (no derived cycle).
    pub consistent: bool,
    /// Edges inserted (rf + saturation).
    pub inserted: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

/// Issue-chain node of event `⟨t, i⟩`.
#[inline]
fn issue(id: NodeId) -> NodeId {
    NodeId::new(ThreadId(id.thread.0 * 2), id.pos)
}

/// Commit-chain node of the `idx`-th store of thread `t`.
#[inline]
fn commit(t: ThreadId, idx: u32) -> NodeId {
    NodeId::new(ThreadId(t.0 * 2 + 1), idx)
}

crate::analysis::buffered_analysis! {
    /// Streaming form of [`check`]: buffers the history and runs the
    /// saturation fixpoint at `finish` (coherence rules relate stores
    /// across the entire history).
    TsoChecker { cfg: TsoCheckCfg, report: TsoReport<P>, batch: check_buffered }
}

/// Runs the TSO consistency check over a history of plain reads and
/// writes with unique written values (as produced by
/// [`csst_trace::gen::tso_history`]). Non-access events are ignored.
/// A thin wrapper streaming the trace through [`TsoChecker`].
pub fn check<P: PartialOrderIndex>(trace: &Trace, cfg: &TsoCheckCfg) -> TsoReport<P> {
    use crate::Analysis;
    TsoChecker::<P>::run(trace, cfg.clone())
}

fn check_buffered<P: PartialOrderIndex>(trace: &Trace, cfg: &TsoCheckCfg) -> TsoReport<P> {
    let k = trace.num_threads().max(1);
    let cap = trace.max_chain_len().max(1);
    let mut po = P::with_capacity(2 * k, cap);
    let mut inserted = 0usize;

    // Store bookkeeping: value → (store event, its commit node),
    // plus, per (variable, thread), the sorted commit positions of the
    // thread's stores to that variable — the frontier lookup tables.
    let mut commit_of: HashMap<NodeId, NodeId> = HashMap::new();
    let mut writer_of_value: HashMap<u64, (NodeId, VarId)> = HashMap::new();
    let mut commits_at: HashMap<(VarId, usize), Vec<Pos>> = HashMap::new();
    let mut loads: Vec<(NodeId, VarId, u64)> = Vec::new();
    {
        let mut store_count = vec![0u32; k];
        for (id, ev) in trace.iter_order() {
            match ev.kind {
                EventKind::Write { var, value } => {
                    let c = commit(id.thread, store_count[id.thread.index()]);
                    store_count[id.thread.index()] += 1;
                    commit_of.insert(id, c);
                    writer_of_value.insert(value, (id, var));
                    commits_at
                        .entry((var, id.thread.index()))
                        .or_default()
                        .push(c.pos);
                }
                EventKind::Read { var, value } => {
                    loads.push((id, var, value));
                }
                _ => {}
            }
        }
    }

    // Base edges: issue(s) → commit(s).
    for (&s, &c) in &commit_of {
        po.insert_edge(issue(s), c)
            .expect("issue → commit is valid");
        inserted += 1;
    }

    let mut inconsistent = false;
    // Reads-from edges: remote reads happen after the commit.
    for &(l, var, value) in &loads {
        if value == 0 {
            continue; // initial value
        }
        let Some(&(s, wvar)) = writer_of_value.get(&value) else {
            inconsistent = true; // value from nowhere
            continue;
        };
        if wvar != var {
            inconsistent = true;
            continue;
        }
        if s.thread != l.thread {
            match require_order(&mut po, commit_of[&s], issue(l)) {
                OrderOutcome::Inserted => inserted += 1,
                OrderOutcome::AlreadyOrdered => {}
                OrderOutcome::Contradiction => inconsistent = true,
            }
        } else if s.pos >= l.pos {
            inconsistent = true; // forwarding from a future store
        }
    }

    // Frontier-based coherence saturation: per load and per commit
    // chain, only the boundary store is related; the rest follow by
    // the FIFO order of the commit chain.
    let mut rounds = 0usize;
    while !inconsistent {
        rounds += 1;
        let mut changed = false;
        let apply = |po: &mut P, from: NodeId, to: NodeId, inconsistent: &mut bool| -> bool {
            match require_order(po, from, to) {
                OrderOutcome::Inserted => true,
                OrderOutcome::AlreadyOrdered => false,
                OrderOutcome::Contradiction => {
                    *inconsistent = true;
                    false
                }
            }
        };
        'loads: for &(l, var, value) in &loads {
            let li = issue(l);
            let observed = if value == 0 {
                None
            } else {
                writer_of_value.get(&value).map(|&(s, _)| s)
            };
            match observed {
                None => {
                    // Initial read: every store to the variable commits
                    // after the load; the first store per chain covers
                    // the rest through the FIFO commit order.
                    for t in 0..k {
                        let Some(cps) = commits_at.get(&(var, t)) else {
                            continue;
                        };
                        let first = NodeId::new(ThreadId(t as u32 * 2 + 1), cps[0]);
                        if apply(&mut po, li, first, &mut inconsistent) {
                            inserted += 1;
                            changed = true;
                        }
                        if inconsistent {
                            break 'loads;
                        }
                    }
                }
                Some(s) => {
                    let cs = commit_of[&s];
                    for t in 0..k {
                        let cchain = ThreadId(t as u32 * 2 + 1);
                        let Some(cps) = commits_at.get(&(var, t)) else {
                            continue;
                        };
                        // (a) The latest same-variable commit reaching
                        // the load is coherence-before the observed
                        // store's commit.
                        if let Some(p) = po.predecessor(li, cchain) {
                            let i = cps.partition_point(|&x| x <= p);
                            if i > 0 {
                                let c2 = NodeId::new(cchain, cps[i - 1]);
                                if c2 != cs && apply(&mut po, c2, cs, &mut inconsistent) {
                                    inserted += 1;
                                    changed = true;
                                }
                                if inconsistent {
                                    break 'loads;
                                }
                            }
                        }
                        // (b) The earliest same-variable commit
                        // reachable from the observed store's commit
                        // must come after the load.
                        if let Some(su) = po.successor(cs, cchain) {
                            let mut i = cps.partition_point(|&x| x < su);
                            if i < cps.len() && NodeId::new(cchain, cps[i]) == cs {
                                i += 1;
                            }
                            if i < cps.len() {
                                let c2 = NodeId::new(cchain, cps[i]);
                                if apply(&mut po, li, c2, &mut inconsistent) {
                                    inserted += 1;
                                    changed = true;
                                }
                                if inconsistent {
                                    break 'loads;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed || rounds >= cfg.max_rounds {
            break;
        }
    }

    TsoReport {
        po,
        consistent: !inconsistent,
        inserted,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{tso_history, TsoCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn generated_histories_are_consistent() {
        for seed in 0..5 {
            let trace = tso_history(&csst_trace::gen::TsoCfg {
                threads: 4,
                events_per_thread: 120,
                vars: 4,
                seed,
                ..Default::default()
            });
            let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
            assert!(r.consistent, "seed {seed}: TSO machine output rejected");
            assert!(r.inserted > 0);
        }
    }

    #[test]
    fn coherence_violation_detected() {
        // T0: w(x,1). T1: r(x,1); r(x,0) — reading the initial value
        // after the new one violates coherence.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(1).read(x, 1);
        b.on(1).read(x, 0);
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(!r.consistent);
    }

    #[test]
    fn store_buffering_is_allowed() {
        // The classic SB litmus outcome r1 = r2 = 0 IS allowed on TSO:
        // T0: w(x,1); r(y,0). T1: w(y,1); r(x,0).
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1);
        b.on(0).read(y, 0);
        b.on(1).write(y, 2);
        b.on(1).read(x, 0);
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(r.consistent, "SB relaxed outcome must be TSO-consistent");
    }

    #[test]
    fn value_from_wrong_variable_rejected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1);
        b.on(1).read(y, 1); // value 1 was written to x, not y
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(!r.consistent);
    }

    #[test]
    fn forwarding_from_future_store_rejected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).read(x, 1); // reads own store that has not issued yet
        b.on(0).write(x, 1);
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(!r.consistent);
    }

    #[test]
    fn representations_agree() {
        for seed in 0..3 {
            let trace = tso_history(&TsoCfg {
                threads: 3,
                events_per_thread: 80,
                vars: 3,
                seed,
                ..Default::default()
            });
            let cfg = TsoCheckCfg::default();
            let a = check::<IncrementalCsst>(&trace, &cfg);
            let b = check::<SegTreeIndex>(&trace, &cfg);
            let c = check::<VectorClockIndex>(&trace, &cfg);
            let d = check::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.consistent, b.consistent);
            assert_eq!(a.consistent, c.consistent);
            assert_eq!(a.consistent, d.consistent);
            assert_eq!(a.inserted, b.inserted, "same op sequence");
        }
    }
}
