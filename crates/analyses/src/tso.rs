//! x86-TSO consistency checking (Table 4).
//!
//! Following the polynomial-time heuristic of \[Roy et al. 2006\], the
//! checker verifies that a history of loads and stores (with a
//! reads-from map recovered from unique written values) is consistent
//! with the TSO memory model.
//!
//! The chain DAG has **two chains per thread** (§5.2(4) of the CSSTs
//! paper): the *issue* chain carries the thread's instructions in
//! program order; the *commit* chain carries its stores' commits to
//! memory (the store buffer drains FIFO, so commit order equals issue
//! order of stores). TSO's `W→R` relaxation falls out naturally: a
//! load is ordered after earlier loads (issue chain) and before later
//! commits (`issue(s) → commit(s)`), but nothing forces it after the
//! commit of an earlier own store.
//!
//! Saturation rules per load `l` observing store `s`, against every
//! other store `s'` on the same variable:
//!
//! * `commit(s') →* l`  ⟹  `commit(s') → commit(s)` (coherence);
//! * `commit(s) →* commit(s')`  ⟹  `l → commit(s')` (no overwrite
//!   before the read);
//! * `l` reads the initial value  ⟹  `l → commit(s')` for all `s'`.
//!
//! A derived cycle means the history is not TSO-consistent. These
//! insertions hit events deep inside the partial order, which is why
//! Table 4 shows the largest vector-clock blowups.
//!
//! **Classification:** predictive. *Detects* violations of the x86-TSO
//! memory model in a load/store history. *Base order:* `issue → commit`
//! per store and `commit → issue` reads-from edges, built online per
//! event over two chains per thread. *Buffering:* per-window load and
//! commit tables for the coherence fixpoint at `finish`, or
//! **windowed** via [`TsoCheckCfg::window`].
//!
//! ```
//! use csst_analyses::tso::{self, TsoCheckCfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! b.on(0).write(x, 1);
//! b.on(1).read(x, 1);
//! b.on(1).read(x, 0); // stale after fresh: coherence violation
//! let report = tso::check::<IncrementalCsst>(&b.build(), &TsoCheckCfg::default());
//! assert!(!report.consistent);
//! ```

use crate::common::{BaseOrderBuilder, OrderOutcome, WindowStats};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, Pos, ThreadId};
use csst_trace::{EventKind, Trace, VarId};
use std::collections::HashMap;

/// Configuration of [`check`].
#[derive(Debug, Clone)]
pub struct TsoCheckCfg {
    /// Safety valve for the saturation fixpoint.
    pub max_rounds: usize,
    /// Tumbling-window size bounding the per-window load/commit
    /// tables; `None` checks the whole history at once. See the
    /// [`Analysis`] soundness contract.
    pub window: Option<usize>,
}

impl Default for TsoCheckCfg {
    fn default() -> Self {
        TsoCheckCfg {
            max_rounds: 64,
            window: None,
        }
    }
}

/// Result of a TSO consistency check.
#[derive(Debug, Clone)]
pub struct TsoReport<P> {
    /// The final partial order over `2k` chains.
    pub po: P,
    /// Whether the history is TSO-consistent (no derived cycle).
    pub consistent: bool,
    /// Edges inserted (rf + saturation).
    pub inserted: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Issue-chain node of event `⟨t, i⟩`.
#[inline]
fn issue(id: NodeId) -> NodeId {
    NodeId::new(ThreadId(id.thread.0 * 2), id.pos)
}

/// Commit-chain node of the `idx`-th store of thread `t`.
#[inline]
fn commit(t: ThreadId, idx: u32) -> NodeId {
    NodeId::new(ThreadId(t.0 * 2 + 1), idx)
}

/// Streaming form of [`check`]: the base order — `issue(s) → commit(s)`
/// per store and the reads-from edge `commit(s) → issue(l)` per load —
/// grows per event inside `feed`; only the coherence fixpoint runs over
/// the window's load/commit tables at `finish` (or per window when
/// [`TsoCheckCfg::window`] is set).
///
/// A read returning a value no store has produced *so far* is flagged
/// as a value-from-nowhere inconsistency — faithful recordings always
/// write a value before any read returns it. A windowed read observing
/// a store of an earlier (retired) window contributes no constraint.
#[derive(Debug)]
pub struct TsoChecker<P> {
    cfg: TsoCheckCfg,
    builder: BaseOrderBuilder<P>,
    /// Global number of stores per thread (the next commit position).
    store_count: Vec<u32>,
    /// value → (store event, variable); persists across windows so
    /// cross-window observations are recognized (and skipped) rather
    /// than misread as values from nowhere.
    writer_of_value: HashMap<u64, (NodeId, VarId)>,
    /// Current window's stores: store event → commit node.
    commit_of: HashMap<NodeId, NodeId>,
    /// Current window's sorted commit positions per (variable, thread).
    commits_at: HashMap<(VarId, usize), Vec<Pos>>,
    /// Current window's loads.
    loads: Vec<(NodeId, VarId, u64)>,
    inconsistent: bool,
    inserted: usize,
    rounds: usize,
}

impl<P: PartialOrderIndex> TsoChecker<P> {
    /// Frontier-based coherence saturation over the current window: per
    /// load and per commit chain, only the boundary store is related;
    /// the rest follow by the FIFO order of the commit chain.
    fn fixpoint(&mut self) {
        let k = self.store_count.len();
        // Detach the lookup table so rule applications can borrow
        // `self` mutably; `apply` never touches it.
        let commits_at = std::mem::take(&mut self.commits_at);
        while !self.inconsistent {
            self.rounds += 1;
            let mut changed = false;
            'loads: for li in 0..self.loads.len() {
                let (l, var, value) = self.loads[li];
                let li = issue(l);
                let observed = if value == 0 {
                    None
                } else {
                    // A retired writer (not in `commit_of`) is a
                    // cross-window observation: no constraint.
                    match self.writer_of_value.get(&value) {
                        Some(&(s, _)) if self.commit_of.contains_key(&s) => Some(s),
                        Some(_) => continue 'loads,
                        None => continue 'loads,
                    }
                };
                match observed {
                    None => {
                        // Initial read: every store to the variable
                        // commits after the load; the first store per
                        // chain covers the rest through the FIFO commit
                        // order.
                        for t in 0..k {
                            let Some(cps) = commits_at.get(&(var, t)) else {
                                continue;
                            };
                            let first = NodeId::new(ThreadId(t as u32 * 2 + 1), cps[0]);
                            if self.apply(li, first) {
                                changed = true;
                            }
                            if self.inconsistent {
                                break 'loads;
                            }
                        }
                    }
                    Some(s) => {
                        let cs = self.commit_of[&s];
                        for t in 0..k {
                            let cchain = ThreadId(t as u32 * 2 + 1);
                            let Some(cps) = commits_at.get(&(var, t)) else {
                                continue;
                            };
                            // (a) The latest same-variable commit
                            // reaching the load is coherence-before the
                            // observed store's commit.
                            if let Some(p) = self.builder.po().predecessor(li, cchain) {
                                let i = cps.partition_point(|&x| x <= p);
                                if i > 0 {
                                    let c2 = NodeId::new(cchain, cps[i - 1]);
                                    if c2 != cs && self.apply(c2, cs) {
                                        changed = true;
                                    }
                                    if self.inconsistent {
                                        break 'loads;
                                    }
                                }
                            }
                            // (b) The earliest same-variable commit
                            // reachable from the observed store's
                            // commit must come after the load.
                            if let Some(su) = self.builder.po().successor(cs, cchain) {
                                let mut i = cps.partition_point(|&x| x < su);
                                if i < cps.len() && NodeId::new(cchain, cps[i]) == cs {
                                    i += 1;
                                }
                                if i < cps.len() {
                                    let c2 = NodeId::new(cchain, cps[i]);
                                    if self.apply(li, c2) {
                                        changed = true;
                                    }
                                    if self.inconsistent {
                                        break 'loads;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if !changed || self.rounds >= self.cfg.max_rounds {
                break;
            }
        }
        self.commits_at = commits_at;
    }

    /// Enforces `from → to`, tracking insertions and contradictions.
    fn apply(&mut self, from: NodeId, to: NodeId) -> bool {
        match self.builder.require_logged(from, to) {
            OrderOutcome::Inserted => {
                self.inserted += 1;
                true
            }
            OrderOutcome::AlreadyOrdered => false,
            OrderOutcome::Contradiction => {
                self.inconsistent = true;
                false
            }
        }
    }

    fn retire(&mut self) {
        self.builder.retire_window();
        self.commit_of.clear();
        self.commits_at.clear();
        self.loads.clear();
    }
}

impl<P: PartialOrderIndex> Analysis for TsoChecker<P> {
    type Cfg = TsoCheckCfg;
    type Report = TsoReport<P>;

    fn new(cfg: Self::Cfg) -> Self {
        TsoChecker {
            builder: BaseOrderBuilder::counting(cfg.window),
            cfg,
            store_count: Vec::new(),
            writer_of_value: HashMap::new(),
            commit_of: HashMap::new(),
            commits_at: HashMap::new(),
            loads: Vec::new(),
            inconsistent: false,
            inserted: 0,
            rounds: 0,
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        let id = self.builder.feed(thread, event);
        if thread.index() >= self.store_count.len() {
            self.store_count.resize(thread.index() + 1, 0);
        }
        match event {
            EventKind::Write { var, value } => {
                let c = commit(thread, self.store_count[thread.index()]);
                self.store_count[thread.index()] += 1;
                self.commit_of.insert(id, c);
                self.writer_of_value.insert(value, (id, var));
                self.commits_at
                    .entry((var, thread.index()))
                    .or_default()
                    .push(c.pos);
                // Base edge: issue(s) → commit(s).
                self.builder
                    .insert_logged(issue(id), c)
                    .expect("issue → commit is valid");
                self.inserted += 1;
            }
            EventKind::Read { var, value } => {
                self.loads.push((id, var, value));
                // Reads-from edge: remote reads happen after the
                // commit (the initial value needs none).
                if value != 0 {
                    match self.writer_of_value.get(&value) {
                        None => self.inconsistent = true, // value from nowhere
                        Some(&(s, wvar)) => {
                            if wvar != var {
                                self.inconsistent = true;
                            } else if s.thread != thread {
                                if let Some(&c) = self.commit_of.get(&s) {
                                    self.apply(c, issue(id));
                                }
                                // A retired writer is a cross-window
                                // observation: no constraint.
                            } else if s.pos >= id.pos {
                                self.inconsistent = true; // future store
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        self.builder
            .note_buffered(self.loads.len() + self.commit_of.len());
        if self.builder.window_full() {
            self.fixpoint();
            self.retire();
        }
    }

    fn finish(mut self) -> TsoReport<P> {
        self.fixpoint();
        TsoReport {
            consistent: !self.inconsistent,
            inserted: self.inserted,
            rounds: self.rounds,
            window: self.builder.stats(),
            po: self.builder.into_po(),
        }
    }
}

/// Runs the TSO consistency check over a history of plain reads and
/// writes with unique written values (as produced by
/// [`csst_trace::gen::tso_history`]). Non-access events are ignored.
/// A thin wrapper streaming the trace through [`TsoChecker`].
pub fn check<P: PartialOrderIndex>(trace: &Trace, cfg: &TsoCheckCfg) -> TsoReport<P> {
    TsoChecker::<P>::run(trace, cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{tso_history, TsoCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn generated_histories_are_consistent() {
        for seed in 0..5 {
            let trace = tso_history(&csst_trace::gen::TsoCfg {
                threads: 4,
                events_per_thread: 120,
                vars: 4,
                seed,
                ..Default::default()
            });
            let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
            assert!(r.consistent, "seed {seed}: TSO machine output rejected");
            assert!(r.inserted > 0);
        }
    }

    #[test]
    fn coherence_violation_detected() {
        // T0: w(x,1). T1: r(x,1); r(x,0) — reading the initial value
        // after the new one violates coherence.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).write(x, 1);
        b.on(1).read(x, 1);
        b.on(1).read(x, 0);
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(!r.consistent);
    }

    #[test]
    fn store_buffering_is_allowed() {
        // The classic SB litmus outcome r1 = r2 = 0 IS allowed on TSO:
        // T0: w(x,1); r(y,0). T1: w(y,1); r(x,0).
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1);
        b.on(0).read(y, 0);
        b.on(1).write(y, 2);
        b.on(1).read(x, 0);
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(r.consistent, "SB relaxed outcome must be TSO-consistent");
    }

    #[test]
    fn value_from_wrong_variable_rejected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1);
        b.on(1).read(y, 1); // value 1 was written to x, not y
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(!r.consistent);
    }

    #[test]
    fn forwarding_from_future_store_rejected() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.on(0).read(x, 1); // reads own store that has not issued yet
        b.on(0).write(x, 1);
        let trace = b.build();
        let r = check::<IncrementalCsst>(&trace, &TsoCheckCfg::default());
        assert!(!r.consistent);
    }

    #[test]
    fn representations_agree() {
        for seed in 0..3 {
            let trace = tso_history(&TsoCfg {
                threads: 3,
                events_per_thread: 80,
                vars: 3,
                seed,
                ..Default::default()
            });
            let cfg = TsoCheckCfg::default();
            let a = check::<IncrementalCsst>(&trace, &cfg);
            let b = check::<SegTreeIndex>(&trace, &cfg);
            let c = check::<VectorClockIndex>(&trace, &cfg);
            let d = check::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.consistent, b.consistent);
            assert_eq!(a.consistent, c.consistent);
            assert_eq!(a.consistent, d.consistent);
            assert_eq!(a.inserted, b.inserted, "same op sequence");
        }
    }
}
