//! UFO-style use-after-free query generation (Table 5).
//!
//! UFO \[Huang 2018\] is an SMT-based predictive detector: it encodes
//! reorderings as constraints and asks a solver whether a use can
//! follow a free. The expensive pre-solver phase — the one the paper
//! measures — relies on partial-order reasoning to *generate* the SMT
//! queries: for every (alloc, use, free) triple it issues reachability
//! queries to prune infeasible candidates and to collect the ordering
//! constraints that must be encoded.
//!
//! Unlike the ConVulPOE core ([`crate::membug`]), this analysis is
//! query-dominated: one saturated base order, then a large batch of
//! `reachable`/`predecessor` queries and constraint counting, with few
//! further insertions. This matches the paper's observation that the
//! UFO speedups are more modest — the data structure is a smaller
//! fraction of the total work.
//!
//! **Classification:** predictive. *Detects* (generates SMT queries
//! for) use-after-free candidates the partial order cannot refute.
//! *Base order:* the observation (fork/join + reads-from) built online
//! per event, saturated to a fixpoint before query generation.
//! *Buffering:* buffered query generation at `finish`, or **windowed**
//! via [`UafCfg::window`].
//!
//! ```
//! use csst_analyses::uaf::{self, UafCfg};
//! use csst_core::IncrementalCsst;
//! use csst_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! let o = b.obj("o");
//! b.on(0).alloc(o);
//! b.on(0).deref(o, true);
//! b.on(1).free(o);
//! let report = uaf::generate::<IncrementalCsst>(&b.build(), &UafCfg::default());
//! assert_eq!(report.candidates.len(), 1);
//! ```

use crate::common::{BaseOrderBuilder, WindowStats};
use crate::saturation::{saturate, ClosureCtx, SaturationCfg};
use crate::Analysis;
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, ObjId, Trace};
use std::collections::HashMap;

/// One candidate use-after-free pair to be encoded for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UafCandidate {
    /// The object.
    pub obj: ObjId,
    /// The dereference.
    pub use_event: NodeId,
    /// The free.
    pub free_event: NodeId,
    /// Number of ordering constraints the encoding would emit for this
    /// pair (the size of the frontier between the two events).
    pub constraints: usize,
}

/// Configuration of [`generate`].
#[derive(Debug, Clone, Default)]
pub struct UafCfg {
    /// Saturation settings for the base order.
    pub saturation: SaturationCfg,
    /// Tumbling-window size bounding the event buffer; `None` buffers
    /// the whole stream. See the [`Analysis`] soundness contract.
    pub window: Option<usize>,
}

/// Result of the query-generation phase.
#[derive(Debug, Clone)]
pub struct UafReport<P> {
    /// The saturated base partial order (final window's edges only in
    /// windowed runs).
    pub base: P,
    /// Candidate pairs surviving the partial-order pruning (global
    /// event ids).
    pub candidates: Vec<UafCandidate>,
    /// Pairs pruned because the base order already orders them.
    pub pruned: usize,
    /// Total constraints across all candidates.
    pub total_constraints: usize,
    /// Streaming/windowing counters of the run.
    pub window: WindowStats,
}

/// Streaming form of [`generate`]: the observation base order (fork/
/// join + reads-from) grows per event inside `feed`; the saturation
/// fixpoint and the query generation run over the buffered events at
/// `finish` — or per window when [`UafCfg::window`] bounds the buffer.
#[derive(Debug)]
pub struct UafGenerator<P> {
    cfg: UafCfg,
    builder: BaseOrderBuilder<P>,
    candidates: Vec<UafCandidate>,
    pruned: usize,
    total_constraints: usize,
}

impl<P: PartialOrderIndex> UafGenerator<P> {
    fn analyze_window(&mut self) {
        let (trace, mut win) = self.builder.split();
        if trace.total_events() == 0 {
            return;
        }
        // Saturate the incrementally built observation order up to the
        // fixpoint the UFO encoding assumes (the fork/join and rf edges
        // are already in place from `feed`).
        let ctx = ClosureCtx::new(trace, None);
        let out = saturate(&mut win, &ctx, &self.cfg.saturation);
        debug_assert!(out.consistent);

        #[derive(Default)]
        struct Life {
            frees: Vec<NodeId>,
            uses: Vec<NodeId>,
        }
        let mut lives: HashMap<ObjId, Life> = HashMap::new();
        for (id, ev) in trace.iter_order() {
            match ev.kind {
                EventKind::Free { obj } => lives.entry(obj).or_default().frees.push(id),
                EventKind::Deref { obj, .. } => lives.entry(obj).or_default().uses.push(id),
                _ => {}
            }
        }
        let mut objs: Vec<(&ObjId, &Life)> = lives.iter().collect();
        objs.sort_unstable_by_key(|(o, _)| **o);

        // This phase is query-dominated (the paper's Table 5 point), so
        // all of it goes through the batched API: reachability pruning
        // prefetches both directions per chunk, and the surviving
        // pairs' 2k-per-pair predecessor frontiers are fetched in one
        // batch per chunk.
        let k = trace.num_threads();
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut probes: Vec<(NodeId, NodeId)> = Vec::new();
        let mut ordered: Vec<bool> = Vec::new();
        let mut pred_probes: Vec<(NodeId, ThreadId)> = Vec::new();
        let mut preds = Vec::new();
        let mut survivors: Vec<usize> = Vec::new();
        for (&obj, life) in objs {
            pairs.clear();
            for &f in &life.frees {
                for &u in &life.uses {
                    if u.thread == f.thread {
                        self.pruned += 1; // program order decides
                    } else {
                        pairs.push((u, f));
                    }
                }
            }
            for chunk in pairs.chunks(64) {
                probes.clear();
                for &(u, f) in chunk {
                    probes.push((u, f));
                    probes.push((f, u));
                }
                win.reachable_batch(&probes, &mut ordered);
                // Constraint counting: the encoding relates the
                // per-thread frontiers of the two events — for every
                // thread, the latest event that must precede `u` and
                // the latest that must precede `f` (predecessor
                // queries), each becoming an ordering constraint.
                pred_probes.clear();
                survivors.clear();
                for (ci, &(u, f)) in chunk.iter().enumerate() {
                    if ordered[2 * ci] || ordered[2 * ci + 1] {
                        self.pruned += 1;
                        continue;
                    }
                    survivors.push(ci);
                    for t in 0..k {
                        pred_probes.push((u, ThreadId(t as u32)));
                        pred_probes.push((f, ThreadId(t as u32)));
                    }
                }
                win.predecessor_batch(&pred_probes, &mut preds);
                for (si, &ci) in survivors.iter().enumerate() {
                    let (u, f) = chunk[ci];
                    let constraints = preds[si * 2 * k..(si + 1) * 2 * k]
                        .iter()
                        .filter(|p| p.is_some())
                        .count();
                    self.total_constraints += constraints;
                    self.candidates.push(UafCandidate {
                        obj,
                        use_event: win.to_global(u),
                        free_event: win.to_global(f),
                        constraints,
                    });
                }
            }
        }
    }
}

impl<P: PartialOrderIndex> Analysis for UafGenerator<P> {
    type Cfg = UafCfg;
    type Report = UafReport<P>;

    fn new(cfg: Self::Cfg) -> Self {
        UafGenerator {
            builder: BaseOrderBuilder::observing(cfg.window),
            cfg,
            candidates: Vec::new(),
            pruned: 0,
            total_constraints: 0,
        }
    }

    fn feed(&mut self, thread: ThreadId, event: EventKind) {
        self.builder.feed(thread, event);
        if self.builder.window_full() {
            self.analyze_window();
            self.builder.retire_window();
        }
    }

    fn finish(mut self) -> UafReport<P> {
        self.analyze_window();
        UafReport {
            candidates: self.candidates,
            pruned: self.pruned,
            total_constraints: self.total_constraints,
            window: self.builder.stats(),
            base: self.builder.into_po(),
        }
    }
}

/// Runs the UFO-style query generation over `trace`: a thin wrapper
/// streaming the trace through [`UafGenerator`].
pub fn generate<P: PartialOrderIndex>(trace: &Trace, cfg: &UafCfg) -> UafReport<P> {
    UafGenerator::<P>::run(trace, cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{alloc_program, AllocProgramCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn unsynchronized_pair_becomes_candidate() {
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        b.on(0).alloc(o);
        b.on(0).deref(o, true);
        b.on(1).free(o);
        let trace = b.build();
        let r = generate::<IncrementalCsst>(&trace, &UafCfg::default());
        assert_eq!(r.candidates.len(), 1);
        assert_eq!(r.pruned, 0);
        assert!(r.total_constraints >= 1);
    }

    #[test]
    fn ordered_pair_is_pruned() {
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        let x = b.var("flag");
        b.on(0).alloc(o);
        b.on(0).deref(o, false);
        b.on(0).write(x, 1);
        b.on(1).read(x, 1);
        b.on(1).free(o);
        let trace = b.build();
        let r = generate::<IncrementalCsst>(&trace, &UafCfg::default());
        assert!(r.candidates.is_empty());
        assert_eq!(r.pruned, 1);
    }

    #[test]
    fn representations_agree() {
        for seed in 0..3 {
            let trace = alloc_program(&AllocProgramCfg {
                threads: 4,
                objects: 25,
                derefs_per_object: 5,
                protected_frac: 0.3,
                seed,
                ..Default::default()
            });
            let cfg = UafCfg::default();
            let a = generate::<IncrementalCsst>(&trace, &cfg);
            let b = generate::<SegTreeIndex>(&trace, &cfg);
            let c = generate::<VectorClockIndex>(&trace, &cfg);
            let d = generate::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.candidates, b.candidates, "seed {seed}");
            assert_eq!(a.candidates, c.candidates, "seed {seed}");
            assert_eq!(a.candidates, d.candidates, "seed {seed}");
            assert_eq!(a.pruned, b.pruned);
            assert_eq!(a.total_constraints, d.total_constraints);
        }
    }
}
