//! UFO-style use-after-free query generation (Table 5).
//!
//! UFO \[Huang 2018\] is an SMT-based predictive detector: it encodes
//! reorderings as constraints and asks a solver whether a use can
//! follow a free. The expensive pre-solver phase — the one the paper
//! measures — relies on partial-order reasoning to *generate* the SMT
//! queries: for every (alloc, use, free) triple it issues reachability
//! queries to prune infeasible candidates and to collect the ordering
//! constraints that must be encoded.
//!
//! Unlike the ConVulPOE core ([`crate::membug`]), this analysis is
//! query-dominated: one saturated base order, then a large batch of
//! `reachable`/`predecessor` queries and constraint counting, with few
//! further insertions. This matches the paper's observation that the
//! UFO speedups are more modest — the data structure is a smaller
//! fraction of the total work.

use crate::common::index_for_trace;
use crate::saturation::{saturate_observed, SaturationCfg};
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, ObjId, Trace};
use std::collections::HashMap;

/// One candidate use-after-free pair to be encoded for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UafCandidate {
    /// The object.
    pub obj: ObjId,
    /// The dereference.
    pub use_event: NodeId,
    /// The free.
    pub free_event: NodeId,
    /// Number of ordering constraints the encoding would emit for this
    /// pair (the size of the frontier between the two events).
    pub constraints: usize,
}

/// Configuration of [`generate`].
#[derive(Debug, Clone, Default)]
pub struct UafCfg {
    /// Saturation settings for the base order.
    pub saturation: SaturationCfg,
}

/// Result of the query-generation phase.
#[derive(Debug, Clone)]
pub struct UafReport<P> {
    /// The saturated base partial order.
    pub base: P,
    /// Candidate pairs surviving the partial-order pruning.
    pub candidates: Vec<UafCandidate>,
    /// Pairs pruned because the base order already orders them.
    pub pruned: usize,
    /// Total constraints across all candidates.
    pub total_constraints: usize,
}

crate::analysis::buffered_analysis! {
    /// Streaming form of [`generate`]: buffers the event stream and
    /// runs the UFO-style query generation at `finish`.
    UafGenerator { cfg: UafCfg, report: UafReport<P>, batch: generate_buffered }
}

/// Runs the UFO-style query generation over `trace`: a thin wrapper
/// streaming the trace through [`UafGenerator`].
pub fn generate<P: PartialOrderIndex>(trace: &Trace, cfg: &UafCfg) -> UafReport<P> {
    use crate::Analysis;
    UafGenerator::<P>::run(trace, cfg.clone())
}

fn generate_buffered<P: PartialOrderIndex>(trace: &Trace, cfg: &UafCfg) -> UafReport<P> {
    let mut base: P = index_for_trace(trace);
    let out = saturate_observed(&mut base, trace, &cfg.saturation);
    debug_assert!(out.consistent);

    #[derive(Default)]
    struct Life {
        frees: Vec<NodeId>,
        uses: Vec<NodeId>,
    }
    let mut lives: HashMap<ObjId, Life> = HashMap::new();
    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Free { obj } => lives.entry(obj).or_default().frees.push(id),
            EventKind::Deref { obj, .. } => lives.entry(obj).or_default().uses.push(id),
            _ => {}
        }
    }
    let mut objs: Vec<(&ObjId, &Life)> = lives.iter().collect();
    objs.sort_unstable_by_key(|(o, _)| **o);

    let k = trace.num_threads();
    let mut candidates = Vec::new();
    let mut pruned = 0usize;
    let mut total_constraints = 0usize;
    for (&obj, life) in objs {
        for &f in &life.frees {
            for &u in &life.uses {
                if u.thread == f.thread || base.reachable(u, f) || base.reachable(f, u) {
                    pruned += 1;
                    continue;
                }
                // Constraint counting: the encoding relates the
                // per-thread frontiers of the two events — for every
                // thread, the latest event that must precede `u` and
                // the latest that must precede `f` (predecessor
                // queries), each becoming an ordering constraint.
                let mut constraints = 0usize;
                for t in 0..k {
                    let tid = ThreadId(t as u32);
                    if base.predecessor(u, tid).is_some() {
                        constraints += 1;
                    }
                    if base.predecessor(f, tid).is_some() {
                        constraints += 1;
                    }
                }
                total_constraints += constraints;
                candidates.push(UafCandidate {
                    obj,
                    use_event: u,
                    free_event: f,
                    constraints,
                });
            }
        }
    }

    UafReport {
        base,
        candidates,
        pruned,
        total_constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_core::{GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
    use csst_trace::gen::{alloc_program, AllocProgramCfg};
    use csst_trace::TraceBuilder;

    #[test]
    fn unsynchronized_pair_becomes_candidate() {
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        b.on(0).alloc(o);
        b.on(0).deref(o, true);
        b.on(1).free(o);
        let trace = b.build();
        let r = generate::<IncrementalCsst>(&trace, &UafCfg::default());
        assert_eq!(r.candidates.len(), 1);
        assert_eq!(r.pruned, 0);
        assert!(r.total_constraints >= 1);
    }

    #[test]
    fn ordered_pair_is_pruned() {
        let mut b = TraceBuilder::new();
        let o = b.obj("o");
        let x = b.var("flag");
        b.on(0).alloc(o);
        b.on(0).deref(o, false);
        b.on(0).write(x, 1);
        b.on(1).read(x, 1);
        b.on(1).free(o);
        let trace = b.build();
        let r = generate::<IncrementalCsst>(&trace, &UafCfg::default());
        assert!(r.candidates.is_empty());
        assert_eq!(r.pruned, 1);
    }

    #[test]
    fn representations_agree() {
        for seed in 0..3 {
            let trace = alloc_program(&AllocProgramCfg {
                threads: 4,
                objects: 25,
                derefs_per_object: 5,
                protected_frac: 0.3,
                seed,
                ..Default::default()
            });
            let cfg = UafCfg::default();
            let a = generate::<IncrementalCsst>(&trace, &cfg);
            let b = generate::<SegTreeIndex>(&trace, &cfg);
            let c = generate::<VectorClockIndex>(&trace, &cfg);
            let d = generate::<GraphIndex>(&trace, &cfg);
            assert_eq!(a.candidates, b.candidates, "seed {seed}");
            assert_eq!(a.candidates, c.candidates, "seed {seed}");
            assert_eq!(a.candidates, d.candidates, "seed {seed}");
            assert_eq!(a.pruned, b.pruned);
            assert_eq!(a.total_constraints, d.total_constraints);
        }
    }
}
