//! End-to-end analysis runs — one benchmark per entry of the analysis
//! registry, each on its own demo workload, for tracking regressions
//! of the whole pipeline.
//!
//! Analyses are discovered through `csst_analyses::registry`, so a new
//! analysis registered there is benchmarked here with no changes.

use criterion::{criterion_group, criterion_main, Criterion};
use csst_analyses::registry::{self, IndexKind};

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_e2e");
    group.sample_size(10);

    for entry in registry::entries() {
        let trace = entry.demo_trace();
        group.bench_function(entry.name, |b| {
            b.iter(|| {
                entry
                    .run(&trace, IndexKind::Csst, None)
                    .expect("demo workload runs on CSSTs")
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
