//! End-to-end analysis runs with CSSTs — small fixed workloads per
//! analysis, for tracking regressions of the whole pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use csst_analyses::{c11, deadlock, linearizability, membug, race, tso, uaf};
use csst_core::{Csst, IncrementalCsst};
use csst_trace::gen::{
    alloc_program, c11_program, lock_program, object_history, racy_program, tso_history,
    AllocProgramCfg, C11Cfg, LockProgramCfg, ObjectHistoryCfg, RacyProgramCfg, TsoCfg,
};

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_e2e");
    group.sample_size(10);

    let racy = racy_program(&RacyProgramCfg {
        threads: 8,
        events_per_thread: 2_000,
        shared_frac: 0.1,
        ..Default::default()
    });
    group.bench_function("race_prediction", |b| {
        let cfg = race::RaceCfg {
            max_candidates: 8,
            ..Default::default()
        };
        b.iter(|| race::predict::<IncrementalCsst>(&racy, &cfg));
    });

    let locks = lock_program(&LockProgramCfg {
        threads: 6,
        blocks_per_thread: 400,
        inversion_frac: 0.1,
        ..Default::default()
    });
    group.bench_function("deadlock_prediction", |b| {
        let cfg = deadlock::DeadlockCfg {
            max_patterns: 8,
            ..Default::default()
        };
        b.iter(|| deadlock::predict::<IncrementalCsst>(&locks, &cfg));
    });

    let allocs = alloc_program(&AllocProgramCfg {
        threads: 6,
        objects: 600,
        ..Default::default()
    });
    group.bench_function("membug_prediction", |b| {
        let cfg = membug::MemBugCfg {
            max_candidates: 8,
            ..Default::default()
        };
        b.iter(|| membug::predict::<IncrementalCsst>(&allocs, &cfg));
    });
    group.bench_function("uaf_generation", |b| {
        let cfg = uaf::UafCfg::default();
        b.iter(|| uaf::generate::<IncrementalCsst>(&allocs, &cfg));
    });

    let tso_trace = tso_history(&TsoCfg {
        threads: 6,
        events_per_thread: 800,
        ..Default::default()
    });
    group.bench_function("tso_check", |b| {
        let cfg = tso::TsoCheckCfg::default();
        b.iter(|| tso::check::<IncrementalCsst>(&tso_trace, &cfg));
    });

    let c11_trace = c11_program(&C11Cfg {
        threads: 8,
        events_per_thread: 3_000,
        middle_sync_frac: 0.1,
        ..Default::default()
    });
    group.bench_function("c11_detection", |b| {
        let cfg = c11::C11Cfg::default();
        b.iter(|| c11::detect::<IncrementalCsst>(&c11_trace, &cfg));
    });

    let history = object_history(&ObjectHistoryCfg {
        threads: 3,
        ops_per_thread: 150,
        violation: true,
        ..Default::default()
    });
    group.bench_function("linearizability_root_cause", |b| {
        let cfg = linearizability::LinCfg::default();
        b.iter(|| linearizability::analyze::<Csst>(&history, &cfg));
    });

    group.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
