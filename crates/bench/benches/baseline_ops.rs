//! Per-operation costs of the baselines (VCs, anchored VCs, STs,
//! Graphs) against incremental CSSTs — the microscopic view behind
//! Figure 11 and the Table 7 Graphs comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_core::{
    AnchoredVectorClockIndex, GraphIndex, IncrementalCsst, NodeId, PartialOrderIndex, SegTreeIndex,
    VectorClockIndex,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ELL: u32 = 50_000;
const WINDOW: u32 = 5_000;
const K: u32 = 10;

fn random_edge(rng: &mut SmallRng) -> (NodeId, NodeId) {
    let t1 = rng.gen_range(0..K);
    let mut t2 = rng.gen_range(0..K);
    while t2 == t1 {
        t2 = rng.gen_range(0..K);
    }
    let i = rng.gen_range(0..ELL);
    let lo = i.saturating_sub(WINDOW);
    let hi = (i + WINDOW).min(ELL - 1);
    (NodeId::new(t1, i), NodeId::new(t2, rng.gen_range(lo..=hi)))
}

fn prefill<P: PartialOrderIndex>(edges: usize, seed: u64) -> (P, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut po = P::with_capacity(K as usize, ELL as usize);
    let mut n = 0;
    while n < edges {
        let (u, v) = random_edge(&mut rng);
        if !po.reachable(u, v) && !po.reachable(v, u) {
            po.insert_edge(u, v).expect("valid edge");
            n += 1;
        }
    }
    (po, rng)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/insert_unordered");
    group.sample_size(15);

    fn run<P: PartialOrderIndex>(b: &mut criterion::Bencher<'_>) {
        let (mut po, mut rng) = prefill::<P>(1000, 3);
        b.iter(|| {
            let (u, v) = random_edge(&mut rng);
            if !po.reachable(u, v) && !po.reachable(v, u) {
                po.insert_edge(u, v).expect("valid edge");
            }
        });
    }
    group.bench_function(BenchmarkId::new("CSSTs", K), run::<IncrementalCsst>);
    group.bench_function(BenchmarkId::new("STs", K), run::<SegTreeIndex>);
    group.bench_function(BenchmarkId::new("VCs", K), run::<VectorClockIndex>);
    group.bench_function(BenchmarkId::new("aVCs", K), run::<AnchoredVectorClockIndex>);
    group.bench_function(BenchmarkId::new("Graphs", K), run::<GraphIndex>);
    group.finish();
}

fn bench_reachable(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/reachable");
    group.sample_size(15);

    fn run<P: PartialOrderIndex>(b: &mut criterion::Bencher<'_>) {
        let (po, mut rng) = prefill::<P>(3000, 5);
        b.iter(|| {
            let (u, v) = random_edge(&mut rng);
            po.reachable(u, v)
        });
    }
    group.bench_function(BenchmarkId::new("CSSTs", K), run::<IncrementalCsst>);
    group.bench_function(BenchmarkId::new("STs", K), run::<SegTreeIndex>);
    group.bench_function(BenchmarkId::new("VCs", K), run::<VectorClockIndex>);
    group.bench_function(BenchmarkId::new("aVCs", K), run::<AnchoredVectorClockIndex>);
    group.bench_function(BenchmarkId::new("Graphs", K), run::<GraphIndex>);
    group.finish();
}

criterion_group!(benches, bench_insert, bench_reachable);
criterion_main!(benches);
