//! Per-operation costs of the two CSST variants (Theorems 1 and 2):
//! fully dynamic insert/delete/reachable vs incremental insert and
//! single-lookup queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_core::{Csst, IncrementalCsst, NodeId, PartialOrderIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ELL: u32 = 100_000;
const WINDOW: u32 = 10_000;

fn random_edge(rng: &mut SmallRng, k: u32) -> (NodeId, NodeId) {
    let t1 = rng.gen_range(0..k);
    let mut t2 = rng.gen_range(0..k);
    while t2 == t1 {
        t2 = rng.gen_range(0..k);
    }
    let i = rng.gen_range(0..ELL);
    let lo = i.saturating_sub(WINDOW);
    let hi = (i + WINDOW).min(ELL - 1);
    (NodeId::new(t1, i), NodeId::new(t2, rng.gen_range(lo..=hi)))
}

fn prefill<P: PartialOrderIndex>(k: u32, edges: usize, seed: u64) -> (P, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut po = P::with_capacity(k as usize, ELL as usize);
    let mut n = 0;
    while n < edges {
        let (u, v) = random_edge(&mut rng, k);
        if !po.reachable(u, v) && !po.reachable(v, u) {
            po.insert_edge(u, v).expect("valid edge");
            n += 1;
        }
    }
    (po, rng)
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("csst/insert");
    group.sample_size(20);
    for &k in &[4u32, 10, 20] {
        group.bench_with_input(BenchmarkId::new("dynamic", k), &k, |b, &k| {
            let (mut po, mut rng) = prefill::<Csst>(k, 2000, 7);
            b.iter(|| {
                let (u, v) = random_edge(&mut rng, k);
                if !po.reachable(u, v) && !po.reachable(v, u) {
                    po.insert_edge(u, v).expect("valid edge");
                    po.delete_edge(u, v).expect("undo"); // keep size stable
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", k), &k, |b, &k| {
            let (mut po, mut rng) = prefill::<IncrementalCsst>(k, 2000, 7);
            b.iter(|| {
                let (u, v) = random_edge(&mut rng, k);
                if !po.reachable(u, v) && !po.reachable(v, u) {
                    po.insert_edge(u, v).expect("valid edge");
                }
            });
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("csst/reachable");
    group.sample_size(20);
    for &k in &[4u32, 10, 20] {
        group.bench_with_input(BenchmarkId::new("dynamic", k), &k, |b, &k| {
            let (po, mut rng) = prefill::<Csst>(k, 2000, 9);
            b.iter(|| {
                let (u, v) = random_edge(&mut rng, k);
                po.reachable(u, v)
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental", k), &k, |b, &k| {
            let (po, mut rng) = prefill::<IncrementalCsst>(k, 2000, 9);
            b.iter(|| {
                let (u, v) = random_edge(&mut rng, k);
                po.reachable(u, v)
            });
        });
    }
    group.finish();
}

fn bench_deletes(c: &mut Criterion) {
    let mut group = c.benchmark_group("csst/delete_insert_roundtrip");
    group.sample_size(20);
    group.bench_function("dynamic_k10", |b| {
        let (mut po, mut rng) = prefill::<Csst>(10, 2000, 11);
        // Collect a pool of live edges to delete/reinsert.
        let mut pool = Vec::new();
        while pool.len() < 512 {
            let (u, v) = random_edge(&mut rng, 10);
            if !po.reachable(u, v) && !po.reachable(v, u) {
                po.insert_edge(u, v).expect("valid edge");
                pool.push((u, v));
            }
        }
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = pool[i % pool.len()];
            po.delete_edge(u, v).expect("live edge");
            po.insert_edge(u, v).expect("valid edge");
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_queries, bench_deletes);
criterion_main!(benches);
