//! Delete-heavy churn: per-event *sliding* retirement (the ROADMAP
//! open item's workload).
//!
//! The tumbling-window layer retires whole windows at once; the
//! scalability story wants per-event retirement, where every arriving
//! edge evicts the oldest live one — `delete_edge` runs at the same
//! rate as `insert_edge`, forever. This bench measures exactly that
//! steady state for the two fully dynamic representations, at several
//! window sizes, so the flat edge-heap layout's deletion win is
//! measured rather than asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_bench::perf::streaming_edges;
use csst_core::{Csst, GraphIndex, PartialOrderIndex};

const K: u32 = 10;
const GAP: u32 = 64;

fn bench_sliding_retirement(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn/slide");
    group.sample_size(20);
    for &window in &[512usize, 4096] {
        group.bench_with_input(BenchmarkId::new("csst", window), &window, |b, &window| {
            run_churn::<Csst>(b, window);
        });
        group.bench_with_input(BenchmarkId::new("graph", window), &window, |b, &window| {
            run_churn::<GraphIndex>(b, window);
        });
    }
    group.finish();
}

fn run_churn<P: PartialOrderIndex>(b: &mut criterion::Bencher<'_>, window: usize) {
    // A long circular edge stream (the same acyclic generator as the
    // `repro -- bench` harness, so the two churn numbers compare); the
    // bench body advances a sliding frontier through it, wrapping
    // around (deleting the edge again before re-inserting keeps the
    // wrap consistent).
    let stream = streaming_edges(K, window * 8, GAP, 0x51D3);
    let mut po = P::with_capacity(K as usize, stream.len() + GAP as usize + 1);
    for &(u, v) in &stream[..window] {
        po.insert_edge(u, v).expect("prefill edge");
    }
    let mut head = window; // next edge to insert
    let mut tail = 0usize; // oldest live edge
    b.iter(|| {
        let (u, v) = stream[head % stream.len()];
        // On wrap-around the slot is occupied by the previous lap;
        // parallel-edge support makes double-insert safe, but keeping
        // exactly `window` live edges keeps the measurement honest.
        po.insert_edge(u, v).expect("frontier edge");
        let (du, dv) = stream[tail % stream.len()];
        po.delete_edge(du, dv).expect("oldest edge is live");
        head += 1;
        tail += 1;
    });
}

criterion_group!(benches, bench_sliding_retirement);
criterion_main!(benches);
