//! Cost of capacity-free growth: building a partial order by
//! streaming `append` + inserts into an empty index versus the same
//! workload on a `with_capacity`-presized index.
//!
//! This tracks the amortized-doubling overhead of the growable domain:
//! sparse structures (CSSTs) should show near-zero gap, dense segment
//! trees pay their `O(log n)` rebuilds, and vector clocks only the
//! strided-clock widening.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_core::{Csst, IncrementalCsst, NodeId, PartialOrderIndex, SegTreeIndex, VectorClockIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const K: u32 = 8;
const EVENTS_PER_CHAIN: u32 = 20_000;
/// One cross edge every `EDGE_EVERY` appended events, window-local.
const EDGE_EVERY: u32 = 64;
const WINDOW: u32 = 2_000;

/// Streams `K` chains of `per_chain` events into `po`, inserting a
/// window-local cross edge every few appends — the online pattern the
/// capacity-free API serves.
fn drive<P: PartialOrderIndex>(po: &mut P, per_chain: u32, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..per_chain {
        for t in 0..K {
            let node = po.append(t);
            if i > 0 && node.pos % EDGE_EVERY == t {
                let mut t2 = rng.gen_range(0..K);
                while t2 == t {
                    t2 = rng.gen_range(0..K);
                }
                // Strictly later position on another chain: every edge
                // increases the position, so the relation stays acyclic
                // (required — insert-only indexes do no cycle check).
                let to = NodeId::new(t2, node.pos + 1 + rng.gen_range(0..WINDOW));
                let _ = po.insert_edge(node, to);
            }
        }
    }
}

fn bench_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("growth/append_vs_presized");
    group.sample_size(10);

    fn pair<P: PartialOrderIndex>(
        group: &mut criterion::BenchmarkGroup<'_>,
        name: &str,
        per_chain: u32,
    ) {
        group.bench_function(BenchmarkId::new(name, "grown"), |b| {
            b.iter(|| {
                let mut po = P::new();
                drive(&mut po, per_chain, 7);
                po.memory_bytes()
            });
        });
        group.bench_function(BenchmarkId::new(name, "presized"), |b| {
            b.iter(|| {
                let mut po = P::with_capacity(K as usize, (per_chain + WINDOW + 2) as usize);
                drive(&mut po, per_chain, 7);
                po.memory_bytes()
            });
        });
    }

    pair::<IncrementalCsst>(&mut group, "incremental_csst", EVENTS_PER_CHAIN);
    pair::<Csst>(&mut group, "dynamic_csst", EVENTS_PER_CHAIN);
    pair::<SegTreeIndex>(&mut group, "segtree", EVENTS_PER_CHAIN / 4);
    pair::<VectorClockIndex>(&mut group, "vector_clock", EVENTS_PER_CHAIN / 4);

    group.finish();
}

criterion_group!(benches, bench_growth);
criterion_main!(benches);
