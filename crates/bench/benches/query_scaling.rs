//! Query scaling: successor / predecessor / reachable versus the chain
//! count `k` and the edge density.
//!
//! The sparse worklist query engine's pitch is that query cost tracks
//! the *live* chain-pair structure, not the `O(k³)` worst case. This
//! bench makes that claim measurable: each group fixes a query kind and
//! sweeps `k ∈ {4, 16, 64}` at two edge densities ("sparse" populates
//! roughly one edge per chain pair; "dense" two orders of magnitude
//! more), comparing the fully dynamic CSST against the graph and
//! vector-clock baselines. Probes are the deterministic mix of the
//! `repro -- bench` harness so the two report comparable shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_bench::perf::streaming_edges;
use csst_core::{Csst, GraphIndex, NodeId, PartialOrderIndex, VectorClockIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const GAP: u32 = 64;
const PROBES: usize = 256;

/// Edge counts per density label: "sparse" ≈ one edge per ordered chain
/// pair at k = 64, "dense" saturates every pair many times over.
const DENSITIES: &[(&str, usize)] = &[("sparse", 4_096), ("dense", 24_576)];

fn prefilled<P: PartialOrderIndex>(k: u32, edges: usize) -> P {
    let mut po = P::with_capacity(k as usize, edges + GAP as usize);
    for &(u, v) in &streaming_edges(k, edges, GAP, 0xC557 ^ u64::from(k)) {
        po.insert_edge(u, v).expect("scaling edge is valid");
    }
    po
}

fn probe_nodes(k: u32, edges: usize) -> Vec<(NodeId, NodeId)> {
    let span = (edges + GAP as usize) as u32;
    let mut rng = SmallRng::seed_from_u64(0x9E37 ^ u64::from(k));
    (0..PROBES)
        .map(|_| {
            let t1 = rng.gen_range(0..k);
            let t2 = rng.gen_range(0..k);
            (
                NodeId::new(t1, rng.gen_range(0..span)),
                NodeId::new(t2, rng.gen_range(0..span)),
            )
        })
        .collect()
}

fn run_kind<P: PartialOrderIndex>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    k: u32,
    edges: usize,
    kind: Kind,
) {
    let po: P = prefilled(k, edges);
    let probes = probe_nodes(k, edges);
    group.bench_with_input(BenchmarkId::new(name, k), &k, |b, _| {
        let mut i = 0usize;
        b.iter(|| {
            let (u, v) = probes[i % probes.len()];
            i += 1;
            criterion::black_box(match kind {
                Kind::Successor => po.successor(u, v.thread).map_or(0, u64::from),
                Kind::Predecessor => po.predecessor(u, v.thread).map_or(0, u64::from),
                Kind::Reachable => u64::from(po.reachable(u, v)),
            })
        });
    });
}

#[derive(Clone, Copy)]
enum Kind {
    Successor,
    Predecessor,
    Reachable,
}

fn bench_query_scaling(c: &mut Criterion) {
    for &(density, edges) in DENSITIES {
        for (kind, label) in [
            (Kind::Successor, "successor"),
            (Kind::Predecessor, "predecessor"),
            (Kind::Reachable, "reachable"),
        ] {
            let mut group = c.benchmark_group(format!("query_scaling/{density}/{label}"));
            group.sample_size(20);
            for &k in &[4u32, 16, 64] {
                run_kind::<Csst>(&mut group, "csst_dynamic", k, edges, kind);
                run_kind::<GraphIndex>(&mut group, "graph", k, edges, kind);
                // Dense VCs materialize an O(n·k) clock matrix; the
                // k = 64 dense point would cost hundreds of MB for a
                // number the k = 16 point already extrapolates.
                if (k as usize) * edges <= 1 << 20 {
                    run_kind::<VectorClockIndex>(&mut group, "vc", k, edges, kind);
                }
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_query_scaling);
criterion_main!(benches);
