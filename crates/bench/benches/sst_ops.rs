//! Per-operation costs of the suffix-minima structures (SST vs dense
//! segment tree), backing the paper's §3.2 claims: sparse arrays make
//! SST operations cheaper than `O(log n)`, dense ones tie.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_core::{SegmentTree, SparseSegmentTree, SuffixMinima};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 20;

fn prefill<S: SuffixMinima>(density: usize, seed: u64) -> (S, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = S::with_len(N);
    for _ in 0..density {
        let i = rng.gen_range(0..N);
        s.update(i, rng.gen_range(0..N as u32));
    }
    (s, rng)
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_minima/update");
    group.sample_size(20);
    for &density in &[64usize, 4096, 262_144] {
        group.bench_with_input(BenchmarkId::new("SST", density), &density, |b, &density| {
            let (mut s, mut rng) = prefill::<SparseSegmentTree>(density, 1);
            b.iter(|| {
                let i = rng.gen_range(0..N);
                s.update(i, rng.gen_range(0..N as u32));
            });
        });
        group.bench_with_input(BenchmarkId::new("ST", density), &density, |b, &density| {
            let (mut s, mut rng) = prefill::<SegmentTree>(density, 1);
            b.iter(|| {
                let i = rng.gen_range(0..N);
                s.update(i, rng.gen_range(0..N as u32));
            });
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_minima/query");
    group.sample_size(20);
    for &density in &[64usize, 4096, 262_144] {
        group.bench_with_input(
            BenchmarkId::new("SST/suffix_min", density),
            &density,
            |b, &density| {
                let (s, mut rng) = prefill::<SparseSegmentTree>(density, 2);
                b.iter(|| s.suffix_min(rng.gen_range(0..N)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ST/suffix_min", density),
            &density,
            |b, &density| {
                let (s, mut rng) = prefill::<SegmentTree>(density, 2);
                b.iter(|| s.suffix_min(rng.gen_range(0..N)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("SST/argleq", density),
            &density,
            |b, &density| {
                let (s, mut rng) = prefill::<SparseSegmentTree>(density, 3);
                b.iter(|| s.argleq(rng.gen_range(0..N as u32)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ST/argleq", density),
            &density,
            |b, &density| {
                let (s, mut rng) = prefill::<SegmentTree>(density, 3);
                b.iter(|| s.argleq(rng.gen_range(0..N as u32)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_queries);
criterion_main!(benches);
