//! Bounded-memory windowing versus full buffering.
//!
//! Runs race prediction over one large racy trace with no window (the
//! whole stream is buffered and analyzed at `finish`) and with
//! tumbling windows of several sizes (peak buffered events ≤ window;
//! each retirement deletes the window's base-order edges through the
//! CSST deletion path). Besides the timings, the bench prints the
//! peak-resident-event and deleted-edge counters once per
//! configuration, making the bounded-growth claim of the windowing
//! layer directly observable:
//!
//! ```text
//! windowed/race: events=12000 window=none     peak_buffered=12000 deleted_edges=0
//! windowed/race: events=12000 window=500      peak_buffered=500   deleted_edges=…
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csst_analyses::race::{self, RaceCfg};
use csst_core::Csst;
use csst_trace::gen::{racy_program, RacyProgramCfg};

const THREADS: usize = 6;
const EVENTS_PER_THREAD: usize = 600;
const WINDOWS: [usize; 3] = [150, 600, 1_800];

fn cfg(window: Option<usize>) -> RaceCfg {
    RaceCfg {
        max_candidates: 400,
        window,
        ..Default::default()
    }
}

fn bench_windowed(c: &mut Criterion) {
    let trace = racy_program(&RacyProgramCfg {
        threads: THREADS,
        events_per_thread: EVENTS_PER_THREAD,
        shared_frac: 0.25,
        lock_frac: 0.5,
        ..Default::default()
    });

    // Report the memory side of the trade once, outside the timed loop.
    let full = race::predict::<Csst>(&trace, &cfg(None));
    eprintln!(
        "windowed/race: events={} window=none peak_buffered={} deleted_edges={} races={}",
        trace.total_events(),
        full.window.peak_buffered,
        full.window.deleted_edges,
        full.races.len()
    );
    for window in WINDOWS {
        let r = race::predict::<Csst>(&trace, &cfg(Some(window)));
        assert!(
            r.window.peak_buffered <= window,
            "windowed run exceeded its buffer bound"
        );
        eprintln!(
            "windowed/race: events={} window={window} peak_buffered={} deleted_edges={} races={}",
            trace.total_events(),
            r.window.peak_buffered,
            r.window.deleted_edges,
            r.races.len()
        );
    }

    let mut group = c.benchmark_group("windowed/race");
    group.sample_size(10);
    group.bench_function("full_buffer", |b| {
        b.iter(|| race::predict::<Csst>(&trace, &cfg(None)))
    });
    for window in WINDOWS {
        group.bench_function(BenchmarkId::new("window", window), |b| {
            b.iter(|| race::predict::<Csst>(&trace, &cfg(Some(window))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_windowed);
criterion_main!(benches);
