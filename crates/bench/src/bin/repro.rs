//! Regenerates every table and figure of the CSSTs paper.
//!
//! ```text
//! repro [--scale F] [--out DIR] [--smoke] [--json PATH] [--repeat N] <experiment>...
//!
//! experiments: table1 table2 table3 table4 table5 table6 table7
//!              figure10 figure11 blocksize ablation all bench
//! ```
//!
//! `--scale` multiplies workload sizes (default 1.0); `--out` writes a
//! CSV per experiment in addition to the console rendering.
//!
//! `bench` is the hot-path perf harness (not part of `all`): it runs
//! the criterion suites' workloads headlessly and writes the
//! machine-readable measurements to `--json PATH` (default
//! `BENCH_PR7.json`); `--smoke` shrinks the workloads for CI.
//! `scripts/bench.sh --compare OLD.json NEW.json` diffs two such
//! files and fails on ops/sec regressions.

use csst_bench::{blocksize, figure10, perf, scalability, tables, Table};
use std::path::PathBuf;

struct Args {
    scale: f64,
    out: Option<PathBuf>,
    smoke: bool,
    json: PathBuf,
    repeat: usize,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = 1.0f64;
    let mut out = None;
    let mut smoke = false;
    let mut json = PathBuf::from("BENCH_PR7.json");
    let mut repeat = 1usize;
    let mut experiments = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?));
            }
            "--smoke" => smoke = true,
            "--json" => {
                json = PathBuf::from(it.next().ok_or("--json needs a value")?);
            }
            "--repeat" => {
                repeat = it
                    .next()
                    .ok_or("--repeat needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --repeat: {e}"))?;
                if repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale F] [--out DIR] [--smoke] [--json PATH] [--repeat N] <experiment>...\n\
                     experiments: table1..table7 figure10 figure11 blocksize ablation all bench\n\
                     bench: headless perf harness, writes measurements to --json PATH\n\
                            (default BENCH_PR7.json); --smoke shrinks it for CI;\n\
                            --repeat N keeps the best of N runs per cell"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    Ok(Args {
        scale,
        out,
        smoke,
        json,
        repeat,
        experiments,
    })
}

fn write_out(out: &Option<PathBuf>, name: &str, csv: &str) {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // `bench` is opt-in only: `all` reproduces the paper's artifacts,
    // the perf harness tracks our own hot paths.
    let wants = |name: &str| {
        args.experiments.iter().any(|e| e == name)
            || (name != "bench" && args.experiments.iter().any(|e| e == "all"))
    };
    let scale = args.scale;
    eprintln!("# repro at scale {scale}");

    // Tables are cached for figure10.
    type TableRunner = fn(f64) -> Table;
    let mut produced: Vec<(String, Table)> = Vec::new();
    let runners: Vec<(&str, TableRunner)> = vec![
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
    ];
    let need_fig10 = wants("figure10");
    for (name, runner) in runners {
        if wants(name) || need_fig10 {
            eprintln!("# running {name}…");
            let table = runner(scale);
            if wants(name) {
                println!("{}", table.render());
            }
            write_out(&args.out, name, &table.to_csv());
            produced.push((name.to_string(), table));
        }
    }

    if need_fig10 {
        let get = |id: &str| -> &Table {
            &produced
                .iter()
                .find(|(n, _)| n == id)
                .expect("table produced")
                .1
        };
        let both: &[&str] = &["VCs", "STs"];
        let graphs: &[&str] = &["Graphs"];
        let groups = figure10::figure10(&[
            ("Data Races", get("table1"), both),
            ("Deadlocks", get("table2"), both),
            ("Memory bugs", get("table3"), both),
            ("X86-TSO consistency", get("table4"), both),
            ("Use-after-free", get("table5"), both),
            ("C11 data races", get("table6"), both),
            ("Linearizability", get("table7"), graphs),
        ]);
        println!("{}", figure10::render(&groups));
        write_out(&args.out, "figure10", &figure10::to_csv(&groups));
    }

    if wants("figure11") {
        eprintln!("# running figure11…");
        let mut cfg = scalability::ScalCfg::default();
        if scale < 1.0 {
            cfg.ells = cfg
                .ells
                .iter()
                .map(|&e| ((e as f64 * scale) as usize).max(100))
                .collect();
            cfg.queries = ((cfg.queries as f64 * scale) as usize).max(100);
        }
        let points = scalability::figure11(&cfg);
        println!("{}", scalability::render(&points));
        write_out(&args.out, "figure11", &scalability::to_csv(&points));
    }

    if wants("ablation") {
        eprintln!("# running ablation (VCs vs anchored VCs vs CSSTs)…");
        let mut cfg = scalability::ScalCfg::default();
        if scale < 1.0 {
            cfg.ells = cfg
                .ells
                .iter()
                .map(|&e| ((e as f64 * scale) as usize).max(100))
                .collect();
            cfg.queries = ((cfg.queries as f64 * scale) as usize).max(100);
        }
        let points = scalability::ablation(&cfg);
        println!("{}", scalability::render(&points));
        write_out(&args.out, "ablation", &scalability::to_csv(&points));
    }

    if wants("blocksize") {
        eprintln!("# running blocksize…");
        let mut cfg = blocksize::BlockCfg::default();
        if scale < 1.0 {
            cfg.ops = ((cfg.ops as f64 * scale) as usize).max(1000);
        }
        let points = blocksize::stress(&cfg);
        println!("{}", blocksize::render(&points));
        write_out(&args.out, "blocksize", &blocksize::to_csv(&points));
    }

    if wants("bench") {
        let mut cfg = if args.smoke {
            perf::BenchCfg::smoke()
        } else {
            perf::BenchCfg::full()
        };
        if scale != 1.0 {
            cfg.inserts = ((cfg.inserts as f64 * scale) as usize).max(100);
            cfg.churn_ops = ((cfg.churn_ops as f64 * scale) as usize).max(100);
            cfg.churn_window = ((cfg.churn_window as f64 * scale) as usize).max(16);
            cfg.queries = ((cfg.queries as f64 * scale) as usize).max(100);
            cfg.sweep_inserts = ((cfg.sweep_inserts as f64 * scale) as usize).max(100);
            cfg.sweep_queries = ((cfg.sweep_queries as f64 * scale) as usize).max(100);
            cfg.ratio_queries = ((cfg.ratio_queries as f64 * scale) as usize).max(100);
            cfg.ingest_events = ((cfg.ingest_events as f64 * scale) as usize).max(100);
        }
        let measurements = perf::run_repeated(&cfg, args.repeat);
        println!("{}", perf::render(&measurements));
        let json = perf::to_json(&cfg, args.repeat, &measurements);
        std::fs::write(&args.json, json).expect("write bench json");
        eprintln!("wrote {}", args.json.display());
    }
}
