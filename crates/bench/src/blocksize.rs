//! The §5.1 block-size stress test: "to set the threshold b for the
//! size of the block nodes in CSSTs, we perform a randomized stress
//! test with varying sizes of b … based on this test, we set b = 32."
//!
//! The stress workload mixes clustered and spread-out updates with
//! suffix-minima and arg-leq queries — the regime where the flattened
//! leaf blocks (Figure 7) pay off.

use csst_core::{SparseSegmentTree, SuffixMinima, INF};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured block size.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPoint {
    /// The block-size threshold `b`.
    pub block_size: u32,
    /// Mean time per operation (seconds).
    pub op_s: f64,
    /// Peak node count (memory proxy).
    pub peak_nodes: usize,
}

/// Parameters of the stress test.
#[derive(Debug, Clone)]
pub struct BlockCfg {
    /// Array length.
    pub len: usize,
    /// Number of operations.
    pub ops: usize,
    /// Candidate block sizes.
    pub sizes: Vec<u32>,
    /// Fraction of updates landing inside dense clusters.
    pub cluster_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlockCfg {
    fn default() -> Self {
        BlockCfg {
            len: 1 << 20,
            ops: 400_000,
            sizes: vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
            cluster_frac: 0.7,
            seed: 0xB10C,
        }
    }
}

/// Runs the stress test for every candidate block size.
pub fn stress(cfg: &BlockCfg) -> Vec<BlockPoint> {
    let mut points = Vec::new();
    for &b in &cfg.sizes {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut sst = SparseSegmentTree::with_block_size(cfg.len, b);
        // Dense clusters around a handful of centers.
        let centers: Vec<usize> = (0..8).map(|_| rng.gen_range(0..cfg.len)).collect();
        let mut sink = 0u64;
        let start = Instant::now();
        for _ in 0..cfg.ops {
            let roll: f64 = rng.gen();
            let idx = if rng.gen_bool(cfg.cluster_frac) {
                let c = centers[rng.gen_range(0..centers.len())];
                (c + rng.gen_range(0..64usize)).min(cfg.len - 1)
            } else {
                rng.gen_range(0..cfg.len)
            };
            if roll < 0.5 {
                let v = if rng.gen_bool(0.15) {
                    INF
                } else {
                    rng.gen_range(0..cfg.len as u32)
                };
                sst.update(idx, v);
            } else if roll < 0.8 {
                sink = sink.wrapping_add(sst.suffix_min(idx) as u64);
            } else {
                sink = sink
                    .wrapping_add(sst.argleq(rng.gen_range(0..cfg.len as u32)).unwrap_or(0) as u64);
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        points.push(BlockPoint {
            block_size: b,
            op_s: elapsed / cfg.ops as f64,
            peak_nodes: sst.peak_node_count(),
        });
    }
    points
}

/// Renders the stress-test results.
pub fn render(points: &[BlockPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== block-size stress test (§5.1; paper selects b = 32) =="
    );
    let _ = writeln!(out, "{:>6} {:>14} {:>12}", "b", "time/op (s)", "peak nodes");
    for p in points {
        let _ = writeln!(
            out,
            "{:>6} {:>14.3e} {:>12}",
            p.block_size, p.op_s, p.peak_nodes
        );
    }
    out
}

/// CSV export.
pub fn to_csv(points: &[BlockPoint]) -> String {
    let mut out = String::from("block_size,op_s,peak_nodes\n");
    for p in points {
        let _ = writeln!(out, "{},{:.9},{}", p.block_size, p.op_s, p.peak_nodes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_stress_runs() {
        let cfg = BlockCfg {
            len: 4096,
            ops: 5_000,
            sizes: vec![1, 32, 128],
            ..Default::default()
        };
        let points = stress(&cfg);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.op_s > 0.0);
            assert!(p.peak_nodes > 0);
        }
        // Larger blocks strictly reduce node counts on clustered data.
        assert!(points[0].peak_nodes >= points[1].peak_nodes);
        assert!(points[1].peak_nodes >= points[2].peak_nodes);
        assert!(render(&points).contains("b = 32"));
        assert_eq!(to_csv(&points).lines().count(), 4);
    }
}
