//! Figure 10 — geometric-mean time/memory ratios of the baselines over
//! CSSTs, per analysis.

use crate::report::Table;
use std::fmt::Write as _;

/// One bar group of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioGroup {
    /// Analysis name (x-axis label of the figure).
    pub analysis: String,
    /// `(baseline name, time ratio, memory ratio)` over CSSTs.
    pub ratios: Vec<(String, f64, f64)>,
}

/// Computes the Figure 10 ratio groups from reproduced tables. Each
/// entry is `(analysis label, table, baselines to compare)`.
pub fn figure10(tables: &[(&str, &Table, &[&str])]) -> Vec<RatioGroup> {
    let mut groups = Vec::new();
    for (label, table, baselines) in tables {
        let mut ratios = Vec::new();
        for b in *baselines {
            if let Some((t, m)) = table.geomean_ratios(b, "CSSTs") {
                ratios.push(((*b).to_string(), t, m));
            }
        }
        groups.push(RatioGroup {
            analysis: (*label).to_string(),
            ratios,
        });
    }
    groups
}

/// Renders the figure as a text table: one row per analysis, the
/// geometric-mean resource ratios over CSSTs (values > 1 mean CSSTs
/// win).
pub fn render(groups: &[RatioGroup]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 10 — geomean resource ratio over CSSTs (>1 ⇒ CSSTs better) =="
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>14} {:>14} {:>14}",
        "analysis", "time ratio", "mem ratio", "baseline", ""
    );
    for g in groups {
        for (b, t, m) in &g.ratios {
            let _ = writeln!(
                out,
                "{:<22} {:>14.2} {:>14.2} {:>14} {:>14}",
                g.analysis, t, m, b, ""
            );
        }
    }
    out
}

/// CSV export.
pub fn to_csv(groups: &[RatioGroup]) -> String {
    let mut out = String::from("analysis,baseline,time_ratio,memory_ratio\n");
    for g in groups {
        for (b, t, m) in &g.ratios {
            let _ = writeln!(out, "{},{},{:.4},{:.4}", g.analysis, b, t, m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Cell, Row};
    use std::time::Duration;

    fn table_with(vc_ms: u64, csst_ms: u64) -> Table {
        Table {
            id: "t".into(),
            title: "t".into(),
            rows: vec![Row {
                name: "r".into(),
                threads: 2,
                events: 10,
                q: 0.1,
                findings: 0,
                cells: vec![
                    (
                        "VCs".into(),
                        Cell {
                            time: Duration::from_millis(vc_ms),
                            memory: 100,
                        },
                    ),
                    (
                        "CSSTs".into(),
                        Cell {
                            time: Duration::from_millis(csst_ms),
                            memory: 50,
                        },
                    ),
                ],
            }],
        }
    }

    #[test]
    fn ratio_groups() {
        let t = table_with(30, 10);
        let groups = figure10(&[("Races", &t, &["VCs", "STs"])]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].ratios.len(), 1, "STs column absent: skipped");
        let (name, time, mem) = &groups[0].ratios[0];
        assert_eq!(name, "VCs");
        assert!((time - 3.0).abs() < 1e-9);
        assert!((mem - 2.0).abs() < 1e-9);
        assert!(render(&groups).contains("Races"));
        assert!(to_csv(&groups).contains("Races,VCs,3.0000,2.0000"));
    }
}
