//! # csst-bench — the reproduction harness for every table and figure
//! of the CSSTs paper
//!
//! The `repro` binary regenerates:
//!
//! * **Tables 1–7** — each of the seven analyses run over
//!   profile-matched synthetic workloads with every applicable
//!   partial-order representation, reporting wall time, memory
//!   estimate, and array density `q` ([`tables`]);
//! * **Figure 10** — geometric-mean time/memory ratios per analysis
//!   ([`figure10`]);
//! * **Figure 11** — controlled scalability of insertions and queries
//!   vs events per chain, for `k ∈ {10, 20}` ([`scalability`]);
//! * **the §5.1 block-size stress test** selecting `b = 32`
//!   ([`blocksize`]);
//! * **the hot-path perf harness** behind `repro -- bench`, emitting
//!   the machine-readable `BENCH_*.json` trajectory ([`perf`]).
//!
//! Absolute numbers will differ from the paper (different machine,
//! synthetic traces, scaled sizes); the *shape* — which structure wins,
//! by roughly what factor, and where the crossovers fall — is the
//! reproduction target. See EXPERIMENTS.md for the recorded comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocksize;
pub mod figure10;
pub mod perf;
pub mod report;
pub mod scalability;
pub mod tables;

pub use report::{Cell, Row, Table};
