//! Headless performance harness behind `repro -- bench`.
//!
//! Runs the hot-path workloads of the criterion suites (streaming
//! inserts, bulk deletion, per-event sliding retirement, query mix,
//! the chain-count sweep `query_k{4,16,64}`, the query/update
//! ratio sweep `query_update_r{1,16,256}`, and the batch-size sweep
//! `query_batch{1,16,256}`) over every partial-order
//! representation and reports ops/sec plus peak
//! [`memory_bytes`](csst_core::PartialOrderIndex::memory_bytes)
//! per representation × workload. The chain-count sweep issues its
//! probes through the batched query API (`reachable_batch` and
//! friends) — the hot path the analyses use — while the batch-size
//! sweep varies the probes-per-call count to expose the amortization
//! curve from per-call overhead (`query_batch1`) to full group sweeps
//! (`query_batch256`). The shard sweep `ingest_shards{1,2,4,8}`
//! streams a generated racy program through the sharded HB pipeline
//! (`csst_serve::ShardedHb`) at each worker count — the multi-core
//! ingest scaling figure; on a single-core machine the curve is flat
//! (or slightly inverted, paying the channel overhead), so read it
//! together with the host's core count. The machine-readable JSON this
//! module emits (`BENCH_PR7.json` via `scripts/bench.sh`) is the perf
//! trajectory future PRs are compared against
//! (`scripts/bench.sh --compare OLD.json NEW.json` diffs two runs and
//! fails on regressions).
//!
//! Numbers are wall-clock and machine-dependent; the JSON records the
//! workload parameters so runs are comparable like-for-like. The
//! `--smoke` mode shrinks every workload to keep the emitter and the
//! harness itself exercised in CI without measuring anything
//! meaningful.

use csst_core::{
    AnchoredVectorClockIndex, Csst, GraphIndex, IncrementalCsst, NodeId, PartialOrderIndex,
    SegTreeIndex, VectorClockIndex,
};
use csst_serve::{ShardCfg, ShardedHb};
use csst_trace::gen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Workload sizes for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct BenchCfg {
    /// Number of chains `k`.
    pub k: u32,
    /// Edges inserted by the streaming-insert workload (and prefilled
    /// by the delete workloads).
    pub inserts: usize,
    /// Maximum forward gap of a streaming edge's target position.
    pub gap: u32,
    /// Live-edge window of the sliding-retirement workload.
    pub churn_window: usize,
    /// Insert+delete pairs performed by the sliding-retirement
    /// workload.
    pub churn_ops: usize,
    /// Queries issued by the query-mix workload.
    pub queries: usize,
    /// Edges prefilled per chain-count point of the `query_k*` sweep
    /// (smaller than `inserts`: the k = 64 point multiplies storage).
    pub sweep_inserts: usize,
    /// Queries issued per `query_k*` sweep point.
    pub sweep_queries: usize,
    /// Queries issued across each `query_update_r*` ratio point.
    pub ratio_queries: usize,
    /// Trace events streamed through each `ingest_shards*` point.
    pub ingest_events: usize,
    /// `true` for the CI smoke run (tiny sizes, numbers meaningless).
    pub smoke: bool,
}

impl BenchCfg {
    /// The full measurement configuration.
    pub fn full() -> Self {
        BenchCfg {
            k: 10,
            inserts: 40_000,
            gap: 64,
            churn_window: 4_096,
            churn_ops: 40_000,
            queries: 40_000,
            sweep_inserts: 8_000,
            sweep_queries: 8_000,
            ratio_queries: 16_000,
            ingest_events: 16_000,
            smoke: false,
        }
    }

    /// Tiny sizes for CI: exercises every code path in milliseconds.
    pub fn smoke() -> Self {
        BenchCfg {
            k: 6,
            inserts: 1_500,
            gap: 16,
            churn_window: 256,
            churn_ops: 1_500,
            queries: 1_500,
            sweep_inserts: 400,
            sweep_queries: 300,
            ratio_queries: 600,
            ingest_events: 600,
            smoke: true,
        }
    }
}

/// One measured (workload, representation) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload identifier (`streaming_insert`, `bulk_delete`,
    /// `delete_churn`, `query_mix`).
    pub workload: &'static str,
    /// Stable machine-readable representation key.
    pub repr: &'static str,
    /// Human-readable representation name (as in the paper's tables).
    pub display: &'static str,
    /// `false` when the representation cannot run the workload (e.g.
    /// deletion on an insert-only structure); timing fields are zero.
    pub supported: bool,
    /// Operations performed.
    pub ops: usize,
    /// Total wall-clock nanoseconds.
    pub elapsed_ns: u128,
    /// Operations per second (0 when unsupported).
    pub ops_per_sec: f64,
    /// Largest `memory_bytes` observed at any sample point.
    pub memory_bytes_peak: usize,
    /// `memory_bytes` after the workload finished.
    pub memory_bytes_final: usize,
}

/// Deterministic streaming edge list: edge `i` leaves `⟨t1, i⟩` for
/// `⟨t2, i + gap⟩` with `gap ≥ 1`, so every edge strictly increases the
/// position and the relation is acyclic by construction — the shape of
/// a streaming analysis's reads-from frontier. Shared with the
/// `delete_churn` criterion bench so both measure the same workload.
pub fn streaming_edges(k: u32, len: usize, gap: u32, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let t1 = rng.gen_range(0..k);
            let mut t2 = rng.gen_range(0..k);
            while t2 == t1 {
                t2 = rng.gen_range(0..k);
            }
            let pos = i as u32;
            (
                NodeId::new(t1, pos),
                NodeId::new(t2, pos + rng.gen_range(1..=gap)),
            )
        })
        .collect()
}

/// Samples `memory_bytes` every `MEM_SAMPLE` operations: cheap enough
/// to leave the timed loop representative, frequent enough to catch the
/// high-water mark.
const MEM_SAMPLE: usize = 1024;

fn unsupported(workload: &'static str, repr: &'static str, display: &'static str) -> Measurement {
    Measurement {
        workload,
        repr,
        display,
        supported: false,
        ops: 0,
        elapsed_ns: 0,
        ops_per_sec: 0.0,
        memory_bytes_peak: 0,
        memory_bytes_final: 0,
    }
}

fn measurement(
    workload: &'static str,
    repr: &'static str,
    display: &'static str,
    ops: usize,
    elapsed_ns: u128,
    peak: usize,
    fin: usize,
) -> Measurement {
    let ops_per_sec = if elapsed_ns == 0 {
        0.0
    } else {
        ops as f64 / (elapsed_ns as f64 / 1e9)
    };
    Measurement {
        workload,
        repr,
        display,
        supported: true,
        ops,
        elapsed_ns,
        ops_per_sec,
        memory_bytes_peak: peak,
        memory_bytes_final: fin,
    }
}

/// Streaming inserts: edges go in one at a time through
/// [`PartialOrderIndex::insert_edge`], matching how the analyses' base
/// orders grow as events arrive.
fn run_streaming_insert<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
) -> Measurement {
    let edges = streaming_edges(cfg.k, cfg.inserts, cfg.gap, 0xC557);
    let mut po = P::with_capacity(cfg.k as usize, cfg.inserts + cfg.gap as usize);
    let mut peak = 0usize;
    let start = Instant::now();
    for (i, &(u, v)) in edges.iter().enumerate() {
        po.insert_edge(u, v).expect("streaming edge is valid");
        if i % MEM_SAMPLE == 0 {
            peak = peak.max(po.memory_bytes());
        }
    }
    let elapsed = start.elapsed().as_nanos();
    let fin = po.memory_bytes();
    measurement(
        "streaming_insert",
        repr,
        display,
        edges.len(),
        elapsed,
        peak.max(fin),
        fin,
    )
}

/// Bulk deletion: prefill the streaming edge set, then delete every
/// edge newest-first (the teardown half of Figure 1c).
fn run_bulk_delete<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
) -> Measurement {
    let edges = streaming_edges(cfg.k, cfg.inserts, cfg.gap, 0xC557);
    let mut po = P::with_capacity(cfg.k as usize, cfg.inserts + cfg.gap as usize);
    if !po.supports_deletion() {
        return unsupported("bulk_delete", repr, display);
    }
    for &(u, v) in &edges {
        po.insert_edge(u, v).expect("streaming edge is valid");
    }
    let mut peak = po.memory_bytes();
    let start = Instant::now();
    for (i, &(u, v)) in edges.iter().enumerate().rev() {
        po.delete_edge(u, v).expect("edge is live");
        if i % MEM_SAMPLE == 0 {
            peak = peak.max(po.memory_bytes());
        }
    }
    let elapsed = start.elapsed().as_nanos();
    let fin = po.memory_bytes();
    measurement(
        "bulk_delete",
        repr,
        display,
        edges.len(),
        elapsed,
        peak,
        fin,
    )
}

/// Per-event sliding retirement (the ROADMAP open item's workload): a
/// window of `churn_window` live edges slides along the stream — each
/// step inserts the frontier edge and deletes the oldest live one.
fn run_delete_churn<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
) -> Measurement {
    let mut po = P::with_capacity(cfg.k as usize, cfg.churn_ops + cfg.churn_window + 64);
    if !po.supports_deletion() {
        return unsupported("delete_churn", repr, display);
    }
    let total = cfg.churn_ops + cfg.churn_window;
    let edges = streaming_edges(cfg.k, total, cfg.gap, 0x51D3);
    for &(u, v) in &edges[..cfg.churn_window] {
        po.insert_edge(u, v).expect("prefill edge is valid");
    }
    let mut peak = po.memory_bytes();
    let start = Instant::now();
    for i in 0..cfg.churn_ops {
        let (u, v) = edges[cfg.churn_window + i];
        po.insert_edge(u, v).expect("frontier edge is valid");
        let (du, dv) = edges[i];
        po.delete_edge(du, dv).expect("oldest edge is live");
        if i % MEM_SAMPLE == 0 {
            peak = peak.max(po.memory_bytes());
        }
    }
    let elapsed = start.elapsed().as_nanos();
    let fin = po.memory_bytes();
    measurement(
        "delete_churn",
        repr,
        display,
        2 * cfg.churn_ops, // one insert + one delete per step
        elapsed,
        peak,
        fin,
    )
}

/// Query mix over the fully built streaming edge set: alternating
/// `reachable` and `successor` probes at random nodes.
fn run_query_mix<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
) -> Measurement {
    let edges = streaming_edges(cfg.k, cfg.inserts, cfg.gap, 0xC557);
    let mut po = P::with_capacity(cfg.k as usize, cfg.inserts + cfg.gap as usize);
    for &(u, v) in &edges {
        po.insert_edge(u, v).expect("streaming edge is valid");
    }
    let span = (cfg.inserts + cfg.gap as usize) as u32;
    let mut rng = SmallRng::seed_from_u64(0x9E37);
    let probes: Vec<(NodeId, NodeId)> = (0..cfg.queries)
        .map(|_| {
            let t1 = rng.gen_range(0..cfg.k);
            let t2 = rng.gen_range(0..cfg.k);
            (
                NodeId::new(t1, rng.gen_range(0..span)),
                NodeId::new(t2, rng.gen_range(0..span)),
            )
        })
        .collect();
    let mut hits = 0usize;
    let start = Instant::now();
    for (i, &(u, v)) in probes.iter().enumerate() {
        if i % 2 == 0 {
            if po.reachable(u, v) {
                hits += 1;
            }
        } else if po.successor(u, v.thread).is_some() {
            hits += 1;
        }
    }
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(hits);
    let fin = po.memory_bytes();
    measurement("query_mix", repr, display, probes.len(), elapsed, fin, fin)
}

/// One point of the chain-count sweep (`query_k{4,16,64}`): the
/// `query_mix` probe pattern extended with predecessor probes, over a
/// smaller edge set prefilled on `k` chains. The probes go through the
/// batched query API — split by kind (the historical `i % 3` cycling)
/// into one `reachable_batch`, one `successor_batch`, and one
/// `predecessor_batch` call — matching how the analyses issue their
/// per-event probe sets and letting closure-based structures amortize
/// one group sweep per source chain across the whole stream. Dense
/// segment trees are excluded (reported unsupported): their
/// `O(k²·n)` storage at the k = 64 point would swamp the harness
/// without saying anything new.
fn run_query_sweep<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
    k: u32,
    workload: &'static str,
) -> Measurement {
    if repr == "segtree" {
        return unsupported(workload, repr, display);
    }
    let edges = streaming_edges(k, cfg.sweep_inserts, cfg.gap, 0xC557 ^ u64::from(k));
    let mut po = P::with_capacity(k as usize, cfg.sweep_inserts + cfg.gap as usize);
    for &(u, v) in &edges {
        po.insert_edge(u, v).expect("sweep edge is valid");
    }
    let span = (cfg.sweep_inserts + cfg.gap as usize) as u32;
    let mut rng = SmallRng::seed_from_u64(0x9E37 ^ u64::from(k));
    let probes: Vec<(NodeId, NodeId)> = (0..cfg.sweep_queries)
        .map(|_| {
            let t1 = rng.gen_range(0..k);
            let t2 = rng.gen_range(0..k);
            (
                NodeId::new(t1, rng.gen_range(0..span)),
                NodeId::new(t2, rng.gen_range(0..span)),
            )
        })
        .collect();
    let mut reach: Vec<(NodeId, NodeId)> = Vec::new();
    let mut succ: Vec<(NodeId, csst_core::ThreadId)> = Vec::new();
    let mut pred: Vec<(NodeId, csst_core::ThreadId)> = Vec::new();
    for (i, &(u, v)) in probes.iter().enumerate() {
        match i % 3 {
            0 => reach.push((u, v)),
            1 => succ.push((u, v.thread)),
            _ => pred.push((u, v.thread)),
        }
    }
    let (mut r_out, mut s_out, mut p_out) = (Vec::new(), Vec::new(), Vec::new());
    let start = Instant::now();
    po.reachable_batch(&reach, &mut r_out);
    po.successor_batch(&succ, &mut s_out);
    po.predecessor_batch(&pred, &mut p_out);
    let elapsed = start.elapsed().as_nanos();
    let hits = r_out.iter().filter(|&&b| b).count()
        + s_out.iter().flatten().count()
        + p_out.iter().flatten().count();
    std::hint::black_box(hits);
    let fin = po.memory_bytes();
    measurement(workload, repr, display, probes.len(), elapsed, fin, fin)
}

/// One point of the batch-size sweep (`query_batch{1,16,256}`): the
/// chain-count sweep's probe stream at the default `k`, issued through
/// the batched API in calls of exactly `batch` probes (cycling the
/// query kind per call). `query_batch1` is the per-call overhead floor
/// — every probe pays worklist setup alone, like the sequential API —
/// while `query_batch256` realizes the full group-sweep amortization.
fn run_query_batch<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
    batch: usize,
    workload: &'static str,
) -> Measurement {
    let edges = streaming_edges(cfg.k, cfg.sweep_inserts, cfg.gap, 0xBA7C);
    let mut po = P::with_capacity(cfg.k as usize, cfg.sweep_inserts + cfg.gap as usize);
    for &(u, v) in &edges {
        po.insert_edge(u, v).expect("sweep edge is valid");
    }
    let span = (cfg.sweep_inserts + cfg.gap as usize) as u32;
    let mut rng = SmallRng::seed_from_u64(0xBA7C ^ batch as u64);
    let probes: Vec<(NodeId, NodeId)> = (0..cfg.sweep_queries)
        .map(|_| {
            let t1 = rng.gen_range(0..cfg.k);
            let t2 = rng.gen_range(0..cfg.k);
            (
                NodeId::new(t1, rng.gen_range(0..span)),
                NodeId::new(t2, rng.gen_range(0..span)),
            )
        })
        .collect();
    let node_probes: Vec<(NodeId, csst_core::ThreadId)> =
        probes.iter().map(|&(u, v)| (u, v.thread)).collect();
    let mut hits = 0usize;
    let (mut r_out, mut n_out) = (Vec::new(), Vec::new());
    let start = Instant::now();
    for (ci, (rc, nc)) in probes
        .chunks(batch)
        .zip(node_probes.chunks(batch))
        .enumerate()
    {
        match ci % 3 {
            0 => {
                po.reachable_batch(rc, &mut r_out);
                hits += r_out.iter().filter(|&&b| b).count();
            }
            1 => {
                po.successor_batch(nc, &mut n_out);
                hits += n_out.iter().flatten().count();
            }
            _ => {
                po.predecessor_batch(nc, &mut n_out);
                hits += n_out.iter().flatten().count();
            }
        }
    }
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(hits);
    let fin = po.memory_bytes();
    measurement(workload, repr, display, probes.len(), elapsed, fin, fin)
}

/// One point of the query/update ratio sweep (`query_update_r{1,16,256}`):
/// half the edge stream is prefilled, then every remaining insert is
/// followed by `ratio` queries. Each insert rolls the CSST query
/// engine's epoch, so this measures exactly the burst pattern the memo
/// layer targets — and how every representation amortizes queries
/// against updates.
fn run_query_update<P: PartialOrderIndex>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
    ratio: usize,
    workload: &'static str,
) -> Measurement {
    let steps = (cfg.ratio_queries / ratio).max(1);
    let edges = streaming_edges(cfg.k, 2 * steps, cfg.gap, 0x7A11);
    let mut po = P::with_capacity(cfg.k as usize, 2 * steps + cfg.gap as usize);
    for &(u, v) in &edges[..steps] {
        po.insert_edge(u, v).expect("prefill edge is valid");
    }
    let span = (2 * steps + cfg.gap as usize) as u32;
    let mut rng = SmallRng::seed_from_u64(0xB127 ^ ratio as u64);
    let probes: Vec<(NodeId, NodeId)> = (0..steps * ratio)
        .map(|_| {
            let t1 = rng.gen_range(0..cfg.k);
            let t2 = rng.gen_range(0..cfg.k);
            (
                NodeId::new(t1, rng.gen_range(0..span)),
                NodeId::new(t2, rng.gen_range(0..span)),
            )
        })
        .collect();
    let mut hits = 0usize;
    let mut peak = po.memory_bytes();
    let start = Instant::now();
    for i in 0..steps {
        let (u, v) = edges[steps + i];
        po.insert_edge(u, v).expect("frontier edge is valid");
        for (j, &(qu, qv)) in probes[i * ratio..(i + 1) * ratio].iter().enumerate() {
            let got = if j % 2 == 0 {
                po.reachable(qu, qv)
            } else {
                po.successor(qu, qv.thread).is_some()
            };
            if got {
                hits += 1;
            }
        }
        if i % 64 == 0 {
            peak = peak.max(po.memory_bytes());
        }
    }
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(hits);
    let fin = po.memory_bytes();
    measurement(
        workload,
        repr,
        display,
        steps * (1 + ratio),
        elapsed,
        peak.max(fin),
        fin,
    )
}

/// One point of the shard sweep (`ingest_shards{1,2,4,8}`): a
/// generated racy program streamed end-to-end through the sharded HB
/// pipeline at `shards` worker threads (router + workers, watermark
/// protocol, final merge — the whole `csst-serve` ingest path). Ops
/// are trace events; memory is the summed per-shard replica footprint
/// reported by the workers plus the router's own index. Scaling with
/// the shard count needs real cores: on a one-core host every point
/// costs the same CPU and the extra shards only add channel overhead.
fn run_ingest_shards<P: PartialOrderIndex + 'static>(
    cfg: &BenchCfg,
    repr: &'static str,
    display: &'static str,
    shards: usize,
    workload: &'static str,
) -> Measurement {
    let threads = 8usize;
    let trace = gen::racy_program(&gen::RacyProgramCfg {
        threads,
        events_per_thread: (cfg.ingest_events / threads).max(1),
        vars: 16,
        lock_frac: 0.3,
        shared_frac: 0.5,
        // Same trace at every shard count: the sweep compares worker
        // counts, not inputs.
        seed: 0x5EED,
        ..Default::default()
    });
    let start = Instant::now();
    let report = ShardedHb::<P>::run(&trace, ShardCfg::with_shards(shards))
        .expect("no faults injected: the sharded pipeline cannot fail here");
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(report.races.len());
    let mem: usize = report.shard_bytes.iter().sum();
    measurement(
        workload,
        repr,
        display,
        report.events as usize,
        elapsed,
        mem,
        mem,
    )
}

/// Runs every workload over every representation.
pub fn run(cfg: &BenchCfg) -> Vec<Measurement> {
    macro_rules! all_reprs {
        ($runner:ident $(, $extra:expr)*) => {
            vec![
                $runner::<Csst>(cfg, "csst_dynamic", "CSSTs (dynamic)" $(, $extra)*),
                $runner::<IncrementalCsst>(cfg, "csst_incremental", "CSSTs (incremental)" $(, $extra)*),
                $runner::<SegTreeIndex>(cfg, "segtree", "STs" $(, $extra)*),
                $runner::<VectorClockIndex>(cfg, "vc", "VCs" $(, $extra)*),
                $runner::<AnchoredVectorClockIndex>(cfg, "avc", "aVCs" $(, $extra)*),
                $runner::<GraphIndex>(cfg, "graph", "Graphs" $(, $extra)*),
            ]
        };
    }
    let mut out = Vec::new();
    eprintln!("# bench: streaming_insert ({} edges)…", cfg.inserts);
    out.extend(all_reprs!(run_streaming_insert));
    eprintln!("# bench: bulk_delete ({} edges)…", cfg.inserts);
    out.extend(all_reprs!(run_bulk_delete));
    eprintln!(
        "# bench: delete_churn (window {}, {} steps)…",
        cfg.churn_window, cfg.churn_ops
    );
    out.extend(all_reprs!(run_delete_churn));
    eprintln!("# bench: query_mix ({} probes)…", cfg.queries);
    out.extend(all_reprs!(run_query_mix));
    for (k, name) in [(4u32, "query_k4"), (16, "query_k16"), (64, "query_k64")] {
        eprintln!(
            "# bench: {name} ({} edges, {} probes)…",
            cfg.sweep_inserts, cfg.sweep_queries
        );
        out.extend(all_reprs!(run_query_sweep, k, name));
    }
    for (r, name) in [
        (1usize, "query_update_r1"),
        (16, "query_update_r16"),
        (256, "query_update_r256"),
    ] {
        eprintln!("# bench: {name} (1 insert per {r} queries)…");
        out.extend(all_reprs!(run_query_update, r, name));
    }
    for (b, name) in [
        (1usize, "query_batch1"),
        (16, "query_batch16"),
        (256, "query_batch256"),
    ] {
        eprintln!(
            "# bench: {name} ({} probes in calls of {b})…",
            cfg.sweep_queries
        );
        out.extend(all_reprs!(run_query_batch, b, name));
    }
    for (s, name) in [
        (1usize, "ingest_shards1"),
        (2, "ingest_shards2"),
        (4, "ingest_shards4"),
        (8, "ingest_shards8"),
    ] {
        eprintln!(
            "# bench: {name} ({} events through {s} shard worker(s))…",
            cfg.ingest_events
        );
        out.extend(all_reprs!(run_ingest_shards, s, name));
    }
    out
}

/// Runs the whole suite `repeat` times and keeps, per (workload,
/// representation) cell, the repetition with the highest ops/sec.
/// Throughput measurements are one-sided: interference only ever slows
/// a run down, so the per-cell maximum is the best available estimate
/// of the interference-free rate. The checked-in `BENCH_*.json`
/// baselines use `--repeat 3`; memory columns come from the same
/// repetition as the winning rate (they are deterministic anyway).
pub fn run_repeated(cfg: &BenchCfg, repeat: usize) -> Vec<Measurement> {
    let mut best = run(cfg);
    for round in 1..repeat {
        eprintln!("# bench: repetition {} of {repeat}…", round + 1);
        for (slot, m) in best.iter_mut().zip(run(cfg)) {
            debug_assert_eq!((slot.workload, slot.repr), (m.workload, m.repr));
            if m.ops_per_sec > slot.ops_per_sec {
                *slot = m;
            }
        }
    }
    best
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the measurements as the `BENCH_*.json` schema: a stable,
/// dependency-free JSON document future PRs diff against. `repeat`
/// records how many repetitions the per-cell best was taken over
/// ([`run_repeated`]), so two baselines with different statistics are
/// distinguishable (`--compare` prints a note when they differ).
pub fn to_json(cfg: &BenchCfg, repeat: usize, measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"csst-bench/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!(
        "  \"config\": {{\"k\": {}, \"inserts\": {}, \"gap\": {}, \"churn_window\": {}, \"churn_ops\": {}, \"queries\": {}, \"sweep_inserts\": {}, \"sweep_queries\": {}, \"ratio_queries\": {}, \"ingest_events\": {}, \"repeat\": {}}},\n",
        cfg.k, cfg.inserts, cfg.gap, cfg.churn_window, cfg.churn_ops, cfg.queries,
        cfg.sweep_inserts, cfg.sweep_queries, cfg.ratio_queries, cfg.ingest_events, repeat
    ));
    out.push_str("  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"representation\": \"{}\", \"display\": \"{}\", \
             \"supported\": {}, \"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {:.1}, \
             \"memory_bytes_peak\": {}, \"memory_bytes_final\": {}}}{}\n",
            json_escape(m.workload),
            json_escape(m.repr),
            json_escape(m.display),
            m.supported,
            m.ops,
            m.elapsed_ns,
            m.ops_per_sec,
            m.memory_bytes_peak,
            m.memory_bytes_final,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the measurements as a human-readable console table.
pub fn render(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<22} {:>12} {:>14} {:>14}\n",
        "workload", "representation", "ops/sec", "peak mem (B)", "final mem (B)"
    ));
    for m in measurements {
        if m.supported {
            out.push_str(&format!(
                "{:<18} {:<22} {:>12.0} {:>14} {:>14}\n",
                m.workload, m.display, m.ops_per_sec, m.memory_bytes_peak, m.memory_bytes_final
            ));
        } else {
            out.push_str(&format!(
                "{:<18} {:<22} {:>12} {:>14} {:>14}\n",
                m.workload, m.display, "-", "-", "-"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_every_cell() {
        let cfg = BenchCfg {
            k: 3,
            inserts: 40,
            gap: 4,
            churn_window: 8,
            churn_ops: 24,
            queries: 32,
            sweep_inserts: 24,
            sweep_queries: 18,
            ratio_queries: 48,
            ingest_events: 64,
            smoke: true,
        };
        let ms = run(&cfg);
        // 17 workloads × 6 representations.
        assert_eq!(ms.len(), 102);
        for m in &ms {
            if m.supported {
                assert!(
                    m.ops > 0 && m.ops_per_sec > 0.0,
                    "{}/{}",
                    m.workload,
                    m.repr
                );
            }
        }
        // Deletion workloads are unsupported exactly for the four
        // insert-only representations, and the dense segment trees sit
        // out the three chain-count sweep points.
        let unsupported = ms.iter().filter(|m| !m.supported).count();
        assert_eq!(unsupported, 2 * 4 + 3);
        for name in [
            "query_k4",
            "query_k16",
            "query_k64",
            "query_update_r1",
            "query_update_r16",
            "query_update_r256",
            "query_batch1",
            "query_batch16",
            "query_batch256",
            "ingest_shards1",
            "ingest_shards2",
            "ingest_shards4",
            "ingest_shards8",
        ] {
            assert!(
                ms.iter().any(|m| m.workload == name && m.supported),
                "{name}"
            );
        }
        let json = to_json(&cfg, 1, &ms);
        assert!(json.contains("\"schema\": \"csst-bench/v1\""));
        assert!(json.contains("delete_churn"));
        assert!(!render(&ms).is_empty());
    }
}
