//! Result tables: collection, pretty-printing, CSV export, and the
//! geometric-mean ratios behind Figure 10.

use std::fmt::Write as _;
use std::time::Duration;

/// One measurement: wall time and approximate memory footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Wall-clock time of the analysis run.
    pub time: Duration,
    /// Approximate heap footprint of the partial-order index.
    pub memory: usize,
}

/// One benchmark row: a workload profile measured under several
/// representations.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name (matching the paper's row names).
    pub name: String,
    /// Number of threads `T`.
    pub threads: usize,
    /// Total number of events `N` in the generated trace.
    pub events: usize,
    /// Mean peak suffix-minima array density (the paper's `q`).
    pub q: f64,
    /// Findings of the analysis (races, deadlocks, …) — a sanity
    /// column confirming all structures agree.
    pub findings: usize,
    /// `(structure name, measurement)` pairs, in column order.
    pub cells: Vec<(String, Cell)>,
}

/// A reproduced table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. `"table1"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Column names (structure names) of this table, from the first row.
    pub fn structures(&self) -> Vec<String> {
        self.rows
            .first()
            .map(|r| r.cells.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default()
    }

    /// Renders the table in the paper's layout (one time column per
    /// structure), plus totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let structures = self.structures();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = write!(
            out,
            "{:<18} {:>3} {:>9} {:>6} {:>9}",
            "benchmark", "T", "N", "q", "found"
        );
        for s in &structures {
            let _ = write!(out, " {:>12}", format!("{s} (s)"));
        }
        for s in &structures {
            let _ = write!(out, " {:>12}", format!("{s} (MB)"));
        }
        let _ = writeln!(out);
        let mut total_time = vec![Duration::ZERO; structures.len()];
        for row in &self.rows {
            let _ = write!(
                out,
                "{:<18} {:>3} {:>9} {:>6.2} {:>9}",
                row.name, row.threads, row.events, row.q, row.findings
            );
            for (i, (_, cell)) in row.cells.iter().enumerate() {
                total_time[i] += cell.time;
                let _ = write!(out, " {:>12.4}", cell.time.as_secs_f64());
            }
            for (_, cell) in &row.cells {
                let _ = write!(out, " {:>12.3}", cell.memory as f64 / (1024.0 * 1024.0));
            }
            let _ = writeln!(out);
        }
        let _ = write!(
            out,
            "{:<18} {:>3} {:>9} {:>6} {:>9}",
            "Total", "-", "-", "-", "-"
        );
        for t in &total_time {
            let _ = write!(out, " {:>12.4}", t.as_secs_f64());
        }
        let _ = writeln!(out);
        out
    }

    /// CSV export (one row per benchmark × structure).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "table,benchmark,threads,events,q,findings,structure,time_s,memory_bytes\n",
        );
        for row in &self.rows {
            for (s, cell) in &row.cells {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.4},{},{},{:.6},{}",
                    self.id,
                    row.name,
                    row.threads,
                    row.events,
                    row.q,
                    row.findings,
                    s,
                    cell.time.as_secs_f64(),
                    cell.memory
                );
            }
        }
        out
    }

    /// Geometric mean of `baseline / target` ratios over all rows:
    /// `(time ratio, memory ratio)`. This is Figure 10's metric.
    pub fn geomean_ratios(&self, baseline: &str, target: &str) -> Option<(f64, f64)> {
        let mut log_time = 0.0f64;
        let mut log_mem = 0.0f64;
        let mut n = 0usize;
        for row in &self.rows {
            let get = |name: &str| row.cells.iter().find(|(s, _)| s == name).map(|(_, c)| *c);
            let (Some(b), Some(t)) = (get(baseline), get(target)) else {
                continue;
            };
            let bt = b.time.as_secs_f64().max(1e-9);
            let tt = t.time.as_secs_f64().max(1e-9);
            let bm = (b.memory as f64).max(1.0);
            let tm = (t.memory as f64).max(1.0);
            log_time += (bt / tt).ln();
            log_mem += (bm / tm).ln();
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(((log_time / n as f64).exp(), (log_mem / n as f64).exp()))
        }
    }
}

/// Times a closure, returning its value and the elapsed wall time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table {
            id: "tableX".into(),
            title: "sample".into(),
            rows: vec![
                Row {
                    name: "a".into(),
                    threads: 2,
                    events: 100,
                    q: 0.5,
                    findings: 1,
                    cells: vec![
                        (
                            "VCs".into(),
                            Cell {
                                time: Duration::from_millis(40),
                                memory: 4000,
                            },
                        ),
                        (
                            "CSSTs".into(),
                            Cell {
                                time: Duration::from_millis(10),
                                memory: 1000,
                            },
                        ),
                    ],
                },
                Row {
                    name: "b".into(),
                    threads: 4,
                    events: 200,
                    q: 0.1,
                    findings: 0,
                    cells: vec![
                        (
                            "VCs".into(),
                            Cell {
                                time: Duration::from_millis(90),
                                memory: 9000,
                            },
                        ),
                        (
                            "CSSTs".into(),
                            Cell {
                                time: Duration::from_millis(10),
                                memory: 1000,
                            },
                        ),
                    ],
                },
            ],
        }
    }

    #[test]
    fn geomean() {
        let t = sample();
        let (time, mem) = t.geomean_ratios("VCs", "CSSTs").unwrap();
        assert!((time - 6.0).abs() < 1e-9, "sqrt(4*9) = 6, got {time}");
        assert!((mem - 6.0).abs() < 1e-9);
        assert!(t.geomean_ratios("STs", "CSSTs").is_none());
    }

    #[test]
    fn render_and_csv() {
        let t = sample();
        let txt = t.render();
        assert!(txt.contains("tableX"));
        assert!(txt.contains("Total"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("tableX,a,2,100,0.5000,1,VCs"));
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 1);
    }
}
