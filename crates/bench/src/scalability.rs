//! Figure 11 — controlled scalability of insertions and queries.
//!
//! Partial orders of `k ∈ {10, 20}` chains with `ℓ` events each,
//! initially without cross edges. Random cross-chain edges
//! `⟨t, i⟩ → ⟨t', j⟩` with unordered endpoints and `|i − j| ≤ b`
//! (window `b = 10⁴`: cross-chain orderings connect events that
//! execute within the same time window) are inserted, then random
//! reachability queries are issued. The paper inserts `20ℓ` edges and
//! runs 10⁶ queries; this harness scales both.

use csst_core::{
    AnchoredVectorClockIndex, IncrementalCsst, NodeId, PartialOrderIndex, SegTreeIndex,
    VectorClockIndex,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured point of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalPoint {
    /// Number of chains.
    pub k: usize,
    /// Events per chain.
    pub ell: usize,
    /// Structure name.
    pub structure: String,
    /// Mean time per insertion attempt (seconds).
    pub insert_s: f64,
    /// Mean time per reachability query (seconds).
    pub query_s: f64,
    /// Edges actually inserted (attempts with unordered endpoints).
    pub inserted: usize,
}

/// Parameters of the scalability sweep.
#[derive(Debug, Clone)]
pub struct ScalCfg {
    /// Chain counts to sweep (paper: 10 and 20).
    pub ks: Vec<usize>,
    /// Events-per-chain values to sweep.
    pub ells: Vec<usize>,
    /// Edge-insertion attempts as a multiple of ℓ (paper: 20).
    pub edge_factor: usize,
    /// Number of random queries (paper: 10⁶).
    pub queries: usize,
    /// The time-window bound `b` on `|i − j|` (paper: 10⁴).
    pub window: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScalCfg {
    fn default() -> Self {
        ScalCfg {
            ks: vec![10, 20],
            ells: vec![10_000, 20_000, 40_000, 80_000],
            edge_factor: 2,
            queries: 100_000,
            window: 10_000,
            seed: 0xF16,
        }
    }
}

fn run_structure<P: PartialOrderIndex>(k: usize, ell: usize, cfg: &ScalCfg) -> (f64, f64, usize) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut po = P::with_capacity(k, ell);
    let attempts = cfg.edge_factor * ell;
    let mut inserted = 0usize;
    let start = Instant::now();
    for _ in 0..attempts {
        let t1 = rng.gen_range(0..k as u32);
        let mut t2 = rng.gen_range(0..k as u32);
        while t2 == t1 {
            t2 = rng.gen_range(0..k as u32);
        }
        let i = rng.gen_range(0..ell as u32);
        let lo = i.saturating_sub(cfg.window);
        let hi = (i + cfg.window).min(ell as u32 - 1);
        let j = rng.gen_range(lo..=hi);
        let u = NodeId::new(t1, i);
        let v = NodeId::new(t2, j);
        // Insert only between unordered endpoints (keeps the order
        // partial); the checks are part of the measured workload for
        // every structure alike.
        if !po.reachable(u, v) && !po.reachable(v, u) {
            po.insert_edge(u, v).expect("valid cross edge");
            inserted += 1;
        }
    }
    let insert_s = start.elapsed().as_secs_f64() / attempts as f64;

    let start = Instant::now();
    let mut hits = 0usize;
    for _ in 0..cfg.queries {
        let t1 = rng.gen_range(0..k as u32);
        let mut t2 = rng.gen_range(0..k as u32);
        while t2 == t1 {
            t2 = rng.gen_range(0..k as u32);
        }
        let u = NodeId::new(t1, rng.gen_range(0..ell as u32));
        let v = NodeId::new(t2, rng.gen_range(0..ell as u32));
        hits += po.reachable(u, v) as usize;
    }
    let query_s = start.elapsed().as_secs_f64() / cfg.queries as f64;
    std::hint::black_box(hits);
    (insert_s, query_s, inserted)
}

/// Runs a sweep over the named structures (`"VCs"`, `"aVCs"`, `"STs"`,
/// `"CSSTs"`).
pub fn sweep(cfg: &ScalCfg, structures: &[&str]) -> Vec<ScalPoint> {
    let mut points = Vec::new();
    for &k in &cfg.ks {
        for &ell in &cfg.ells {
            for &structure in structures {
                let (insert_s, query_s, inserted) = match structure {
                    "VCs" => run_structure::<VectorClockIndex>(k, ell, cfg),
                    "aVCs" => run_structure::<AnchoredVectorClockIndex>(k, ell, cfg),
                    "STs" => run_structure::<SegTreeIndex>(k, ell, cfg),
                    "CSSTs" => run_structure::<IncrementalCsst>(k, ell, cfg),
                    other => panic!("unknown structure {other}"),
                };
                points.push(ScalPoint {
                    k,
                    ell,
                    structure: structure.into(),
                    insert_s,
                    query_s,
                    inserted,
                });
            }
        }
    }
    points
}

/// Runs the Figure 11 sweep over CSSTs, STs and VCs.
pub fn figure11(cfg: &ScalCfg) -> Vec<ScalPoint> {
    sweep(cfg, &["VCs", "STs", "CSSTs"])
}

/// The beyond-paper ablation: dense VCs vs anchored VCs vs CSSTs.
/// Anchored VCs adopt the sparsity insight (clocks only at cross-edge
/// endpoints) but not the suffix-minima structure; comparing all three
/// shows how much of the CSST advantage each ingredient contributes.
pub fn ablation(cfg: &ScalCfg) -> Vec<ScalPoint> {
    sweep(cfg, &["VCs", "aVCs", "CSSTs"])
}

/// Renders the sweep as the four panels of Figure 11 (insert/query ×
/// k = 10/20).
pub fn render(points: &[ScalPoint]) -> String {
    let mut out = String::new();
    let ks: Vec<usize> = {
        let mut v: Vec<usize> = points.iter().map(|p| p.k).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut structures: Vec<String> = Vec::new();
    for p in points {
        if !structures.contains(&p.structure) {
            structures.push(p.structure.clone());
        }
    }
    for metric in ["insert", "query"] {
        for &k in &ks {
            let _ = writeln!(out, "-- {metric} time (s/op), k = {k} --");
            let _ = write!(out, "{:>10}", "ell");
            for s in &structures {
                let _ = write!(out, " {:>12}", s);
            }
            let _ = writeln!(out);
            let mut ells: Vec<usize> = points.iter().filter(|p| p.k == k).map(|p| p.ell).collect();
            ells.sort_unstable();
            ells.dedup();
            for ell in ells {
                let _ = write!(out, "{:>10}", ell);
                for s in &structures {
                    let p = points
                        .iter()
                        .find(|p| p.k == k && p.ell == ell && &p.structure == s)
                        .expect("point measured");
                    let v = if metric == "insert" {
                        p.insert_s
                    } else {
                        p.query_s
                    };
                    let _ = write!(out, " {:>12.3e}", v);
                }
                let _ = writeln!(out);
            }
        }
    }
    out
}

/// CSV export of the sweep.
pub fn to_csv(points: &[ScalPoint]) -> String {
    let mut out = String::from("k,ell,structure,insert_s,query_s,inserted\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9},{}",
            p.k, p.ell, p.structure, p.insert_s, p.query_s, p.inserted
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs() {
        let cfg = ScalCfg {
            ks: vec![3],
            ells: vec![200, 400],
            edge_factor: 1,
            queries: 500,
            window: 100,
            seed: 1,
        };
        let points = figure11(&cfg);
        assert_eq!(points.len(), 2 * 3);
        for p in &points {
            assert!(p.insert_s > 0.0);
            assert!(p.query_s > 0.0);
            assert!(p.inserted > 0);
        }
        // Same seed ⇒ same accepted edge count across structures.
        let by_ell = |ell: usize| -> Vec<usize> {
            points
                .iter()
                .filter(|p| p.ell == ell)
                .map(|p| p.inserted)
                .collect()
        };
        for ell in [200, 400] {
            let v = by_ell(ell);
            assert!(v.windows(2).all(|w| w[0] == w[1]), "{v:?}");
        }
        let txt = render(&points);
        assert!(txt.contains("insert time"));
        let csv = to_csv(&points);
        assert_eq!(csv.lines().count(), 1 + 6);
    }
}
