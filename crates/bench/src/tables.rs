//! Drivers regenerating Tables 1–7 of the paper.
//!
//! Each driver instantiates the corresponding analysis over a list of
//! benchmark *profiles* whose names and thread counts mirror the
//! paper's rows, with event counts scaled down so the suite completes
//! in minutes (the paper's runs took 80 hours on recorded traces of up
//! to 158M events; see DESIGN.md §5 for the substitution argument).
//!
//! For every row the analysis runs once per applicable representation
//! — `VCs`, `STs`, `CSSTs` for the incremental analyses (Tables 1–6),
//! `Graphs`, `CSSTs` for the fully dynamic one (Table 7) — and the
//! driver asserts that all representations produce identical findings
//! before recording their times.

use crate::report::{timed, Cell, Row, Table};
use csst_analyses::{c11, deadlock, linearizability, membug, race, tso, uaf};
use csst_core::{
    Csst, GraphIndex, IncrementalCsst, PartialOrderIndex, SegTreeIndex, VectorClockIndex,
};
use csst_trace::gen::{
    alloc_program, c11_program, lock_program, object_history, racy_program, tso_history,
    AllocProgramCfg, C11Cfg as C11GenCfg, LockProgramCfg, ObjectHistoryCfg, RacyProgramCfg, TsoCfg,
};
use csst_trace::Trace;

fn scaled(events: usize, scale: f64) -> usize {
    ((events as f64 * scale) as usize).max(8)
}

/// Table 1 — data race prediction (M2-style).
pub fn table1(scale: f64) -> Table {
    // (name, threads, events/thread, vars, locks, lock_frac,
    // shared_frac) — thread counts from the paper; event counts scaled
    // from the paper's N; sharing kept sparse like real programs.
    let profiles: &[(&str, usize, usize, usize, usize, f64, f64)] = &[
        ("clean", 12, 500, 8, 3, 0.50, 0.20),
        ("bubblesort", 29, 600, 8, 3, 0.45, 0.12),
        ("lang", 10, 1500, 8, 2, 0.45, 0.15),
        ("readerswriters", 8, 2500, 6, 2, 0.50, 0.22),
        ("raytracer", 6, 4000, 8, 2, 0.55, 0.12),
        ("bufwriter", 9, 4500, 8, 2, 0.50, 0.15),
        ("ftpserver", 14, 3500, 12, 4, 0.55, 0.06),
        ("moldyn", 6, 9000, 8, 2, 0.40, 0.10),
        ("linkedlist", 15, 6000, 12, 4, 0.50, 0.06),
        ("derby", 7, 12000, 14, 4, 0.55, 0.05),
        ("jigsaw", 15, 8000, 16, 5, 0.55, 0.06),
        ("sunflow", 17, 9000, 18, 5, 0.55, 0.04),
        ("xalan", 9, 20000, 18, 5, 0.60, 0.03),
        ("batik", 8, 25000, 18, 5, 0.60, 0.03),
    ];
    let mut rows = Vec::new();
    for &(name, threads, epp, vars, locks, lock_frac, shared_frac) in profiles {
        let trace = racy_program(&RacyProgramCfg {
            threads,
            events_per_thread: scaled(epp, scale),
            vars,
            locks,
            lock_frac,
            write_frac: 0.4,
            shared_frac,
            seed: 0xC5517 ^ name.len() as u64,
        });
        let cfg = race::RaceCfg {
            max_candidates: 12,
            ..Default::default()
        };
        let (rep_csst, t_csst) = timed(|| race::predict::<IncrementalCsst>(&trace, &cfg));
        let (rep_st, t_st) = timed(|| race::predict::<SegTreeIndex>(&trace, &cfg));
        let (rep_vc, t_vc) = timed(|| race::predict::<VectorClockIndex>(&trace, &cfg));
        assert_eq!(rep_csst.races, rep_st.races, "{name}: ST disagreement");
        assert_eq!(rep_csst.races, rep_vc.races, "{name}: VC disagreement");
        rows.push(Row {
            name: name.into(),
            threads,
            events: trace.total_events(),
            q: rep_csst.base.density_stats().q,
            findings: rep_csst.races.len(),
            cells: vec![
                (
                    "VCs".into(),
                    Cell {
                        time: t_vc,
                        memory: rep_vc.base.memory_bytes(),
                    },
                ),
                (
                    "STs".into(),
                    Cell {
                        time: t_st,
                        memory: rep_st.base.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.base.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table1".into(),
        title: "Race prediction (M2-style), time per data structure".into(),
        rows,
    }
}

/// Table 2 — deadlock prediction (SeqCheck-style).
pub fn table2(scale: f64) -> Table {
    let profiles: &[(&str, usize, usize, usize, f64)] = &[
        // (name, threads, blocks/thread, locks, inversion_frac)
        ("jigsaw", 21, 300, 8, 0.10),
        ("elevator", 5, 1500, 5, 0.06),
        ("hedc", 7, 1800, 6, 0.06),
        ("JDBCMySQL", 3, 4000, 4, 0.05),
        ("cache4j", 2, 10000, 4, 0.04),
        ("Swing", 8, 4000, 8, 0.04),
        ("sunflow", 15, 4000, 10, 0.03),
        ("eclipse", 15, 9000, 12, 0.02),
    ];
    let mut rows = Vec::new();
    for &(name, threads, blocks, locks, inversion_frac) in profiles {
        let trace = lock_program(&LockProgramCfg {
            threads,
            blocks_per_thread: scaled(blocks, scale),
            locks,
            inversion_frac,
            guard_frac: 0.3,
            vars: 10,
            seed: 0xDEAD ^ name.len() as u64,
        });
        let cfg = deadlock::DeadlockCfg {
            max_patterns: 12,
            ..Default::default()
        };
        let (rep_csst, t_csst) = timed(|| deadlock::predict::<IncrementalCsst>(&trace, &cfg));
        let (rep_st, t_st) = timed(|| deadlock::predict::<SegTreeIndex>(&trace, &cfg));
        let (rep_vc, t_vc) = timed(|| deadlock::predict::<VectorClockIndex>(&trace, &cfg));
        assert_eq!(rep_csst.deadlocks.len(), rep_st.deadlocks.len(), "{name}");
        assert_eq!(rep_csst.deadlocks.len(), rep_vc.deadlocks.len(), "{name}");
        rows.push(Row {
            name: name.into(),
            threads,
            events: trace.total_events(),
            q: rep_csst.base.density_stats().q,
            findings: rep_csst.deadlocks.len(),
            cells: vec![
                (
                    "VCs".into(),
                    Cell {
                        time: t_vc,
                        memory: rep_vc.base.memory_bytes(),
                    },
                ),
                (
                    "STs".into(),
                    Cell {
                        time: t_st,
                        memory: rep_st.base.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.base.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table2".into(),
        title: "Deadlock prediction (SeqCheck-style)".into(),
        rows,
    }
}

/// Table 3 — memory-bug prediction (ConVulPOE-style).
pub fn table3(scale: f64) -> Table {
    let profiles: &[(&str, usize, usize, usize, f64)] = &[
        // (name, threads, objects, derefs/object, protected_frac)
        ("pbzip2", 7, 800, 6, 0.30),
        ("pigz", 6, 2000, 6, 0.30),
        ("xz", 2, 3500, 5, 0.35),
        ("lbzip2", 11, 3500, 6, 0.30),
        ("x264", 7, 4500, 6, 0.35),
        ("libvpx", 2, 7500, 5, 0.35),
        ("libwebp", 2, 9500, 5, 0.40),
        ("x265", 15, 7000, 6, 0.35),
    ];
    let mut rows = Vec::new();
    for &(name, threads, objects, derefs, protected_frac) in profiles {
        let trace = alloc_program(&AllocProgramCfg {
            threads,
            objects: scaled(objects, scale),
            derefs_per_object: derefs,
            protected_frac,
            confined_frac: 0.4,
            remote_free_frac: 0.5,
            locks: 3,
            seed: 0xA110C ^ name.len() as u64,
            max_events: None,
        });
        let cfg = membug::MemBugCfg {
            max_candidates: 12,
            ..Default::default()
        };
        let (rep_csst, t_csst) = timed(|| membug::predict::<IncrementalCsst>(&trace, &cfg));
        let (rep_st, t_st) = timed(|| membug::predict::<SegTreeIndex>(&trace, &cfg));
        let (rep_vc, t_vc) = timed(|| membug::predict::<VectorClockIndex>(&trace, &cfg));
        assert_eq!(rep_csst.bugs, rep_st.bugs, "{name}");
        assert_eq!(rep_csst.bugs, rep_vc.bugs, "{name}");
        rows.push(Row {
            name: name.into(),
            threads,
            events: trace.total_events(),
            q: rep_csst.base.density_stats().q,
            findings: rep_csst.bugs.len(),
            cells: vec![
                (
                    "VCs".into(),
                    Cell {
                        time: t_vc,
                        memory: rep_vc.base.memory_bytes(),
                    },
                ),
                (
                    "STs".into(),
                    Cell {
                        time: t_st,
                        memory: rep_st.base.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.base.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table3".into(),
        title: "Memory-bug prediction (ConVulPOE-style)".into(),
        rows,
    }
}

/// Table 4 — x86-TSO consistency checking. Two chains per thread.
pub fn table4(scale: f64) -> Table {
    let profiles: &[(&str, usize, usize, usize)] = &[
        // (name, threads, events/thread, vars)
        ("dekker", 3, 900, 3),
        ("peterson", 3, 1000, 3),
        ("lamport", 3, 1500, 4),
        ("dq", 4, 1300, 4),
        ("chase-lev", 5, 1100, 4),
        ("szymanski", 3, 2100, 3),
        ("buf-ring", 9, 1100, 6),
        ("mcs-lock", 11, 1400, 6),
        ("spsc", 3, 3200, 3),
        ("linuxrwlocks", 6, 1900, 4),
        ("fib-bench", 3, 4000, 3),
        ("seqlock", 17, 1500, 8),
        ("spinlock", 11, 1800, 5),
        ("ttaslock", 11, 1900, 5),
        ("exp-bug", 4, 3400, 4),
        ("mutex", 11, 2000, 5),
        ("ticketlock", 6, 3100, 4),
        ("gcd", 3, 5600, 3),
        ("indexer", 17, 2000, 10),
        ("twalock", 11, 2400, 5),
        ("treiber", 6, 4000, 4),
        ("mpmc", 10, 3400, 6),
        ("barrier", 5, 5600, 4),
    ];
    let mut rows = Vec::new();
    for &(name, threads, epp, vars) in profiles {
        let trace = tso_history(&TsoCfg {
            threads,
            events_per_thread: scaled(epp, scale),
            vars,
            flush_frac: 0.35,
            store_frac: 0.5,
            seed: 0x7150 ^ name.len() as u64,
        });
        let cfg = tso::TsoCheckCfg::default();
        let (rep_csst, t_csst) = timed(|| tso::check::<IncrementalCsst>(&trace, &cfg));
        let (rep_st, t_st) = timed(|| tso::check::<SegTreeIndex>(&trace, &cfg));
        let (rep_vc, t_vc) = timed(|| tso::check::<VectorClockIndex>(&trace, &cfg));
        assert!(rep_csst.consistent, "{name}: machine output rejected");
        assert_eq!(rep_csst.consistent, rep_st.consistent);
        assert_eq!(rep_csst.consistent, rep_vc.consistent);
        rows.push(Row {
            name: name.into(),
            threads,
            events: trace.total_events(),
            q: rep_csst.po.density_stats().q,
            findings: rep_csst.consistent as usize,
            cells: vec![
                (
                    "VCs".into(),
                    Cell {
                        time: t_vc,
                        memory: rep_vc.po.memory_bytes(),
                    },
                ),
                (
                    "STs".into(),
                    Cell {
                        time: t_st,
                        memory: rep_st.po.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.po.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table4".into(),
        title: "x86-TSO consistency checking (2 chains/thread)".into(),
        rows,
    }
}

/// Table 5 — use-after-free query generation (UFO-style).
pub fn table5(scale: f64) -> Table {
    let profiles: &[(&str, usize, usize, usize, f64)] = &[
        // (name, threads, objects, derefs/object, protected_frac)
        ("bbuf", 3, 700, 8, 0.30),
        ("BoundedBuffer", 11, 2000, 8, 0.30),
        ("DiningPhil", 21, 2500, 8, 0.35),
        ("fanger01-ok", 5, 2200, 8, 0.30),
        ("qtsort", 6, 6000, 8, 0.35),
        ("pbzip", 5, 7000, 8, 0.30),
    ];
    let mut rows = Vec::new();
    for &(name, threads, objects, derefs, protected_frac) in profiles {
        let trace = alloc_program(&AllocProgramCfg {
            threads,
            objects: scaled(objects, scale),
            derefs_per_object: derefs,
            protected_frac,
            confined_frac: 0.4,
            remote_free_frac: 0.6,
            locks: 3,
            seed: 0x0F0 ^ name.len() as u64,
            max_events: None,
        });
        let cfg = uaf::UafCfg::default();
        let (rep_csst, t_csst) = timed(|| uaf::generate::<IncrementalCsst>(&trace, &cfg));
        let (rep_st, t_st) = timed(|| uaf::generate::<SegTreeIndex>(&trace, &cfg));
        let (rep_vc, t_vc) = timed(|| uaf::generate::<VectorClockIndex>(&trace, &cfg));
        assert_eq!(rep_csst.candidates, rep_st.candidates, "{name}");
        assert_eq!(rep_csst.candidates, rep_vc.candidates, "{name}");
        rows.push(Row {
            name: name.into(),
            threads,
            events: trace.total_events(),
            q: rep_csst.base.density_stats().q,
            findings: rep_csst.candidates.len(),
            cells: vec![
                (
                    "VCs".into(),
                    Cell {
                        time: t_vc,
                        memory: rep_vc.base.memory_bytes(),
                    },
                ),
                (
                    "STs".into(),
                    Cell {
                        time: t_st,
                        memory: rep_st.base.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.base.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table5".into(),
        title: "Use-after-free query generation (UFO-style)".into(),
        rows,
    }
}

/// Table 6 — C11 race detection (C11Tester-style): the negative result.
pub fn table6(scale: f64) -> Table {
    let profiles: &[(&str, usize, usize, f64)] = &[
        // (name, threads, events/thread, middle_sync_frac)
        ("dq", 5, 2700, 0.0),
        ("mabain", 7, 2700, 0.0),
        ("seqlock", 18, 3900, 0.0),
        ("iris-1", 13, 6000, 0.0),
        ("qu", 11, 5700, 0.0),
        ("indexer", 18, 6000, 0.0),
        ("exp-bug", 5, 10500, 0.0),
        ("twalock", 12, 10500, 0.0),
        ("gcd", 4, 13500, 0.0),
        ("spinlock", 12, 12000, 0.0),
        ("ttaslock", 12, 12000, 0.0),
        ("silo", 5, 16500, 0.0),
        ("fib-bench", 4, 18000, 0.0),
        ("linuxrwlocks", 7, 16500, 0.0),
        ("barrier", 6, 19500, 0.0),
        ("mpmc", 11, 15000, 0.0),
        ("spsc", 4, 22500, 0.0),
        ("mcs-lock", 12, 15000, 0.0),
        ("treiber", 7, 19500, 0.0),
        ("iris-2", 4, 25500, 0.0),
        ("gdax", 8, 21000, 0.0),
        ("ticketlock", 7, 22500, 0.0),
        ("mutex", 12, 18000, 0.0),
        // The two rows where C11Tester inserts non-trivial orderings:
        ("readerswriters", 13, 12000, 0.25),
        ("atomicblocks", 33, 7500, 0.25),
    ];
    let mut rows = Vec::new();
    for &(name, threads, epp, middle) in profiles {
        let trace = c11_program(&C11GenCfg {
            threads,
            events_per_thread: scaled(epp, scale),
            atomic_vars: 4,
            plain_vars: 6,
            release_frac: 0.6,
            plain_frac: 0.35,
            rmw_frac: 0.15,
            middle_sync_frac: middle,
            seed: 0xC11 ^ name.len() as u64,
        });
        let cfg = c11::C11Cfg::default();
        let (rep_csst, t_csst) = timed(|| c11::detect::<IncrementalCsst>(&trace, &cfg));
        let (rep_st, t_st) = timed(|| c11::detect::<SegTreeIndex>(&trace, &cfg));
        let (rep_vc, t_vc) = timed(|| c11::detect::<VectorClockIndex>(&trace, &cfg));
        assert_eq!(rep_csst.races, rep_st.races, "{name}");
        assert_eq!(rep_csst.races, rep_vc.races, "{name}");
        rows.push(Row {
            name: name.into(),
            threads,
            events: trace.total_events(),
            q: rep_csst.hb.density_stats().q,
            findings: rep_csst.races.len(),
            cells: vec![
                (
                    "VCs".into(),
                    Cell {
                        time: t_vc,
                        memory: rep_vc.hb.memory_bytes(),
                    },
                ),
                (
                    "STs".into(),
                    Cell {
                        time: t_st,
                        memory: rep_st.hb.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.hb.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table6".into(),
        title: "C11 race detection (C11Tester-style, streaming)".into(),
        rows,
    }
}

/// Table 7 — root-causing linearizability violations (fully dynamic:
/// Graphs vs CSSTs).
pub fn table7(scale: f64) -> Table {
    let profiles: &[(&str, usize, usize)] = &[
        // (object name, threads, ops/thread) at 4 growing sizes each.
        ("LogicalOrderingAVL", 3, 100),
        ("LogicalOrderingAVL", 3, 250),
        ("LogicalOrderingAVL", 3, 500),
        ("LogicalOrderingAVL", 3, 1000),
        ("OptimisticList", 3, 80),
        ("OptimisticList", 3, 160),
        ("OptimisticList", 3, 320),
        ("OptimisticList", 3, 640),
        ("RWLockCoarseList", 3, 120),
        ("RWLockCoarseList", 3, 240),
        ("RWLockCoarseList", 3, 480),
        ("RWLockCoarseList", 3, 960),
    ];
    let mut rows = Vec::new();
    for (i, &(name, threads, ops)) in profiles.iter().enumerate() {
        let trace = object_history(&ObjectHistoryCfg {
            threads,
            ops_per_thread: scaled(ops, scale),
            key_range: 5,
            violation: true,
            seed: 0x11A ^ i as u64,
        });
        let cfg = linearizability::LinCfg::default();
        let (rep_csst, t_csst) = timed(|| linearizability::analyze::<Csst>(&trace, &cfg));
        let (rep_g, t_g) = timed(|| linearizability::analyze::<GraphIndex>(&trace, &cfg));
        assert_eq!(rep_csst.verdict, rep_g.verdict, "{name}/{ops}");
        let found = matches!(rep_csst.verdict, linearizability::LinVerdict::Violation(_)) as usize;
        rows.push(Row {
            name: format!("{name}-{}", trace.total_events() / 2),
            threads,
            events: trace.total_events(),
            q: rep_csst.po.density_stats().q,
            findings: found,
            cells: vec![
                (
                    "Graphs".into(),
                    Cell {
                        time: t_g,
                        memory: rep_g.po.memory_bytes(),
                    },
                ),
                (
                    "CSSTs".into(),
                    Cell {
                        time: t_csst,
                        memory: rep_csst.po.memory_bytes(),
                    },
                ),
            ],
        });
    }
    Table {
        id: "table7".into(),
        title: "Root-causing linearizability violations (fully dynamic)".into(),
        rows,
    }
}

/// Smoke helper shared by unit tests and the `all` command: the trace
/// sizes every table driver would generate at a given scale.
pub fn expected_workload(scale: f64) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (id, t) in [
        ("table1", table1_traces(scale)),
        ("table7", table7_traces(scale)),
    ] {
        for (name, trace) in t {
            out.push((format!("{id}/{name}"), trace.total_events()));
        }
    }
    out
}

fn table1_traces(scale: f64) -> Vec<(String, Trace)> {
    vec![(
        "clean".into(),
        racy_program(&RacyProgramCfg {
            threads: 12,
            events_per_thread: scaled(30, scale),
            ..Default::default()
        }),
    )]
}

fn table7_traces(scale: f64) -> Vec<(String, Trace)> {
    vec![(
        "OptimisticList".into(),
        object_history(&ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: scaled(15, scale),
            ..Default::default()
        }),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_tables_run() {
        // A smoke test of every driver at a very small scale; the
        // drivers assert cross-structure agreement internally.
        for (i, table) in [
            table1(0.1),
            table2(0.1),
            table3(0.1),
            table4(0.1),
            table5(0.1),
            table6(0.05),
            table7(0.2),
        ]
        .iter()
        .enumerate()
        {
            assert!(!table.rows.is_empty(), "table {} empty", i + 1);
            for row in &table.rows {
                assert!(row.events > 0);
                assert!(!row.cells.is_empty());
            }
            let _ = table.render();
            let _ = table.to_csv();
        }
    }

    #[test]
    fn expected_workload_nonempty() {
        let w = expected_workload(0.1);
        assert!(!w.is_empty());
    }

    #[test]
    fn drivers_are_deterministic() {
        // Two runs at the same scale must produce identical findings,
        // sizes and densities (times differ, of course).
        let key = |t: &Table| -> Vec<(String, usize, usize, u64)> {
            t.rows
                .iter()
                .map(|r| (r.name.clone(), r.events, r.findings, r.q.to_bits()))
                .collect()
        };
        assert_eq!(key(&table1(0.08)), key(&table1(0.08)));
        assert_eq!(key(&table4(0.08)), key(&table4(0.08)));
        assert_eq!(key(&table7(0.15)), key(&table7(0.15)));
    }
}
