//! Fully dynamic Collective Sparse Segment Trees (§3.3, Algorithm 2).
//!
//! For every ordered pair of distinct chains `(t1, t2)` the structure
//! keeps a suffix-minima array `A_{t1}^{t2}` holding, per node
//! `⟨t1, j1⟩`, the earliest **direct** neighbour of that node in chain
//! `t2` (invariant Eq. (1) / Lemma 3). A multiset "edge heap" per node
//! and chain pair remembers all parallel edges so deletions can restore
//! the next-earliest neighbour.
//!
//! Since arrays store direct edges only, queries must discover
//! transitive reachability (Algorithm 2, Lemma 4). The paper bounds
//! that crossing-path fixpoint by `O(k³)` suffix-minima operations; the
//! implementation here reaches the same fixpoint with a **sparse
//! worklist**: relaxations run only along chain pairs that currently
//! hold at least one live edge (the adjacency maintained by
//! [`EdgeHeapStore`]), and only from chains whose bound actually
//! improved. On real traces most chain pairs are empty and the
//! propagation converges after a handful of relaxations, so query cost
//! tracks the *live* structure instead of the `k³` worst case — and
//! remains, as in the paper, independent of the trace length `n`.
//!
//! Three further ingredients make the read path allocation-free and
//! burst-friendly (see the "query engine" chapter of
//! `docs/ARCHITECTURE.md`):
//!
//! * per-index scratch buffers ([`QueryScratch`], behind a `RefCell`)
//!   reused across queries, with stamp-based invalidation so a query
//!   touches only the chains it visits;
//! * an **epoch-guarded memo**: every successful update bumps an edge
//!   version; complete fixpoint closures are cached per source node
//!   and served until the epoch rolls, so query bursts between updates
//!   (the `hb`/`race` pattern) pay the propagation once;
//! * bound-aware early exit: [`PartialOrderIndex::reachable`] stops as
//!   soon as the target chain's bound is good enough, rather than
//!   running the fixpoint to completion.
//!
//! The domain is capacity-free: chains and positions are witnessed on
//! demand (see [`PartialOrderIndex`]), and the sparse arrays grow for
//! free.

use crate::error::PoError;
use crate::heap::EdgeHeapStore;
use crate::index::{NodeId, Pos, ThreadId, INF};
use crate::matrix::PairMatrix;
use crate::reach::PartialOrderIndex;
use crate::sst::SparseSegmentTree;
use crate::stats::DensityStats;
use crate::suffix::SuffixMinima;
use std::cell::RefCell;

/// Default number of source-node closures the epoch-guarded query memo
/// retains (see [`DynamicPo::set_query_memo_capacity`]).
const DEFAULT_MEMO_CAPACITY: usize = 16;

/// Reusable buffers of the worklist query engine. One instance lives in
/// each index behind a `RefCell`, so steady-state queries allocate
/// nothing: per-chain slots are invalidated by bumping a stamp, never
/// by clearing, and a query touches only the chains it actually visits.
#[derive(Debug, Clone, Default)]
struct QueryScratch {
    /// Per chain: the current closure bound (earliest reachable
    /// position forward, latest predecessor backward). Meaningful only
    /// when the matching `val_stamp` entry equals `cur`.
    vals: Vec<Pos>,
    val_stamp: Vec<u32>,
    /// Worklist membership stamps (`== cur` while queued).
    on_list: Vec<u32>,
    /// Stamp of the query in flight; `0` is never a live stamp.
    cur: u32,
    list: Vec<u32>,
}

impl QueryScratch {
    /// Starts a new query over `k` chains: grows the buffers if the
    /// domain grew and invalidates all previous slots by stamp.
    fn begin(&mut self, k: usize) {
        if self.vals.len() < k {
            self.vals.resize(k, 0);
            self.val_stamp.resize(k, 0);
            self.on_list.resize(k, 0);
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            // Stamp wrap (once per 2³² queries): hard-reset so stale
            // stamps cannot collide with the new generation.
            self.val_stamp.fill(0);
            self.on_list.fill(0);
            self.cur = 1;
        }
        self.list.clear();
    }

    #[inline]
    fn get(&self, t: usize) -> Option<Pos> {
        (self.val_stamp[t] == self.cur).then(|| self.vals[t])
    }

    #[inline]
    fn set(&mut self, t: usize, v: Pos) {
        self.vals[t] = v;
        self.val_stamp[t] = self.cur;
    }

    #[inline]
    fn push(&mut self, t: usize) {
        if self.on_list[t] != self.cur {
            self.on_list[t] = self.cur;
            self.list.push(t as u32);
        }
    }

    /// Pops the queued chain with the **smallest** bound (linear scan:
    /// the active set is at most `k` chains, and each scan step is two
    /// array reads — noise next to one suffix-minima query).
    #[inline]
    fn pop_min(&mut self) -> Option<usize> {
        let mut best = 0;
        for i in 1..self.list.len() {
            if self.vals[self.list[i] as usize] < self.vals[self.list[best] as usize] {
                best = i;
            }
        }
        let t = (*self.list.get(best)?) as usize;
        self.list.swap_remove(best);
        self.on_list[t] = 0;
        Some(t)
    }

    /// Pops the queued chain with the **largest** bound (the backward
    /// dual of [`pop_min`](Self::pop_min)).
    #[inline]
    fn pop_max(&mut self) -> Option<usize> {
        let mut best = 0;
        for i in 1..self.list.len() {
            if self.vals[self.list[i] as usize] > self.vals[self.list[best] as usize] {
                best = i;
            }
        }
        let t = (*self.list.get(best)?) as usize;
        self.list.swap_remove(best);
        self.on_list[t] = 0;
        Some(t)
    }

    fn memory_bytes(&self) -> usize {
        self.vals.capacity() * std::mem::size_of::<Pos>()
            + (self.val_stamp.capacity() + self.on_list.capacity() + self.list.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// Direction of a memoized closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Fwd,
    Bwd,
}

/// One cached fixpoint closure: for source node `⟨t1, j1⟩`, the bound
/// per chain (forward: earliest reachable position, backward: latest
/// predecessor; [`INF`] encodes "none" in both directions). Valid only
/// while `epoch` matches the index's edge version.
#[derive(Debug, Clone)]
struct MemoEntry {
    epoch: u64,
    dir: Dir,
    t1: u32,
    j1: Pos,
    vals: Vec<Pos>,
}

/// Epoch-guarded closure cache: a tiny direct-scan store with
/// round-robin replacement. Chains beyond `vals.len()` read as
/// unconnected, so pure domain growth (which never changes answers)
/// does not invalidate entries — only edge updates roll the epoch.
#[derive(Debug, Clone)]
struct QueryMemo {
    entries: Vec<MemoEntry>,
    cap: usize,
    next: usize,
}

impl QueryMemo {
    fn new(cap: usize) -> Self {
        QueryMemo {
            entries: Vec::new(),
            cap,
            next: 0,
        }
    }

    /// The cached bound of chain `t2` for source `⟨t1, j1⟩`, if a
    /// closure of the right direction and epoch is cached.
    fn lookup(&self, epoch: u64, dir: Dir, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        self.entries
            .iter()
            .find(|e| e.epoch == epoch && e.dir == dir && e.t1 == t1 as u32 && e.j1 == j1)
            .map(|e| e.vals.get(t2).copied().unwrap_or(INF))
    }

    /// Caches the complete closure held in `scratch` (unvisited chains
    /// are stored as [`INF`]), reusing a replaced entry's allocation.
    fn store(&mut self, epoch: u64, dir: Dir, t1: usize, j1: Pos, k: usize, s: &QueryScratch) {
        if self.cap == 0 {
            return;
        }
        let fill = |vals: &mut Vec<Pos>| {
            vals.clear();
            vals.extend((0..k).map(|t| s.get(t).unwrap_or(INF)));
        };
        if self.entries.len() < self.cap {
            let mut vals = Vec::new();
            fill(&mut vals);
            self.entries.push(MemoEntry {
                epoch,
                dir,
                t1: t1 as u32,
                j1,
                vals,
            });
        } else {
            let e = &mut self.entries[self.next];
            e.epoch = epoch;
            e.dir = dir;
            e.t1 = t1 as u32;
            e.j1 = j1;
            fill(&mut e.vals);
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<MemoEntry>()
            + self
                .entries
                .iter()
                .map(|e| e.vals.capacity() * std::mem::size_of::<Pos>())
                .sum::<usize>()
    }
}

/// Fully dynamic chain-DAG reachability over a pluggable suffix-minima
/// structure (Algorithm 2). Use the [`Csst`] alias for the paper's data
/// structure.
#[derive(Debug, Clone)]
pub struct DynamicPo<S> {
    arrays: PairMatrix<S>,
    /// Edge heaps: per chain pair and source position, the multiset of
    /// direct successors in the target chain. Flat: slots share the
    /// matrix stride, so `(t1, t2)` resolves without hashing. Also owns
    /// the live-pair adjacency the query worklist walks.
    heaps: EdgeHeapStore,
    edges: usize,
    /// Edge version: bumped by every successful insert/delete so cached
    /// closures and in-flight assumptions can be invalidated cheaply.
    epoch: u64,
    /// Number of live edges that go *backward* in position
    /// (`to.pos < from.pos`). While zero — true for every
    /// streaming/windowed workload in this repo — relaxed bounds are
    /// monotone along crossing paths, and the query engine upgrades
    /// from chaotic worklist iteration to Dijkstra-style processing
    /// with single-pop finalization and sound early termination.
    backward_edges: usize,
    scratch: RefCell<QueryScratch>,
    memo: RefCell<QueryMemo>,
}

/// The paper's fully dynamic CSST: [`DynamicPo`] over
/// [`SparseSegmentTree`] arrays.
pub type Csst = DynamicPo<SparseSegmentTree>;

impl<S: SuffixMinima> DynamicPo<S> {
    #[inline]
    fn k(&self) -> usize {
        self.arrays.k()
    }

    /// Number of currently stored edges (counting parallel edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Per-array density statistics (the `q` column of the tables).
    pub fn density_stats(&self) -> DensityStats {
        self.arrays.density_stats()
    }

    /// Sets the capacity (number of cached source-node closures) of the
    /// epoch-guarded query memo; `0` disables memoization entirely.
    ///
    /// The memo is transparent — answers are identical with any
    /// capacity (the property tests pin this) — so the knob exists for
    /// benchmarking and for workloads known to never repeat a source
    /// node between updates. Changing the capacity drops all cached
    /// closures.
    pub fn set_query_memo_capacity(&mut self, cap: usize) {
        *self.memo.borrow_mut() = QueryMemo::new(cap);
    }

    /// The forward crossing-path fixpoint of Algorithm 2, as a sparse
    /// worklist: returns a position of chain `t2` reachable from
    /// `⟨t1, j1⟩` via at least one cross-chain edge ([`INF`] if none) —
    /// the *earliest* one when `exact` is set, any one `≤ stop_at`
    /// otherwise (callers that only test reachability against a bound
    /// pass `exact = false`, `stop_at = pos`; exact callers pass
    /// `stop_at = 0`, below which no bound can improve).
    ///
    /// Relaxations run only along live chain pairs
    /// ([`EdgeHeapStore::out_neighbors`]) and only from chains whose
    /// bound improved, so convergence costs `O(r·δ_out)` suffix-minima
    /// queries where `r` is the number of bound improvements (≤ `k²`,
    /// Lemma 4; a handful in practice) and `δ_out` the live
    /// out-degree. The worklist pops the smallest bound first; while
    /// the index holds no backward edge (`to.pos < from.pos` — see
    /// [`Self::backward_edges`]) every relaxation yields a bound `≥`
    /// the popped one, so the pop order is Dijkstra's and two stronger
    /// exits apply, both without visiting the rest of the graph:
    ///
    /// * a popped chain's bound is **final** — popping `t2` answers an
    ///   exact query immediately;
    /// * once the smallest queued bound exceeds `stop_at`, no chain —
    ///   in particular `t2` — can ever reach a bound `≤ stop_at`,
    ///   answering a reachability query negatively.
    ///
    /// Only complete runs (worklist drained, no early exit) are
    /// memoized, since an interrupted run leaves other chains'
    /// bounds unconverged.
    fn forward_fixpoint(&self, t1: usize, j1: Pos, t2: usize, stop_at: Pos, exact: bool) -> Pos {
        let epoch = self.epoch;
        if let Some(v) = self.memo.borrow().lookup(epoch, Dir::Fwd, t1, j1, t2) {
            return v;
        }
        let k = self.k();
        let mut s = self.scratch.borrow_mut();
        s.begin(k);
        for &t in self.heaps.out_neighbors(t1) {
            let t = t as usize;
            let v = self.arrays.get(t1, t).suffix_min(j1 as usize);
            if v != INF {
                if t == t2 && v <= stop_at {
                    return v; // a direct edge already satisfies the bound
                }
                s.set(t, v);
                s.push(t);
            }
        }
        let dijkstra = self.backward_edges == 0;
        while let Some(t) = s.pop_min() {
            let base = s.vals[t];
            if dijkstra {
                if exact && t == t2 {
                    return base; // popped bounds are final
                }
                if !exact && base > stop_at {
                    return s.get(t2).unwrap_or(INF); // nothing can land ≤ stop_at anymore
                }
            }
            for &tp in self.heaps.out_neighbors(t) {
                let tp = tp as usize;
                if tp == t1 {
                    continue;
                }
                let cur = s.get(tp).unwrap_or(INF);
                if cur == 0 {
                    continue; // already minimal
                }
                let v = self.arrays.get(t, tp).suffix_min(base as usize);
                if v < cur {
                    if tp == t2 && v <= stop_at {
                        return v;
                    }
                    s.set(tp, v);
                    s.push(tp);
                }
            }
        }
        let result = s.get(t2).unwrap_or(INF);
        self.memo.borrow_mut().store(epoch, Dir::Fwd, t1, j1, k, &s);
        result
    }

    /// Earliest node of chain `t2` reachable from `⟨t1, j1⟩` via at
    /// least one cross-chain edge ([`INF`] if none).
    #[inline]
    fn successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        self.forward_fixpoint(t1, j1, t2, 0, true)
    }

    /// Latest node of chain `t2` that reaches `⟨t1, j1⟩` via at least
    /// one cross-chain edge (`None` if there is none): the symmetric
    /// backward worklist over [`EdgeHeapStore::in_neighbors`], using
    /// `argleq` and maximizing bounds instead of minimizing. Pops the
    /// largest bound first; with no backward edges the popped bound is
    /// final (the backward dual of the Dijkstra argument in
    /// [`forward_fixpoint`](Self::forward_fixpoint)), so popping `t2`
    /// answers immediately.
    fn predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        let epoch = self.epoch;
        if let Some(v) = self.memo.borrow().lookup(epoch, Dir::Bwd, t1, j1, t2) {
            return (v != INF).then_some(v);
        }
        let k = self.k();
        let mut s = self.scratch.borrow_mut();
        s.begin(k);
        for &t in self.heaps.in_neighbors(t1) {
            let t = t as usize;
            if let Some(v) = self.arrays.get(t, t1).argleq(j1) {
                s.set(t, v as Pos);
                s.push(t);
            }
        }
        let dijkstra = self.backward_edges == 0;
        while let Some(t) = s.pop_max() {
            let base = s.vals[t];
            if dijkstra && t == t2 {
                return Some(base); // popped bounds are final
            }
            for &tp in self.heaps.in_neighbors(t) {
                let tp = tp as usize;
                if tp == t1 {
                    continue;
                }
                let Some(v) = self.arrays.get(tp, t).argleq(base) else {
                    continue;
                };
                let v = v as Pos;
                if s.get(tp).is_none_or(|cur| v > cur) {
                    s.set(tp, v);
                    s.push(tp);
                }
            }
        }
        let result = s.get(t2);
        self.memo.borrow_mut().store(epoch, Dir::Bwd, t1, j1, k, &s);
        result
    }

    /// The original dense `O(k³)` Bellman–Ford fixpoint of Algorithm 2,
    /// kept as a reference implementation: the property tests pin the
    /// worklist engine against it under random scripts.
    #[cfg(test)]
    fn dense_successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        let k = self.k();
        let mut closure = vec![INF; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays.get(t1, t).suffix_min(j1 as usize);
            }
        }
        // Lemma 4: after the i-th iteration, closure[t] is the earliest
        // node of t reachable via a crossing path of length ≤ i + 1;
        // crossing paths need at most k hops.
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 || closure[tp2] == INF {
                        continue;
                    }
                    let v = self.arrays.get(tp2, tp1).suffix_min(closure[tp2] as usize);
                    if v < closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }

    /// Dense counterpart of [`predecessor_raw`](Self::predecessor_raw);
    /// see [`dense_successor_raw`](Self::dense_successor_raw).
    #[cfg(test)]
    fn dense_predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        let k = self.k();
        let mut closure: Vec<Option<Pos>> = vec![None; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays.get(t, t1).argleq(j1).map(|p| p as Pos);
            }
        }
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 {
                        continue;
                    }
                    let Some(c) = closure[tp2] else { continue };
                    let v = self.arrays.get(tp1, tp2).argleq(c).map(|p| p as Pos);
                    if v > closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }
}

impl<S: SuffixMinima> PartialOrderIndex for DynamicPo<S> {
    fn new() -> Self {
        DynamicPo {
            arrays: PairMatrix::new(),
            heaps: EdgeHeapStore::new(),
            edges: 0,
            epoch: 0,
            backward_edges: 0,
            scratch: RefCell::new(QueryScratch::default()),
            memo: RefCell::new(QueryMemo::new(DEFAULT_MEMO_CAPACITY)),
        }
    }

    fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        let arrays = PairMatrix::with_capacity(chains, chain_capacity);
        let mut heaps = EdgeHeapStore::new();
        heaps.sync_kslots(arrays.kslots());
        DynamicPo {
            arrays,
            heaps,
            edges: 0,
            epoch: 0,
            backward_edges: 0,
            scratch: RefCell::new(QueryScratch::default()),
            memo: RefCell::new(QueryMemo::new(DEFAULT_MEMO_CAPACITY)),
        }
    }

    fn name(&self) -> &'static str {
        "CSSTs"
    }

    fn chains(&self) -> usize {
        self.arrays.k()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.arrays.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.arrays.ensure_chain(chain);
        self.heaps.sync_kslots(self.arrays.kslots());
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.arrays.ensure_len(chain, len);
        self.heaps.sync_kslots(self.arrays.kslots());
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        if self.heaps.insert(t1, t2, j1, j2) {
            self.arrays.get_mut(t1, t2).update(j1 as usize, j2);
        }
        if j2 < j1 {
            self.backward_edges += 1;
        }
        self.edges += 1;
        self.epoch += 1;
    }

    fn insert_edges_raw(&mut self, edges: &[(NodeId, NodeId)]) {
        // Visit the batch grouped by chain pair (stable sort, so the
        // per-pair insertion order — and therefore every heap and
        // array state — matches the sequential path exactly): one warm
        // pair/array working set per group.
        let kslots = self.arrays.kslots();
        let mut order: Vec<u32> = (0..edges.len() as u32).collect();
        order.sort_by_key(|&i| {
            let (from, to) = edges[i as usize];
            from.thread.index() * kslots + to.thread.index()
        });
        for &i in &order {
            let (from, to) = edges[i as usize];
            let (ft, tt) = (from.thread.index(), to.thread.index());
            if self.heaps.insert(ft, tt, from.pos, to.pos) {
                self.arrays
                    .get_mut(ft, tt)
                    .update(from.pos as usize, to.pos);
            }
            if to.pos < from.pos {
                self.backward_edges += 1;
            }
            self.edges += 1;
        }
        if !edges.is_empty() {
            self.epoch += 1;
        }
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        if t1 >= self.k() || t2 >= self.k() {
            return Err(PoError::EdgeNotFound { from, to });
        }
        let Some((old_min, new_min)) = self.heaps.remove(t1, t2, j1, j2) else {
            return Err(PoError::EdgeNotFound { from, to });
        };
        if old_min == Some(j2) && new_min != Some(j2) {
            self.arrays
                .get_mut(t1, t2)
                .update(j1 as usize, new_min.unwrap_or(INF));
        }
        if j2 < j1 {
            self.backward_edges -= 1;
        }
        self.edges -= 1;
        self.epoch += 1;
        Ok(())
    }

    /// Bound-aware reachability: runs the forward worklist with the
    /// target position as the stop bound, so propagation halts as soon
    /// as *any* path lands at or before `to` — no need to find the
    /// earliest one.
    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        let t1 = from.thread.index();
        let t2 = to.thread.index();
        if t1 >= self.k() || t2 >= self.k() {
            return false; // unwitnessed chains carry no edges
        }
        self.forward_fixpoint(t1, from.pos, t2, to.pos, false) <= to.pos
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None; // unwitnessed chains carry no edges
        }
        match self.successor_raw(t1, from.pos, t2) {
            INF => None,
            v => Some(v),
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        self.predecessor_raw(t1, from.pos, t2)
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        // The store accounts for itself exactly: the flat slot vector
        // (the analogue of the outer hash map this layout replaced,
        // whose bucket overhead the old accounting missed) plus every
        // pair's entry vector and spilled heap. The query engine's
        // scratch and memo are O(k) side buffers but are charged too.
        std::mem::size_of::<Self>()
            + self.arrays.memory_bytes()
            + self.heaps.memory_bytes()
            + self.scratch.borrow().memory_bytes()
            + self.memo.borrow().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn reflexive_and_program_order() {
        let po = Csst::with_capacity(3, 10);
        assert!(po.reachable(n(0, 3), n(0, 3)));
        assert!(po.reachable(n(0, 2), n(0, 9)));
        assert!(!po.reachable(n(0, 9), n(0, 2)));
        assert!(!po.reachable(n(0, 0), n(1, 9)));
        assert_eq!(po.successor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.successor(n(1, 4), ThreadId(0)), None);
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn empty_index_answers_like_program_order() {
        let po = Csst::new();
        assert_eq!(po.chains(), 0);
        assert!(
            po.reachable(n(4, 1), n(4, 8)),
            "program order needs no setup"
        );
        assert!(!po.reachable(n(0, 0), n(1, 0)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
        assert_eq!(po.predecessor(n(2, 5), ThreadId(0)), None);
    }

    #[test]
    fn append_and_ensure_chain_grow_the_domain() {
        let mut po = Csst::new();
        let a = po.append(0);
        let b = po.append(1);
        let b2 = po.append(1);
        assert_eq!((a, b, b2), (n(0, 0), n(1, 0), n(1, 1)));
        assert_eq!(po.chains(), 2);
        assert_eq!(po.chain_len(ThreadId(1)), 2);
        po.ensure_chain(ThreadId(4));
        assert_eq!(po.chains(), 5);
        assert_eq!(po.chain_len(ThreadId(4)), 0);
        po.insert_edge(a, b2).unwrap();
        assert!(po.reachable(a, n(1, 1)));
    }

    #[test]
    fn insert_grows_past_any_hint() {
        let mut po = Csst::with_capacity(2, 4);
        // Both the chain count and the positions exceed the hint.
        po.insert_edge(n(0, 1_000_000), n(5, 2_000_000)).unwrap();
        assert_eq!(po.chains(), 6);
        assert_eq!(po.chain_len(ThreadId(0)), 1_000_001);
        assert!(po.reachable(n(0, 0), n(5, 2_000_000)));
        assert!(!po.reachable(n(0, 1_000_001), n(5, 2_000_000)));
        assert_eq!(po.successor(n(0, 3), ThreadId(5)), Some(2_000_000));
    }

    #[test]
    fn sparse_growth_stays_cheap_in_memory() {
        let mut po = Csst::new();
        for t in 0..8u32 {
            po.ensure_len(ThreadId(t), 1 << 20);
        }
        po.insert_edge(n(0, 500_000), n(1, 700_000)).unwrap();
        assert!(
            po.memory_bytes() < 256 * 1024,
            "sparse arrays must not pay for untouched capacity: {}B",
            po.memory_bytes()
        );
    }

    #[test]
    fn direct_edge_with_suffix_semantics() {
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge(n(0, 5), n(1, 5)).unwrap();
        // Earlier events of chain 0 inherit the edge via program order.
        assert!(po.reachable(n(0, 0), n(1, 5)));
        assert!(po.reachable(n(0, 5), n(1, 9)));
        assert!(!po.reachable(n(0, 6), n(1, 9)));
        assert!(!po.reachable(n(0, 5), n(1, 4)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(5));
        assert_eq!(po.predecessor(n(1, 9), ThreadId(0)), Some(5));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn example_6_transitive_query() {
        // Figure 8: successor(⟨0,0⟩, 3) = ⟨3,1⟩ discovered through a
        // crossing path of length 4.
        let mut po = Csst::with_capacity(4, 3);
        po.insert_edge(n(0, 0), n(1, 0)).unwrap(); // edge 1
        po.insert_edge(n(0, 1), n(3, 2)).unwrap(); // edge 2
        po.insert_edge(n(1, 1), n(2, 1)).unwrap(); // edge 3
        po.insert_edge(n(2, 2), n(3, 1)).unwrap(); // edge 4
        assert_eq!(po.successor(n(0, 0), ThreadId(3)), Some(1));
        assert!(po.reachable(n(0, 0), n(3, 1)));
        assert!(!po.reachable(n(0, 0), n(3, 0)));
        // Backward: the latest node of chain 0 reaching ⟨3,1⟩ is ⟨0,0⟩.
        assert_eq!(po.predecessor(n(3, 1), ThreadId(0)), Some(0));
        assert_eq!(po.predecessor(n(3, 2), ThreadId(0)), Some(1));
    }

    #[test]
    fn delete_restores_previous_state() {
        let mut po = Csst::with_capacity(3, 100);
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(po.reachable(n(0, 5), n(2, 99)));
        po.delete_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(!po.reachable(n(0, 5), n(2, 99)));
        assert!(po.reachable(n(0, 5), n(1, 99)));
        po.delete_edge(n(0, 10), n(1, 20)).unwrap();
        assert!(!po.reachable(n(0, 5), n(1, 99)));
        assert_eq!(po.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_and_heap_restoration() {
        let mut po = Csst::with_capacity(2, 50);
        po.insert_edge(n(0, 3), n(1, 20)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap(); // duplicate edge
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        // One copy of the 10-edge remains.
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(20));
        po.delete_edge(n(0, 3), n(1, 20)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
    }

    #[test]
    fn delete_errors() {
        let mut po = Csst::with_capacity(2, 10);
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 2)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 2)
            })
        );
        po.insert_edge(n(0, 1), n(1, 2)).unwrap();
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 3)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 3)
            })
        );
        // Deleting on never-witnessed chains is not-found, not a panic.
        assert_eq!(
            po.delete_edge(n(7, 0), n(8, 0)),
            Err(PoError::EdgeNotFound {
                from: n(7, 0),
                to: n(8, 0)
            })
        );
    }

    #[test]
    fn validation_errors() {
        use crate::index::{MAX_CHAINS, MAX_POS};
        let mut po = Csst::new();
        assert!(matches!(
            po.insert_edge(n(0, 1), n(0, 2)),
            Err(PoError::SameChain { .. })
        ));
        // Genuinely invalid inputs: beyond the addressable universe.
        assert!(matches!(
            po.insert_edge(n(0, 1), n(MAX_CHAINS as u32, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        assert!(matches!(
            po.insert_edge(n(0, MAX_POS + 1), n(1, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        // In-universe nodes never error: the domain grows instead.
        assert!(po.insert_edge(n(0, 10), n(1, 2)).is_ok());
    }

    #[test]
    fn checked_insert_rejects_cycles() {
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge_checked(n(0, 5), n(1, 5)).unwrap();
        assert_eq!(
            po.insert_edge_checked(n(1, 5), n(0, 5)),
            Err(PoError::WouldCycle {
                from: n(1, 5),
                to: n(0, 5)
            })
        );
        // A non-cyclic back edge is fine.
        po.insert_edge_checked(n(1, 5), n(0, 6)).unwrap();
    }

    #[test]
    fn density_stats_reflect_direct_edges() {
        let mut po = Csst::with_capacity(3, 100);
        for j in 0..10 {
            po.insert_edge(n(0, j), n(1, j)).unwrap();
        }
        let stats = po.density_stats();
        assert_eq!(stats.arrays, 6, "3 witnessed chains → 6 ordered pairs");
        assert_eq!(stats.max_peak, 10);
        assert!(stats.q > 0.0 && stats.q <= 1.0);
    }

    #[test]
    fn memory_bytes_monotone_under_inserts_and_shrinks_after_deletes() {
        // Append-style streaming (every edge touches a fresh source
        // position): memory may only grow while inserting, and must
        // genuinely fall once deletions drain the edge heaps and
        // release the SSTs' block extents.
        let mut po = Csst::new();
        let mut prev = po.memory_bytes();
        let mut edges = Vec::new();
        for i in 0..256u32 {
            let (u, v) = (n(i % 4, i), n((i + 1) % 4, i + 1));
            po.insert_edge(u, v).unwrap();
            edges.push((u, v));
            let m = po.memory_bytes();
            assert!(m >= prev, "memory fell from {prev} to {m} on insert {i}");
            prev = m;
        }
        let peak = prev;
        for (u, v) in edges.into_iter().rev() {
            po.delete_edge(u, v).unwrap();
        }
        assert_eq!(po.edge_count(), 0);
        let drained = po.memory_bytes();
        assert!(
            drained < peak / 2,
            "draining all edges must release heap entries and block \
             extents: {drained}B vs peak {peak}B"
        );
    }

    #[test]
    fn supports_deletion_flag() {
        let po = Csst::with_capacity(2, 4);
        assert!(po.supports_deletion());
        assert_eq!(po.name(), "CSSTs");
    }

    #[test]
    fn memo_serves_bursts_and_rolls_with_the_epoch() {
        let mut po = Csst::with_capacity(3, 50);
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 25), n(2, 30)).unwrap();
        // A burst of queries from one source node: the second call is
        // served from the memo and must agree with the first.
        let first = po.successor(n(0, 5), ThreadId(2));
        assert_eq!(first, Some(30));
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), first);
        assert_eq!(po.successor(n(0, 5), ThreadId(1)), Some(20));
        // An update rolls the epoch: the cached closure must not leak.
        po.delete_edge(n(1, 25), n(2, 30)).unwrap();
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), None);
        assert_eq!(po.successor(n(0, 5), ThreadId(1)), Some(20));
        po.insert_edge(n(1, 21), n(2, 40)).unwrap();
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), Some(40));
        // Backward closures roll identically.
        assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), Some(10));
        po.delete_edge(n(0, 10), n(1, 20)).unwrap();
        assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), None);
    }

    #[test]
    fn memo_survives_pure_domain_growth() {
        // Pure growth never changes answers, so it must not invalidate
        // cached closures — and cached closures must answer queries
        // about chains younger than the cache entry as "unconnected".
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge(n(0, 3), n(1, 4)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(4));
        po.ensure_chain(ThreadId(7));
        po.ensure_len(ThreadId(1), 1 << 16);
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(4));
        assert_eq!(po.successor(n(0, 0), ThreadId(7)), None);
        assert_eq!(po.predecessor(n(1, 9), ThreadId(7)), None);
    }

    #[test]
    fn disabling_the_memo_changes_no_answers() {
        let mut with = Csst::with_capacity(4, 30);
        let mut without = Csst::with_capacity(4, 30);
        without.set_query_memo_capacity(0);
        let edges = [
            (n(0, 2), n(1, 4)),
            (n(1, 6), n(2, 3)),
            (n(2, 5), n(3, 9)),
            (n(3, 1), n(0, 8)),
        ];
        for (u, v) in edges {
            with.insert_edge(u, v).unwrap();
            without.insert_edge(u, v).unwrap();
        }
        for t1 in 0..4u32 {
            for j1 in 0..30u32 {
                let u = n(t1, j1);
                for t2 in 0..4u32 {
                    let c = ThreadId(t2);
                    // Repeat so the memoized index actually hits.
                    for _ in 0..2 {
                        assert_eq!(with.successor(u, c), without.successor(u, c));
                        assert_eq!(with.predecessor(u, c), without.predecessor(u, c));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod worklist_engine {
    //! The worklist + memo query engine against the paper's dense
    //! `O(k³)` fixpoint (kept above behind `#[cfg(test)]`), under
    //! random insert/delete/query scripts so epochs genuinely roll.

    use super::*;
    use crate::naive::NaiveIndex;
    use proptest::prelude::*;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Insert(u32, u32, u32, u32),
        Delete(usize),
    }

    fn scripts(k: u32, cap: u32) -> impl Strategy<Value = Vec<Op>> {
        let ins =
            (0..k, 0..cap, 0..k, 0..cap).prop_map(|(t1, j1, t2, j2)| Op::Insert(t1, j1, t2, j2));
        let op = prop_oneof![3 => ins, 1 => (0usize..64).prop_map(Op::Delete)];
        prop::collection::vec(op, 1..40)
    }

    /// Runs one script on a memoized and a memo-free index, checking
    /// both against the dense fixpoint after every update. With
    /// `forward_only`, targets are rewritten to `to.pos ≥ from.pos`, so
    /// the index never holds a backward edge and the Dijkstra mode
    /// (single-pop finalization + bounded early exit) is what answers;
    /// otherwise backward edges force the chaotic-iteration fallback.
    fn run_script(ops: &[Op], cap: u32, forward_only: bool) -> Result<(), TestCaseError> {
        let mut memoized = Csst::new();
        let mut bare = Csst::new();
        bare.set_query_memo_capacity(0);
        let mut planner = NaiveIndex::new();
        let mut live: Vec<(NodeId, NodeId)> = Vec::new();
        for &op in ops {
            match op {
                Op::Insert(t1, j1, t2, j2) => {
                    if t1 == t2 {
                        continue;
                    }
                    let j2 = if forward_only { j1 + 1 + j2 % 6 } else { j2 };
                    let (u, v) = (NodeId::new(t1, j1), NodeId::new(t2, j2));
                    if planner.reachable(v, u) {
                        continue; // keep the relation acyclic
                    }
                    planner.insert_edge(u, v).unwrap();
                    memoized.insert_edge(u, v).unwrap();
                    bare.insert_edge(u, v).unwrap();
                    live.push((u, v));
                }
                Op::Delete(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (u, v) = live.swap_remove(i % live.len());
                    planner.delete_edge(u, v).unwrap();
                    memoized.delete_edge(u, v).unwrap();
                    bare.delete_edge(u, v).unwrap();
                }
            }
            // Query in between every update, twice per node so the
            // memo path (second call hits the cache) is exercised
            // at every epoch.
            let kk = memoized.chains();
            for t1 in 0..kk {
                for j1 in (0..cap).step_by(3) {
                    for t2 in 0..kk {
                        if t1 == t2 {
                            continue;
                        }
                        let ds = memoized.dense_successor_raw(t1, j1, t2);
                        let dp = memoized.dense_predecessor_raw(t1, j1, t2);
                        for po in [&memoized, &bare] {
                            prop_assert_eq!(po.successor_raw(t1, j1, t2), ds);
                            prop_assert_eq!(po.predecessor_raw(t1, j1, t2), dp);
                        }
                        // The bound-aware reachable must agree with
                        // the successor-derived default semantics.
                        for j2 in (0..cap).step_by(4) {
                            let u = NodeId::new(t1 as u32, j1);
                            let v = NodeId::new(t2 as u32, j2);
                            let expect = ds != INF && ds <= j2;
                            prop_assert_eq!(memoized.reachable(u, v), expect);
                            prop_assert_eq!(bare.reachable(u, v), expect);
                        }
                    }
                }
            }
        }
        if forward_only {
            prop_assert_eq!(
                memoized.backward_edges,
                0,
                "forward-only script grew a backward edge"
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn worklist_matches_dense_fixpoint(ops in scripts(5, 12)) {
            run_script(&ops, 12, false)?;
        }

        #[test]
        fn dijkstra_mode_matches_dense_fixpoint(ops in scripts(5, 12)) {
            run_script(&ops, 12, true)?;
        }
    }
}
