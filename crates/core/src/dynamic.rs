//! Fully dynamic Collective Sparse Segment Trees (§3.3, Algorithm 2).
//!
//! For every ordered pair of distinct chains `(t1, t2)` the structure
//! keeps a suffix-minima array `A_{t1}^{t2}` holding, per node
//! `⟨t1, j1⟩`, the earliest **direct** neighbour of that node in chain
//! `t2` (invariant Eq. (1) / Lemma 3). A multiset "edge heap" per node
//! and chain pair remembers all parallel edges so deletions can restore
//! the next-earliest neighbour.
//!
//! Since arrays store direct edges only, queries must discover
//! transitive reachability: `successor` runs the `O(k³)` crossing-path
//! fixpoint of Algorithm 2 (Lemma 4) — a Bellman–Ford-style loop over
//! chains rather than over the `n` events, which is what makes the
//! query cost independent of the trace length.
//!
//! The domain is capacity-free: chains and positions are witnessed on
//! demand (see [`PartialOrderIndex`]), and the sparse arrays grow for
//! free.

use crate::error::PoError;
use crate::heap::EdgeHeapStore;
use crate::index::{NodeId, Pos, ThreadId, INF};
use crate::matrix::PairMatrix;
use crate::reach::PartialOrderIndex;
use crate::sst::SparseSegmentTree;
use crate::stats::DensityStats;
use crate::suffix::SuffixMinima;

/// Fully dynamic chain-DAG reachability over a pluggable suffix-minima
/// structure (Algorithm 2). Use the [`Csst`] alias for the paper's data
/// structure.
#[derive(Debug, Clone)]
pub struct DynamicPo<S> {
    arrays: PairMatrix<S>,
    /// Edge heaps: per chain pair and source position, the multiset of
    /// direct successors in the target chain. Flat: slots share the
    /// matrix stride, so `(t1, t2)` resolves without hashing.
    heaps: EdgeHeapStore,
    edges: usize,
}

/// The paper's fully dynamic CSST: [`DynamicPo`] over
/// [`SparseSegmentTree`] arrays.
pub type Csst = DynamicPo<SparseSegmentTree>;

impl<S: SuffixMinima> DynamicPo<S> {
    #[inline]
    fn k(&self) -> usize {
        self.arrays.k()
    }

    /// Number of currently stored edges (counting parallel edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Per-array density statistics (the `q` column of the tables).
    pub fn density_stats(&self) -> DensityStats {
        self.arrays.density_stats()
    }

    /// Earliest node of chain `t2` reachable from `⟨t1, j1⟩` via at
    /// least one cross-chain edge ([`INF`] if none): the crossing-path
    /// fixpoint of Algorithm 2.
    fn successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        let k = self.k();
        let mut closure = vec![INF; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays.get(t1, t).suffix_min(j1 as usize);
            }
        }
        // Lemma 4: after the i-th iteration, closure[t] is the earliest
        // node of t reachable via a crossing path of length ≤ i + 1;
        // crossing paths need at most k hops.
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 || closure[tp2] == INF {
                        continue;
                    }
                    let v = self.arrays.get(tp2, tp1).suffix_min(closure[tp2] as usize);
                    if v < closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }

    /// Latest node of chain `t2` that reaches `⟨t1, j1⟩` via at least
    /// one cross-chain edge (`None` if there is none): the symmetric
    /// backward fixpoint using `argleq`.
    fn predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        let k = self.k();
        let mut closure: Vec<Option<Pos>> = vec![None; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays.get(t, t1).argleq(j1).map(|p| p as Pos);
            }
        }
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 {
                        continue;
                    }
                    let Some(c) = closure[tp2] else { continue };
                    let v = self.arrays.get(tp1, tp2).argleq(c).map(|p| p as Pos);
                    if v > closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }
}

impl<S: SuffixMinima> PartialOrderIndex for DynamicPo<S> {
    fn new() -> Self {
        DynamicPo {
            arrays: PairMatrix::new(),
            heaps: EdgeHeapStore::new(),
            edges: 0,
        }
    }

    fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        let arrays = PairMatrix::with_capacity(chains, chain_capacity);
        let mut heaps = EdgeHeapStore::new();
        heaps.sync_kslots(arrays.kslots());
        DynamicPo {
            arrays,
            heaps,
            edges: 0,
        }
    }

    fn name(&self) -> &'static str {
        "CSSTs"
    }

    fn chains(&self) -> usize {
        self.arrays.k()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.arrays.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.arrays.ensure_chain(chain);
        self.heaps.sync_kslots(self.arrays.kslots());
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.arrays.ensure_len(chain, len);
        self.heaps.sync_kslots(self.arrays.kslots());
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        if self.heaps.pair_mut(t1, t2).insert(j1, j2) {
            self.arrays.get_mut(t1, t2).update(j1 as usize, j2);
        }
        self.edges += 1;
    }

    fn insert_edges_raw(&mut self, edges: &[(NodeId, NodeId)]) {
        // Visit the batch grouped by chain pair (stable sort, so the
        // per-pair insertion order — and therefore every heap and
        // array state — matches the sequential path exactly): one slot
        // resolution and one warm pair/array working set per group.
        let kslots = self.arrays.kslots();
        let mut order: Vec<u32> = (0..edges.len() as u32).collect();
        order.sort_by_key(|&i| {
            let (from, to) = edges[i as usize];
            from.thread.index() * kslots + to.thread.index()
        });
        let mut i = 0;
        while i < order.len() {
            let (ft, tt) = {
                let (from, to) = edges[order[i] as usize];
                (from.thread.index(), to.thread.index())
            };
            let pair = self.heaps.pair_mut(ft, tt);
            while i < order.len() {
                let (from, to) = edges[order[i] as usize];
                if from.thread.index() != ft || to.thread.index() != tt {
                    break;
                }
                if pair.insert(from.pos, to.pos) {
                    self.arrays
                        .get_mut(ft, tt)
                        .update(from.pos as usize, to.pos);
                }
                self.edges += 1;
                i += 1;
            }
        }
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        if t1 >= self.k() || t2 >= self.k() {
            return Err(PoError::EdgeNotFound { from, to });
        }
        let Some((old_min, new_min)) = self.heaps.pair_mut(t1, t2).remove(j1, j2) else {
            return Err(PoError::EdgeNotFound { from, to });
        };
        if old_min == Some(j2) && new_min != Some(j2) {
            self.arrays
                .get_mut(t1, t2)
                .update(j1 as usize, new_min.unwrap_or(INF));
        }
        self.edges -= 1;
        Ok(())
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None; // unwitnessed chains carry no edges
        }
        match self.successor_raw(t1, from.pos, t2) {
            INF => None,
            v => Some(v),
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        self.predecessor_raw(t1, from.pos, t2)
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        // The store accounts for itself exactly: the flat slot vector
        // (the analogue of the outer hash map this layout replaced,
        // whose bucket overhead the old accounting missed) plus every
        // pair's entry vector and spilled heap.
        std::mem::size_of::<Self>() + self.arrays.memory_bytes() + self.heaps.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn reflexive_and_program_order() {
        let po = Csst::with_capacity(3, 10);
        assert!(po.reachable(n(0, 3), n(0, 3)));
        assert!(po.reachable(n(0, 2), n(0, 9)));
        assert!(!po.reachable(n(0, 9), n(0, 2)));
        assert!(!po.reachable(n(0, 0), n(1, 9)));
        assert_eq!(po.successor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.successor(n(1, 4), ThreadId(0)), None);
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn empty_index_answers_like_program_order() {
        let po = Csst::new();
        assert_eq!(po.chains(), 0);
        assert!(
            po.reachable(n(4, 1), n(4, 8)),
            "program order needs no setup"
        );
        assert!(!po.reachable(n(0, 0), n(1, 0)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
        assert_eq!(po.predecessor(n(2, 5), ThreadId(0)), None);
    }

    #[test]
    fn append_and_ensure_chain_grow_the_domain() {
        let mut po = Csst::new();
        let a = po.append(0);
        let b = po.append(1);
        let b2 = po.append(1);
        assert_eq!((a, b, b2), (n(0, 0), n(1, 0), n(1, 1)));
        assert_eq!(po.chains(), 2);
        assert_eq!(po.chain_len(ThreadId(1)), 2);
        po.ensure_chain(ThreadId(4));
        assert_eq!(po.chains(), 5);
        assert_eq!(po.chain_len(ThreadId(4)), 0);
        po.insert_edge(a, b2).unwrap();
        assert!(po.reachable(a, n(1, 1)));
    }

    #[test]
    fn insert_grows_past_any_hint() {
        let mut po = Csst::with_capacity(2, 4);
        // Both the chain count and the positions exceed the hint.
        po.insert_edge(n(0, 1_000_000), n(5, 2_000_000)).unwrap();
        assert_eq!(po.chains(), 6);
        assert_eq!(po.chain_len(ThreadId(0)), 1_000_001);
        assert!(po.reachable(n(0, 0), n(5, 2_000_000)));
        assert!(!po.reachable(n(0, 1_000_001), n(5, 2_000_000)));
        assert_eq!(po.successor(n(0, 3), ThreadId(5)), Some(2_000_000));
    }

    #[test]
    fn sparse_growth_stays_cheap_in_memory() {
        let mut po = Csst::new();
        for t in 0..8u32 {
            po.ensure_len(ThreadId(t), 1 << 20);
        }
        po.insert_edge(n(0, 500_000), n(1, 700_000)).unwrap();
        assert!(
            po.memory_bytes() < 256 * 1024,
            "sparse arrays must not pay for untouched capacity: {}B",
            po.memory_bytes()
        );
    }

    #[test]
    fn direct_edge_with_suffix_semantics() {
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge(n(0, 5), n(1, 5)).unwrap();
        // Earlier events of chain 0 inherit the edge via program order.
        assert!(po.reachable(n(0, 0), n(1, 5)));
        assert!(po.reachable(n(0, 5), n(1, 9)));
        assert!(!po.reachable(n(0, 6), n(1, 9)));
        assert!(!po.reachable(n(0, 5), n(1, 4)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(5));
        assert_eq!(po.predecessor(n(1, 9), ThreadId(0)), Some(5));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn example_6_transitive_query() {
        // Figure 8: successor(⟨0,0⟩, 3) = ⟨3,1⟩ discovered through a
        // crossing path of length 4.
        let mut po = Csst::with_capacity(4, 3);
        po.insert_edge(n(0, 0), n(1, 0)).unwrap(); // edge 1
        po.insert_edge(n(0, 1), n(3, 2)).unwrap(); // edge 2
        po.insert_edge(n(1, 1), n(2, 1)).unwrap(); // edge 3
        po.insert_edge(n(2, 2), n(3, 1)).unwrap(); // edge 4
        assert_eq!(po.successor(n(0, 0), ThreadId(3)), Some(1));
        assert!(po.reachable(n(0, 0), n(3, 1)));
        assert!(!po.reachable(n(0, 0), n(3, 0)));
        // Backward: the latest node of chain 0 reaching ⟨3,1⟩ is ⟨0,0⟩.
        assert_eq!(po.predecessor(n(3, 1), ThreadId(0)), Some(0));
        assert_eq!(po.predecessor(n(3, 2), ThreadId(0)), Some(1));
    }

    #[test]
    fn delete_restores_previous_state() {
        let mut po = Csst::with_capacity(3, 100);
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(po.reachable(n(0, 5), n(2, 99)));
        po.delete_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(!po.reachable(n(0, 5), n(2, 99)));
        assert!(po.reachable(n(0, 5), n(1, 99)));
        po.delete_edge(n(0, 10), n(1, 20)).unwrap();
        assert!(!po.reachable(n(0, 5), n(1, 99)));
        assert_eq!(po.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_and_heap_restoration() {
        let mut po = Csst::with_capacity(2, 50);
        po.insert_edge(n(0, 3), n(1, 20)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap(); // duplicate edge
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        // One copy of the 10-edge remains.
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(20));
        po.delete_edge(n(0, 3), n(1, 20)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
    }

    #[test]
    fn delete_errors() {
        let mut po = Csst::with_capacity(2, 10);
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 2)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 2)
            })
        );
        po.insert_edge(n(0, 1), n(1, 2)).unwrap();
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 3)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 3)
            })
        );
        // Deleting on never-witnessed chains is not-found, not a panic.
        assert_eq!(
            po.delete_edge(n(7, 0), n(8, 0)),
            Err(PoError::EdgeNotFound {
                from: n(7, 0),
                to: n(8, 0)
            })
        );
    }

    #[test]
    fn validation_errors() {
        use crate::index::{MAX_CHAINS, MAX_POS};
        let mut po = Csst::new();
        assert!(matches!(
            po.insert_edge(n(0, 1), n(0, 2)),
            Err(PoError::SameChain { .. })
        ));
        // Genuinely invalid inputs: beyond the addressable universe.
        assert!(matches!(
            po.insert_edge(n(0, 1), n(MAX_CHAINS as u32, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        assert!(matches!(
            po.insert_edge(n(0, MAX_POS + 1), n(1, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        // In-universe nodes never error: the domain grows instead.
        assert!(po.insert_edge(n(0, 10), n(1, 2)).is_ok());
    }

    #[test]
    fn checked_insert_rejects_cycles() {
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge_checked(n(0, 5), n(1, 5)).unwrap();
        assert_eq!(
            po.insert_edge_checked(n(1, 5), n(0, 5)),
            Err(PoError::WouldCycle {
                from: n(1, 5),
                to: n(0, 5)
            })
        );
        // A non-cyclic back edge is fine.
        po.insert_edge_checked(n(1, 5), n(0, 6)).unwrap();
    }

    #[test]
    fn density_stats_reflect_direct_edges() {
        let mut po = Csst::with_capacity(3, 100);
        for j in 0..10 {
            po.insert_edge(n(0, j), n(1, j)).unwrap();
        }
        let stats = po.density_stats();
        assert_eq!(stats.arrays, 6, "3 witnessed chains → 6 ordered pairs");
        assert_eq!(stats.max_peak, 10);
        assert!(stats.q > 0.0 && stats.q <= 1.0);
    }

    #[test]
    fn memory_bytes_monotone_under_inserts_and_shrinks_after_deletes() {
        // Append-style streaming (every edge touches a fresh source
        // position): memory may only grow while inserting, and must
        // genuinely fall once deletions drain the edge heaps and
        // release the SSTs' block extents.
        let mut po = Csst::new();
        let mut prev = po.memory_bytes();
        let mut edges = Vec::new();
        for i in 0..256u32 {
            let (u, v) = (n(i % 4, i), n((i + 1) % 4, i + 1));
            po.insert_edge(u, v).unwrap();
            edges.push((u, v));
            let m = po.memory_bytes();
            assert!(m >= prev, "memory fell from {prev} to {m} on insert {i}");
            prev = m;
        }
        let peak = prev;
        for (u, v) in edges.into_iter().rev() {
            po.delete_edge(u, v).unwrap();
        }
        assert_eq!(po.edge_count(), 0);
        let drained = po.memory_bytes();
        assert!(
            drained < peak / 2,
            "draining all edges must release heap entries and block \
             extents: {drained}B vs peak {peak}B"
        );
    }

    #[test]
    fn supports_deletion_flag() {
        let po = Csst::with_capacity(2, 4);
        assert!(po.supports_deletion());
        assert_eq!(po.name(), "CSSTs");
    }
}
