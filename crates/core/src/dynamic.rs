//! Fully dynamic Collective Sparse Segment Trees (§3.3, Algorithm 2).
//!
//! For every ordered pair of distinct chains `(t1, t2)` the structure
//! keeps a suffix-minima array `A_{t1}^{t2}` holding, per node
//! `⟨t1, j1⟩`, the earliest **direct** neighbour of that node in chain
//! `t2` (invariant Eq. (1) / Lemma 3). A multiset "edge heap" per node
//! and chain pair remembers all parallel edges so deletions can restore
//! the next-earliest neighbour.
//!
//! Since arrays store direct edges only, queries must discover
//! transitive reachability: `successor` runs the `O(k³)` crossing-path
//! fixpoint of Algorithm 2 (Lemma 4) — a Bellman–Ford-style loop over
//! chains rather than over the `n` events, which is what makes the
//! query cost independent of the trace length.

use crate::error::PoError;
use crate::heap::MinMultiset;
use crate::index::{NodeId, Pos, ThreadId, INF};
use crate::reach::PartialOrderIndex;
use crate::sst::SparseSegmentTree;
use crate::stats::DensityStats;
use crate::suffix::SuffixMinima;
use std::collections::HashMap;

/// Fully dynamic chain-DAG reachability over a pluggable suffix-minima
/// structure (Algorithm 2). Use the [`Csst`] alias for the paper's data
/// structure.
#[derive(Debug, Clone)]
pub struct DynamicPo<S> {
    k: usize,
    cap: usize,
    /// `k*k` suffix-minima arrays; entry `t1*k + t2` is `A_{t1}^{t2}`
    /// (diagonal entries are unused zero-length placeholders).
    arrays: Vec<S>,
    /// Edge heaps: per chain pair, a sparse map from `j1` to the
    /// multiset of direct successors in the target chain.
    heaps: Vec<HashMap<Pos, MinMultiset>>,
    edges: usize,
}

/// The paper's fully dynamic CSST: [`DynamicPo`] over
/// [`SparseSegmentTree`] arrays.
pub type Csst = DynamicPo<SparseSegmentTree>;

impl<S: SuffixMinima> DynamicPo<S> {
    #[inline]
    fn idx(&self, t1: usize, t2: usize) -> usize {
        t1 * self.k + t2
    }

    /// Number of currently stored edges (counting parallel edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Per-array density statistics (the `q` column of the tables).
    pub fn density_stats(&self) -> DensityStats {
        let k = self.k;
        DensityStats::from_arrays((0..k * k).filter_map(|i| {
            if i / k == i % k {
                None
            } else {
                Some((self.arrays[i].peak_density(), self.cap))
            }
        }))
    }

    /// Earliest node of chain `t2` reachable from `⟨t1, j1⟩` via at
    /// least one cross-chain edge ([`INF`] if none): the crossing-path
    /// fixpoint of Algorithm 2.
    fn successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        let k = self.k;
        let mut closure = vec![INF; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays[t1 * k + t].suffix_min(j1 as usize);
            }
        }
        // Lemma 4: after the i-th iteration, closure[t] is the earliest
        // node of t reachable via a crossing path of length ≤ i + 1;
        // crossing paths need at most k hops.
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 || closure[tp2] == INF {
                        continue;
                    }
                    let v = self.arrays[tp2 * k + tp1].suffix_min(closure[tp2] as usize);
                    if v < closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }

    /// Latest node of chain `t2` that reaches `⟨t1, j1⟩` via at least
    /// one cross-chain edge (`None` if there is none): the symmetric
    /// backward fixpoint using `argleq`.
    fn predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        let k = self.k;
        let mut closure: Vec<Option<Pos>> = vec![None; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays[t * k + t1].argleq(j1).map(|p| p as Pos);
            }
        }
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 {
                        continue;
                    }
                    let Some(c) = closure[tp2] else { continue };
                    let v = self.arrays[tp1 * k + tp2].argleq(c).map(|p| p as Pos);
                    if v > closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }
}

impl<S: SuffixMinima> PartialOrderIndex for DynamicPo<S> {
    fn new(chains: usize, chain_capacity: usize) -> Self {
        assert!(chains >= 1, "need at least one chain");
        let mut arrays = Vec::with_capacity(chains * chains);
        for t1 in 0..chains {
            for t2 in 0..chains {
                arrays.push(S::with_len(if t1 == t2 { 0 } else { chain_capacity }));
            }
        }
        DynamicPo {
            k: chains,
            cap: chain_capacity,
            arrays,
            heaps: (0..chains * chains).map(|_| HashMap::new()).collect(),
            edges: 0,
        }
    }

    fn name(&self) -> &'static str {
        "CSSTs"
    }

    fn chains(&self) -> usize {
        self.k
    }

    fn chain_capacity(&self) -> usize {
        self.cap
    }

    fn insert_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_edge(from, to)?;
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        let idx = self.idx(t1, t2);
        let heap = self.heaps[idx].entry(j1).or_default();
        let improves = heap.min().is_none_or(|m| j2 < m);
        heap.insert(j2);
        if improves {
            self.arrays[idx].update(j1 as usize, j2);
        }
        self.edges += 1;
        Ok(())
    }

    fn delete_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_edge(from, to)?;
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        let idx = self.idx(t1, t2);
        let Some(heap) = self.heaps[idx].get_mut(&j1) else {
            return Err(PoError::EdgeNotFound { from, to });
        };
        let old_min = heap.min();
        if !heap.remove(j2) {
            return Err(PoError::EdgeNotFound { from, to });
        }
        let new_min = heap.min();
        if heap.is_empty() {
            self.heaps[idx].remove(&j1);
        }
        if old_min == Some(j2) && new_min != Some(j2) {
            self.arrays[idx].update(j1 as usize, new_min.unwrap_or(INF));
        }
        self.edges -= 1;
        Ok(())
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        debug_assert!(self.check_node(from).is_ok());
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        match self.successor_raw(t1, from.pos, t2) {
            INF => None,
            v => Some(v),
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        debug_assert!(self.check_node(from).is_ok());
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        self.predecessor_raw(t1, from.pos, t2)
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        let arrays: usize = self.arrays.iter().map(|a| a.memory_bytes()).sum();
        let heaps: usize = self
            .heaps
            .iter()
            .map(|m| {
                m.values().map(|h| h.memory_bytes()).sum::<usize>()
                    + m.capacity()
                        * (std::mem::size_of::<Pos>() + std::mem::size_of::<MinMultiset>())
            })
            .sum();
        std::mem::size_of::<Self>() + arrays + heaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn reflexive_and_program_order() {
        let po = Csst::new(3, 10);
        assert!(po.reachable(n(0, 3), n(0, 3)));
        assert!(po.reachable(n(0, 2), n(0, 9)));
        assert!(!po.reachable(n(0, 9), n(0, 2)));
        assert!(!po.reachable(n(0, 0), n(1, 9)));
        assert_eq!(po.successor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.successor(n(1, 4), ThreadId(0)), None);
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn direct_edge_with_suffix_semantics() {
        let mut po = Csst::new(2, 10);
        po.insert_edge(n(0, 5), n(1, 5)).unwrap();
        // Earlier events of chain 0 inherit the edge via program order.
        assert!(po.reachable(n(0, 0), n(1, 5)));
        assert!(po.reachable(n(0, 5), n(1, 9)));
        assert!(!po.reachable(n(0, 6), n(1, 9)));
        assert!(!po.reachable(n(0, 5), n(1, 4)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(5));
        assert_eq!(po.predecessor(n(1, 9), ThreadId(0)), Some(5));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn example_6_transitive_query() {
        // Figure 8: successor(⟨0,0⟩, 3) = ⟨3,1⟩ discovered through a
        // crossing path of length 4.
        let mut po = Csst::new(4, 3);
        po.insert_edge(n(0, 0), n(1, 0)).unwrap(); // edge 1
        po.insert_edge(n(0, 1), n(3, 2)).unwrap(); // edge 2
        po.insert_edge(n(1, 1), n(2, 1)).unwrap(); // edge 3
        po.insert_edge(n(2, 2), n(3, 1)).unwrap(); // edge 4
        assert_eq!(po.successor(n(0, 0), ThreadId(3)), Some(1));
        assert!(po.reachable(n(0, 0), n(3, 1)));
        assert!(!po.reachable(n(0, 0), n(3, 0)));
        // Backward: the latest node of chain 0 reaching ⟨3,1⟩ is ⟨0,0⟩.
        assert_eq!(po.predecessor(n(3, 1), ThreadId(0)), Some(0));
        assert_eq!(po.predecessor(n(3, 2), ThreadId(0)), Some(1));
    }

    #[test]
    fn delete_restores_previous_state() {
        let mut po = Csst::new(3, 100);
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(po.reachable(n(0, 5), n(2, 99)));
        po.delete_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(!po.reachable(n(0, 5), n(2, 99)));
        assert!(po.reachable(n(0, 5), n(1, 99)));
        po.delete_edge(n(0, 10), n(1, 20)).unwrap();
        assert!(!po.reachable(n(0, 5), n(1, 99)));
        assert_eq!(po.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_and_heap_restoration() {
        let mut po = Csst::new(2, 50);
        po.insert_edge(n(0, 3), n(1, 20)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap(); // duplicate edge
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        // One copy of the 10-edge remains.
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(20));
        po.delete_edge(n(0, 3), n(1, 20)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
    }

    #[test]
    fn delete_errors() {
        let mut po = Csst::new(2, 10);
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 2)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 2)
            })
        );
        po.insert_edge(n(0, 1), n(1, 2)).unwrap();
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 3)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 3)
            })
        );
    }

    #[test]
    fn validation_errors() {
        let mut po = Csst::new(2, 10);
        assert!(matches!(
            po.insert_edge(n(0, 1), n(0, 2)),
            Err(PoError::SameChain { .. })
        ));
        assert!(matches!(
            po.insert_edge(n(0, 1), n(5, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        assert!(matches!(
            po.insert_edge(n(0, 10), n(1, 2)),
            Err(PoError::OutOfRange { .. })
        ));
    }

    #[test]
    fn checked_insert_rejects_cycles() {
        let mut po = Csst::new(2, 10);
        po.insert_edge_checked(n(0, 5), n(1, 5)).unwrap();
        assert_eq!(
            po.insert_edge_checked(n(1, 5), n(0, 5)),
            Err(PoError::WouldCycle {
                from: n(1, 5),
                to: n(0, 5)
            })
        );
        // A non-cyclic back edge is fine.
        po.insert_edge_checked(n(1, 5), n(0, 6)).unwrap();
    }

    #[test]
    fn density_stats_reflect_direct_edges() {
        let mut po = Csst::new(3, 100);
        for j in 0..10 {
            po.insert_edge(n(0, j), n(1, j)).unwrap();
        }
        let stats = po.density_stats();
        assert_eq!(stats.arrays, 6);
        assert_eq!(stats.max_peak, 10);
        assert!(stats.q > 0.0 && stats.q <= 1.0);
    }

    #[test]
    fn supports_deletion_flag() {
        let po = Csst::new(2, 4);
        assert!(po.supports_deletion());
        assert_eq!(po.name(), "CSSTs");
    }
}
