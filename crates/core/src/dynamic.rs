//! Fully dynamic Collective Sparse Segment Trees (§3.3, Algorithm 2).
//!
//! For every ordered pair of distinct chains `(t1, t2)` the structure
//! keeps a suffix-minima array `A_{t1}^{t2}` holding, per node
//! `⟨t1, j1⟩`, the earliest **direct** neighbour of that node in chain
//! `t2` (invariant Eq. (1) / Lemma 3). A multiset "edge heap" per node
//! and chain pair remembers all parallel edges so deletions can restore
//! the next-earliest neighbour.
//!
//! Since arrays store direct edges only, queries must discover
//! transitive reachability (Algorithm 2, Lemma 4). The paper bounds
//! that crossing-path fixpoint by `O(k³)` suffix-minima operations; the
//! implementation here reaches the same fixpoint with a **sparse
//! worklist**: relaxations run only along chain pairs that currently
//! hold at least one live edge (the adjacency maintained by
//! [`EdgeHeapStore`]), and only from chains whose bound actually
//! improved. On real traces most chain pairs are empty and the
//! propagation converges after a handful of relaxations, so query cost
//! tracks the *live* structure instead of the `k³` worst case — and
//! remains, as in the paper, independent of the trace length `n`.
//!
//! Three further ingredients make the read path allocation-free and
//! burst-friendly (see the "query engine" chapter of
//! `docs/ARCHITECTURE.md`):
//!
//! * per-index scratch buffers ([`QueryScratch`], behind a `RefCell`)
//!   reused across queries, with stamp-based invalidation so a query
//!   touches only the chains it visits;
//! * an **epoch-guarded memo**: every successful update bumps an edge
//!   version; complete fixpoint closures are cached per source node
//!   and served until the epoch rolls, so query bursts between updates
//!   (the `hb`/`race` pattern) pay the propagation once;
//! * bound-aware early exit: [`PartialOrderIndex::reachable`] stops as
//!   soon as the target chain's bound is good enough, rather than
//!   running the fixpoint to completion.
//!
//! On top of the per-probe engine, this index overrides the batched
//! query API ([`PartialOrderIndex::reachable_batch`] and friends) with
//! **group sweeps**: probes are sorted by source chain and swept in
//! monotone source-position order (descending forward, ascending
//! backward), reusing one closure in place. Suffix minima only improve
//! as the suffix grows, so the previous position's closure stays a
//! witnessed upper bound and each step relaxes only the delta; the
//! per-pair seed row advances a positional cursor over the raw heap
//! entries instead of repeating `O(log n)` suffix-minima queries.
//! While the domain has at most [`MAX_BITSET_CHAINS`] chains — every
//! workload the paper evaluates — the worklist membership set is a
//! single packed `u64` word ([`BitFrontier`]) instead of the stamped
//! arrays. The memo additionally counts hits per entry, and
//! [`PartialOrderIndex::insert_edges`] bursts end by recomputing the
//! closures of sources that were actually queried in the closing epoch
//! ("hot" sources), so steady query/update mixes pay one propagation
//! per source per epoch instead of one per probe.
//!
//! The domain is capacity-free: chains and positions are witnessed on
//! demand (see [`PartialOrderIndex`]), and the sparse arrays grow for
//! free.

use crate::error::PoError;
use crate::heap::{EdgeHeapStore, MinMultiset};
use crate::index::{NodeId, Pos, ThreadId, INF, MAX_BITSET_CHAINS};
use crate::matrix::PairMatrix;
use crate::reach::{BitFrontier, PartialOrderIndex};
use crate::sst::SparseSegmentTree;
use crate::stats::DensityStats;
use crate::suffix::SuffixMinima;
use std::cell::RefCell;

/// Default number of source-node closures the epoch-guarded query memo
/// retains (see [`DynamicPo::set_query_memo_capacity`]).
const DEFAULT_MEMO_CAPACITY: usize = 16;

/// Reusable buffers of the worklist query engine. One instance lives in
/// each index behind a `RefCell`, so steady-state queries allocate
/// nothing: per-chain slots are invalidated by bumping a stamp, never
/// by clearing, and a query touches only the chains it actually visits.
#[derive(Debug, Clone, Default)]
struct QueryScratch {
    /// Per chain: the current closure bound (earliest reachable
    /// position forward, latest predecessor backward). Meaningful only
    /// when the matching `val_stamp` entry equals `cur`.
    vals: Vec<Pos>,
    val_stamp: Vec<u32>,
    /// Worklist membership stamps (`== cur` while queued); used only
    /// in wide mode.
    on_list: Vec<u32>,
    /// Stamp of the query in flight; `0` is never a live stamp.
    cur: u32,
    list: Vec<u32>,
    /// Packed worklist membership for domains of at most
    /// [`MAX_BITSET_CHAINS`] chains: one bit per chain in a single
    /// word, so push/clear are bit ops and the pop scan walks only set
    /// bits.
    word: BitFrontier,
    /// `k > MAX_BITSET_CHAINS`: fall back to the stamped
    /// `on_list`/`list` worklist.
    wide: bool,
}

impl QueryScratch {
    /// Starts a new query over `k` chains: grows the buffers if the
    /// domain grew and invalidates all previous slots by stamp.
    fn begin(&mut self, k: usize) {
        if self.vals.len() < k {
            self.vals.resize(k, 0);
            self.val_stamp.resize(k, 0);
            self.on_list.resize(k, 0);
        }
        self.cur = self.cur.wrapping_add(1);
        if self.cur == 0 {
            // Stamp wrap (once per 2³² queries): hard-reset so stale
            // stamps cannot collide with the new generation.
            self.val_stamp.fill(0);
            self.on_list.fill(0);
            self.cur = 1;
        }
        self.list.clear();
        self.word.clear();
        self.wide = k > MAX_BITSET_CHAINS;
    }

    #[inline]
    fn get(&self, t: usize) -> Option<Pos> {
        (self.val_stamp[t] == self.cur).then(|| self.vals[t])
    }

    #[inline]
    fn set(&mut self, t: usize, v: Pos) {
        self.vals[t] = v;
        self.val_stamp[t] = self.cur;
    }

    #[inline]
    fn push(&mut self, t: usize) {
        if !self.wide {
            self.word.insert(t); // idempotent: no membership check needed
        } else if self.on_list[t] != self.cur {
            self.on_list[t] = self.cur;
            self.list.push(t as u32);
        }
    }

    /// Pops the queued chain with the **smallest** bound (linear scan:
    /// the active set is at most `k` chains, and each scan step is two
    /// array reads — noise next to one suffix-minima query). In bitset
    /// mode the scan visits only set bits of the packed word.
    #[inline]
    fn pop_min(&mut self) -> Option<usize> {
        if !self.wide {
            let mut best: Option<usize> = None;
            for t in self.word.iter() {
                if best.is_none_or(|b| self.vals[t] < self.vals[b]) {
                    best = Some(t);
                }
            }
            let t = best?;
            self.word.remove(t);
            return Some(t);
        }
        let mut best = 0;
        for i in 1..self.list.len() {
            if self.vals[self.list[i] as usize] < self.vals[self.list[best] as usize] {
                best = i;
            }
        }
        let t = (*self.list.get(best)?) as usize;
        self.list.swap_remove(best);
        self.on_list[t] = 0;
        Some(t)
    }

    /// Pops the queued chain with the **largest** bound (the backward
    /// dual of [`pop_min`](Self::pop_min)).
    #[inline]
    fn pop_max(&mut self) -> Option<usize> {
        if !self.wide {
            let mut best: Option<usize> = None;
            for t in self.word.iter() {
                if best.is_none_or(|b| self.vals[t] > self.vals[b]) {
                    best = Some(t);
                }
            }
            let t = best?;
            self.word.remove(t);
            return Some(t);
        }
        let mut best = 0;
        for i in 1..self.list.len() {
            if self.vals[self.list[i] as usize] > self.vals[self.list[best] as usize] {
                best = i;
            }
        }
        let t = (*self.list.get(best)?) as usize;
        self.list.swap_remove(best);
        self.on_list[t] = 0;
        Some(t)
    }

    fn memory_bytes(&self) -> usize {
        self.vals.capacity() * std::mem::size_of::<Pos>()
            + (self.val_stamp.capacity() + self.on_list.capacity() + self.list.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// Direction of a memoized closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Fwd,
    Bwd,
}

/// One cached fixpoint closure: for source node `⟨t1, j1⟩`, the bound
/// per chain (forward: earliest reachable position, backward: latest
/// predecessor; [`INF`] encodes "none" in both directions). Valid only
/// while `epoch` matches the index's edge version.
#[derive(Debug, Clone)]
struct MemoEntry {
    epoch: u64,
    dir: Dir,
    t1: u32,
    j1: Pos,
    /// Queries this entry has served since it was stored. A nonzero
    /// count marks the source as *hot*: after an
    /// [`PartialOrderIndex::insert_edges`] burst rolls the epoch, hot
    /// sources get their closures recomputed eagerly (see
    /// [`DynamicPo::refresh_hot_sources`]) so the next query burst hits
    /// the memo immediately.
    hits: u32,
    vals: Vec<Pos>,
}

/// Epoch-guarded closure cache: a tiny direct-scan store with
/// round-robin replacement. Chains beyond `vals.len()` read as
/// unconnected, so pure domain growth (which never changes answers)
/// does not invalidate entries — only edge updates roll the epoch.
#[derive(Debug, Clone)]
struct QueryMemo {
    entries: Vec<MemoEntry>,
    cap: usize,
    next: usize,
}

impl QueryMemo {
    fn new(cap: usize) -> Self {
        QueryMemo {
            entries: Vec::new(),
            cap,
            next: 0,
        }
    }

    /// The cached bound of chain `t2` for source `⟨t1, j1⟩`, if a
    /// closure of the right direction and epoch is cached. A hit bumps
    /// the entry's hotness counter.
    fn lookup(&mut self, epoch: u64, dir: Dir, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        self.entries
            .iter_mut()
            .find(|e| e.epoch == epoch && e.dir == dir && e.t1 == t1 as u32 && e.j1 == j1)
            .map(|e| {
                e.hits = e.hits.saturating_add(1);
                e.vals.get(t2).copied().unwrap_or(INF)
            })
    }

    /// Sources whose closure is worth recomputing after the given
    /// epoch closed: entries of that epoch that served at least one
    /// query. At most [`cap`](Self::cap) sources, so the refresh work
    /// per burst is bounded by the memo capacity.
    fn hot_sources(&self, epoch: u64) -> Vec<(Dir, usize, Pos)> {
        self.entries
            .iter()
            .filter(|e| e.epoch == epoch && e.hits > 0)
            .map(|e| (e.dir, e.t1 as usize, e.j1))
            .collect()
    }

    /// Caches the complete closure held in `scratch` (unvisited chains
    /// are stored as [`INF`]), reusing a replaced entry's allocation.
    fn store(&mut self, epoch: u64, dir: Dir, t1: usize, j1: Pos, k: usize, s: &QueryScratch) {
        if self.cap == 0 {
            return;
        }
        let fill = |vals: &mut Vec<Pos>| {
            vals.clear();
            vals.extend((0..k).map(|t| s.get(t).unwrap_or(INF)));
        };
        if self.entries.len() < self.cap {
            let mut vals = Vec::new();
            fill(&mut vals);
            self.entries.push(MemoEntry {
                epoch,
                dir,
                t1: t1 as u32,
                j1,
                hits: 0,
                vals,
            });
        } else {
            let e = &mut self.entries[self.next];
            e.epoch = epoch;
            e.dir = dir;
            e.t1 = t1 as u32;
            e.j1 = j1;
            e.hits = 0;
            fill(&mut e.vals);
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<MemoEntry>()
            + self
                .entries
                .iter()
                .map(|e| e.vals.capacity() * std::mem::size_of::<Pos>())
                .sum::<usize>()
    }
}

/// Reusable state of the batched group sweeps
/// ([`PartialOrderIndex::reachable_batch`] and friends): the probe
/// permutation plus one cursor per **chain pair** (slot `source·k +
/// target`) over that pair's raw heap-entry row.
///
/// Within a group every bound the sweep presents is monotone — the
/// source position descends (forward) or ascends (backward), and each
/// chain's closure bound only tightens — so cursors replace *all* the
/// per-relaxation `O(log n)` array descents, for the seed rows and the
/// inner cascade alike. Each pair's row is then consumed at most once
/// per group, making a group's total relaxation cost linear in its
/// live entries rather than `O(log)` per relaxation step. Two cursor
/// flavors, matching the two query shapes:
///
/// * **Forward** (`fwd_*`): a positional scan folding the running
///   minimum of all entries at or after the bound — exactly
///   [`SuffixMinima::suffix_min`](crate::suffix::SuffixMinima::suffix_min)
///   of the row — extended backward as the bound descends.
/// * **Backward** (`bw_*`): `argleq` qualifies entries by stored
///   *value*, not position, so a positional scan cannot answer it.
///   Instead the pair's live entries are copied into [`arena`] and
///   re-sorted by value on first touch in a group; as the bound grows,
///   newly qualifying entries are consumed in value order, folding the
///   running maximum source position.
///
/// [`arena`]: BatchScratch::arena
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    /// Nontrivial probes as `(t1, j1, probe index)`, sorted into sweep
    /// order; kept here so batched calls allocate nothing at steady
    /// state.
    order: Vec<(u32, Pos, u32)>,
    /// Chain count latched by [`begin_group`](Self::begin_group); the
    /// cursor tables hold `k²` slots.
    k: usize,
    /// Forward cursors: entries at `idx..` of the pair's row are
    /// consumed and folded into `min`. Valid while `stamp` matches.
    fwd_idx: Vec<u32>,
    fwd_min: Vec<Pos>,
    fwd_stamp: Vec<u32>,
    /// Position of the pair's next unconsumed entry (`0` when the row
    /// is exhausted): lets the sweeps skip a relaxation without even
    /// loading the pair's row when no entry at or after the new bound
    /// remains — the fold is then unchanged and was already applied.
    fwd_next: Vec<Pos>,
    /// Backward rows: `(stored value, source position)` of each live
    /// entry of a touched pair, sorted by value, in
    /// `arena[off .. off + len]`; rebuilt per group.
    arena: Vec<(Pos, Pos)>,
    bw_off: Vec<u32>,
    bw_len: Vec<u32>,
    /// Entries at `.. idx` of the pair's arena row are consumed and
    /// folded into `best` (the max source position; [`INF`] = none).
    bw_idx: Vec<u32>,
    bw_best: Vec<Pos>,
    bw_stamp: Vec<u32>,
    /// Value of the pair's next unconsumed arena entry ([`INF`] when
    /// exhausted): the backward dual of [`fwd_next`](Self::fwd_next).
    bw_next: Vec<Pos>,
    stamp: u32,
}

impl BatchScratch {
    /// Starts a new source-chain group over `k` chains: invalidates
    /// every cursor by stamp (lazily re-initialized on first touch)
    /// and drops the previous group's backward rows.
    fn begin_group(&mut self, k: usize) {
        let slots = k * k;
        if self.fwd_idx.len() < slots {
            self.fwd_idx.resize(slots, 0);
            self.fwd_min.resize(slots, 0);
            self.fwd_stamp.resize(slots, 0);
            self.fwd_next.resize(slots, 0);
            self.bw_off.resize(slots, 0);
            self.bw_len.resize(slots, 0);
            self.bw_idx.resize(slots, 0);
            self.bw_best.resize(slots, 0);
            self.bw_stamp.resize(slots, 0);
            self.bw_next.resize(slots, 0);
        }
        self.k = k;
        self.arena.clear();
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.fwd_stamp.fill(0);
            self.bw_stamp.fill(0);
            self.stamp = 1;
        }
    }

    #[inline]
    fn slot(&self, src: usize, dst: usize) -> usize {
        src * self.k + dst
    }

    /// The suffix minimum of `entries` (one pair's heap row, ascending
    /// by position, tombstones included) at `bound`, advancing the
    /// pair's cursor. Bounds must be presented in nonincreasing order
    /// per pair within a group; dead entries (`min() == None`) are
    /// skipped, so the fold reproduces the live suffix minima exactly.
    fn fwd_advance(&mut self, slot: usize, entries: &[(Pos, MinMultiset)], bound: Pos) -> Pos {
        if self.fwd_stamp[slot] != self.stamp {
            self.fwd_stamp[slot] = self.stamp;
            self.fwd_idx[slot] = entries.len() as u32;
            self.fwd_min[slot] = INF;
        }
        let mut idx = self.fwd_idx[slot] as usize;
        let mut m = self.fwd_min[slot];
        while idx > 0 && entries[idx - 1].0 >= bound {
            if let Some(v) = entries[idx - 1].1.min() {
                m = m.min(v);
            }
            idx -= 1;
        }
        self.fwd_idx[slot] = idx as u32;
        self.fwd_min[slot] = m;
        self.fwd_next[slot] = if idx > 0 { entries[idx - 1].0 } else { 0 };
        m
    }

    /// The latest source position in `entries` with a stored value at
    /// or below `bound` ([`INF`] when none qualifies), advancing the
    /// pair's value-sorted cursor — the cursor form of
    /// [`SuffixMinima::argleq`](crate::suffix::SuffixMinima::argleq).
    /// Bounds must be presented in nondecreasing order per pair within
    /// a group.
    fn bw_advance(&mut self, slot: usize, entries: &[(Pos, MinMultiset)], bound: Pos) -> Pos {
        if self.bw_stamp[slot] != self.stamp {
            self.bw_stamp[slot] = self.stamp;
            let off = self.arena.len();
            self.arena.extend(
                entries
                    .iter()
                    .filter_map(|&(p, ref ms)| ms.min().map(|v| (v, p))),
            );
            self.arena[off..].sort_unstable();
            self.bw_off[slot] = off as u32;
            self.bw_len[slot] = (self.arena.len() - off) as u32;
            self.bw_idx[slot] = 0;
            self.bw_best[slot] = INF;
        }
        let off = self.bw_off[slot] as usize;
        let len = self.bw_len[slot] as usize;
        let mut idx = self.bw_idx[slot] as usize;
        let mut best = self.bw_best[slot];
        while idx < len && self.arena[off + idx].0 <= bound {
            let p = self.arena[off + idx].1;
            if best == INF || p > best {
                best = p;
            }
            idx += 1;
        }
        self.bw_idx[slot] = idx as u32;
        self.bw_best[slot] = best;
        self.bw_next[slot] = if idx < len {
            self.arena[off + idx].0
        } else {
            INF
        };
        best
    }

    fn memory_bytes(&self) -> usize {
        self.order.capacity() * std::mem::size_of::<(u32, Pos, u32)>()
            + (self.fwd_idx.capacity()
                + self.fwd_stamp.capacity()
                + self.bw_off.capacity()
                + self.bw_len.capacity()
                + self.bw_idx.capacity()
                + self.bw_stamp.capacity())
                * std::mem::size_of::<u32>()
            + (self.fwd_min.capacity()
                + self.fwd_next.capacity()
                + self.bw_best.capacity()
                + self.bw_next.capacity())
                * std::mem::size_of::<Pos>()
            + self.arena.capacity() * std::mem::size_of::<(Pos, Pos)>()
    }
}

/// Fully dynamic chain-DAG reachability over a pluggable suffix-minima
/// structure (Algorithm 2). Use the [`Csst`] alias for the paper's data
/// structure.
#[derive(Debug, Clone)]
pub struct DynamicPo<S> {
    arrays: PairMatrix<S>,
    /// Edge heaps: per chain pair and source position, the multiset of
    /// direct successors in the target chain. Flat: slots share the
    /// matrix stride, so `(t1, t2)` resolves without hashing. Also owns
    /// the live-pair adjacency the query worklist walks.
    heaps: EdgeHeapStore,
    edges: usize,
    /// Edge version: bumped by every successful insert/delete so cached
    /// closures and in-flight assumptions can be invalidated cheaply.
    epoch: u64,
    /// Number of live edges that go *backward* in position
    /// (`to.pos < from.pos`). While zero — true for every
    /// streaming/windowed workload in this repo — relaxed bounds are
    /// monotone along crossing paths, and the query engine upgrades
    /// from chaotic worklist iteration to Dijkstra-style processing
    /// with single-pop finalization and sound early termination.
    backward_edges: usize,
    scratch: RefCell<QueryScratch>,
    memo: RefCell<QueryMemo>,
    batch: RefCell<BatchScratch>,
}

/// The paper's fully dynamic CSST: [`DynamicPo`] over
/// [`SparseSegmentTree`] arrays.
pub type Csst = DynamicPo<SparseSegmentTree>;

impl<S: SuffixMinima> DynamicPo<S> {
    #[inline]
    fn k(&self) -> usize {
        self.arrays.k()
    }

    /// Number of currently stored edges (counting parallel edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The current update epoch: bumped by every successful edge
    /// insert/delete. Cached query closures are valid exactly while the
    /// epoch stands still, so shard replicas exposing this number let a
    /// coordinator cheaply detect whether two replicas of the same edge
    /// stream have applied the same prefix of updates.
    pub fn update_epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-array density statistics (the `q` column of the tables).
    pub fn density_stats(&self) -> DensityStats {
        self.arrays.density_stats()
    }

    /// Sets the capacity (number of cached source-node closures) of the
    /// epoch-guarded query memo; `0` disables memoization entirely.
    ///
    /// The memo is transparent — answers are identical with any
    /// capacity (the property tests pin this) — so the knob exists for
    /// benchmarking and for workloads known to never repeat a source
    /// node between updates. Changing the capacity drops all cached
    /// closures.
    pub fn set_query_memo_capacity(&mut self, cap: usize) {
        *self.memo.borrow_mut() = QueryMemo::new(cap);
    }

    /// The forward crossing-path fixpoint of Algorithm 2, as a sparse
    /// worklist: returns a position of chain `t2` reachable from
    /// `⟨t1, j1⟩` via at least one cross-chain edge ([`INF`] if none) —
    /// the *earliest* one when `exact` is set, any one `≤ stop_at`
    /// otherwise (callers that only test reachability against a bound
    /// pass `exact = false`, `stop_at = pos`; exact callers pass
    /// `stop_at = 0`, below which no bound can improve).
    ///
    /// Relaxations run only along live chain pairs
    /// ([`EdgeHeapStore::out_neighbors`]) and only from chains whose
    /// bound improved, so convergence costs `O(r·δ_out)` suffix-minima
    /// queries where `r` is the number of bound improvements (≤ `k²`,
    /// Lemma 4; a handful in practice) and `δ_out` the live
    /// out-degree. The worklist pops the smallest bound first; while
    /// the index holds no backward edge (`to.pos < from.pos` — see
    /// [`Self::backward_edges`]) every relaxation yields a bound `≥`
    /// the popped one, so the pop order is Dijkstra's and two stronger
    /// exits apply, both without visiting the rest of the graph:
    ///
    /// * a popped chain's bound is **final** — popping `t2` answers an
    ///   exact query immediately;
    /// * once the smallest queued bound exceeds `stop_at`, no chain —
    ///   in particular `t2` — can ever reach a bound `≤ stop_at`,
    ///   answering a reachability query negatively.
    ///
    /// Only complete runs (worklist drained, no early exit) are
    /// memoized, since an interrupted run leaves other chains'
    /// bounds unconverged.
    fn forward_fixpoint(&self, t1: usize, j1: Pos, t2: usize, stop_at: Pos, exact: bool) -> Pos {
        let epoch = self.epoch;
        if let Some(v) = self.memo.borrow_mut().lookup(epoch, Dir::Fwd, t1, j1, t2) {
            return v;
        }
        let k = self.k();
        let mut s = self.scratch.borrow_mut();
        s.begin(k);
        for &t in self.heaps.out_neighbors(t1) {
            let t = t as usize;
            let v = self.arrays.get(t1, t).suffix_min(j1 as usize);
            if v != INF {
                if t == t2 && v <= stop_at {
                    return v; // a direct edge already satisfies the bound
                }
                s.set(t, v);
                s.push(t);
            }
        }
        let dijkstra = self.backward_edges == 0;
        while let Some(t) = s.pop_min() {
            let base = s.vals[t];
            if dijkstra {
                if exact && t == t2 {
                    return base; // popped bounds are final
                }
                if !exact && base > stop_at {
                    return s.get(t2).unwrap_or(INF); // nothing can land ≤ stop_at anymore
                }
            }
            for &tp in self.heaps.out_neighbors(t) {
                let tp = tp as usize;
                if tp == t1 {
                    continue;
                }
                let cur = s.get(tp).unwrap_or(INF);
                if cur == 0 {
                    continue; // already minimal
                }
                let v = self.arrays.get(t, tp).suffix_min(base as usize);
                if v < cur {
                    if tp == t2 && v <= stop_at {
                        return v;
                    }
                    s.set(tp, v);
                    s.push(tp);
                }
            }
        }
        let result = s.get(t2).unwrap_or(INF);
        self.memo.borrow_mut().store(epoch, Dir::Fwd, t1, j1, k, &s);
        result
    }

    /// Earliest node of chain `t2` reachable from `⟨t1, j1⟩` via at
    /// least one cross-chain edge ([`INF`] if none).
    #[inline]
    fn successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        self.forward_fixpoint(t1, j1, t2, 0, true)
    }

    /// Latest node of chain `t2` that reaches `⟨t1, j1⟩` via at least
    /// one cross-chain edge (`None` if there is none): the symmetric
    /// backward worklist over [`EdgeHeapStore::in_neighbors`], using
    /// `argleq` and maximizing bounds instead of minimizing. Pops the
    /// largest bound first; with no backward edges the popped bound is
    /// final (the backward dual of the Dijkstra argument in
    /// [`forward_fixpoint`](Self::forward_fixpoint)), so popping `t2`
    /// answers immediately.
    fn predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        let epoch = self.epoch;
        if let Some(v) = self.memo.borrow_mut().lookup(epoch, Dir::Bwd, t1, j1, t2) {
            return (v != INF).then_some(v);
        }
        let k = self.k();
        let mut s = self.scratch.borrow_mut();
        s.begin(k);
        for &t in self.heaps.in_neighbors(t1) {
            let t = t as usize;
            if let Some(v) = self.arrays.get(t, t1).argleq(j1) {
                s.set(t, v as Pos);
                s.push(t);
            }
        }
        let dijkstra = self.backward_edges == 0;
        while let Some(t) = s.pop_max() {
            let base = s.vals[t];
            if dijkstra && t == t2 {
                return Some(base); // popped bounds are final
            }
            for &tp in self.heaps.in_neighbors(t) {
                let tp = tp as usize;
                if tp == t1 {
                    continue;
                }
                let Some(v) = self.arrays.get(tp, t).argleq(base) else {
                    continue;
                };
                let v = v as Pos;
                if s.get(tp).is_none_or(|cur| v > cur) {
                    s.set(tp, v);
                    s.push(tp);
                }
            }
        }
        let result = s.get(t2);
        self.memo.borrow_mut().store(epoch, Dir::Bwd, t1, j1, k, &s);
        result
    }

    /// Recomputes the closures of hot sources after an
    /// [`PartialOrderIndex::insert_edges`] burst: every memo entry of
    /// the just-closed epoch that served at least one query gets its
    /// fixpoint rerun under the new epoch, so the following query burst
    /// (the steady `hb`/`race` pattern: update burst, then many probes
    /// from the same frontier nodes) hits the memo without paying a
    /// propagation per probe.
    ///
    /// Each refresh runs the fixpoint with `t2 = t1`: the source chain
    /// is never seeded (no self-edges exist) nor relaxed (the engines
    /// skip `tp == t1`), so the run can never take an early exit — it
    /// drains completely and therefore memoizes. Work per burst is
    /// bounded by the memo capacity, and sources stay hot only while
    /// they keep being queried every epoch (stored entries restart at
    /// zero hits).
    fn refresh_hot_sources(&mut self, closed_epoch: u64) {
        let hot = self.memo.borrow().hot_sources(closed_epoch);
        for (dir, t1, j1) in hot {
            match dir {
                Dir::Fwd => {
                    self.forward_fixpoint(t1, j1, t1, 0, true);
                }
                Dir::Bwd => {
                    self.predecessor_raw(t1, j1, t1);
                }
            }
        }
    }

    /// Smallest source-chain group the batched sweeps take on
    /// themselves; groups below `min(k, MIN_SWEEP_GROUP)` probes are
    /// answered by the per-probe engine instead. A group sweep enters
    /// by converging a full `k`-chain closure — roughly `k` times the
    /// work of one early-exiting per-probe query — so it only pays off
    /// once enough probes share the source chain to amortize that
    /// entry cost.
    const MIN_SWEEP_GROUP: usize = 8;

    /// The forward group sweep behind
    /// [`PartialOrderIndex::reachable_batch`] and
    /// [`PartialOrderIndex::successor_batch`].
    ///
    /// `work` holds the nontrivial probes as `(t1, j1, probe index)`,
    /// sorted by source chain and — within a chain — by **descending**
    /// source position. Per source chain the closure array is reused in
    /// place: a crossing path usable from position `j` is usable from
    /// any `j' ≤ j` (its first hop only needs a source at or after the
    /// departure position), so when the sweep steps down to the next
    /// `j1` every stored bound is still witnessed and the worklist only
    /// relaxes the delta. Seeds *and* inner relaxations read through the
    /// per-pair entry cursors ([`BatchScratch::fwd_advance`]): every
    /// chain's bound is nonincreasing within a group, so each pair's
    /// heap row is consumed at most once per group and the group's
    /// total relaxation cost is linear in its live entries instead of
    /// `O(log n)` per relaxation step.
    ///
    /// Unlike the per-probe engine the sweep runs every fixpoint to
    /// quiescence (no early exit — later probes of the group need the
    /// other chains converged) and bypasses the memo: the group itself
    /// is the amortization. Chaotic relaxation from witnessed upper
    /// bounds with all seeds re-applied converges to the same least
    /// fixpoint the per-probe engine computes, in both the Dijkstra and
    /// the chaotic regime, so answers are identical (the property tests
    /// pin this).
    ///
    /// `answer` is called once per work item, in `work` order, with the
    /// probe index and the converged closure of that probe's source.
    fn forward_batch_sweep(
        &self,
        work: &[(u32, Pos, u32)],
        mut answer: impl FnMut(usize, &QueryScratch),
    ) {
        let k = self.k();
        let mut s = self.scratch.borrow_mut();
        let mut b = self.batch.borrow_mut();
        let mut group: Option<u32> = None;
        let mut at: Option<Pos> = None;
        for &(t1u, j1, idx) in work {
            let t1 = t1u as usize;
            if group != Some(t1u) {
                group = Some(t1u);
                at = None;
                s.begin(k);
                b.begin_group(k);
            }
            if at != Some(j1) {
                at = Some(j1);
                for &t in self.heaps.out_neighbors(t1) {
                    let t = t as usize;
                    let sl = b.slot(t1, t);
                    if b.fwd_stamp[sl] == b.stamp && b.fwd_next[sl] < j1 {
                        continue; // fold unchanged and already applied
                    }
                    let v = b.fwd_advance(sl, self.heaps.pair(t1, t).entries(), j1);
                    if v != INF && s.get(t).is_none_or(|cur| v < cur) {
                        s.set(t, v);
                        s.push(t);
                    }
                }
                while let Some(t) = s.pop_min() {
                    let base = s.vals[t];
                    for &tp in self.heaps.out_neighbors(t) {
                        let tp = tp as usize;
                        if tp == t1 {
                            continue;
                        }
                        let sl = b.slot(t, tp);
                        if b.fwd_stamp[sl] == b.stamp && b.fwd_next[sl] < base {
                            continue; // fold unchanged and already applied
                        }
                        let cur = s.get(tp).unwrap_or(INF);
                        if cur == 0 {
                            continue; // already minimal
                        }
                        let v = b.fwd_advance(sl, self.heaps.pair(t, tp).entries(), base);
                        if v < cur {
                            s.set(tp, v);
                            s.push(tp);
                        }
                    }
                }
            }
            answer(idx as usize, &s);
        }
    }

    /// The backward dual of
    /// [`forward_batch_sweep`](Self::forward_batch_sweep), behind
    /// [`PartialOrderIndex::predecessor_batch`]: `work` is sorted by
    /// source chain and **ascending** position (predecessor bounds only
    /// grow as the source moves later). Seeds and inner relaxations
    /// read through the value-sorted pair cursors
    /// ([`BatchScratch::bw_advance`]) — the bound each pair sees is
    /// nondecreasing within a group, so after the one-time per-group
    /// value sort each row is consumed at most once per group.
    fn backward_batch_sweep(
        &self,
        work: &[(u32, Pos, u32)],
        mut answer: impl FnMut(usize, &QueryScratch),
    ) {
        let k = self.k();
        let mut s = self.scratch.borrow_mut();
        let mut b = self.batch.borrow_mut();
        let mut group: Option<u32> = None;
        let mut at: Option<Pos> = None;
        for &(t1u, j1, idx) in work {
            let t1 = t1u as usize;
            if group != Some(t1u) {
                group = Some(t1u);
                at = None;
                s.begin(k);
                b.begin_group(k);
            }
            if at != Some(j1) {
                at = Some(j1);
                for &t in self.heaps.in_neighbors(t1) {
                    let t = t as usize;
                    let sl = b.slot(t, t1);
                    if b.bw_stamp[sl] == b.stamp && b.bw_next[sl] > j1 {
                        continue; // fold unchanged and already applied
                    }
                    let v = b.bw_advance(sl, self.heaps.pair(t, t1).entries(), j1);
                    if v != INF && s.get(t).is_none_or(|cur| v > cur) {
                        s.set(t, v);
                        s.push(t);
                    }
                }
                while let Some(t) = s.pop_max() {
                    let base = s.vals[t];
                    for &tp in self.heaps.in_neighbors(t) {
                        let tp = tp as usize;
                        if tp == t1 {
                            continue;
                        }
                        let sl = b.slot(tp, t);
                        if b.bw_stamp[sl] == b.stamp && b.bw_next[sl] > base {
                            continue; // fold unchanged and already applied
                        }
                        let v = b.bw_advance(sl, self.heaps.pair(tp, t).entries(), base);
                        if v == INF {
                            continue;
                        }
                        if s.get(tp).is_none_or(|cur| v > cur) {
                            s.set(tp, v);
                            s.push(tp);
                        }
                    }
                }
            }
            answer(idx as usize, &s);
        }
    }

    /// The original dense `O(k³)` Bellman–Ford fixpoint of Algorithm 2,
    /// kept as a reference implementation: the property tests pin the
    /// worklist engine against it under random scripts.
    #[cfg(test)]
    fn dense_successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        let k = self.k();
        let mut closure = vec![INF; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays.get(t1, t).suffix_min(j1 as usize);
            }
        }
        // Lemma 4: after the i-th iteration, closure[t] is the earliest
        // node of t reachable via a crossing path of length ≤ i + 1;
        // crossing paths need at most k hops.
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 || closure[tp2] == INF {
                        continue;
                    }
                    let v = self.arrays.get(tp2, tp1).suffix_min(closure[tp2] as usize);
                    if v < closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }

    /// Dense counterpart of [`predecessor_raw`](Self::predecessor_raw);
    /// see [`dense_successor_raw`](Self::dense_successor_raw).
    #[cfg(test)]
    fn dense_predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        let k = self.k();
        let mut closure: Vec<Option<Pos>> = vec![None; k];
        for (t, slot) in closure.iter_mut().enumerate() {
            if t != t1 {
                *slot = self.arrays.get(t, t1).argleq(j1).map(|p| p as Pos);
            }
        }
        loop {
            let mut changed = false;
            for tp1 in 0..k {
                if tp1 == t1 {
                    continue;
                }
                for tp2 in 0..k {
                    if tp2 == t1 || tp2 == tp1 {
                        continue;
                    }
                    let Some(c) = closure[tp2] else { continue };
                    let v = self.arrays.get(tp1, tp2).argleq(c).map(|p| p as Pos);
                    if v > closure[tp1] {
                        closure[tp1] = v;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        closure[t2]
    }
}

impl<S: SuffixMinima> PartialOrderIndex for DynamicPo<S> {
    fn new() -> Self {
        DynamicPo {
            arrays: PairMatrix::new(),
            heaps: EdgeHeapStore::new(),
            edges: 0,
            epoch: 0,
            backward_edges: 0,
            scratch: RefCell::new(QueryScratch::default()),
            memo: RefCell::new(QueryMemo::new(DEFAULT_MEMO_CAPACITY)),
            batch: RefCell::new(BatchScratch::default()),
        }
    }

    fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        let arrays = PairMatrix::with_capacity(chains, chain_capacity);
        let mut heaps = EdgeHeapStore::new();
        heaps.sync_kslots(arrays.kslots());
        DynamicPo {
            arrays,
            heaps,
            edges: 0,
            epoch: 0,
            backward_edges: 0,
            scratch: RefCell::new(QueryScratch::default()),
            memo: RefCell::new(QueryMemo::new(DEFAULT_MEMO_CAPACITY)),
            batch: RefCell::new(BatchScratch::default()),
        }
    }

    fn name(&self) -> &'static str {
        "CSSTs"
    }

    fn chains(&self) -> usize {
        self.arrays.k()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.arrays.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.arrays.ensure_chain(chain);
        self.heaps.sync_kslots(self.arrays.kslots());
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.arrays.ensure_len(chain, len);
        self.heaps.sync_kslots(self.arrays.kslots());
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        if self.heaps.insert(t1, t2, j1, j2) {
            self.arrays.get_mut(t1, t2).update(j1 as usize, j2);
        }
        if j2 < j1 {
            self.backward_edges += 1;
        }
        self.edges += 1;
        self.epoch += 1;
    }

    fn insert_edges_raw(&mut self, edges: &[(NodeId, NodeId)]) {
        // Visit the batch grouped by chain pair (stable sort, so the
        // per-pair insertion order — and therefore every heap and
        // array state — matches the sequential path exactly): one warm
        // pair/array working set per group.
        let kslots = self.arrays.kslots();
        let mut order: Vec<u32> = (0..edges.len() as u32).collect();
        order.sort_by_key(|&i| {
            let (from, to) = edges[i as usize];
            from.thread.index() * kslots + to.thread.index()
        });
        for &i in &order {
            let (from, to) = edges[i as usize];
            let (ft, tt) = (from.thread.index(), to.thread.index());
            if self.heaps.insert(ft, tt, from.pos, to.pos) {
                self.arrays
                    .get_mut(ft, tt)
                    .update(from.pos as usize, to.pos);
            }
            if to.pos < from.pos {
                self.backward_edges += 1;
            }
            self.edges += 1;
        }
        if !edges.is_empty() {
            let closed = self.epoch;
            self.epoch += 1;
            // Burst-path only: single-edge inserts stay refresh-free so
            // fine-grained query/update interleavings pay nothing.
            self.refresh_hot_sources(closed);
        }
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        if t1 >= self.k() || t2 >= self.k() {
            return Err(PoError::EdgeNotFound { from, to });
        }
        let Some((old_min, new_min)) = self.heaps.remove(t1, t2, j1, j2) else {
            return Err(PoError::EdgeNotFound { from, to });
        };
        if old_min == Some(j2) && new_min != Some(j2) {
            self.arrays
                .get_mut(t1, t2)
                .update(j1 as usize, new_min.unwrap_or(INF));
        }
        if j2 < j1 {
            self.backward_edges -= 1;
        }
        self.edges -= 1;
        self.epoch += 1;
        Ok(())
    }

    /// Bound-aware reachability: runs the forward worklist with the
    /// target position as the stop bound, so propagation halts as soon
    /// as *any* path lands at or before `to` — no need to find the
    /// earliest one.
    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        let t1 = from.thread.index();
        let t2 = to.thread.index();
        if t1 >= self.k() || t2 >= self.k() {
            return false; // unwitnessed chains carry no edges
        }
        self.forward_fixpoint(t1, from.pos, t2, to.pos, false) <= to.pos
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None; // unwitnessed chains carry no edges
        }
        match self.successor_raw(t1, from.pos, t2) {
            INF => None,
            v => Some(v),
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        self.predecessor_raw(t1, from.pos, t2)
    }

    /// Batched reachability as a forward group sweep (see
    /// `DynamicPo::forward_batch_sweep`): probes are grouped by
    /// source chain, swept in descending source position, and answered
    /// from one in-place closure per group.
    fn reachable_batch(&self, probes: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.resize(probes.len(), false);
        let k = self.k();
        let mut work = std::mem::take(&mut self.batch.borrow_mut().order);
        work.clear();
        for (i, &(from, to)) in probes.iter().enumerate() {
            if from.thread == to.thread {
                out[i] = from.pos <= to.pos;
            } else if from.thread.index() < k && to.thread.index() < k {
                work.push((from.thread.0, from.pos, i as u32));
            } // unwitnessed chains carry no edges: stays `false`
        }
        work.sort_unstable_by_key(|&(t1, j1, _)| (t1, std::cmp::Reverse(j1)));
        // Small groups are better served by the per-probe engine (it
        // keeps the memo and the bounded early exit); compact the
        // large ones to the front and sweep only those.
        let min_group = Self::MIN_SWEEP_GROUP.min(k.max(2));
        let mut kept = 0usize;
        let mut s = 0usize;
        while s < work.len() {
            let mut e = s + 1;
            while e < work.len() && work[e].0 == work[s].0 {
                e += 1;
            }
            if e - s >= min_group {
                work.copy_within(s..e, kept);
                kept += e - s;
            } else {
                for &(_, _, i) in &work[s..e] {
                    let i = i as usize;
                    let (from, to) = probes[i];
                    out[i] = self.reachable(from, to);
                }
            }
            s = e;
        }
        if kept > 0 {
            self.forward_batch_sweep(&work[..kept], |i, s| {
                let to = probes[i].1;
                out[i] = s.get(to.thread.index()).is_some_and(|v| v <= to.pos);
            });
        }
        self.batch.borrow_mut().order = work;
    }

    /// Batched successor queries over the same forward group sweep as
    /// [`reachable_batch`](Self::reachable_batch); the converged
    /// closure is exact, so each probe reads its earliest reachable
    /// position directly.
    fn successor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.resize(probes.len(), None);
        let k = self.k();
        let mut work = std::mem::take(&mut self.batch.borrow_mut().order);
        work.clear();
        for (i, &(from, chain)) in probes.iter().enumerate() {
            if from.thread == chain {
                out[i] = Some(from.pos);
            } else if from.thread.index() < k && chain.index() < k {
                work.push((from.thread.0, from.pos, i as u32));
            }
        }
        work.sort_unstable_by_key(|&(t1, j1, _)| (t1, std::cmp::Reverse(j1)));
        let min_group = Self::MIN_SWEEP_GROUP.min(k.max(2));
        let mut kept = 0usize;
        let mut s = 0usize;
        while s < work.len() {
            let mut e = s + 1;
            while e < work.len() && work[e].0 == work[s].0 {
                e += 1;
            }
            if e - s >= min_group {
                work.copy_within(s..e, kept);
                kept += e - s;
            } else {
                for &(_, _, i) in &work[s..e] {
                    let i = i as usize;
                    let (from, chain) = probes[i];
                    out[i] = self.successor(from, chain);
                }
            }
            s = e;
        }
        if kept > 0 {
            // INF is never stored in the scratch (seeds and
            // relaxations only admit improving finite bounds), so a
            // stamped value is always a real position.
            self.forward_batch_sweep(&work[..kept], |i, s| {
                out[i] = s.get(probes[i].1.index());
            });
        }
        self.batch.borrow_mut().order = work;
    }

    /// Batched predecessor queries: the backward group sweep
    /// (`DynamicPo::backward_batch_sweep`), ascending in source
    /// position.
    fn predecessor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.resize(probes.len(), None);
        let k = self.k();
        let mut work = std::mem::take(&mut self.batch.borrow_mut().order);
        work.clear();
        for (i, &(from, chain)) in probes.iter().enumerate() {
            if from.thread == chain {
                out[i] = Some(from.pos);
            } else if from.thread.index() < k && chain.index() < k {
                work.push((from.thread.0, from.pos, i as u32));
            }
        }
        work.sort_unstable_by_key(|&(t1, j1, _)| (t1, j1));
        let min_group = Self::MIN_SWEEP_GROUP.min(k.max(2));
        let mut kept = 0usize;
        let mut s = 0usize;
        while s < work.len() {
            let mut e = s + 1;
            while e < work.len() && work[e].0 == work[s].0 {
                e += 1;
            }
            if e - s >= min_group {
                work.copy_within(s..e, kept);
                kept += e - s;
            } else {
                for &(_, _, i) in &work[s..e] {
                    let i = i as usize;
                    let (from, chain) = probes[i];
                    out[i] = self.predecessor(from, chain);
                }
            }
            s = e;
        }
        if kept > 0 {
            self.backward_batch_sweep(&work[..kept], |i, s| {
                out[i] = s.get(probes[i].1.index());
            });
        }
        self.batch.borrow_mut().order = work;
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        // The store accounts for itself exactly: the flat slot vector
        // (the analogue of the outer hash map this layout replaced,
        // whose bucket overhead the old accounting missed) plus every
        // pair's entry vector and spilled heap. The query engine's
        // scratch and memo are O(k) side buffers but are charged too.
        std::mem::size_of::<Self>()
            + self.arrays.memory_bytes()
            + self.heaps.memory_bytes()
            + self.scratch.borrow().memory_bytes()
            + self.memo.borrow().memory_bytes()
            + self.batch.borrow().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn reflexive_and_program_order() {
        let po = Csst::with_capacity(3, 10);
        assert!(po.reachable(n(0, 3), n(0, 3)));
        assert!(po.reachable(n(0, 2), n(0, 9)));
        assert!(!po.reachable(n(0, 9), n(0, 2)));
        assert!(!po.reachable(n(0, 0), n(1, 9)));
        assert_eq!(po.successor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(1)), Some(4));
        assert_eq!(po.successor(n(1, 4), ThreadId(0)), None);
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn empty_index_answers_like_program_order() {
        let po = Csst::new();
        assert_eq!(po.chains(), 0);
        assert!(
            po.reachable(n(4, 1), n(4, 8)),
            "program order needs no setup"
        );
        assert!(!po.reachable(n(0, 0), n(1, 0)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
        assert_eq!(po.predecessor(n(2, 5), ThreadId(0)), None);
    }

    #[test]
    fn append_and_ensure_chain_grow_the_domain() {
        let mut po = Csst::new();
        let a = po.append(0);
        let b = po.append(1);
        let b2 = po.append(1);
        assert_eq!((a, b, b2), (n(0, 0), n(1, 0), n(1, 1)));
        assert_eq!(po.chains(), 2);
        assert_eq!(po.chain_len(ThreadId(1)), 2);
        po.ensure_chain(ThreadId(4));
        assert_eq!(po.chains(), 5);
        assert_eq!(po.chain_len(ThreadId(4)), 0);
        po.insert_edge(a, b2).unwrap();
        assert!(po.reachable(a, n(1, 1)));
    }

    #[test]
    fn insert_grows_past_any_hint() {
        let mut po = Csst::with_capacity(2, 4);
        // Both the chain count and the positions exceed the hint.
        po.insert_edge(n(0, 1_000_000), n(5, 2_000_000)).unwrap();
        assert_eq!(po.chains(), 6);
        assert_eq!(po.chain_len(ThreadId(0)), 1_000_001);
        assert!(po.reachable(n(0, 0), n(5, 2_000_000)));
        assert!(!po.reachable(n(0, 1_000_001), n(5, 2_000_000)));
        assert_eq!(po.successor(n(0, 3), ThreadId(5)), Some(2_000_000));
    }

    #[test]
    fn sparse_growth_stays_cheap_in_memory() {
        let mut po = Csst::new();
        for t in 0..8u32 {
            po.ensure_len(ThreadId(t), 1 << 20);
        }
        po.insert_edge(n(0, 500_000), n(1, 700_000)).unwrap();
        assert!(
            po.memory_bytes() < 256 * 1024,
            "sparse arrays must not pay for untouched capacity: {}B",
            po.memory_bytes()
        );
    }

    #[test]
    fn direct_edge_with_suffix_semantics() {
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge(n(0, 5), n(1, 5)).unwrap();
        // Earlier events of chain 0 inherit the edge via program order.
        assert!(po.reachable(n(0, 0), n(1, 5)));
        assert!(po.reachable(n(0, 5), n(1, 9)));
        assert!(!po.reachable(n(0, 6), n(1, 9)));
        assert!(!po.reachable(n(0, 5), n(1, 4)));
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(5));
        assert_eq!(po.predecessor(n(1, 9), ThreadId(0)), Some(5));
        assert_eq!(po.predecessor(n(1, 4), ThreadId(0)), None);
    }

    #[test]
    fn example_6_transitive_query() {
        // Figure 8: successor(⟨0,0⟩, 3) = ⟨3,1⟩ discovered through a
        // crossing path of length 4.
        let mut po = Csst::with_capacity(4, 3);
        po.insert_edge(n(0, 0), n(1, 0)).unwrap(); // edge 1
        po.insert_edge(n(0, 1), n(3, 2)).unwrap(); // edge 2
        po.insert_edge(n(1, 1), n(2, 1)).unwrap(); // edge 3
        po.insert_edge(n(2, 2), n(3, 1)).unwrap(); // edge 4
        assert_eq!(po.successor(n(0, 0), ThreadId(3)), Some(1));
        assert!(po.reachable(n(0, 0), n(3, 1)));
        assert!(!po.reachable(n(0, 0), n(3, 0)));
        // Backward: the latest node of chain 0 reaching ⟨3,1⟩ is ⟨0,0⟩.
        assert_eq!(po.predecessor(n(3, 1), ThreadId(0)), Some(0));
        assert_eq!(po.predecessor(n(3, 2), ThreadId(0)), Some(1));
    }

    #[test]
    fn delete_restores_previous_state() {
        let mut po = Csst::with_capacity(3, 100);
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(po.reachable(n(0, 5), n(2, 99)));
        po.delete_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(!po.reachable(n(0, 5), n(2, 99)));
        assert!(po.reachable(n(0, 5), n(1, 99)));
        po.delete_edge(n(0, 10), n(1, 20)).unwrap();
        assert!(!po.reachable(n(0, 5), n(1, 99)));
        assert_eq!(po.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_and_heap_restoration() {
        let mut po = Csst::with_capacity(2, 50);
        po.insert_edge(n(0, 3), n(1, 20)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap();
        po.insert_edge(n(0, 3), n(1, 10)).unwrap(); // duplicate edge
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        // One copy of the 10-edge remains.
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(10));
        po.delete_edge(n(0, 3), n(1, 10)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(20));
        po.delete_edge(n(0, 3), n(1, 20)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), None);
    }

    #[test]
    fn delete_errors() {
        let mut po = Csst::with_capacity(2, 10);
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 2)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 2)
            })
        );
        po.insert_edge(n(0, 1), n(1, 2)).unwrap();
        assert_eq!(
            po.delete_edge(n(0, 1), n(1, 3)),
            Err(PoError::EdgeNotFound {
                from: n(0, 1),
                to: n(1, 3)
            })
        );
        // Deleting on never-witnessed chains is not-found, not a panic.
        assert_eq!(
            po.delete_edge(n(7, 0), n(8, 0)),
            Err(PoError::EdgeNotFound {
                from: n(7, 0),
                to: n(8, 0)
            })
        );
    }

    #[test]
    fn validation_errors() {
        use crate::index::{MAX_CHAINS, MAX_POS};
        let mut po = Csst::new();
        assert!(matches!(
            po.insert_edge(n(0, 1), n(0, 2)),
            Err(PoError::SameChain { .. })
        ));
        // Genuinely invalid inputs: beyond the addressable universe.
        assert!(matches!(
            po.insert_edge(n(0, 1), n(MAX_CHAINS as u32, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        assert!(matches!(
            po.insert_edge(n(0, MAX_POS + 1), n(1, 2)),
            Err(PoError::OutOfRange { .. })
        ));
        // In-universe nodes never error: the domain grows instead.
        assert!(po.insert_edge(n(0, 10), n(1, 2)).is_ok());
    }

    #[test]
    fn checked_insert_rejects_cycles() {
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge_checked(n(0, 5), n(1, 5)).unwrap();
        assert_eq!(
            po.insert_edge_checked(n(1, 5), n(0, 5)),
            Err(PoError::WouldCycle {
                from: n(1, 5),
                to: n(0, 5)
            })
        );
        // A non-cyclic back edge is fine.
        po.insert_edge_checked(n(1, 5), n(0, 6)).unwrap();
    }

    #[test]
    fn density_stats_reflect_direct_edges() {
        let mut po = Csst::with_capacity(3, 100);
        for j in 0..10 {
            po.insert_edge(n(0, j), n(1, j)).unwrap();
        }
        let stats = po.density_stats();
        assert_eq!(stats.arrays, 6, "3 witnessed chains → 6 ordered pairs");
        assert_eq!(stats.max_peak, 10);
        assert!(stats.q > 0.0 && stats.q <= 1.0);
    }

    #[test]
    fn memory_bytes_monotone_under_inserts_and_shrinks_after_deletes() {
        // Append-style streaming (every edge touches a fresh source
        // position): memory may only grow while inserting, and must
        // genuinely fall once deletions drain the edge heaps and
        // release the SSTs' block extents.
        let mut po = Csst::new();
        let mut prev = po.memory_bytes();
        let mut edges = Vec::new();
        for i in 0..256u32 {
            let (u, v) = (n(i % 4, i), n((i + 1) % 4, i + 1));
            po.insert_edge(u, v).unwrap();
            edges.push((u, v));
            let m = po.memory_bytes();
            assert!(m >= prev, "memory fell from {prev} to {m} on insert {i}");
            prev = m;
        }
        let peak = prev;
        for (u, v) in edges.into_iter().rev() {
            po.delete_edge(u, v).unwrap();
        }
        assert_eq!(po.edge_count(), 0);
        let drained = po.memory_bytes();
        assert!(
            drained < peak / 2,
            "draining all edges must release heap entries and block \
             extents: {drained}B vs peak {peak}B"
        );
    }

    #[test]
    fn supports_deletion_flag() {
        let po = Csst::with_capacity(2, 4);
        assert!(po.supports_deletion());
        assert_eq!(po.name(), "CSSTs");
    }

    #[test]
    fn batched_queries_match_sequential_basics() {
        let mut po = Csst::with_capacity(4, 50);
        po.insert_edge(n(0, 5), n(1, 10)).unwrap();
        po.insert_edge(n(1, 12), n(2, 7)).unwrap();
        let probes = [
            (n(0, 0), ThreadId(2)), // transitive crossing path
            (n(0, 6), ThreadId(1)), // past the only edge
            (n(1, 3), ThreadId(1)), // reflexive same-chain
            (n(9, 0), ThreadId(0)), // unwitnessed source chain
            (n(0, 0), ThreadId(9)), // unwitnessed target chain
            (n(0, 5), ThreadId(2)),
            (n(0, 5), ThreadId(2)), // duplicate source position
        ];
        let mut out = Vec::new();
        po.successor_batch(&probes, &mut out);
        assert_eq!(out[0], Some(7));
        assert_eq!(out[2], Some(3));
        for (p, got) in probes.iter().zip(&out) {
            assert_eq!(*got, po.successor(p.0, p.1), "successor probe {p:?}");
        }
        po.predecessor_batch(&probes, &mut out);
        for (p, got) in probes.iter().zip(&out) {
            assert_eq!(*got, po.predecessor(p.0, p.1), "predecessor probe {p:?}");
        }
        let rprobes = [
            (n(0, 0), n(2, 7)),
            (n(0, 0), n(2, 6)),
            (n(2, 1), n(2, 4)),  // same chain, program order
            (n(0, 6), n(1, 50)), // source past the only edge
            (n(7, 0), n(8, 1)),  // unwitnessed chains
        ];
        let mut rout = Vec::new();
        po.reachable_batch(&rprobes, &mut rout);
        assert_eq!(rout, vec![true, false, true, false, false]);
        for (p, got) in rprobes.iter().zip(&rout) {
            assert_eq!(*got, po.reachable(p.0, p.1), "reachable probe {p:?}");
        }
        // Empty batches are a no-op that clears the output buffer.
        po.successor_batch(&[], &mut out);
        assert!(out.is_empty());
        po.reachable_batch(&[], &mut rout);
        assert!(rout.is_empty());
    }

    #[test]
    fn batched_matches_sequential_beyond_bitset_width() {
        use crate::index::MAX_BITSET_CHAINS;
        // More chains than fit a bitset word: the worklist runs in
        // wide (stamped-list) mode and must answer identically.
        let k = MAX_BITSET_CHAINS as u32 + 6;
        let mut po = Csst::new();
        po.ensure_chain(ThreadId(k - 1));
        assert!(po.chains() > MAX_BITSET_CHAINS);
        let edges: Vec<_> = (0..k - 1).map(|t| (n(t, t + 1), n(t + 1, t + 2))).collect();
        po.insert_edges(&edges).unwrap();
        let succ_probes: Vec<_> = (0..k)
            .flat_map(|t2| [(n(0, 0), ThreadId(t2)), (n(3, 0), ThreadId(t2))])
            .collect();
        let mut out = Vec::new();
        po.successor_batch(&succ_probes, &mut out);
        for (p, got) in succ_probes.iter().zip(&out) {
            assert_eq!(*got, po.successor(p.0, p.1), "successor probe {p:?}");
        }
        assert_eq!(
            out[2 * (k as usize - 1)],
            Some(k),
            "end of the crossing chain"
        );
        po.predecessor_batch(&succ_probes, &mut out);
        for (p, got) in succ_probes.iter().zip(&out) {
            assert_eq!(*got, po.predecessor(p.0, p.1), "predecessor probe {p:?}");
        }
        let reach_probes: Vec<_> = (0..k).map(|t2| (n(0, 0), n(t2, t2 + 1))).collect();
        let mut rout = Vec::new();
        po.reachable_batch(&reach_probes, &mut rout);
        for (p, got) in reach_probes.iter().zip(&rout) {
            assert_eq!(*got, po.reachable(p.0, p.1), "reachable probe {p:?}");
        }
    }

    #[test]
    fn hot_source_refresh_is_transparent() {
        let mut po = Csst::with_capacity(3, 100);
        po.insert_edges(&[(n(0, 10), n(1, 20)), (n(1, 25), n(2, 30))])
            .unwrap();
        // Make both directions of a source hot: the second query of
        // each pair is served by the memo and bumps the hit counter.
        for _ in 0..2 {
            assert_eq!(po.successor(n(0, 5), ThreadId(2)), Some(30));
            assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), Some(10));
        }
        // Bursts refresh hot closures under the new epoch; answers must
        // track the new edges exactly (the refresh is transparent).
        po.insert_edges(&[(n(1, 21), n(2, 24))]).unwrap();
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), Some(24));
        assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), Some(10));
        po.insert_edges(&[(n(0, 11), n(2, 44))]).unwrap();
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), Some(24));
        assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), Some(11));
        // A burst with nothing hot (fresh epoch, no queries since) is
        // still correct.
        po.insert_edges(&[(n(0, 1), n(1, 2))]).unwrap();
        po.insert_edges(&[(n(1, 3), n(2, 4))]).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(2)), Some(4));
    }

    #[test]
    fn memo_serves_bursts_and_rolls_with_the_epoch() {
        let mut po = Csst::with_capacity(3, 50);
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 25), n(2, 30)).unwrap();
        // A burst of queries from one source node: the second call is
        // served from the memo and must agree with the first.
        let first = po.successor(n(0, 5), ThreadId(2));
        assert_eq!(first, Some(30));
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), first);
        assert_eq!(po.successor(n(0, 5), ThreadId(1)), Some(20));
        // An update rolls the epoch: the cached closure must not leak.
        po.delete_edge(n(1, 25), n(2, 30)).unwrap();
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), None);
        assert_eq!(po.successor(n(0, 5), ThreadId(1)), Some(20));
        po.insert_edge(n(1, 21), n(2, 40)).unwrap();
        assert_eq!(po.successor(n(0, 5), ThreadId(2)), Some(40));
        // Backward closures roll identically.
        assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), Some(10));
        po.delete_edge(n(0, 10), n(1, 20)).unwrap();
        assert_eq!(po.predecessor(n(2, 45), ThreadId(0)), None);
    }

    #[test]
    fn memo_survives_pure_domain_growth() {
        // Pure growth never changes answers, so it must not invalidate
        // cached closures — and cached closures must answer queries
        // about chains younger than the cache entry as "unconnected".
        let mut po = Csst::with_capacity(2, 10);
        po.insert_edge(n(0, 3), n(1, 4)).unwrap();
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(4));
        po.ensure_chain(ThreadId(7));
        po.ensure_len(ThreadId(1), 1 << 16);
        assert_eq!(po.successor(n(0, 0), ThreadId(1)), Some(4));
        assert_eq!(po.successor(n(0, 0), ThreadId(7)), None);
        assert_eq!(po.predecessor(n(1, 9), ThreadId(7)), None);
    }

    #[test]
    fn disabling_the_memo_changes_no_answers() {
        let mut with = Csst::with_capacity(4, 30);
        let mut without = Csst::with_capacity(4, 30);
        without.set_query_memo_capacity(0);
        let edges = [
            (n(0, 2), n(1, 4)),
            (n(1, 6), n(2, 3)),
            (n(2, 5), n(3, 9)),
            (n(3, 1), n(0, 8)),
        ];
        for (u, v) in edges {
            with.insert_edge(u, v).unwrap();
            without.insert_edge(u, v).unwrap();
        }
        for t1 in 0..4u32 {
            for j1 in 0..30u32 {
                let u = n(t1, j1);
                for t2 in 0..4u32 {
                    let c = ThreadId(t2);
                    // Repeat so the memoized index actually hits.
                    for _ in 0..2 {
                        assert_eq!(with.successor(u, c), without.successor(u, c));
                        assert_eq!(with.predecessor(u, c), without.predecessor(u, c));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod worklist_engine {
    //! The worklist + memo query engine against the paper's dense
    //! `O(k³)` fixpoint (kept above behind `#[cfg(test)]`), under
    //! random insert/delete/query scripts so epochs genuinely roll.

    use super::*;
    use crate::naive::NaiveIndex;
    use proptest::prelude::*;

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Insert(u32, u32, u32, u32),
        Delete(usize),
    }

    fn scripts(k: u32, cap: u32) -> impl Strategy<Value = Vec<Op>> {
        let ins =
            (0..k, 0..cap, 0..k, 0..cap).prop_map(|(t1, j1, t2, j2)| Op::Insert(t1, j1, t2, j2));
        let op = prop_oneof![3 => ins, 1 => (0usize..64).prop_map(Op::Delete)];
        prop::collection::vec(op, 1..40)
    }

    /// Runs one script on a memoized and a memo-free index, checking
    /// both against the dense fixpoint after every update. With
    /// `forward_only`, targets are rewritten to `to.pos ≥ from.pos`, so
    /// the index never holds a backward edge and the Dijkstra mode
    /// (single-pop finalization + bounded early exit) is what answers;
    /// otherwise backward edges force the chaotic-iteration fallback.
    fn run_script(ops: &[Op], cap: u32, forward_only: bool) -> Result<(), TestCaseError> {
        let mut memoized = Csst::new();
        let mut bare = Csst::new();
        bare.set_query_memo_capacity(0);
        let mut planner = NaiveIndex::new();
        let mut live: Vec<(NodeId, NodeId)> = Vec::new();
        for &op in ops {
            match op {
                Op::Insert(t1, j1, t2, j2) => {
                    if t1 == t2 {
                        continue;
                    }
                    let j2 = if forward_only { j1 + 1 + j2 % 6 } else { j2 };
                    let (u, v) = (NodeId::new(t1, j1), NodeId::new(t2, j2));
                    if planner.reachable(v, u) {
                        continue; // keep the relation acyclic
                    }
                    planner.insert_edge(u, v).unwrap();
                    memoized.insert_edge(u, v).unwrap();
                    bare.insert_edge(u, v).unwrap();
                    live.push((u, v));
                }
                Op::Delete(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (u, v) = live.swap_remove(i % live.len());
                    planner.delete_edge(u, v).unwrap();
                    memoized.delete_edge(u, v).unwrap();
                    bare.delete_edge(u, v).unwrap();
                }
            }
            // Query in between every update, twice per node so the
            // memo path (second call hits the cache) is exercised
            // at every epoch.
            let kk = memoized.chains();
            let mut node_probes = Vec::new();
            let mut reach_probes = Vec::new();
            for t1 in 0..kk {
                for j1 in (0..cap).step_by(3) {
                    for t2 in 0..kk {
                        if t1 == t2 {
                            continue;
                        }
                        let ds = memoized.dense_successor_raw(t1, j1, t2);
                        let dp = memoized.dense_predecessor_raw(t1, j1, t2);
                        for po in [&memoized, &bare] {
                            prop_assert_eq!(po.successor_raw(t1, j1, t2), ds);
                            prop_assert_eq!(po.predecessor_raw(t1, j1, t2), dp);
                        }
                        let u = NodeId::new(t1 as u32, j1);
                        node_probes.push((u, ThreadId(t2 as u32)));
                        // The bound-aware reachable must agree with
                        // the successor-derived default semantics.
                        for j2 in (0..cap).step_by(4) {
                            let v = NodeId::new(t2 as u32, j2);
                            let expect = ds != INF && ds <= j2;
                            prop_assert_eq!(memoized.reachable(u, v), expect);
                            prop_assert_eq!(bare.reachable(u, v), expect);
                            reach_probes.push((u, v));
                        }
                    }
                }
            }
            // The whole probe grid again through the batched API, at
            // this same (freshly rolled) epoch: group sweeps must agree
            // with the per-probe engine, memo on or off.
            let (mut bs, mut bp, mut br) = (Vec::new(), Vec::new(), Vec::new());
            for po in [&memoized, &bare] {
                po.successor_batch(&node_probes, &mut bs);
                po.predecessor_batch(&node_probes, &mut bp);
                po.reachable_batch(&reach_probes, &mut br);
                prop_assert_eq!(bs.len(), node_probes.len());
                for (i, &(u, c)) in node_probes.iter().enumerate() {
                    prop_assert_eq!(bs[i], po.successor(u, c));
                    prop_assert_eq!(bp[i], po.predecessor(u, c));
                }
                for (i, &(u, v)) in reach_probes.iter().enumerate() {
                    prop_assert_eq!(br[i], po.reachable(u, v));
                }
            }
        }
        if forward_only {
            prop_assert_eq!(
                memoized.backward_edges,
                0,
                "forward-only script grew a backward edge"
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn worklist_matches_dense_fixpoint(ops in scripts(5, 12)) {
            run_script(&ops, 12, false)?;
        }

        #[test]
        fn dijkstra_mode_matches_dense_fixpoint(ops in scripts(5, 12)) {
            run_script(&ops, 12, true)?;
        }
    }
}
