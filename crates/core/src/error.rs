//! Error type shared by all partial-order representations.

use crate::index::NodeId;
use std::error::Error;
use std::fmt;

/// Errors reported by [`PartialOrderIndex`](crate::PartialOrderIndex)
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoError {
    /// A node lies outside the addressable universe of
    /// [`MAX_CHAINS`](crate::index::MAX_CHAINS) chains ×
    /// [`MAX_POS`](crate::index::MAX_POS)`+1` positions. Indexes grow
    /// on demand, so this is reported only for genuinely invalid
    /// inputs, never for nodes the structure merely has not seen yet.
    OutOfRange {
        /// The offending node.
        node: NodeId,
    },
    /// An update connected two nodes of the same chain. Intra-chain
    /// orderings are implicit (program order) and must not be inserted
    /// or deleted explicitly (§2.2: "updates only across chains").
    SameChain {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// `delete_edge` was called for an edge that was never inserted
    /// (or was already deleted).
    EdgeNotFound {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// The representation does not support deletions (vector clocks and
    /// the incremental structures are insert-only).
    DeletionUnsupported {
        /// Name of the representation.
        structure: &'static str,
    },
    /// A checked insertion would have created a cycle, i.e. the target
    /// already reaches the source.
    WouldCycle {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
}

impl fmt::Display for PoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoError::OutOfRange { node } => write!(
                f,
                "node {node} outside the addressable domain of {} chains × 2^31 positions",
                crate::index::MAX_CHAINS
            ),
            PoError::SameChain { from, to } => {
                write!(f, "edge {from} → {to} connects nodes of the same chain")
            }
            PoError::EdgeNotFound { from, to } => {
                write!(f, "edge {from} → {to} is not present")
            }
            PoError::DeletionUnsupported { structure } => {
                write!(f, "{structure} does not support edge deletion")
            }
            PoError::WouldCycle { from, to } => {
                write!(f, "inserting {from} → {to} would create a cycle")
            }
        }
    }
}

impl Error for PoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let u = NodeId::new(0, 1);
        let v = NodeId::new(0, 2);
        let e = PoError::SameChain { from: u, to: v };
        assert!(e.to_string().contains("same chain"));
        let e = PoError::EdgeNotFound { from: u, to: v };
        assert!(e.to_string().contains("not present"));
        let e = PoError::DeletionUnsupported {
            structure: "vector clocks",
        };
        assert!(e.to_string().contains("deletion"));
        let e = PoError::WouldCycle { from: u, to: v };
        assert!(e.to_string().contains("cycle"));
        let e = PoError::OutOfRange { node: u };
        assert!(e.to_string().contains("domain"));
    }
}
