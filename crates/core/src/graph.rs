//! The plain-graph baseline ("Graphs" in the paper's tables).
//!
//! A standard, non-transitively-closed adjacency representation of the
//! partial order, as used by the root-cause analysis of \[Çirisci et
//! al. 2020\] and other fully dynamic analyses. Updates are `O(1)`
//! (append/remove an edge) but every query performs a graph traversal,
//! whose cost grows with the number of edges — the quadratic behaviour
//! visible in Table 7.
//!
//! The traversal exploits the chain structure the same way a careful
//! implementation over an event graph would: it tracks, per chain, the
//! earliest (resp. latest) position already known reachable and scans
//! each edge at most once per query, i.e. `O(m + k)` per query. The
//! per-chain tracking arrays are reusable scratch buffers (refreshed in
//! `O(k)`, behind a `RefCell`), so steady-state queries allocate
//! nothing.

use crate::error::PoError;
use crate::index::{NodeId, Pos, ThreadId, INF};
use crate::reach::{Domain, PartialOrderIndex};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Reusable per-query buffers of the chain-aware BFS: the
/// earliest/latest known reachable position per chain, the already
/// scanned range per chain, and the worklist of chains to expand.
#[derive(Debug, Clone, Default)]
struct TraversalScratch {
    earliest: Vec<Pos>,
    scanned_lo: Vec<Pos>,
    latest: Vec<i64>,
    scanned_hi: Vec<i64>,
    work: Vec<usize>,
}

/// Plain graph representation of a chain-DAG partial order, supporting
/// both insertions and deletions.
///
/// ```
/// use csst_core::{GraphIndex, NodeId, PartialOrderIndex};
/// # fn main() -> Result<(), csst_core::PoError> {
/// let mut g = GraphIndex::new();
/// g.insert_edge(NodeId::new(0, 3), NodeId::new(1, 4))?;
/// assert!(g.reachable(NodeId::new(0, 0), NodeId::new(1, 9)));
/// g.delete_edge(NodeId::new(0, 3), NodeId::new(1, 4))?;
/// assert!(!g.reachable(NodeId::new(0, 0), NodeId::new(1, 9)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphIndex {
    dom: Domain,
    /// Per source chain: source position → edge targets (parallel edges
    /// appear with multiplicity).
    out: Vec<BTreeMap<Pos, Vec<NodeId>>>,
    /// Per target chain: target position → edge sources.
    inc: Vec<BTreeMap<Pos, Vec<NodeId>>>,
    edges: usize,
    scratch: RefCell<TraversalScratch>,
}

fn remove_one(map: &mut BTreeMap<Pos, Vec<NodeId>>, key: Pos, value: NodeId) -> bool {
    let Some(vec) = map.get_mut(&key) else {
        return false;
    };
    let Some(i) = vec.iter().position(|&x| x == value) else {
        return false;
    };
    vec.swap_remove(i);
    if vec.is_empty() {
        map.remove(&key);
    }
    true
}

impl GraphIndex {
    #[inline]
    fn k(&self) -> usize {
        self.dom.chains()
    }

    /// Number of currently stored edges (counting parallel edges).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Forward closure: earliest reachable position of chain `target`
    /// ([`INF`] if unreachable). Runs in the reusable scratch.
    fn forward_closure(&self, t1: usize, j1: Pos, target: usize) -> Pos {
        let mut s = self.scratch.borrow_mut();
        self.run_forward(&mut s, t1, j1);
        s.earliest[target]
    }

    /// The forward traversal behind [`forward_closure`]
    /// (Self::forward_closure), leaving the full `earliest` row in the
    /// scratch so batched queries can answer every probe of one source
    /// from a single walk.
    fn run_forward(&self, s: &mut TraversalScratch, t1: usize, j1: Pos) {
        let k = self.k();
        s.earliest.clear();
        s.earliest.resize(k, INF);
        s.scanned_lo.clear();
        s.scanned_lo.resize(k, INF);
        s.earliest[t1] = j1;
        s.work.clear();
        s.work.push(t1);
        while let Some(t) = s.work.pop() {
            let from = s.earliest[t];
            let hi = s.scanned_lo[t];
            if from >= hi {
                continue;
            }
            s.scanned_lo[t] = from;
            for (_, targets) in self.out[t].range(from..hi) {
                for &w in targets {
                    let wt = w.thread.index();
                    if w.pos < s.earliest[wt] {
                        s.earliest[wt] = w.pos;
                        if s.earliest[wt] < s.scanned_lo[wt] {
                            s.work.push(wt);
                        }
                    }
                }
            }
        }
    }

    /// Backward closure: latest position of chain `target` that reaches
    /// the query node (`-1` encodes "none"). Runs in the reusable
    /// scratch.
    fn backward_closure(&self, t1: usize, j1: Pos, target: usize) -> i64 {
        let mut s = self.scratch.borrow_mut();
        self.run_backward(&mut s, t1, j1);
        s.latest[target]
    }

    /// The backward dual of [`run_forward`](Self::run_forward).
    fn run_backward(&self, s: &mut TraversalScratch, t1: usize, j1: Pos) {
        let k = self.k();
        s.latest.clear();
        s.latest.resize(k, -1i64);
        s.scanned_hi.clear();
        s.scanned_hi.resize(k, -1i64);
        s.latest[t1] = j1 as i64;
        s.work.clear();
        s.work.push(t1);
        while let Some(t) = s.work.pop() {
            let upto = s.latest[t];
            let lo = s.scanned_hi[t];
            if upto <= lo {
                continue;
            }
            s.scanned_hi[t] = upto;
            for (_, sources) in self.inc[t].range((lo + 1) as Pos..=upto as Pos) {
                for &w in sources {
                    let wt = w.thread.index();
                    if (w.pos as i64) > s.latest[wt] {
                        s.latest[wt] = w.pos as i64;
                        if s.latest[wt] > s.scanned_hi[wt] {
                            s.work.push(wt);
                        }
                    }
                }
            }
        }
    }

    /// Nontrivial probes as `(t1, j1, probe index)` sorted by source
    /// node, so the batched overrides walk each distinct source once.
    /// Trivial probes (same chain, unwitnessed chains) are answered
    /// into `out` by `trivial` immediately.
    fn batch_order<P: Copy>(
        &self,
        probes: &[P],
        source: impl Fn(P) -> (ThreadId, Pos, ThreadId),
        mut trivial: impl FnMut(usize, P),
    ) -> Vec<(u32, Pos, u32)> {
        let k = self.k();
        let mut work = Vec::new();
        for (i, &p) in probes.iter().enumerate() {
            let (from, pos, target) = source(p);
            if from == target || from.index() >= k || target.index() >= k {
                trivial(i, p);
            } else {
                work.push((from.0, pos, i as u32));
            }
        }
        work.sort_unstable_by_key(|&(t1, j1, _)| (t1, j1));
        work
    }
}

impl PartialOrderIndex for GraphIndex {
    fn new() -> Self {
        GraphIndex::default()
    }

    fn name(&self) -> &'static str {
        "Graphs"
    }

    fn chains(&self) -> usize {
        self.dom.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.dom.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        if self.dom.ensure_chain(chain) {
            let k = self.dom.chains();
            self.out.resize(k, BTreeMap::new());
            self.inc.resize(k, BTreeMap::new());
        }
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        // Adjacency is keyed by position: only the witnessed length
        // advances, no storage is touched.
        self.ensure_chain(chain);
        self.dom.ensure_len(chain, len);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        self.out[from.thread.index()]
            .entry(from.pos)
            .or_default()
            .push(to);
        self.inc[to.thread.index()]
            .entry(to.pos)
            .or_default()
            .push(from);
        self.edges += 1;
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        if from.thread.index() >= self.k() || to.thread.index() >= self.k() {
            return Err(PoError::EdgeNotFound { from, to });
        }
        if !remove_one(&mut self.out[from.thread.index()], from.pos, to) {
            return Err(PoError::EdgeNotFound { from, to });
        }
        let removed = remove_one(&mut self.inc[to.thread.index()], to.pos, from);
        debug_assert!(removed, "out/in adjacency out of sync");
        self.edges -= 1;
        Ok(())
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        if from.thread.index() >= self.k() || to.thread.index() >= self.k() {
            return false;
        }
        self.forward_closure(from.thread.index(), from.pos, to.thread.index()) <= to.pos
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        if from.thread == chain {
            return Some(from.pos);
        }
        if from.thread.index() >= self.k() || chain.index() >= self.k() {
            return None;
        }
        match self.forward_closure(from.thread.index(), from.pos, chain.index()) {
            INF => None,
            v => Some(v),
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        if from.thread == chain {
            return Some(from.pos);
        }
        if from.thread.index() >= self.k() || chain.index() >= self.k() {
            return None;
        }
        match self.backward_closure(from.thread.index(), from.pos, chain.index()) {
            -1 => None,
            v => Some(v as Pos),
        }
    }

    /// Batched reachability: probes are sorted by source node and every
    /// probe sharing a source is answered from one traversal's
    /// `earliest` row — the `O(m + k)` walk is paid per distinct source
    /// instead of per probe.
    fn reachable_batch(&self, probes: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.resize(probes.len(), false);
        let work = self.batch_order(
            probes,
            |(from, to)| (from.thread, from.pos, to.thread),
            |i, (from, to): (NodeId, NodeId)| {
                if from.thread == to.thread {
                    out[i] = from.pos <= to.pos;
                }
            },
        );
        let mut s = self.scratch.borrow_mut();
        let mut src = None;
        for &(t1, j1, i) in &work {
            if src != Some((t1, j1)) {
                src = Some((t1, j1));
                self.run_forward(&mut s, t1 as usize, j1);
            }
            let to = probes[i as usize].1;
            out[i as usize] = s.earliest[to.thread.index()] <= to.pos;
        }
    }

    /// Batched successor queries; see
    /// [`reachable_batch`](Self::reachable_batch) for the grouping.
    fn successor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.resize(probes.len(), None);
        let work = self.batch_order(
            probes,
            |(from, chain)| (from.thread, from.pos, chain),
            |i, (from, chain): (NodeId, ThreadId)| {
                if from.thread == chain {
                    out[i] = Some(from.pos);
                }
            },
        );
        let mut s = self.scratch.borrow_mut();
        let mut src = None;
        for &(t1, j1, i) in &work {
            if src != Some((t1, j1)) {
                src = Some((t1, j1));
                self.run_forward(&mut s, t1 as usize, j1);
            }
            let v = s.earliest[probes[i as usize].1.index()];
            out[i as usize] = (v != INF).then_some(v);
        }
    }

    /// Batched predecessor queries over the backward traversal; see
    /// [`reachable_batch`](Self::reachable_batch) for the grouping.
    fn predecessor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.resize(probes.len(), None);
        let work = self.batch_order(
            probes,
            |(from, chain)| (from.thread, from.pos, chain),
            |i, (from, chain): (NodeId, ThreadId)| {
                if from.thread == chain {
                    out[i] = Some(from.pos);
                }
            },
        );
        let mut s = self.scratch.borrow_mut();
        let mut src = None;
        for &(t1, j1, i) in &work {
            if src != Some((t1, j1)) {
                src = Some((t1, j1));
                self.run_backward(&mut s, t1 as usize, j1);
            }
            let v = s.latest[probes[i as usize].1.index()];
            out[i as usize] = (v != -1).then_some(v as Pos);
        }
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        let sides: usize = self
            .out
            .iter()
            .chain(self.inc.iter())
            .map(|m| {
                m.values()
                    .map(|v| {
                        std::mem::size_of::<Pos>()
                            + std::mem::size_of::<Vec<NodeId>>()
                            + v.capacity() * std::mem::size_of::<NodeId>()
                    })
                    .sum::<usize>()
            })
            .sum();
        let s = self.scratch.borrow();
        let scratch = (s.earliest.capacity() + s.scanned_lo.capacity())
            * std::mem::size_of::<Pos>()
            + (s.latest.capacity() + s.scanned_hi.capacity()) * std::mem::size_of::<i64>()
            + s.work.capacity() * std::mem::size_of::<usize>();
        std::mem::size_of::<Self>() + self.dom.memory_bytes() + sides + scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = GraphIndex::new();
        g.insert_edge(n(0, 10), n(1, 20)).unwrap();
        g.insert_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(g.reachable(n(0, 0), n(2, 50)));
        assert_eq!(g.successor(n(0, 0), ThreadId(2)), Some(40));
        assert_eq!(g.predecessor(n(2, 45), ThreadId(0)), Some(10));
        g.delete_edge(n(1, 30), n(2, 40)).unwrap();
        assert!(!g.reachable(n(0, 0), n(2, 50)));
        assert_eq!(g.successor(n(0, 0), ThreadId(2)), None);
        assert_eq!(g.predecessor(n(2, 45), ThreadId(0)), None);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parallel_edges() {
        let mut g = GraphIndex::new();
        g.insert_edge(n(0, 1), n(1, 5)).unwrap();
        g.insert_edge(n(0, 1), n(1, 5)).unwrap();
        g.delete_edge(n(0, 1), n(1, 5)).unwrap();
        assert!(g.reachable(n(0, 1), n(1, 5)), "one parallel edge remains");
        g.delete_edge(n(0, 1), n(1, 5)).unwrap();
        assert!(!g.reachable(n(0, 1), n(1, 5)));
        assert!(matches!(
            g.delete_edge(n(0, 1), n(1, 5)),
            Err(PoError::EdgeNotFound { .. })
        ));
    }

    #[test]
    fn long_crossing_path() {
        let k = 6;
        let mut g = GraphIndex::with_capacity(k, 10);
        for t in 0..(k - 1) as u32 {
            g.insert_edge(n(t, 5), n(t + 1, 5)).unwrap();
        }
        assert!(g.reachable(n(0, 0), n(5, 9)));
        assert!(!g.reachable(n(0, 6), n(5, 9)));
        assert_eq!(g.successor(n(0, 3), ThreadId(5)), Some(5));
        assert_eq!(g.predecessor(n(5, 5), ThreadId(0)), Some(5));
    }

    #[test]
    fn back_and_forth_between_chains() {
        let mut g = GraphIndex::new();
        // Zig-zag: 0@10 → 1@10, 1@20 → 0@30, 0@40 → 1@50.
        g.insert_edge(n(0, 10), n(1, 10)).unwrap();
        g.insert_edge(n(1, 20), n(0, 30)).unwrap();
        g.insert_edge(n(0, 40), n(1, 50)).unwrap();
        assert!(g.reachable(n(0, 10), n(1, 50)));
        assert_eq!(g.successor(n(1, 15), ThreadId(1)), Some(15));
        assert_eq!(g.predecessor(n(1, 50), ThreadId(0)), Some(40));
        assert_eq!(g.predecessor(n(0, 35), ThreadId(1)), Some(20));
    }

    #[test]
    fn batched_matches_sequential() {
        let mut g = GraphIndex::new();
        g.insert_edge(n(0, 10), n(1, 10)).unwrap();
        g.insert_edge(n(1, 20), n(0, 30)).unwrap();
        g.insert_edge(n(0, 40), n(1, 50)).unwrap();
        g.insert_edge(n(1, 5), n(2, 8)).unwrap();
        let mut node_probes = Vec::new();
        let mut reach_probes = Vec::new();
        for t1 in 0..4u32 {
            for j1 in [0, 5, 10, 25, 41] {
                for t2 in 0..4u32 {
                    node_probes.push((n(t1, j1), ThreadId(t2)));
                    reach_probes.push((n(t1, j1), n(t2, 30)));
                }
            }
        }
        let (mut bs, mut bp, mut br) = (Vec::new(), Vec::new(), Vec::new());
        g.successor_batch(&node_probes, &mut bs);
        g.predecessor_batch(&node_probes, &mut bp);
        g.reachable_batch(&reach_probes, &mut br);
        for (i, &(u, c)) in node_probes.iter().enumerate() {
            assert_eq!(bs[i], g.successor(u, c), "successor {u} → {c}");
            assert_eq!(bp[i], g.predecessor(u, c), "predecessor {u} → {c}");
        }
        for (i, &(u, v)) in reach_probes.iter().enumerate() {
            assert_eq!(br[i], g.reachable(u, v), "reachable {u} → {v}");
        }
    }

    #[test]
    fn validation() {
        let mut g = GraphIndex::new();
        assert!(matches!(
            g.insert_edge(n(0, 0), n(0, 5)),
            Err(PoError::SameChain { .. })
        ));
        // Unseen chains are witnessed on demand, not rejected.
        g.insert_edge(n(0, 0), n(3, 5)).unwrap();
        assert_eq!(g.chains(), 4);
        assert!(g.supports_deletion());
        assert_eq!(g.name(), "Graphs");
    }

    #[test]
    fn deleting_on_unwitnessed_chains_is_not_found() {
        let mut g = GraphIndex::new();
        assert!(matches!(
            g.delete_edge(n(4, 0), n(5, 1)),
            Err(PoError::EdgeNotFound { .. })
        ));
    }
}
