//! The `edgeHeap` of fully dynamic CSSTs (§3.1/§3.3).
//!
//! Fully dynamic CSSTs must remember *all* parallel edges from a node
//! into a chain, so that deleting the earliest one can restore the next
//! earliest in the suffix-minima array (Lemma 3). The paper uses a
//! min-heap per `(node, target chain)`; we use an ordered multiset,
//! which offers the same `O(log δ)` bounds plus deletion of arbitrary
//! values (binary heaps only pop their root).

use crate::index::Pos;
use std::collections::BTreeMap;

/// An ordered multiset of chain positions with `O(log δ)` insert,
/// delete-by-value, and minimum queries.
///
/// ```
/// use csst_core::heap::MinMultiset;
/// let mut h = MinMultiset::new();
/// h.insert(7);
/// h.insert(3);
/// h.insert(3);
/// assert_eq!(h.min(), Some(3));
/// assert!(h.remove(3));
/// assert_eq!(h.min(), Some(3)); // one copy of 3 remains
/// assert!(h.remove(3));
/// assert_eq!(h.min(), Some(7));
/// assert!(!h.remove(99));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinMultiset {
    counts: BTreeMap<Pos, u32>,
    len: usize,
}

impl MinMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored values, counting multiplicity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds one occurrence of `v`.
    pub fn insert(&mut self, v: Pos) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `v`; returns `false` (and leaves the
    /// set unchanged) if `v` is not present.
    pub fn remove(&mut self, v: Pos) -> bool {
        match self.counts.get_mut(&v) {
            None => false,
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&v);
                }
                self.len -= 1;
                true
            }
        }
    }

    /// The smallest stored value, if any.
    pub fn min(&self) -> Option<Pos> {
        self.counts.keys().next().copied()
    }

    /// Number of occurrences of `v`.
    pub fn count(&self, v: Pos) -> usize {
        self.counts.get(&v).copied().unwrap_or(0) as usize
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        // A BTreeMap node holds up to 11 entries; estimate two words of
        // overhead per entry on top of the key/value payload.
        self.counts.len() * (std::mem::size_of::<(Pos, u32)>() + 2 * std::mem::size_of::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = MinMultiset::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.count(0), 0);
    }

    #[test]
    fn multiplicity() {
        let mut h = MinMultiset::new();
        h.insert(5);
        h.insert(5);
        h.insert(2);
        assert_eq!(h.len(), 3);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.min(), Some(2));
        assert!(h.remove(2));
        assert_eq!(h.min(), Some(5));
        assert!(h.remove(5));
        assert!(h.remove(5));
        assert!(!h.remove(5));
        assert!(h.is_empty());
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut h = MinMultiset::new();
        h.insert(1);
        assert!(!h.remove(2));
        assert_eq!(h.len(), 1);
        assert_eq!(h.min(), Some(1));
    }
}
