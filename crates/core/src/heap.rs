//! The `edgeHeap` of fully dynamic CSSTs (§3.1/§3.3).
//!
//! Fully dynamic CSSTs must remember *all* parallel edges from a node
//! into a chain, so that deleting the earliest one can restore the next
//! earliest in the suffix-minima array (Lemma 3). The paper uses a
//! min-heap per `(node, target chain)`; we use an ordered multiset,
//! which offers the same `O(log δ)` bounds plus deletion of arbitrary
//! values (binary heaps only pop their root).
//!
//! Because the overwhelmingly common case is δ ∈ {0, 1} (one direct
//! edge per node and target chain), [`MinMultiset`] is
//! **allocation-lean**: zero or one stored value lives inline with no
//! heap allocation at all, and only genuinely parallel edges spill
//! into a sorted `Vec`. The crate-private `EdgeHeapStore` packs the
//! per-node heaps of one chain pair into a single position-sorted
//! vector — the flat layout [`DynamicPo`](crate::DynamicPo) indexes
//! directly by chain pair, with no hash lookups on the insert/delete
//! hot path.

use crate::index::Pos;

/// An ordered multiset of chain positions with `O(log δ)` minimum
/// queries and `O(δ)` insert/delete (δ is tiny in practice: parallel
/// edges from one node into one chain are rare). Zero or one stored
/// values live inline without allocating.
///
/// ```
/// use csst_core::heap::MinMultiset;
/// let mut h = MinMultiset::new();
/// h.insert(7);
/// h.insert(3);
/// h.insert(3);
/// assert_eq!(h.min(), Some(3));
/// assert!(h.remove(3));
/// assert_eq!(h.min(), Some(3)); // one copy of 3 remains
/// assert!(h.remove(3));
/// assert_eq!(h.min(), Some(7));
/// assert!(!h.remove(99));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinMultiset {
    repr: Repr,
}

/// Inline-first storage. Invariant: `Many` holds a sorted (ascending,
/// duplicates allowed) vector of length ≥ 2, so the derived equality
/// never compares a one-element `Many` against a `One`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
enum Repr {
    #[default]
    Empty,
    One(Pos),
    Many(Vec<Pos>),
}

impl MinMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored values, counting multiplicity.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Empty => 0,
            Repr::One(_) => 1,
            Repr::Many(v) => v.len(),
        }
    }

    /// `true` if no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(self.repr, Repr::Empty)
    }

    /// Adds one occurrence of `v`.
    pub fn insert(&mut self, v: Pos) {
        self.repr = match std::mem::take(&mut self.repr) {
            Repr::Empty => Repr::One(v),
            Repr::One(a) => Repr::Many(if v < a { vec![v, a] } else { vec![a, v] }),
            Repr::Many(mut vals) => {
                let i = vals.partition_point(|&x| x <= v);
                vals.insert(i, v);
                Repr::Many(vals)
            }
        };
    }

    /// Removes one occurrence of `v`; returns `false` (and leaves the
    /// set unchanged) if `v` is not present.
    pub fn remove(&mut self, v: Pos) -> bool {
        match &mut self.repr {
            Repr::Empty => false,
            Repr::One(a) => {
                if *a == v {
                    self.repr = Repr::Empty;
                    true
                } else {
                    false
                }
            }
            Repr::Many(vals) => {
                let i = vals.partition_point(|&x| x < v);
                if vals.get(i) != Some(&v) {
                    return false;
                }
                vals.remove(i);
                if vals.len() == 1 {
                    self.repr = Repr::One(vals[0]);
                }
                true
            }
        }
    }

    /// The smallest stored value, if any.
    #[inline]
    pub fn min(&self) -> Option<Pos> {
        match &self.repr {
            Repr::Empty => None,
            Repr::One(a) => Some(*a),
            Repr::Many(vals) => vals.first().copied(),
        }
    }

    /// Number of occurrences of `v`.
    pub fn count(&self, v: Pos) -> usize {
        match &self.repr {
            Repr::Empty => 0,
            Repr::One(a) => usize::from(*a == v),
            Repr::Many(vals) => {
                vals.partition_point(|&x| x <= v) - vals.partition_point(|&x| x < v)
            }
        }
    }

    /// Heap footprint in bytes beyond the inline struct (zero unless
    /// parallel edges spilled into a vector).
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::Many(vals) => vals.capacity() * std::mem::size_of::<Pos>(),
            _ => 0,
        }
    }
}

/// The edge heaps of **one** ordered chain pair `(t1, t2)`: a vector of
/// `(source position, heap)` entries kept sorted by position, indexed
/// by binary search.
///
/// Emptied heaps become *tombstones* (key kept, heap empty) so hot
/// delete paths never shift the vector; tombstones are compacted away
/// once they outnumber the live entries. Streaming workloads insert at
/// monotonically increasing positions, so the sorted insert is an
/// amortized-`O(1)` push in practice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct PairHeaps {
    /// Sorted by position (unique keys); empty heaps are tombstones.
    entries: Vec<(Pos, MinMultiset)>,
    /// Number of tombstones currently in `entries`.
    tombs: usize,
}

impl PairHeaps {
    /// Number of positions currently holding at least one live edge
    /// (tombstones excluded). The pair participates in the query
    /// engine's adjacency exactly while this is non-zero.
    #[inline]
    pub(crate) fn live_count(&self) -> usize {
        self.entries.len() - self.tombs
    }

    /// Adds edge value `v` to the heap at source position `pos`;
    /// returns `true` when `v` became the unique new minimum (i.e. the
    /// suffix-minima array must be updated).
    pub(crate) fn insert(&mut self, pos: Pos, v: Pos) -> bool {
        let i = self.entries.partition_point(|e| e.0 < pos);
        match self.entries.get_mut(i) {
            Some(e) if e.0 == pos => {
                let h = &mut e.1;
                if h.is_empty() {
                    self.tombs -= 1;
                }
                let improves = h.min().is_none_or(|m| v < m);
                h.insert(v);
                improves
            }
            _ => {
                let mut h = MinMultiset::new();
                h.insert(v);
                self.entries.insert(i, (pos, h));
                true
            }
        }
    }

    /// Removes one occurrence of edge value `v` from the heap at
    /// position `pos`. Returns `Some((old_min, new_min))` when the edge
    /// was present, `None` otherwise.
    pub(crate) fn remove(&mut self, pos: Pos, v: Pos) -> Option<(Option<Pos>, Option<Pos>)> {
        let i = self.entries.partition_point(|e| e.0 < pos);
        let e = self.entries.get_mut(i).filter(|e| e.0 == pos)?;
        let h = &mut e.1;
        let old_min = h.min();
        if !h.remove(v) {
            return None;
        }
        let new_min = h.min();
        if h.is_empty() {
            self.tombs += 1;
            self.compact();
        }
        Some((old_min, new_min))
    }

    /// Drops tombstones once they dominate, releasing their memory;
    /// a fully emptied pair gives its allocation back entirely.
    fn compact(&mut self) {
        if self.tombs * 2 > self.entries.len() {
            self.entries.retain(|e| !e.1.is_empty());
            self.tombs = 0;
            if self.entries.len() * 4 <= self.entries.capacity() {
                self.entries.shrink_to_fit();
            }
        }
    }

    /// The raw position-sorted entry slice, **tombstones included**
    /// (an entry whose heap is empty — `min() == None` — holds no live
    /// edge and must be skipped).
    ///
    /// This is the batched query engine's amortized window into the
    /// pair: a cursor folding `min()` over a descending scan of this
    /// slice computes the same suffix minima as the SST array, one
    /// entry visit per scan step instead of one tree descent per
    /// probe.
    #[inline]
    pub(crate) fn entries(&self) -> &[(Pos, MinMultiset)] {
        &self.entries
    }

    /// Exact heap footprint: the entry vector plus every spilled heap.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(Pos, MinMultiset)>()
            + self
                .entries
                .iter()
                .map(|e| e.1.memory_bytes())
                .sum::<usize>()
    }
}

/// Flat store of all per-chain-pair edge heaps of a
/// [`DynamicPo`](crate::DynamicPo), laid out exactly like the
/// suffix-minima matrix: slot `t1 * kslots + t2` holds the heaps of
/// pair `(t1, t2)`. Lookup is two integer multiplications — the nested
/// `HashMap<(u32, u32), HashMap<Pos, _>>` this replaces paid two
/// SipHash probes per insert/delete.
///
/// The store additionally maintains the **live-pair adjacency**: per
/// chain, the unsorted lists of counterpart chains whose pair currently
/// holds at least one live edge. The worklist query engine of
/// [`DynamicPo`](crate::DynamicPo) walks these lists instead of all
/// `k²` chain pairs, which is what makes query cost proportional to the
/// sparse structure actually present. Membership transitions happen
/// only here — in [`insert`](Self::insert) when a pair gains its first
/// live entry and in [`remove`](Self::remove) when it loses its last —
/// so the adjacency can never drift from the heaps (compaction only
/// drops tombstones, which were already excluded).
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeHeapStore {
    /// Allocated stride; kept identical to the owning `PairMatrix`'s.
    kslots: usize,
    /// `kslots × kslots` pair heaps; diagonal and unwitnessed slots
    /// stay empty (and cost only the inline struct).
    pairs: Vec<PairHeaps>,
    /// Per source chain `t1`: every `t2` with a live pair `(t1, t2)`.
    out_adj: Vec<Vec<u32>>,
    /// Per target chain `t2`: every `t1` with a live pair `(t1, t2)`.
    in_adj: Vec<Vec<u32>>,
}

impl EdgeHeapStore {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Re-strides the store to `new_kslots` (amortized-doubling growth,
    /// mirroring `PairMatrix::grow_kslots`). No-op when already wide
    /// enough.
    pub(crate) fn sync_kslots(&mut self, new_kslots: usize) {
        if new_kslots <= self.kslots {
            return;
        }
        let old = self.kslots;
        let mut pairs = Vec::with_capacity(new_kslots * new_kslots);
        pairs.resize_with(new_kslots * new_kslots, PairHeaps::default);
        for (i, p) in std::mem::take(&mut self.pairs).into_iter().enumerate() {
            let (t1, t2) = (i / old, i % old);
            pairs[t1 * new_kslots + t2] = p;
        }
        self.pairs = pairs;
        // Adjacency entries are chain indices, not slots: growth only
        // appends empty lists for the new chains.
        self.out_adj.resize_with(new_kslots, Vec::new);
        self.in_adj.resize_with(new_kslots, Vec::new);
        self.kslots = new_kslots;
    }

    /// Adds edge value `v` to the heap of pair `(t1, t2)` at source
    /// position `pos`, maintaining the live-pair adjacency; returns
    /// `true` when `v` became the unique new minimum (i.e. the
    /// suffix-minima array must be updated).
    #[inline]
    pub(crate) fn insert(&mut self, t1: usize, t2: usize, pos: Pos, v: Pos) -> bool {
        debug_assert!(t1 < self.kslots && t2 < self.kslots);
        let pair = &mut self.pairs[t1 * self.kslots + t2];
        let was_dead = pair.live_count() == 0;
        let improved = pair.insert(pos, v);
        if was_dead {
            self.out_adj[t1].push(t2 as u32);
            self.in_adj[t2].push(t1 as u32);
        }
        improved
    }

    /// Removes one occurrence of edge value `v` from the heap of pair
    /// `(t1, t2)` at position `pos`, maintaining the live-pair
    /// adjacency. Returns `Some((old_min, new_min))` of that heap when
    /// the edge was present, `None` otherwise.
    #[inline]
    pub(crate) fn remove(
        &mut self,
        t1: usize,
        t2: usize,
        pos: Pos,
        v: Pos,
    ) -> Option<(Option<Pos>, Option<Pos>)> {
        debug_assert!(t1 < self.kslots && t2 < self.kslots);
        let pair = &mut self.pairs[t1 * self.kslots + t2];
        let removed = pair.remove(pos, v)?;
        if pair.live_count() == 0 {
            // Rare transition (last live edge of the pair): a linear
            // scan over the short chain-degree list is cheaper than
            // maintaining positional indexes on the hot insert path.
            let o = &mut self.out_adj[t1];
            o.swap_remove(o.iter().position(|&t| t == t2 as u32).expect("in out_adj"));
            let i = &mut self.in_adj[t2];
            i.swap_remove(i.iter().position(|&t| t == t1 as u32).expect("in in_adj"));
        }
        Some(removed)
    }

    /// Chains `t2` whose pair `(t1, t2)` holds at least one live edge
    /// (unsorted). Empty for unwitnessed chains.
    #[inline]
    pub(crate) fn out_neighbors(&self, t1: usize) -> &[u32] {
        self.out_adj.get(t1).map_or(&[], Vec::as_slice)
    }

    /// Chains `t1` whose pair `(t1, t2)` holds at least one live edge
    /// (unsorted). Empty for unwitnessed chains.
    #[inline]
    pub(crate) fn in_neighbors(&self, t2: usize) -> &[u32] {
        self.in_adj.get(t2).map_or(&[], Vec::as_slice)
    }

    /// The heaps of pair `(t1, t2)`, for the batched query engine's
    /// entry cursors. Out-of-stride pairs read as a shared empty pair.
    #[inline]
    pub(crate) fn pair(&self, t1: usize, t2: usize) -> &PairHeaps {
        static EMPTY: PairHeaps = PairHeaps {
            entries: Vec::new(),
            tombs: 0,
        };
        if t1 < self.kslots && t2 < self.kslots {
            &self.pairs[t1 * self.kslots + t2]
        } else {
            &EMPTY
        }
    }

    /// Exact heap footprint: the slot vector, every pair's heaps, and
    /// the adjacency lists.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.pairs.capacity() * std::mem::size_of::<PairHeaps>()
            + self.pairs.iter().map(|p| p.memory_bytes()).sum::<usize>()
            + self
                .out_adj
                .iter()
                .chain(self.in_adj.iter())
                .map(|a| {
                    std::mem::size_of::<Vec<u32>>() + a.capacity() * std::mem::size_of::<u32>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = MinMultiset::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.memory_bytes(), 0, "empty multiset allocates nothing");
    }

    #[test]
    fn multiplicity() {
        let mut h = MinMultiset::new();
        h.insert(5);
        assert_eq!(h.memory_bytes(), 0, "single value stays inline");
        h.insert(5);
        h.insert(2);
        assert_eq!(h.len(), 3);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.min(), Some(2));
        assert!(h.remove(2));
        assert_eq!(h.min(), Some(5));
        assert!(h.remove(5));
        assert!(h.remove(5));
        assert!(!h.remove(5));
        assert!(h.is_empty());
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut h = MinMultiset::new();
        h.insert(1);
        assert!(!h.remove(2));
        assert_eq!(h.len(), 1);
        assert_eq!(h.min(), Some(1));
        h.insert(3);
        h.insert(7);
        assert!(!h.remove(2));
        assert!(!h.remove(9));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn spill_and_return_to_inline() {
        let mut h = MinMultiset::new();
        h.insert(4);
        h.insert(9);
        assert!(h.memory_bytes() > 0, "two values spill into a vec");
        assert!(h.remove(4));
        assert_eq!(h.min(), Some(9));
        assert_eq!(
            h.memory_bytes(),
            0,
            "back to one value: inline representation restored"
        );
        // Inline round-trips keep equality semantics.
        let mut other = MinMultiset::new();
        other.insert(9);
        assert_eq!(h, other);
    }

    #[test]
    fn pair_heaps_insert_reports_improvements() {
        let mut p = PairHeaps::default();
        assert!(p.insert(10, 50), "first edge always improves");
        assert!(p.insert(10, 40), "smaller value improves");
        assert!(!p.insert(10, 40), "duplicate of the min does not");
        assert!(!p.insert(10, 60), "larger value does not");
        assert!(p.insert(3, 7), "fresh position improves");
    }

    #[test]
    fn pair_heaps_remove_reports_minima() {
        let mut p = PairHeaps::default();
        p.insert(10, 50);
        p.insert(10, 40);
        assert_eq!(p.remove(10, 99), None, "absent value");
        assert_eq!(p.remove(11, 40), None, "absent position");
        assert_eq!(p.remove(10, 40), Some((Some(40), Some(50))));
        assert_eq!(p.remove(10, 50), Some((Some(50), None)));
        assert_eq!(p.remove(10, 50), None, "heap emptied");
    }

    #[test]
    fn pair_heaps_compact_releases_memory() {
        let mut p = PairHeaps::default();
        for pos in 0..64u32 {
            p.insert(pos, pos + 100);
        }
        let full = p.memory_bytes();
        assert!(full > 0);
        for pos in 0..64u32 {
            assert!(p.remove(pos, pos + 100).is_some());
        }
        assert_eq!(
            p.memory_bytes(),
            0,
            "fully drained pair returns its allocation"
        );
        // And it keeps working after the reset.
        assert!(p.insert(5, 9));
        assert_eq!(p.remove(5, 9), Some((Some(9), None)));
    }

    #[test]
    fn store_restride_preserves_pairs_and_adjacency() {
        let mut s = EdgeHeapStore::new();
        s.sync_kslots(2);
        s.insert(0, 1, 7, 3);
        s.insert(1, 0, 2, 9);
        s.sync_kslots(8);
        assert_eq!(s.out_neighbors(0), &[1]);
        assert_eq!(s.in_neighbors(0), &[1]);
        assert_eq!(s.remove(0, 1, 7, 3), Some((Some(3), None)));
        assert_eq!(s.remove(1, 0, 2, 9), Some((Some(9), None)));
        assert_eq!(s.remove(5, 6, 0, 0), None);
        assert!(s.out_neighbors(0).is_empty());
        assert!(s.in_neighbors(1).is_empty());
    }

    #[test]
    fn adjacency_tracks_live_pairs_only() {
        let mut s = EdgeHeapStore::new();
        s.sync_kslots(4);
        assert!(s.out_neighbors(0).is_empty());
        // First live entry of a pair adds it once; more entries don't.
        s.insert(0, 1, 10, 50);
        s.insert(0, 1, 11, 60);
        s.insert(0, 2, 3, 7);
        let mut out: Vec<u32> = s.out_neighbors(0).to_vec();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(s.in_neighbors(1), &[0]);
        assert_eq!(s.in_neighbors(2), &[0]);
        // Draining one position leaves the pair live (tombstone).
        assert!(s.remove(0, 1, 10, 50).is_some());
        assert_eq!(s.in_neighbors(1), &[0]);
        // Draining the last live entry removes the pair from both sides.
        assert!(s.remove(0, 1, 11, 60).is_some());
        assert_eq!(s.out_neighbors(0), &[2]);
        assert!(s.in_neighbors(1).is_empty());
        // Removing an absent edge never touches the adjacency.
        assert!(s.remove(0, 1, 11, 60).is_none());
        assert_eq!(s.out_neighbors(0), &[2]);
        // Re-inserting resurrects the pair exactly once.
        s.insert(0, 1, 5, 9);
        let mut out: Vec<u32> = s.out_neighbors(0).to_vec();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn out_of_range_neighbor_queries_are_empty() {
        let s = EdgeHeapStore::new();
        assert!(s.out_neighbors(3).is_empty());
        assert!(s.in_neighbors(0).is_empty());
    }

    #[test]
    fn entries_expose_tombstones_for_cursor_scans() {
        let mut p = PairHeaps::default();
        p.insert(1, 10);
        p.insert(2, 20);
        p.insert(3, 30);
        p.remove(2, 20); // tombstoned, still present in the raw slice
        let es = p.entries();
        assert_eq!(es.len(), 3);
        assert_eq!(es[1].0, 2);
        assert_eq!(es[1].1.min(), None, "tombstone reads as empty");
        // A descending fold over the slice, skipping empty heaps,
        // reproduces the suffix minima.
        let suffix_min = |from: Pos| {
            es.iter()
                .filter(|e| e.0 >= from)
                .filter_map(|e| e.1.min())
                .min()
        };
        assert_eq!(suffix_min(0), Some(10));
        assert_eq!(suffix_min(2), Some(30));
    }

    #[test]
    fn store_pair_accessor_handles_out_of_stride() {
        let mut s = EdgeHeapStore::new();
        s.sync_kslots(2);
        s.insert(0, 1, 7, 3);
        assert_eq!(s.pair(0, 1).live_count(), 1);
        assert_eq!(s.pair(1, 0).live_count(), 0);
        assert_eq!(s.pair(9, 9).live_count(), 0, "out of stride: empty");
    }

    #[test]
    fn pair_heaps_live_count_excludes_tombstones() {
        let mut p = PairHeaps::default();
        assert_eq!(p.live_count(), 0);
        p.insert(1, 10);
        p.insert(2, 20);
        p.insert(3, 30);
        assert_eq!(p.live_count(), 3);
        p.remove(2, 20); // tombstoned (1/3 dead: no compaction yet)
        assert_eq!(p.live_count(), 2);
        p.remove(1, 10); // 2/3 dead: compacted away
        assert_eq!(p.live_count(), 1);
        p.remove(3, 30);
        assert_eq!(p.live_count(), 0);
    }
}
