//! Incremental CSSTs (§4, Algorithm 3).
//!
//! Most dynamic analyses only ever *insert* orderings. The incremental
//! specialization stores **transitive** reachability in the per-pair
//! suffix-minima arrays (Lemmas 5–6): each `insertEdge` performs a
//! closure over chain pairs, after which every query is a single
//! suffix-minima operation. Compared to the fully dynamic variant this
//! moves the `k` dependency from queries to updates while shaving a
//! factor `k` (Theorem 2 vs Theorem 1).
//!
//! The paper states the closure as a dense `O(k²)` sweep; the
//! implementation walks only the **non-empty** chain pairs (the same
//! sparsity idea as the fully dynamic worklist engine in
//! [`crate::dynamic`]): a chain can contribute a predecessor of `from`
//! only if some array *into* `from`'s chain is non-empty, and a
//! successor of `to` only if some array *out of* `to`'s chain is. The
//! frontier lists are reusable scratch buffers, so steady-state inserts
//! allocate nothing.
//!
//! Despite storing transitive edges, the density of every array remains
//! bounded by the cross-chain density `d` of the underlying graph
//! (Lemma 7): new entries are only ever written at positions that
//! already carry a direct cross-chain edge.
//!
//! Like every index in this crate, the domain is capacity-free: chains
//! and positions are witnessed on demand.

use crate::error::PoError;
use crate::index::{NodeId, Pos, ThreadId, INF};
use crate::matrix::PairMatrix;
use crate::reach::PartialOrderIndex;
use crate::segtree::SegmentTree;
use crate::sst::SparseSegmentTree;
use crate::stats::DensityStats;
use crate::suffix::SuffixMinima;

/// Incremental chain-DAG reachability over a pluggable suffix-minima
/// structure (Algorithm 3). Use [`IncrementalCsst`] for the paper's
/// structure and [`SegTreeIndex`] for the `STs` baseline of M2.
#[derive(Debug, Clone)]
pub struct IncrementalPo<S> {
    /// Transitively closed suffix-minima arrays (`(t1, t2)` is
    /// `A_{t1}^{t2}`).
    arrays: PairMatrix<S>,
    edges: usize,
    /// Stride of `pair_live` (kept equal to the matrix's `kslots`).
    adj_stride: usize,
    /// `pair_live[t1 * adj_stride + t2]`: array `A_{t1}^{t2}` has at
    /// least one entry. Insert-only, so pairs never go dead again.
    pair_live: Vec<bool>,
    /// Per target chain `t2`: every `t1` with a live `A_{t1}^{t2}`.
    src_adj: Vec<Vec<u32>>,
    /// Per source chain `t1`: every `t2` with a live `A_{t1}^{t2}`.
    tgt_adj: Vec<Vec<u32>>,
    /// Reusable closure frontiers: `(chain, position)` lists of the
    /// predecessors of `from` / successors of `to`, rebuilt per insert
    /// without allocating.
    preds_scratch: Vec<(u32, Pos)>,
    succs_scratch: Vec<(u32, Pos)>,
}

/// The paper's incremental CSST: [`IncrementalPo`] over
/// [`SparseSegmentTree`] arrays.
pub type IncrementalCsst = IncrementalPo<SparseSegmentTree>;

/// The `STs` baseline of \[Pavlogiannis 2019\]: the same incremental
/// architecture over dense [`SegmentTree`] arrays.
pub type SegTreeIndex = IncrementalPo<SegmentTree>;

impl<S: SuffixMinima> IncrementalPo<S> {
    #[inline]
    fn k(&self) -> usize {
        self.arrays.k()
    }

    /// Number of `insert_edge` calls performed so far.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Per-array density statistics (the `q` column of the tables).
    pub fn density_stats(&self) -> DensityStats {
        self.arrays.density_stats()
    }

    /// Earliest node of chain `t2` reachable from `⟨t1, j1⟩`
    /// (cross-chain; [`INF`] if none). A single suffix-minima query
    /// thanks to transitive closure.
    #[inline]
    fn successor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Pos {
        self.arrays.get(t1, t2).suffix_min(j1 as usize)
    }

    /// Latest node of chain `t2` reaching `⟨t1, j1⟩` (cross-chain;
    /// `None` if none).
    #[inline]
    fn predecessor_raw(&self, t1: usize, j1: Pos, t2: usize) -> Option<Pos> {
        self.arrays.get(t2, t1).argleq(j1).map(|p| p as Pos)
    }

    /// Classifies a probe slice for the batched query overrides:
    /// same-chain and unwitnessed probes are answered inline through
    /// `trivial`, the rest come back as `(t1, t2, probe index)` sorted
    /// by chain pair so consecutive lookups hit the same suffix-minima
    /// array.
    fn pair_order<P: Copy>(
        &self,
        probes: &[P],
        chains: impl Fn(P) -> (usize, usize),
        mut trivial: impl FnMut(usize, P),
    ) -> Vec<(u32, u32, u32)> {
        let k = self.k();
        let mut work = Vec::new();
        for (i, &p) in probes.iter().enumerate() {
            let (t1, t2) = chains(p);
            if t1 == t2 || t1 >= k || t2 >= k {
                trivial(i, p);
            } else {
                work.push((t1 as u32, t2 as u32, i as u32));
            }
        }
        work.sort_unstable_by_key(|&(t1, t2, _)| (t1, t2));
        work
    }

    /// Re-sizes the pair adjacency after the matrix grew (amortized
    /// doubling, mirroring the matrix stride). No-op otherwise.
    fn sync_adj(&mut self) {
        let kslots = self.arrays.kslots();
        if kslots <= self.adj_stride {
            return;
        }
        let old = self.adj_stride;
        let mut live = vec![false; kslots * kslots];
        for (i, &l) in self.pair_live.iter().enumerate() {
            if l {
                live[(i / old) * kslots + (i % old)] = true;
            }
        }
        self.pair_live = live;
        self.src_adj.resize_with(kslots, Vec::new);
        self.tgt_adj.resize_with(kslots, Vec::new);
        self.adj_stride = kslots;
    }

    /// Records that `A_{t1}^{t2}` gained its first entry.
    #[inline]
    fn mark_pair(&mut self, t1: usize, t2: usize) {
        let slot = &mut self.pair_live[t1 * self.adj_stride + t2];
        if !*slot {
            *slot = true;
            self.src_adj[t2].push(t1 as u32);
            self.tgt_adj[t1].push(t2 as u32);
        }
    }
}

impl<S: SuffixMinima> PartialOrderIndex for IncrementalPo<S> {
    fn new() -> Self {
        IncrementalPo {
            arrays: PairMatrix::new(),
            edges: 0,
            adj_stride: 0,
            pair_live: Vec::new(),
            src_adj: Vec::new(),
            tgt_adj: Vec::new(),
            preds_scratch: Vec::new(),
            succs_scratch: Vec::new(),
        }
    }

    fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        let mut po = IncrementalPo {
            arrays: PairMatrix::with_capacity(chains, chain_capacity),
            edges: 0,
            adj_stride: 0,
            pair_live: Vec::new(),
            src_adj: Vec::new(),
            tgt_adj: Vec::new(),
            preds_scratch: Vec::new(),
            succs_scratch: Vec::new(),
        };
        po.sync_adj();
        po
    }

    fn name(&self) -> &'static str {
        // Distinguish the two instantiations used in the tables.
        if S::structure_name() == "STs" {
            "STs"
        } else {
            "CSSTs"
        }
    }

    fn chains(&self) -> usize {
        self.arrays.k()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.arrays.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.arrays.ensure_chain(chain);
        self.sync_adj();
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.arrays.ensure_len(chain, len);
        self.sync_adj();
    }

    /// Inserts `from → to` and closes the arrays transitively
    /// (Algorithm 3): for every chain pair `(t1', t2')`, the latest
    /// predecessor of `from` in `t1'` gets connected to the earliest
    /// successor of `to` in `t2'` unless a path already exists.
    ///
    /// The frontiers are computed over *live* pairs only — a chain can
    /// hold a predecessor of `from` only if its array into `from`'s
    /// chain is non-empty, and a successor of `to` only if `to`'s
    /// chain has an array into it — and are built in reusable scratch
    /// buffers, so the insert allocates nothing in steady state. The
    /// relaxation set (and therefore every array state) is identical
    /// to the dense sweep's: pairs it skips could only have produced
    /// `None`/[`INF`] frontier entries, which the dense loop skips too.
    ///
    /// The caller must keep the relation acyclic (use
    /// [`PartialOrderIndex::insert_edge_checked`] when unsure); an
    /// undetected cycle leaves the structure in an unspecified state.
    ///
    /// Batching note: the incremental closure reads the post-state of
    /// every earlier insert (the `preds`/`succs` frontiers), so
    /// [`PartialOrderIndex::insert_edges`] keeps the sequential
    /// default here — reordering or fusing closures would change which
    /// redundant entries get written, breaking the batch-equals-
    /// sequential contract the property tests pin.
    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        // Pre-compute, from the pre-insert state, the frontier of
        // predecessors of `from` (lines 10–11) and successors of `to`
        // (lines 12–13), walking live pairs only.
        let mut preds = std::mem::take(&mut self.preds_scratch);
        preds.clear();
        preds.push((t1 as u32, j1));
        for &t in &self.src_adj[t1] {
            if let Some(p) = self.arrays.get(t as usize, t1).argleq(j1) {
                preds.push((t, p as Pos));
            }
        }
        let mut succs = std::mem::take(&mut self.succs_scratch);
        succs.clear();
        succs.push((t2 as u32, j2));
        for &t in &self.tgt_adj[t2] {
            let v = self.arrays.get(t2, t as usize).suffix_min(j2 as usize);
            if v != INF {
                succs.push((t, v));
            }
        }
        for &(tp1, jp1) in &preds {
            let tp1 = tp1 as usize;
            for &(tp2, jp2) in &succs {
                let tp2 = tp2 as usize;
                if tp1 == tp2 {
                    continue;
                }
                if self.successor_raw(tp1, jp1, tp2) > jp2 {
                    self.arrays.get_mut(tp1, tp2).update(jp1 as usize, jp2);
                    self.mark_pair(tp1, tp2);
                }
            }
        }
        self.edges += 1;
        self.preds_scratch = preds;
        self.succs_scratch = succs;
    }

    fn delete_edge_raw(&mut self, _from: NodeId, _to: NodeId) -> Result<(), PoError> {
        Err(PoError::DeletionUnsupported {
            structure: "incremental CSSTs / segment trees",
        })
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None; // unwitnessed chains carry no edges
        }
        match self.successor_raw(t1, from.pos, t2) {
            INF => None,
            v => Some(v),
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        self.predecessor_raw(t1, from.pos, t2)
    }

    /// Batched reachability. Each probe is already a single
    /// `O(log p)` suffix-minima lookup here (the closure is maintained
    /// eagerly on insert), so unlike [`DynamicPo`](crate::DynamicPo)
    /// there is no shared propagation to amortize; the override
    /// answers trivial probes inline and groups the rest by chain pair
    /// so consecutive lookups walk the same array.
    fn reachable_batch(&self, probes: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.resize(probes.len(), false);
        let work = self.pair_order(
            probes,
            |(from, to)| (from.thread.index(), to.thread.index()),
            |i, (from, to)| {
                if from.thread == to.thread {
                    out[i] = from.pos <= to.pos;
                }
            },
        );
        for &(t1, t2, i) in &work {
            let (from, to) = probes[i as usize];
            out[i as usize] = self.successor_raw(t1 as usize, from.pos, t2 as usize) <= to.pos;
        }
    }

    /// Batched successor probes; same locality-only story as
    /// [`reachable_batch`](Self::reachable_batch).
    fn successor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.resize(probes.len(), None);
        let work = self.pair_order(
            probes,
            |(from, chain)| (from.thread.index(), chain.index()),
            |i, (from, chain)| {
                if from.thread == chain {
                    out[i] = Some(from.pos);
                }
            },
        );
        for &(t1, t2, i) in &work {
            let (from, _) = probes[i as usize];
            out[i as usize] = match self.successor_raw(t1 as usize, from.pos, t2 as usize) {
                INF => None,
                v => Some(v),
            };
        }
    }

    /// Batched predecessor probes; same locality-only story as
    /// [`reachable_batch`](Self::reachable_batch).
    fn predecessor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.resize(probes.len(), None);
        let work = self.pair_order(
            probes,
            |(from, chain)| (from.thread.index(), chain.index()),
            |i, (from, chain)| {
                if from.thread == chain {
                    out[i] = Some(from.pos);
                }
            },
        );
        for &(t1, t2, i) in &work {
            let (from, _) = probes[i as usize];
            out[i as usize] = self.predecessor_raw(t1 as usize, from.pos, t2 as usize);
        }
    }

    fn memory_bytes(&self) -> usize {
        let adj = self.pair_live.capacity()
            + self
                .src_adj
                .iter()
                .chain(self.tgt_adj.iter())
                .map(|a| {
                    std::mem::size_of::<Vec<u32>>() + a.capacity() * std::mem::size_of::<u32>()
                })
                .sum::<usize>()
            + (self.preds_scratch.capacity() + self.succs_scratch.capacity())
                * std::mem::size_of::<(u32, Pos)>();
        std::mem::size_of::<Self>() + self.arrays.memory_bytes() + adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn example_7_transitive_insert() {
        // Figure 9: inserting ⟨1,1⟩ → ⟨2,0⟩ must infer ⟨0,1⟩ →* ⟨3,2⟩.
        let mut po = IncrementalCsst::with_capacity(4, 3);
        po.insert_edge(n(0, 1), n(1, 1)).unwrap(); // A_0^1[1] = 1
        po.insert_edge(n(2, 0), n(3, 2)).unwrap(); // A_2^3[0] = 2
        po.insert_edge(n(1, 1), n(2, 0)).unwrap();
        assert!(po.reachable(n(0, 1), n(3, 2)));
        assert_eq!(po.successor(n(0, 1), ThreadId(3)), Some(2));
        assert_eq!(po.predecessor(n(3, 2), ThreadId(0)), Some(1));
        assert!(!po.reachable(n(0, 2), n(3, 2)));
        assert!(!po.reachable(n(0, 1), n(3, 1)));
    }

    #[test]
    fn growth_interleaved_with_closure() {
        // Chains appear one at a time while transitive inserts land;
        // the closure must keep covering the enlarged domain.
        let mut po = IncrementalCsst::new();
        po.insert_edge(n(0, 1), n(1, 1)).unwrap();
        po.insert_edge(n(1, 1), n(2, 0)).unwrap(); // chain 2 appears here
        po.insert_edge(n(2, 0), n(3, 2)).unwrap(); // chain 3 appears here
        assert!(po.reachable(n(0, 1), n(3, 2)));
        assert_eq!(po.successor(n(0, 0), ThreadId(3)), Some(2));
        assert_eq!(po.predecessor(n(3, 2), ThreadId(0)), Some(1));
        assert_eq!(po.chains(), 4);
    }

    #[test]
    fn matches_dynamic_on_chains() {
        use crate::dynamic::Csst;
        let mut inc = IncrementalCsst::with_capacity(3, 20);
        let mut dy = Csst::with_capacity(3, 20);
        let edges = [
            (n(0, 2), n(1, 4)),
            (n(1, 6), n(2, 3)),
            (n(2, 5), n(0, 9)),
            (n(1, 1), n(0, 4)),
        ];
        for (u, v) in edges {
            inc.insert_edge(u, v).unwrap();
            dy.insert_edge(u, v).unwrap();
        }
        for t1 in 0..3u32 {
            for i in 0..20u32 {
                for t2 in 0..3u32 {
                    let u = n(t1, i);
                    assert_eq!(
                        inc.successor(u, ThreadId(t2)),
                        dy.successor(u, ThreadId(t2)),
                        "successor({u}, t{t2})"
                    );
                    assert_eq!(
                        inc.predecessor(u, ThreadId(t2)),
                        dy.predecessor(u, ThreadId(t2)),
                        "predecessor({u}, t{t2})"
                    );
                }
            }
        }
    }

    #[test]
    fn deletion_unsupported() {
        let mut po = IncrementalCsst::with_capacity(2, 4);
        po.insert_edge(n(0, 0), n(1, 0)).unwrap();
        assert!(matches!(
            po.delete_edge(n(0, 0), n(1, 0)),
            Err(PoError::DeletionUnsupported { .. })
        ));
        assert!(!po.supports_deletion());
    }

    #[test]
    fn names_distinguish_instantiations() {
        let a = IncrementalCsst::with_capacity(2, 4);
        let b = SegTreeIndex::with_capacity(2, 4);
        assert_eq!(a.name(), "CSSTs");
        assert_eq!(b.name(), "STs");
    }

    #[test]
    fn segtree_index_agrees_with_csst_index() {
        let mut a = IncrementalCsst::with_capacity(4, 30);
        let mut b = SegTreeIndex::new(); // grown entirely on demand
        let edges = [
            (n(0, 5), n(1, 7)),
            (n(1, 8), n(2, 2)),
            (n(2, 9), n(3, 1)),
            (n(3, 3), n(0, 20)),
            (n(0, 25), n(2, 29)),
        ];
        for (u, v) in edges {
            a.insert_edge(u, v).unwrap();
            b.insert_edge(u, v).unwrap();
        }
        for t1 in 0..4u32 {
            for i in (0..30u32).step_by(3) {
                for t2 in 0..4u32 {
                    let u = n(t1, i);
                    assert_eq!(a.successor(u, ThreadId(t2)), b.successor(u, ThreadId(t2)));
                    assert_eq!(
                        a.predecessor(u, ThreadId(t2)),
                        b.predecessor(u, ThreadId(t2))
                    );
                }
            }
        }
    }

    #[test]
    fn batched_matches_sequential() {
        let mut po = IncrementalCsst::with_capacity(4, 30);
        for (u, v) in [
            (n(0, 5), n(1, 7)),
            (n(1, 8), n(2, 2)),
            (n(2, 9), n(3, 1)),
            (n(3, 3), n(0, 20)),
            (n(0, 25), n(2, 29)),
        ] {
            po.insert_edge(u, v).unwrap();
        }
        let mut reach_probes = vec![];
        let mut node_probes = vec![];
        for t1 in 0..5u32 {
            // t = 4 exercises the unwitnessed-chain path
            for i in [0u32, 5, 9, 26] {
                for t2 in 0..5u32 {
                    reach_probes.push((n(t1, i), n(t2, i + 2)));
                    node_probes.push((n(t1, i), ThreadId(t2)));
                }
            }
        }
        let (mut r, mut s, mut p) = (vec![], vec![], vec![]);
        po.reachable_batch(&reach_probes, &mut r);
        po.successor_batch(&node_probes, &mut s);
        po.predecessor_batch(&node_probes, &mut p);
        for (i, &(u, v)) in reach_probes.iter().enumerate() {
            assert_eq!(r[i], po.reachable(u, v), "reachable probe {i}");
        }
        for (i, &(u, c)) in node_probes.iter().enumerate() {
            assert_eq!(s[i], po.successor(u, c), "successor probe {i}");
            assert_eq!(p[i], po.predecessor(u, c), "predecessor probe {i}");
        }
    }

    #[test]
    fn redundant_edges_do_not_grow_density() {
        let mut po = IncrementalCsst::with_capacity(2, 100);
        po.insert_edge(n(0, 10), n(1, 10)).unwrap();
        let before = po.density_stats().max_peak;
        // An implied ordering: already reachable, no array growth.
        po.insert_edge(n(0, 5), n(1, 20)).unwrap();
        assert_eq!(po.density_stats().max_peak, before);
        assert_eq!(po.edge_count(), 2);
    }

    #[test]
    fn lemma_7_density_bounded_by_cross_chain_density() {
        // All cross-chain edges leave positions {10, 20} of each chain,
        // so the cross-chain density is 2 and every array must stay at
        // density ≤ 2 even after transitive closure.
        let mut po = IncrementalCsst::with_capacity(4, 100);
        let mut sources = vec![];
        for t in 0..4u32 {
            for &j in &[10u32, 20] {
                sources.push((t, j));
            }
        }
        // Insert a web of edges between the sources (acyclic by
        // construction: edges go from position 10s to 20s or to later
        // chains' 10s).
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        po.insert_edge(n(1, 10), n(2, 20)).unwrap();
        po.insert_edge(n(2, 10), n(3, 20)).unwrap();
        po.insert_edge(n(0, 10), n(2, 20)).unwrap();
        po.insert_edge(n(1, 10), n(3, 20)).unwrap();
        let stats = po.density_stats();
        assert!(
            stats.max_peak <= 2,
            "Lemma 7 violated: density {} > cross-chain density 2",
            stats.max_peak
        );
    }
}
