//! Node identifiers for chain DAGs.
//!
//! A chain DAG (§2.2 of the paper) has nodes `⟨t, i⟩ ∈ [k] × [n]`: `t`
//! identifies one of `k` totally ordered chains (normally a thread) and
//! `i` is the position of the event within its chain. Consecutive
//! positions of the same chain are implicitly ordered (program order),
//! so only *cross-chain* edges are ever materialized.

use std::fmt;

/// Position of an event within its chain, or a value stored in a
/// suffix-minima array. [`INF`] is the reserved "empty" sentinel.
pub type Pos = u32;

/// The `∞` sentinel of the paper's suffix-minima arrays: an array entry
/// with this value is *empty* and does not participate in queries.
pub const INF: Pos = Pos::MAX;

/// Largest addressable chain position. Positions live in
/// `[0, MAX_POS]` so that chain lengths stay within the `2^31`-entry
/// limit of the sparse segment trees; larger positions are *genuinely
/// invalid* and rejected with
/// [`PoError::OutOfRange`](crate::PoError::OutOfRange).
pub const MAX_POS: Pos = (1 << 31) - 1;

/// Largest addressable number of chains. Chain ids at or beyond this
/// are *genuinely invalid* and rejected with
/// [`PoError::OutOfRange`](crate::PoError::OutOfRange); within it, the
/// witnessed domain grows on demand.
pub const MAX_CHAINS: usize = 1 << 16;

/// Largest chain count whose closure frontiers fit in one `u64` bitset
/// word. The query engines use the packed-word frontier up to this many
/// chains (every workload the paper evaluates has k ≤ 64) and fall back
/// to the stamped scratch arrays above it.
pub const MAX_BITSET_CHAINS: usize = 64;

/// Identifier of a chain of the DAG.
///
/// In most analyses a chain is a thread; in weak-memory settings a
/// thread may contribute several chains (e.g. x86-TSO uses one chain
/// for the program order and one for the store buffer, §5.2(4)).
///
/// ```
/// use csst_core::ThreadId;
/// let t = ThreadId(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The chain index as a `usize`, for indexing per-chain tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ThreadId` from a `usize` table index (the inverse of
    /// [`index`](Self::index)).
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in a `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ThreadId(u32::try_from(i).expect("chain index fits in u32"))
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(v: u32) -> Self {
        ThreadId(v)
    }
}

impl TryFrom<i32> for ThreadId {
    type Error = std::num::TryFromIntError;

    /// Fallible conversion from signed integers (negative ids are
    /// rejected instead of panicking).
    ///
    /// Bare integer literals keep working everywhere an
    /// `impl Into<ThreadId>` is accepted — `From<u32>` is the unique
    /// integer impl, so `NodeId::new(0, 42)` infers `0: u32`:
    ///
    /// ```
    /// use csst_core::{NodeId, ThreadId};
    /// assert_eq!(NodeId::new(0, 42).thread, ThreadId(0));
    /// assert!(ThreadId::try_from(-1i32).is_err());
    /// assert_eq!(ThreadId::try_from(7i32), Ok(ThreadId(7)));
    /// ```
    fn try_from(v: i32) -> Result<Self, Self::Error> {
        u32::try_from(v).map(ThreadId)
    }
}

/// A node `⟨t, i⟩` of a chain DAG: event `i` of chain `t`.
///
/// Two nodes of the same chain are implicitly ordered by their
/// positions; nodes of different chains are ordered only through
/// explicitly inserted cross-chain edges (and their transitive
/// consequences).
///
/// ```
/// use csst_core::{NodeId, ThreadId};
/// let u = NodeId::new(0, 42);
/// assert_eq!(u.thread, ThreadId(0));
/// assert_eq!(u.pos, 42);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeId {
    /// The chain this event belongs to.
    pub thread: ThreadId,
    /// The position of the event within its chain.
    pub pos: Pos,
}

impl NodeId {
    /// Creates the node `⟨thread, pos⟩`.
    #[inline]
    pub fn new(thread: impl Into<ThreadId>, pos: Pos) -> Self {
        NodeId {
            thread: thread.into(),
            pos,
        }
    }

    /// `true` if `self` and `other` belong to the same chain.
    #[inline]
    pub fn same_chain(self, other: NodeId) -> bool {
        self.thread == other.thread
    }

    /// Program-order comparison: `true` iff both nodes are on the same
    /// chain and `self` is at `other` or earlier.
    ///
    /// This is the *reflexive* intra-chain order `≤po`.
    #[inline]
    pub fn po_before_eq(self, other: NodeId) -> bool {
        self.thread == other.thread && self.pos <= other.pos
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.thread.0, self.pos)
    }
}

impl From<(u32, u32)> for NodeId {
    fn from((t, i): (u32, u32)) -> Self {
        NodeId::new(t, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        let t: ThreadId = 7u32.into();
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "t7");
        assert_eq!(ThreadId::from_index(7), t);
    }

    #[test]
    fn thread_id_try_from_signed() {
        assert_eq!(ThreadId::try_from(5i32), Ok(ThreadId(5)));
        assert!(ThreadId::try_from(-3i32).is_err());
    }

    #[test]
    fn addressable_limits() {
        const { assert!(MAX_POS < INF) };
        const { assert!(MAX_CHAINS <= u32::MAX as usize) };
        const { assert!(MAX_BITSET_CHAINS <= u64::BITS as usize) };
        const { assert!(MAX_BITSET_CHAINS <= MAX_CHAINS) };
    }

    #[test]
    fn node_id_basics() {
        let u = NodeId::new(1, 5);
        let v = NodeId::new(1, 9);
        let w = NodeId::new(2, 0);
        assert!(u.same_chain(v));
        assert!(!u.same_chain(w));
        assert!(u.po_before_eq(v));
        assert!(u.po_before_eq(u));
        assert!(!v.po_before_eq(u));
        assert!(!u.po_before_eq(w));
        assert_eq!(u.to_string(), "⟨1, 5⟩");
    }

    #[test]
    fn node_id_from_tuple() {
        let u: NodeId = (3, 4).into();
        assert_eq!(u, NodeId::new(3, 4));
    }

    #[test]
    fn inf_is_max() {
        assert_eq!(INF, u32::MAX);
    }
}
