//! # csst-core — Collective Sparse Segment Trees
//!
//! A faithful Rust implementation of the data structures from
//! *CSSTs: A Dynamic Data Structure for Partial Orders in Concurrent
//! Execution Analysis* (Tunç, Deshmukh, Çirisci, Enea, Pavlogiannis;
//! ASPLOS 2024).
//!
//! Dynamic analyses of concurrent programs maintain a partial order `P`
//! ("happens-before") over the events of a trace. `P` is a *chain DAG*:
//! `k` totally ordered chains (one per thread, or per thread component)
//! plus cross-chain edges inserted, queried, and — in fully dynamic
//! analyses — deleted as the analysis explores reorderings.
//!
//! This crate provides five interchangeable representations of such a
//! partial order, all implementing [`PartialOrderIndex`]:
//!
//! * [`Csst`] — the paper's fully dynamic Collective Sparse Segment
//!   Trees (Algorithm 2): `O(max(log δ, min(log n, d)))` updates and
//!   supports edge deletion. Queries run the paper's
//!   `O(k³ min(log n, d))` crossing-path fixpoint as a sparse worklist
//!   over the chain pairs that actually hold edges, with an
//!   epoch-guarded memo for query bursts (see the module docs of
//!   `dynamic`).
//! * [`IncrementalCsst`] — the purely incremental specialization
//!   (Algorithm 3): `O(k² min(log n, d))` inserts and
//!   `O(min(log n, d))` queries.
//! * [`SegTreeIndex`] — the "STs" baseline of the M2 race detector
//!   \[Pavlogiannis 2019\]: the same incremental architecture over dense
//!   (non-sparse) segment trees.
//! * [`VectorClockIndex`] — the "VCs" baseline: vector clocks with the
//!   two optimizations described in §5.1 of the paper (early-stop edge
//!   propagation and lazy clock materialization).
//! * [`GraphIndex`] — the "Graphs" baseline: a plain, non-transitively
//!   closed graph answering queries by BFS; the only classic structure
//!   that supports deletions.
//!
//! The underlying algorithmic workhorse is the *dynamic suffix minima*
//! problem (§3.1), solved by [`SparseSegmentTree`] (Algorithm 1) with
//! the paper's two novelties: **minima indexing** and a **sparse tree
//! representation** with flattened block leaves.
//!
//! ## Quickstart
//!
//! Indexes are *capacity-free*: start empty and let the domain grow as
//! events and orderings arrive — exactly what an online analysis over a
//! live event stream needs.
//!
//! ```
//! use csst_core::{Csst, NodeId, PartialOrderIndex, ThreadId};
//!
//! # fn main() -> Result<(), csst_core::PoError> {
//! let mut po = Csst::new(); // no chain count, no capacity
//!
//! // Stream events in: `append` hands out the next node of a chain.
//! let a = po.append(0);
//! let b = po.append(1);
//! assert_eq!((a, b), (NodeId::new(0, 0), NodeId::new(1, 0)));
//!
//! // Or address nodes directly — the domain grows to cover them.
//! po.insert_edge(NodeId::new(0, 10), NodeId::new(1, 20))?;
//! po.insert_edge(NodeId::new(1, 20), NodeId::new(2, 5))?;
//! assert_eq!(po.chains(), 3);
//! assert!(po.reachable(NodeId::new(0, 10), NodeId::new(2, 5)));
//! assert_eq!(po.successor(NodeId::new(0, 10), ThreadId(2)), Some(5));
//!
//! po.delete_edge(NodeId::new(1, 20), NodeId::new(2, 5))?; // fully dynamic
//! assert!(!po.reachable(NodeId::new(0, 10), NodeId::new(2, 5)));
//! # Ok(())
//! # }
//! ```
//!
//! When the workload shape is known in advance,
//! [`PartialOrderIndex::with_capacity`] pre-sizes internal storage —
//! a hint, not a bound. **Migration from the fixed-domain API:** the
//! old `P::new(k, n)` constructor is now `P::with_capacity(k, n)`, and
//! `PoError::OutOfRange` is reserved for genuinely invalid inputs
//! (beyond [`MAX_CHAINS`]/[`MAX_POS`]) instead of every node past the
//! construction-time domain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod heap;
pub mod index;
pub mod naive;
pub mod reach;
pub mod segtree;
pub mod sst;
pub mod stats;
pub mod suffix;
pub mod vc;

mod dynamic;
mod incremental;
mod matrix;

pub use dynamic::{Csst, DynamicPo};
pub use error::PoError;
pub use graph::GraphIndex;
pub use incremental::{IncrementalCsst, IncrementalPo, SegTreeIndex};
pub use index::{NodeId, Pos, ThreadId, INF, MAX_CHAINS, MAX_POS};
pub use naive::NaiveIndex;
pub use reach::{Domain, PartialOrderIndex};
pub use segtree::SegmentTree;
pub use sst::SparseSegmentTree;
pub use stats::DensityStats;
pub use suffix::{NaiveSuffixArray, SuffixMinima};
pub use vc::{AnchoredVectorClockIndex, VectorClockIndex};
