//! Internal helper: the growable `k × k` matrix of suffix-minima
//! arrays shared by [`DynamicPo`](crate::DynamicPo) and
//! [`IncrementalPo`](crate::IncrementalPo).
//!
//! The matrix entry `(t1, t2)` is the paper's array `A_{t1}^{t2}`,
//! indexed by positions of chain `t1`. Chains are added lazily with
//! amortized doubling of the allocated stride, and each *row*'s array
//! length grows by doubling as positions on that chain are witnessed —
//! sparse arrays ([`SparseSegmentTree`](crate::SparseSegmentTree)) pay
//! nothing for the untouched capacity, dense ones
//! ([`SegmentTree`](crate::SegmentTree)) pay exactly once per doubling.

use crate::index::ThreadId;
use crate::reach::Domain;
use crate::stats::DensityStats;
use crate::suffix::SuffixMinima;

/// Growable matrix of per-chain-pair suffix-minima arrays.
#[derive(Debug, Clone)]
pub(crate) struct PairMatrix<S> {
    dom: Domain,
    /// Allocated stride of the matrix (`arrays.len() == kslots²`);
    /// doubles as chains are added.
    kslots: usize,
    /// Per witnessed chain: the current array length of its row
    /// (always ≥ the witnessed chain length).
    row_len: Vec<usize>,
    /// Row length given to newly witnessed chains (the capacity hint).
    row_hint: usize,
    /// `kslots × kslots` arrays; unwitnessed and diagonal slots are
    /// zero-length placeholders.
    arrays: Vec<S>,
}

impl<S: SuffixMinima> PairMatrix<S> {
    pub(crate) fn new() -> Self {
        PairMatrix {
            dom: Domain::new(),
            kslots: 0,
            row_len: Vec::new(),
            row_hint: 0,
            arrays: Vec::new(),
        }
    }

    pub(crate) fn with_capacity(chains: usize, chain_capacity: usize) -> Self {
        let mut m = PairMatrix {
            dom: Domain::new(),
            kslots: 0,
            row_len: Vec::new(),
            row_hint: chain_capacity,
            arrays: Vec::new(),
        };
        if chains > 0 {
            m.ensure_chain(ThreadId::from_index(chains - 1));
        }
        m
    }

    /// Number of witnessed chains.
    #[inline]
    pub(crate) fn k(&self) -> usize {
        self.dom.chains()
    }

    /// Allocated stride of the matrix. Companion stores (the edge-heap
    /// store of `DynamicPo`) mirror this stride so a single
    /// `t1 * kslots + t2` product addresses both structures.
    #[inline]
    pub(crate) fn kslots(&self) -> usize {
        self.kslots
    }

    #[inline]
    pub(crate) fn chain_len(&self, chain: ThreadId) -> usize {
        self.dom.chain_len(chain)
    }

    /// Flat index of the array `A_{t1}^{t2}`; both chains must be
    /// witnessed.
    #[inline]
    pub(crate) fn idx(&self, t1: usize, t2: usize) -> usize {
        debug_assert!(t1 < self.k() && t2 < self.k());
        t1 * self.kslots + t2
    }

    #[inline]
    pub(crate) fn get(&self, t1: usize, t2: usize) -> &S {
        &self.arrays[self.idx(t1, t2)]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, t1: usize, t2: usize) -> &mut S {
        let i = self.idx(t1, t2);
        &mut self.arrays[i]
    }

    pub(crate) fn ensure_chain(&mut self, chain: ThreadId) {
        let old_k = self.k();
        if !self.dom.ensure_chain(chain) {
            return;
        }
        let new_k = self.k();
        if new_k > self.kslots {
            self.grow_kslots(new_k.next_power_of_two());
        }
        for c in old_k..new_k {
            self.row_len.push(self.row_hint);
            // The new chain's row covers its (hinted) positions…
            for t2 in 0..new_k {
                if t2 != c {
                    let i = c * self.kslots + t2;
                    self.arrays[i].ensure_len(self.row_hint);
                }
            }
            // …and every existing row gains a column at its own length.
            for t1 in 0..c {
                let len = self.row_len[t1];
                let i = t1 * self.kslots + c;
                self.arrays[i].ensure_len(len);
            }
        }
    }

    pub(crate) fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.ensure_chain(chain);
        self.dom.ensure_len(chain, len);
        let t = chain.index();
        if len <= self.row_len[t] {
            return;
        }
        // Grow rows to the next power of two, clamped to the
        // addressable universe (positions ≤ MAX_POS). Like doubling,
        // dense arrays re-allocate O(log n) times — but the new length
        // is a pure function of the requested length, so growing to a
        // position in one step or in many lands on identical storage
        // (what keeps `insert_edges` bit-for-bit equal to sequential
        // insertion).
        let new_len = len
            .next_power_of_two()
            .min(crate::index::MAX_POS as usize + 1)
            .max(self.row_len[t]);
        self.row_len[t] = new_len;
        for t2 in 0..self.k() {
            if t2 != t {
                let i = t * self.kslots + t2;
                self.arrays[i].ensure_len(new_len);
            }
        }
    }

    fn grow_kslots(&mut self, new_slots: usize) {
        let old_slots = self.kslots;
        let mut arrays = Vec::with_capacity(new_slots * new_slots);
        for _ in 0..new_slots * new_slots {
            arrays.push(S::with_len(0));
        }
        for (i, a) in std::mem::take(&mut self.arrays).into_iter().enumerate() {
            let (t1, t2) = (i / old_slots, i % old_slots);
            arrays[t1 * new_slots + t2] = a;
        }
        self.arrays = arrays;
        self.kslots = new_slots;
    }

    /// Per-array density statistics over the witnessed pairs.
    pub(crate) fn density_stats(&self) -> DensityStats {
        let k = self.k();
        DensityStats::from_arrays((0..k).flat_map(|t1| {
            (0..k).filter_map(move |t2| {
                if t1 == t2 {
                    None
                } else {
                    let a = &self.arrays[t1 * self.kslots + t2];
                    Some((a.peak_density(), a.len()))
                }
            })
        }))
    }

    pub(crate) fn memory_bytes(&self) -> usize {
        self.dom.memory_bytes()
            + self.row_len.capacity() * std::mem::size_of::<usize>()
            + self.arrays.iter().map(|a| a.memory_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::INF;
    use crate::sst::SparseSegmentTree;

    #[test]
    fn chains_grow_and_rows_keep_their_length() {
        let mut m: PairMatrix<SparseSegmentTree> = PairMatrix::new();
        assert_eq!(m.k(), 0);
        m.ensure_len(ThreadId(0), 100);
        m.ensure_chain(ThreadId(1));
        assert_eq!(m.k(), 2);
        m.get_mut(0, 1).update(42, 7);
        // Adding a later chain must give (0, 2) a row covering 0's
        // positions and leave the stored entry intact.
        m.ensure_chain(ThreadId(5));
        assert_eq!(m.k(), 6);
        assert!(m.get(0, 5).len() >= 100);
        assert_eq!(m.get(0, 1).suffix_min(0), 7);
        assert_eq!(m.get(0, 1).suffix_min(43), INF);
    }

    #[test]
    fn doubling_clamps_to_the_addressable_universe() {
        use crate::index::MAX_POS;
        let mut m: PairMatrix<SparseSegmentTree> = PairMatrix::new();
        m.ensure_chain(ThreadId(1));
        // A first row length past 2^30 makes naive doubling overshoot
        // the 2^31 SST limit; the clamp must keep it addressable.
        m.ensure_len(ThreadId(0), (1 << 30) + 1);
        m.ensure_len(ThreadId(0), (1 << 30) + 6);
        assert!(m.row_len[0] <= MAX_POS as usize + 1);
        m.ensure_len(ThreadId(0), MAX_POS as usize + 1); // largest valid
    }

    #[test]
    fn with_capacity_pre_creates_chains() {
        let m: PairMatrix<SparseSegmentTree> = PairMatrix::with_capacity(3, 50);
        assert_eq!(m.k(), 3);
        assert_eq!(m.chain_len(ThreadId(0)), 0, "capacity is not length");
        assert_eq!(m.get(0, 1).len(), 50);
        assert_eq!(m.get(2, 0).len(), 50);
    }
}
