//! A deliberately simple reference implementation used as the
//! correctness oracle in tests.
//!
//! [`NaiveIndex`] stores the raw edge list and answers every query by
//! an explicit traversal written for obviousness, not speed (`O(m²)`
//! per query). Property tests compare all production representations
//! against it.

use crate::error::PoError;
use crate::index::{NodeId, Pos, ThreadId};
use crate::reach::{Domain, PartialOrderIndex};
use std::collections::HashSet;

/// Edge-list oracle for chain-DAG reachability; supports insertion and
/// deletion.
#[derive(Debug, Clone, Default)]
pub struct NaiveIndex {
    dom: Domain,
    edges: Vec<(NodeId, NodeId)>,
}

impl NaiveIndex {
    /// The raw edge list.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }
}

impl PartialOrderIndex for NaiveIndex {
    fn new() -> Self {
        NaiveIndex::default()
    }

    fn name(&self) -> &'static str {
        "naive"
    }

    fn chains(&self) -> usize {
        self.dom.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.dom.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        self.dom.ensure_chain(chain);
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.dom.ensure_len(chain, len);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from, to));
    }

    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        match self.edges.iter().position(|&e| e == (from, to)) {
            Some(i) => {
                self.edges.swap_remove(i);
                Ok(())
            }
            None => Err(PoError::EdgeNotFound { from, to }),
        }
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            if cur.thread == to.thread && cur.pos <= to.pos {
                return true;
            }
            for &(a, b) in &self.edges {
                // Program order: any edge leaving cur's chain at or
                // after cur is usable.
                if a.thread == cur.thread && a.pos >= cur.pos && seen.insert(b) {
                    stack.push(b);
                }
            }
        }
        false
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        if from.thread == chain {
            return Some(from.pos);
        }
        self.edges
            .iter()
            .filter(|(a, b)| b.thread == chain && self.reachable(from, *a))
            .map(|(_, b)| b.pos)
            .min()
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        if from.thread == chain {
            return Some(from.pos);
        }
        self.edges
            .iter()
            .filter(|(a, b)| a.thread == chain && self.reachable(*b, from))
            .map(|(a, _)| a.pos)
            .max()
    }

    fn supports_deletion(&self) -> bool {
        true
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.dom.memory_bytes()
            + self.edges.capacity() * std::mem::size_of::<(NodeId, NodeId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn basic_semantics() {
        let mut o = NaiveIndex::new();
        o.insert_edge(n(0, 2), n(1, 3)).unwrap();
        o.insert_edge(n(1, 5), n(2, 1)).unwrap();
        assert!(o.reachable(n(0, 0), n(2, 9)));
        assert!(!o.reachable(n(0, 3), n(1, 9)));
        assert_eq!(o.successor(n(0, 0), ThreadId(2)), Some(1));
        assert_eq!(o.predecessor(n(2, 4), ThreadId(0)), Some(2));
        o.delete_edge(n(1, 5), n(2, 1)).unwrap();
        assert!(!o.reachable(n(0, 0), n(2, 9)));
    }

    #[test]
    fn successor_uses_program_order_of_intermediate_chains() {
        let mut o = NaiveIndex::new();
        o.insert_edge(n(0, 1), n(1, 2)).unwrap();
        o.insert_edge(n(1, 7), n(2, 4)).unwrap(); // reached via 1@2 →po 1@7
        assert_eq!(o.successor(n(0, 1), ThreadId(2)), Some(4));
    }
}
