//! The dynamic-reachability interface shared by every partial-order
//! representation (§2.2).
//!
//! A chain DAG over `k` chains of up to `n` events each is maintained
//! under the five operations of the paper: `insertEdge`, `deleteEdge`,
//! `reachable`, `successor` and `predecessor`. Analyses in
//! `csst-analyses` are generic over this trait, which is how the
//! paper's per-analysis comparisons (Tables 1–7) plug different data
//! structures into the same analysis.

use crate::error::PoError;
use crate::index::{NodeId, Pos, ThreadId};

/// A dynamic-reachability index over a chain DAG.
///
/// # Conventions
///
/// * Nodes `⟨t, i⟩` live in `[k] × [n]`; consecutive nodes of a chain
///   are implicitly ordered (program order), so `reachable` is
///   reflexive and `⟨t, i⟩ → ⟨t, j⟩` holds whenever `i ≤ j`.
/// * Updates connect nodes of **different** chains only
///   ([`PoError::SameChain`] otherwise).
/// * The maintained relation must stay acyclic. Plain `insert_edge`
///   trusts the caller; [`insert_edge_checked`] refuses edges whose
///   target already reaches their source.
///
/// # Example: one analysis, many representations
///
/// Analyses written against this trait run unchanged on every
/// structure — exactly how the paper's per-analysis comparisons work:
///
/// ```
/// use csst_core::{
///     GraphIndex, IncrementalCsst, NodeId, PartialOrderIndex, ThreadId, VectorClockIndex,
/// };
///
/// fn earliest_downstream<P: PartialOrderIndex>() -> Option<u32> {
///     let mut po = P::new(3, 100);
///     po.insert_edge(NodeId::new(0, 5), NodeId::new(1, 7)).ok()?;
///     po.insert_edge(NodeId::new(1, 9), NodeId::new(2, 2)).ok()?;
///     po.successor(NodeId::new(0, 0), ThreadId(2))
/// }
///
/// assert_eq!(earliest_downstream::<IncrementalCsst>(), Some(2));
/// assert_eq!(earliest_downstream::<VectorClockIndex>(), Some(2));
/// assert_eq!(earliest_downstream::<GraphIndex>(), Some(2));
/// ```
///
/// [`insert_edge_checked`]: PartialOrderIndex::insert_edge_checked
pub trait PartialOrderIndex {
    /// Creates an index over `chains` chains with capacity
    /// `chain_capacity` events per chain, initially containing only the
    /// implicit intra-chain orderings.
    fn new(chains: usize, chain_capacity: usize) -> Self
    where
        Self: Sized;

    /// Short human-readable name of the representation (used in the
    /// benchmark tables: `"CSSTs"`, `"STs"`, `"VCs"`, `"Graphs"`).
    fn name(&self) -> &'static str;

    /// Number of chains `k`.
    fn chains(&self) -> usize;

    /// Per-chain capacity `n`.
    fn chain_capacity(&self) -> usize;

    /// Inserts the cross-chain edge `from → to`.
    ///
    /// # Errors
    ///
    /// [`PoError::OutOfRange`] if an endpoint is outside the domain,
    /// [`PoError::SameChain`] if both endpoints share a chain.
    fn insert_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError>;

    /// Deletes a previously inserted edge `from → to`.
    ///
    /// # Errors
    ///
    /// [`PoError::DeletionUnsupported`] for insert-only structures,
    /// [`PoError::EdgeNotFound`] if the edge is not present, plus the
    /// same validation errors as [`insert_edge`](Self::insert_edge).
    fn delete_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError>;

    /// `true` iff `from` reaches `to` through program order and inserted
    /// edges (reflexively: every node reaches itself).
    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        self.successor(from, to.thread).is_some_and(|j| j <= to.pos)
    }

    /// Position of the earliest node of `chain` reachable from `from`,
    /// or `None` if `from` reaches no node of that chain. On `from`'s
    /// own chain this is `from.pos` (reflexivity).
    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos>;

    /// Position of the latest node of `chain` that reaches `from`, or
    /// `None` if no node of that chain does. On `from`'s own chain this
    /// is `from.pos` (reflexivity).
    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos>;

    /// Whether [`delete_edge`](Self::delete_edge) is supported.
    fn supports_deletion(&self) -> bool {
        false
    }

    /// Approximate heap footprint in bytes, for the paper's memory
    /// comparisons (Figure 10).
    fn memory_bytes(&self) -> usize;

    /// Inserts `from → to` unless `to` already reaches `from`.
    ///
    /// # Errors
    ///
    /// [`PoError::WouldCycle`] when the insertion would close a cycle,
    /// plus any error of [`insert_edge`](Self::insert_edge).
    fn insert_edge_checked(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        if from.thread == to.thread {
            return Err(PoError::SameChain { from, to });
        }
        if self.reachable(to, from) {
            return Err(PoError::WouldCycle { from, to });
        }
        self.insert_edge(from, to)
    }

    /// Validates that `node` lies inside the `[k] × [n]` domain.
    ///
    /// # Errors
    ///
    /// [`PoError::OutOfRange`] otherwise.
    fn check_node(&self, node: NodeId) -> Result<(), PoError> {
        if node.thread.index() >= self.chains() || node.pos as usize >= self.chain_capacity() {
            return Err(PoError::OutOfRange {
                node,
                chains: self.chains(),
                chain_capacity: self.chain_capacity(),
            });
        }
        Ok(())
    }

    /// Validates an edge: both endpoints in range and on distinct
    /// chains.
    ///
    /// # Errors
    ///
    /// [`PoError::OutOfRange`] or [`PoError::SameChain`].
    fn check_edge(&self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from.thread == to.thread {
            return Err(PoError::SameChain { from, to });
        }
        Ok(())
    }
}
