//! The dynamic-reachability interface shared by every partial-order
//! representation (§2.2).
//!
//! A chain DAG over a *growable* set of chains is maintained under the
//! five operations of the paper: `insertEdge`, `deleteEdge`,
//! `reachable`, `successor` and `predecessor`. Analyses in
//! `csst-analyses` are generic over this trait, which is how the
//! paper's per-analysis comparisons (Tables 1–7) plug different data
//! structures into the same analysis.
//!
//! ## Capacity-free domains
//!
//! The domain is not fixed at construction time: [`PartialOrderIndex::new`]
//! creates an empty index and chains/positions materialize on demand —
//! explicitly through [`ensure_chain`]/[`append`], or implicitly when an
//! edge touches a node the index has not seen yet.
//! [`PartialOrderIndex::with_capacity`] pre-sizes internal storage for a
//! known workload, but the hint is *not* a bound: growing past it is
//! always legal. [`PoError::OutOfRange`] is reserved for genuinely
//! invalid inputs — nodes beyond the addressable universe of
//! [`MAX_CHAINS`] chains × [`MAX_POS`]+1 positions.
//!
//! ## Validation in one place
//!
//! All input validation happens in the provided methods of this trait
//! ([`insert_edge`], [`delete_edge`], [`insert_edge_checked`]), which
//! then delegate to the unvalidated `*_raw` hooks each structure
//! implements. Implementations must not re-validate.
//!
//! [`ensure_chain`]: PartialOrderIndex::ensure_chain
//! [`append`]: PartialOrderIndex::append
//! [`insert_edge`]: PartialOrderIndex::insert_edge
//! [`delete_edge`]: PartialOrderIndex::delete_edge
//! [`insert_edge_checked`]: PartialOrderIndex::insert_edge_checked

use crate::error::PoError;
use crate::index::{NodeId, Pos, ThreadId, MAX_BITSET_CHAINS, MAX_CHAINS, MAX_POS};

/// A dynamic-reachability index over a growable chain DAG.
///
/// # Conventions
///
/// * Nodes `⟨t, i⟩` live in a conceptually unbounded domain; each chain
///   is totally ordered, so `reachable` is reflexive and
///   `⟨t, i⟩ → ⟨t, j⟩` holds whenever `i ≤ j`. The *witnessed* part of
///   the domain ([`chains`]/[`chain_len`]) grows as nodes are touched.
/// * Updates connect nodes of **different** chains only
///   ([`PoError::SameChain`] otherwise).
/// * The maintained relation must stay acyclic. Plain `insert_edge`
///   trusts the caller; [`insert_edge_checked`] refuses edges whose
///   target already reaches their source.
///
/// # Example: one analysis, many representations
///
/// Analyses written against this trait run unchanged on every
/// structure — exactly how the paper's per-analysis comparisons work:
///
/// ```
/// use csst_core::{
///     GraphIndex, IncrementalCsst, NodeId, PartialOrderIndex, ThreadId, VectorClockIndex,
/// };
///
/// fn earliest_downstream<P: PartialOrderIndex>() -> Option<u32> {
///     let mut po = P::new(); // no capacity needed: the domain grows on demand
///     po.insert_edge(NodeId::new(0, 5), NodeId::new(1, 7)).ok()?;
///     po.insert_edge(NodeId::new(1, 9), NodeId::new(2, 2)).ok()?;
///     po.successor(NodeId::new(0, 0), ThreadId(2))
/// }
///
/// assert_eq!(earliest_downstream::<IncrementalCsst>(), Some(2));
/// assert_eq!(earliest_downstream::<VectorClockIndex>(), Some(2));
/// assert_eq!(earliest_downstream::<GraphIndex>(), Some(2));
/// ```
///
/// # Send-safety
///
/// The trait requires [`Send`]: indexes are the per-shard state of the
/// multi-core ingest pipeline (`csst-serve`), so every representation
/// must be movable into a worker thread. Interior mutability inside an
/// index (query scratch, memos) is fine — [`RefCell`](std::cell::RefCell)
/// is `Send` — but thread-pinned state (`Rc`, thread locals) is not.
///
/// [`chains`]: PartialOrderIndex::chains
/// [`chain_len`]: PartialOrderIndex::chain_len
/// [`insert_edge_checked`]: PartialOrderIndex::insert_edge_checked
pub trait PartialOrderIndex: Send {
    /// Creates an empty index with no chains. Chains and positions
    /// materialize on demand.
    fn new() -> Self
    where
        Self: Sized;

    /// Creates an index pre-sized for `chains` chains of about
    /// `chain_capacity` events each.
    ///
    /// The hint is **not** a bound: the index starts with `chains`
    /// (empty) chains and grows freely past both numbers. Migrating
    /// from the old fixed-domain API: `P::new(k, n)` becomes
    /// `P::with_capacity(k, n)`.
    ///
    /// The default implementation pre-creates the chains and ignores
    /// the capacity hint; structures whose storage is sized by
    /// positions override it.
    fn with_capacity(chains: usize, chain_capacity: usize) -> Self
    where
        Self: Sized,
    {
        let _ = chain_capacity;
        let mut po = Self::new();
        if chains > 0 {
            po.ensure_chain(ThreadId::from_index(chains - 1));
        }
        po
    }

    /// Short human-readable name of the representation (used in the
    /// benchmark tables: `"CSSTs"`, `"STs"`, `"VCs"`, `"Graphs"`).
    fn name(&self) -> &'static str;

    /// Number of chains witnessed so far (the current `k`).
    fn chains(&self) -> usize;

    /// Number of events witnessed on `chain` so far: the next
    /// [`append`](Self::append) on this chain returns this position.
    fn chain_len(&self, chain: ThreadId) -> usize;

    /// Grows the domain so that `chain` exists (possibly still with
    /// zero events). No-op if it already does.
    ///
    /// # Panics
    ///
    /// Panics if `chain` lies beyond [`MAX_CHAINS`] — growth is
    /// infallible inside the addressable universe; validate untrusted
    /// input with [`check_node`](Self::check_node) first.
    fn ensure_chain(&mut self, chain: ThreadId);

    /// Grows `chain` so that it holds at least `len` events (implies
    /// [`ensure_chain`](Self::ensure_chain)). No-op if it already does.
    ///
    /// # Panics
    ///
    /// Panics if `chain` or `len` lies beyond the addressable universe
    /// ([`MAX_CHAINS`] chains of at most [`MAX_POS`]` + 1` events).
    fn ensure_len(&mut self, chain: ThreadId, len: usize);

    /// Appends one event to `chain` (creating the chain if needed) and
    /// returns its node — the streaming entry point of the API.
    ///
    /// # Panics
    ///
    /// Panics if the append would leave the addressable universe (see
    /// [`ensure_len`](Self::ensure_len)).
    ///
    /// ```
    /// use csst_core::{Csst, NodeId, PartialOrderIndex};
    /// let mut po = Csst::new();
    /// assert_eq!(po.append(0), NodeId::new(0, 0));
    /// assert_eq!(po.append(0), NodeId::new(0, 1));
    /// assert_eq!(po.append(3), NodeId::new(3, 0));
    /// assert_eq!(po.chains(), 4);
    /// ```
    fn append(&mut self, chain: impl Into<ThreadId>) -> NodeId
    where
        Self: Sized,
    {
        let chain = chain.into();
        self.ensure_chain(chain);
        let pos = self.chain_len(chain);
        self.ensure_len(chain, pos + 1);
        NodeId::new(chain, pos as Pos)
    }

    /// Inserts the cross-chain edge `from → to`, growing the domain to
    /// cover both endpoints.
    ///
    /// # Errors
    ///
    /// [`PoError::OutOfRange`] if an endpoint is outside the
    /// addressable universe, [`PoError::SameChain`] if both endpoints
    /// share a chain.
    fn insert_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_edge(from, to)?;
        self.ensure_len(from.thread, from.pos as usize + 1);
        self.ensure_len(to.thread, to.pos as usize + 1);
        self.insert_edge_raw(from, to);
        Ok(())
    }

    /// Inserts a batch of cross-chain edges, amortizing validation and
    /// domain growth over the whole batch.
    ///
    /// Semantically equivalent to calling
    /// [`insert_edge`](Self::insert_edge) for each pair in order, with
    /// one strengthening: the **whole batch is validated first**, and
    /// on a validation error *nothing* is inserted (sequential
    /// insertion would have applied the prefix before failing).
    /// Successful batches leave the index in exactly the state the
    /// sequential calls would — same reachability, same density
    /// statistics, same edge count — which
    /// `crates/core/tests/proptests.rs` pins against the oracles.
    ///
    /// Like `insert_edge`, the caller is responsible for keeping the
    /// relation acyclic (there is no batched cycle check; use
    /// [`insert_edge_checked`](Self::insert_edge_checked) per edge when
    /// unsure).
    ///
    /// # Errors
    ///
    /// The first [`PoError::OutOfRange`] or [`PoError::SameChain`] in
    /// batch order; the index is unchanged on error.
    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> Result<(), PoError> {
        for &(from, to) in edges {
            self.check_edge(from, to)?;
        }
        // Grow each touched chain once, to its batch-wide maximum —
        // not twice per edge. Chains are few; a linear scratch scan
        // beats hashing.
        let mut maxima: Vec<(ThreadId, Pos)> = Vec::new();
        for &(from, to) in edges {
            for node in [from, to] {
                match maxima.iter_mut().find(|(t, _)| *t == node.thread) {
                    Some((_, max)) => *max = (*max).max(node.pos),
                    None => maxima.push((node.thread, node.pos)),
                }
            }
        }
        for (chain, max) in maxima {
            self.ensure_len(chain, max as usize + 1);
        }
        self.insert_edges_raw(edges);
        Ok(())
    }

    /// Deletes a previously inserted edge `from → to`.
    ///
    /// # Errors
    ///
    /// [`PoError::DeletionUnsupported`] for insert-only structures,
    /// [`PoError::EdgeNotFound`] if the edge is not present, plus the
    /// same validation errors as [`insert_edge`](Self::insert_edge).
    fn delete_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_edge(from, to)?;
        self.delete_edge_raw(from, to)
    }

    /// Inserts `from → to` unless `to` already reaches `from`.
    ///
    /// # Errors
    ///
    /// [`PoError::WouldCycle`] when the insertion would close a cycle,
    /// plus any error of [`insert_edge`](Self::insert_edge).
    fn insert_edge_checked(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_edge(from, to)?;
        if self.reachable(to, from) {
            return Err(PoError::WouldCycle { from, to });
        }
        self.ensure_len(from.thread, from.pos as usize + 1);
        self.ensure_len(to.thread, to.pos as usize + 1);
        self.insert_edge_raw(from, to);
        Ok(())
    }

    /// Records the pre-validated cross-chain edge `from → to`.
    ///
    /// Called by the provided [`insert_edge`](Self::insert_edge) /
    /// [`insert_edge_checked`](Self::insert_edge_checked) after
    /// validation and domain growth; implementations must not
    /// re-validate. Calling this directly with same-chain or
    /// out-of-universe endpoints leaves the structure in an
    /// unspecified state.
    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId);

    /// Records a pre-validated batch of cross-chain edges, in order.
    ///
    /// Called by the provided [`insert_edges`](Self::insert_edges)
    /// after validation and domain growth. The default delegates to
    /// [`insert_edge_raw`](Self::insert_edge_raw) per edge;
    /// structures with a profitable batch layout (the fully dynamic
    /// CSSTs group edges by chain pair) override it, and must remain
    /// observationally identical to the sequential default.
    fn insert_edges_raw(&mut self, edges: &[(NodeId, NodeId)]) {
        for &(from, to) in edges {
            self.insert_edge_raw(from, to);
        }
    }

    /// Removes the pre-validated edge `from → to`.
    ///
    /// Called by the provided [`delete_edge`](Self::delete_edge) after
    /// validation; implementations must not re-validate, and report
    /// only [`PoError::EdgeNotFound`] or
    /// [`PoError::DeletionUnsupported`].
    fn delete_edge_raw(&mut self, from: NodeId, to: NodeId) -> Result<(), PoError>;

    /// `true` iff `from` reaches `to` through program order and inserted
    /// edges (reflexively: every node reaches itself).
    ///
    /// # Complexity
    ///
    /// The default delegates to [`successor`](Self::successor) and
    /// inherits its cost. Representations override it when a bound
    /// check is cheaper than the exact frontier: vector clocks answer
    /// in `O(1)` (one clock entry), and the fully dynamic CSST's
    /// worklist engine stops as soon as *any* crossing path lands at
    /// or before `to` — or provably none can — rather than finding the
    /// earliest one (see `csst_core::dynamic`).
    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        self.successor(from, to.thread).is_some_and(|j| j <= to.pos)
    }

    /// Position of the earliest node of `chain` reachable from `from`,
    /// or `None` if `from` reaches no node of that chain. On `from`'s
    /// own chain this is `from.pos` (reflexivity). Querying nodes or
    /// chains beyond the witnessed domain is legal and treats them as
    /// unconnected.
    ///
    /// # Complexity
    ///
    /// Per representation (`k` chains, `n` events/chain, `m` edges,
    /// `d` cross-chain density, `p` live chain pairs reached from
    /// `from`):
    ///
    /// * fully dynamic CSSTs: `O(p·min(log n, d))` sparse-worklist
    ///   propagation (`p ≤ k²`; the paper's dense bound is
    ///   `O(k³·min(log n, d))`), amortized to `O(1)` for repeated
    ///   sources between updates by the epoch memo;
    /// * incremental CSSTs / STs: one suffix-minima query,
    ///   `O(min(log n, d))` resp. `O(log n)`;
    /// * VCs / aVCs: `O(log n)` binary search over materialized
    ///   clock rows resp. anchors;
    /// * Graphs: `O(m + k)` chain-aware traversal.
    ///
    /// All implementations answer without allocating in steady state.
    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos>;

    /// Position of the latest node of `chain` that reaches `from`, or
    /// `None` if no node of that chain does. On `from`'s own chain this
    /// is `from.pos` (reflexivity). Querying nodes or chains beyond the
    /// witnessed domain is legal and treats them as unconnected.
    ///
    /// # Complexity
    ///
    /// The backward dual of [`successor`](Self::successor): identical
    /// bounds per representation, with `argleq` taking the place of
    /// the suffix-minimum (vector clocks answer from one clock entry,
    /// `O(1)`).
    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos>;

    /// Answers a batch of [`reachable`](Self::reachable) probes,
    /// appending one `bool` per probe to `out` (in probe order, after
    /// clearing `out`).
    ///
    /// Semantically identical to issuing every probe through
    /// `reachable` — the property tests pin batched == sequential for
    /// every representation. Structures whose per-probe query performs
    /// a closure override this to *group probes by source chain* and
    /// answer a whole group from one amortized sweep (the fully
    /// dynamic CSSTs share one worklist pass, the graph baseline one
    /// traversal, per distinct source node).
    ///
    /// The out-parameter style keeps the hot path allocation-lean:
    /// callers reuse one `Vec` across batches.
    ///
    /// ```
    /// use csst_core::{Csst, NodeId, PartialOrderIndex};
    /// # fn main() -> Result<(), csst_core::PoError> {
    /// let mut po = Csst::new();
    /// po.insert_edge(NodeId::new(0, 3), NodeId::new(1, 4))?;
    /// let probes = [
    ///     (NodeId::new(0, 0), NodeId::new(1, 9)),
    ///     (NodeId::new(0, 4), NodeId::new(1, 9)),
    ///     (NodeId::new(0, 1), NodeId::new(0, 2)),
    /// ];
    /// let mut out = Vec::new();
    /// po.reachable_batch(&probes, &mut out);
    /// assert_eq!(out, vec![true, false, true]);
    /// # Ok(())
    /// # }
    /// ```
    fn reachable_batch(&self, probes: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(probes.len());
        out.extend(probes.iter().map(|&(from, to)| self.reachable(from, to)));
    }

    /// Answers a batch of [`successor`](Self::successor) probes,
    /// appending one `Option<Pos>` per probe to `out` (in probe order,
    /// after clearing `out`).
    ///
    /// Same contract and amortization story as
    /// [`reachable_batch`](Self::reachable_batch): batched answers are
    /// identical to per-probe answers, and closure-based structures
    /// share one propagation per distinct source across the batch.
    ///
    /// ```
    /// use csst_core::{Csst, NodeId, PartialOrderIndex, ThreadId};
    /// # fn main() -> Result<(), csst_core::PoError> {
    /// let mut po = Csst::new();
    /// po.insert_edge(NodeId::new(0, 3), NodeId::new(1, 4))?;
    /// let probes = [
    ///     (NodeId::new(0, 0), ThreadId(1)),
    ///     (NodeId::new(0, 4), ThreadId(1)),
    ///     (NodeId::new(0, 7), ThreadId(0)), // own chain: reflexive
    /// ];
    /// let mut out = Vec::new();
    /// po.successor_batch(&probes, &mut out);
    /// assert_eq!(out, vec![Some(4), None, Some(7)]);
    /// # Ok(())
    /// # }
    /// ```
    fn successor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.reserve(probes.len());
        out.extend(
            probes
                .iter()
                .map(|&(from, chain)| self.successor(from, chain)),
        );
    }

    /// Answers a batch of [`predecessor`](Self::predecessor) probes,
    /// appending one `Option<Pos>` per probe to `out` (in probe order,
    /// after clearing `out`).
    ///
    /// The backward dual of
    /// [`successor_batch`](Self::successor_batch), with the same
    /// batched == sequential contract.
    ///
    /// ```
    /// use csst_core::{Csst, NodeId, PartialOrderIndex, ThreadId};
    /// # fn main() -> Result<(), csst_core::PoError> {
    /// let mut po = Csst::new();
    /// po.insert_edge(NodeId::new(0, 3), NodeId::new(1, 4))?;
    /// let probes = [
    ///     (NodeId::new(1, 9), ThreadId(0)),
    ///     (NodeId::new(1, 2), ThreadId(0)),
    /// ];
    /// let mut out = Vec::new();
    /// po.predecessor_batch(&probes, &mut out);
    /// assert_eq!(out, vec![Some(3), None]);
    /// # Ok(())
    /// # }
    /// ```
    fn predecessor_batch(&self, probes: &[(NodeId, ThreadId)], out: &mut Vec<Option<Pos>>) {
        out.clear();
        out.reserve(probes.len());
        out.extend(
            probes
                .iter()
                .map(|&(from, chain)| self.predecessor(from, chain)),
        );
    }

    /// Whether [`delete_edge`](Self::delete_edge) is supported.
    fn supports_deletion(&self) -> bool {
        false
    }

    /// Approximate heap footprint in bytes, for the paper's memory
    /// comparisons (Figure 10). Sparse structures must not charge for
    /// untouched capacity.
    fn memory_bytes(&self) -> usize;

    /// Validates that `node` lies inside the addressable universe of
    /// [`MAX_CHAINS`] chains × [`MAX_POS`]`+1` positions.
    ///
    /// # Errors
    ///
    /// [`PoError::OutOfRange`] otherwise.
    fn check_node(&self, node: NodeId) -> Result<(), PoError> {
        if node.thread.index() >= MAX_CHAINS || node.pos > MAX_POS {
            return Err(PoError::OutOfRange { node });
        }
        Ok(())
    }

    /// Validates an edge: both endpoints addressable and on distinct
    /// chains. This is the **single** validation path of the trait.
    ///
    /// # Errors
    ///
    /// [`PoError::OutOfRange`] or [`PoError::SameChain`].
    fn check_edge(&self, from: NodeId, to: NodeId) -> Result<(), PoError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from.thread == to.thread {
            return Err(PoError::SameChain { from, to });
        }
        Ok(())
    }
}

/// A closure frontier over at most [`MAX_BITSET_CHAINS`] chains packed
/// into one `u64` word: bit `t` set ⇔ chain `t` is queued for
/// relaxation.
///
/// The query engines keep their worklist in this word whenever
/// `k ≤ 64` (every workload the paper evaluates) — membership updates
/// are single bit operations and draining iterates set bits via
/// `trailing_zeros`, with no per-chain stamp arrays to touch. Larger
/// domains fall back to the stamped scratch lists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct BitFrontier(u64);

impl BitFrontier {
    /// Empties the frontier.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.0 = 0;
    }

    /// Queues chain `t` (idempotent).
    #[inline]
    pub(crate) fn insert(&mut self, t: usize) {
        debug_assert!(t < MAX_BITSET_CHAINS);
        self.0 |= 1u64 << t;
    }

    /// Unqueues chain `t` (idempotent).
    #[inline]
    pub(crate) fn remove(&mut self, t: usize) {
        debug_assert!(t < MAX_BITSET_CHAINS);
        self.0 &= !(1u64 << t);
    }

    /// `true` when no chain is queued.
    #[inline]
    #[cfg(test)]
    pub(crate) fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the queued chains in ascending order.
    #[inline]
    pub(crate) fn iter(self) -> impl Iterator<Item = usize> {
        let mut word = self.0;
        std::iter::from_fn(move || {
            if word == 0 {
                return None;
            }
            let t = word.trailing_zeros() as usize;
            word &= word - 1;
            Some(t)
        })
    }
}

/// Witnessed-domain bookkeeping shared by the index implementations:
/// the set of known chains and the number of events seen per chain.
///
/// Implementations embed a `Domain` and layer their own storage growth
/// on top of its `ensure_*` primitives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Domain {
    lens: Vec<Pos>,
}

impl Domain {
    /// An empty domain (no chains).
    pub fn new() -> Self {
        Domain::default()
    }

    /// A domain with `chains` chains of zero events each.
    ///
    /// # Panics
    ///
    /// Panics if `chains` exceeds [`MAX_CHAINS`].
    pub fn with_chains(chains: usize) -> Self {
        assert!(
            chains <= MAX_CHAINS,
            "{chains} chains beyond the addressable universe of {MAX_CHAINS}"
        );
        Domain {
            lens: vec![0; chains],
        }
    }

    /// Number of witnessed chains.
    #[inline]
    pub fn chains(&self) -> usize {
        self.lens.len()
    }

    /// Number of witnessed events on `chain` (0 for unknown chains).
    #[inline]
    pub fn chain_len(&self, chain: ThreadId) -> usize {
        self.lens.get(chain.index()).map_or(0, |&l| l as usize)
    }

    /// Ensures `chain` exists; returns `true` if new chains were added.
    ///
    /// # Panics
    ///
    /// Panics if `chain` lies beyond [`MAX_CHAINS`] — growth is
    /// infallible inside the addressable universe, and out-of-universe
    /// inputs are programming errors (use
    /// [`PartialOrderIndex::check_node`] to validate untrusted input).
    pub fn ensure_chain(&mut self, chain: ThreadId) -> bool {
        assert!(
            chain.index() < MAX_CHAINS,
            "chain {chain} beyond the addressable universe of {MAX_CHAINS} chains"
        );
        if chain.index() < self.lens.len() {
            return false;
        }
        self.lens.resize(chain.index() + 1, 0);
        true
    }

    /// Ensures `chain` holds at least `len` events; returns `true` if
    /// the chain grew (in chains or in length).
    ///
    /// # Panics
    ///
    /// Panics if `chain` or `len` lies beyond the addressable universe
    /// (see [`Domain::ensure_chain`]; `len` is capped at
    /// [`MAX_POS`]` + 1` events).
    pub fn ensure_len(&mut self, chain: ThreadId, len: usize) -> bool {
        assert!(
            len <= MAX_POS as usize + 1,
            "chain length {len} beyond the addressable universe of {} positions",
            MAX_POS as usize + 1
        );
        let grew_chains = self.ensure_chain(chain);
        let slot = &mut self.lens[chain.index()];
        if (*slot as usize) < len {
            *slot = len as Pos;
            true
        } else {
            grew_chains
        }
    }

    /// Heap footprint of the bookkeeping itself.
    pub fn memory_bytes(&self) -> usize {
        self.lens.capacity() * std::mem::size_of::<Pos>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_growth() {
        let mut d = Domain::new();
        assert_eq!(d.chains(), 0);
        assert_eq!(d.chain_len(ThreadId(3)), 0);
        assert!(d.ensure_chain(ThreadId(2)));
        assert_eq!(d.chains(), 3);
        assert!(!d.ensure_chain(ThreadId(1)));
        assert!(d.ensure_len(ThreadId(1), 5));
        assert_eq!(d.chain_len(ThreadId(1)), 5);
        assert!(!d.ensure_len(ThreadId(1), 4), "shrinking is a no-op");
        assert_eq!(d.chain_len(ThreadId(1)), 5);
        assert!(d.ensure_len(ThreadId(7), 1), "new chain via ensure_len");
        assert_eq!(d.chains(), 8);
    }

    #[test]
    #[should_panic(expected = "addressable universe")]
    fn ensure_chain_rejects_out_of_universe_chains() {
        let mut d = Domain::new();
        d.ensure_chain(ThreadId(MAX_CHAINS as u32));
    }

    #[test]
    #[should_panic(expected = "addressable universe")]
    fn ensure_len_rejects_out_of_universe_lengths() {
        let mut d = Domain::new();
        d.ensure_len(ThreadId(0), MAX_POS as usize + 2);
    }

    #[test]
    fn with_chains_pre_creates_empty_chains() {
        let d = Domain::with_chains(4);
        assert_eq!(d.chains(), 4);
        for t in 0..4u32 {
            assert_eq!(d.chain_len(ThreadId(t)), 0);
        }
    }

    #[test]
    fn bit_frontier_set_semantics() {
        let mut f = BitFrontier::default();
        assert!(f.is_empty());
        f.insert(0);
        f.insert(63);
        f.insert(17);
        f.insert(17); // idempotent
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![0, 17, 63]);
        f.remove(17);
        f.remove(5); // absent: no-op
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![0, 63]);
        f.remove(0);
        f.remove(63);
        assert!(f.is_empty());
        f.insert(3);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.iter().count(), 0);
    }
}
