//! Classic dense Segment Trees — the "STs" baseline.
//!
//! This is the suffix-minima structure underpinning the M2 race
//! detector \[Pavlogiannis 2019\] that the paper compares against: a
//! complete binary tree over the full `n`-entry array, `O(log n)` per
//! operation and `O(n)` space regardless of density. CSSTs improve on
//! it with minima indexing and sparsity (§3.2); plugging this type into
//! [`IncrementalPo`](crate::IncrementalPo) yields the paper's `STs`
//! competitor ([`SegTreeIndex`](crate::SegTreeIndex)).

use crate::index::{Pos, INF};
use crate::suffix::SuffixMinima;

/// A dense segment tree over an array of `len` entries in `ℕ ∪ {∞}`.
///
/// ```
/// use csst_core::{SegmentTree, SuffixMinima};
/// let mut st = SegmentTree::with_len(6);
/// st.update(2, 9);
/// st.update(4, 5);
/// assert_eq!(st.suffix_min(0), 5);
/// assert_eq!(st.suffix_min(5), csst_core::INF);
/// assert_eq!(st.argleq(9), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct SegmentTree {
    /// 1-indexed implicit tree; `tree[cap + i]` is leaf `i`.
    tree: Vec<Pos>,
    cap: usize,
    len: usize,
    density: usize,
    peak_density: usize,
}

impl SuffixMinima for SegmentTree {
    fn with_len(len: usize) -> Self {
        let cap = len.next_power_of_two().max(1);
        SegmentTree {
            tree: vec![INF; 2 * cap],
            cap,
            len,
            density: 0,
            peak_density: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn ensure_len(&mut self, len: usize) {
        if len <= self.len {
            return;
        }
        if len <= self.cap {
            self.len = len;
            return;
        }
        // Dense rebuild at the next power of two: callers grow by
        // doubling, so the O(cap) copy stays amortized O(1) per entry.
        let cap = len.next_power_of_two();
        let mut tree = vec![INF; 2 * cap];
        tree[cap..cap + self.cap].copy_from_slice(&self.tree[self.cap..2 * self.cap]);
        for node in (1..cap).rev() {
            tree[node] = tree[2 * node].min(tree[2 * node + 1]);
        }
        self.tree = tree;
        self.cap = cap;
        self.len = len;
    }

    fn update(&mut self, i: usize, v: Pos) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let mut node = self.cap + i;
        let old = self.tree[node];
        if old == INF && v != INF {
            self.density += 1;
            self.peak_density = self.peak_density.max(self.density);
        } else if old != INF && v == INF {
            self.density -= 1;
        }
        self.tree[node] = v;
        node /= 2;
        while node >= 1 {
            self.tree[node] = self.tree[2 * node].min(self.tree[2 * node + 1]);
            node /= 2;
        }
    }

    fn suffix_min(&self, i: usize) -> Pos {
        if i >= self.len {
            return INF;
        }
        let mut res = INF;
        let mut l = self.cap + i;
        let mut r = self.cap + self.len; // exclusive
        while l < r {
            if l % 2 == 1 {
                res = res.min(self.tree[l]);
                l += 1;
            }
            if r % 2 == 1 {
                r -= 1;
                res = res.min(self.tree[r]);
            }
            l /= 2;
            r /= 2;
        }
        res
    }

    fn argleq(&self, v: Pos) -> Option<usize> {
        // INF entries are "empty" and never qualify, so clamp the bound
        // below the sentinel (stored values are chain positions < INF).
        let v = v.min(INF - 1);
        if self.tree[1] > v {
            return None;
        }
        let mut node = 1;
        while node < self.cap {
            if self.tree[2 * node + 1] <= v {
                node = 2 * node + 1;
            } else {
                node *= 2;
            }
        }
        Some(node - self.cap)
    }

    fn density(&self) -> usize {
        self.density
    }

    fn peak_density(&self) -> usize {
        self.peak_density
    }

    fn structure_name() -> &'static str {
        "STs"
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.capacity() * std::mem::size_of::<Pos>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix::NaiveSuffixArray;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn example_1() {
        let mut st = SegmentTree::with_len(4);
        for (i, v) in [6, 9, 8, 10].into_iter().enumerate() {
            st.update(i, v);
        }
        assert_eq!(st.suffix_min(0), 6);
        assert_eq!(st.suffix_min(1), 8);
        assert_eq!(st.suffix_min(3), 10);
        assert_eq!(st.argleq(7), Some(0));
        assert_eq!(st.argleq(9), Some(2));
        assert_eq!(st.argleq(11), Some(3));
        st.update(3, 7);
        assert_eq!(st.suffix_min(2), 7);
    }

    #[test]
    fn empty_and_erase() {
        let mut st = SegmentTree::with_len(5);
        assert_eq!(st.suffix_min(0), INF);
        assert_eq!(st.argleq(100), None);
        st.update(3, 2);
        assert_eq!(st.density(), 1);
        st.update(3, INF);
        assert_eq!(st.density(), 0);
        assert_eq!(st.suffix_min(0), INF);
        assert_eq!(st.peak_density(), 1);
    }

    #[test]
    fn argleq_ignores_empty_entries() {
        let mut st = SegmentTree::with_len(8);
        st.update(2, 3);
        // Index 7 is empty (∞); argleq(INF) must not report it.
        assert_eq!(st.argleq(INF), Some(2));
    }

    #[test]
    fn non_power_of_two_length() {
        let mut st = SegmentTree::with_len(5);
        st.update(4, 1);
        assert_eq!(st.suffix_min(4), 1);
        assert_eq!(st.suffix_min(5), INF);
        assert_eq!(st.argleq(1), Some(4));
    }

    #[test]
    fn ensure_len_preserves_contents() {
        let mut st = SegmentTree::with_len(3);
        st.update(0, 9);
        st.update(2, 4);
        st.ensure_len(3); // no-op
        st.ensure_len(4); // within capacity
        assert_eq!(st.suffix_min(3), INF);
        st.ensure_len(11); // dense rebuild
        assert_eq!(st.len(), 11);
        assert_eq!(st.suffix_min(0), 4);
        assert_eq!(st.suffix_min(1), 4);
        assert_eq!(st.suffix_min(3), INF);
        assert_eq!(st.argleq(9), Some(2));
        assert_eq!(st.density(), 2);
        st.update(10, 1);
        assert_eq!(st.suffix_min(5), 1);
        assert_eq!(st.argleq(1), Some(10));
    }

    #[test]
    fn randomized_growth_against_oracle() {
        let mut st = SegmentTree::with_len(1);
        let mut oracle = NaiveSuffixArray::with_len(1);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut len = 1usize;
        for step in 0..600 {
            if step % 20 == 0 {
                len += rng.gen_range(1..40usize);
                st.ensure_len(len);
                oracle.ensure_len(len);
            }
            let i = rng.gen_range(0..len);
            let v = if rng.gen_bool(0.25) {
                INF
            } else {
                rng.gen_range(0..40)
            };
            st.update(i, v);
            oracle.update(i, v);
            let q = rng.gen_range(0..=len);
            assert_eq!(st.suffix_min(q), oracle.suffix_min(q));
            let a = rng.gen_range(0..45);
            assert_eq!(st.argleq(a), oracle.argleq(a));
        }
    }

    #[test]
    fn randomized_against_oracle() {
        for n in [1usize, 3, 16, 61, 200] {
            let mut st = SegmentTree::with_len(n);
            let mut oracle = NaiveSuffixArray::with_len(n);
            let mut rng = SmallRng::seed_from_u64(n as u64);
            for _ in 0..500 {
                let i = rng.gen_range(0..n);
                let v = if rng.gen_bool(0.25) {
                    INF
                } else {
                    rng.gen_range(0..40)
                };
                st.update(i, v);
                oracle.update(i, v);
                let q = rng.gen_range(0..=n);
                assert_eq!(st.suffix_min(q), oracle.suffix_min(q));
                let a = rng.gen_range(0..45);
                assert_eq!(st.argleq(a), oracle.argleq(a));
                assert_eq!(st.density(), oracle.density());
            }
        }
    }
}
