//! Sparse Segment Trees (§3.2 of the paper, Algorithm 1).
//!
//! A Sparse Segment Tree (SST) solves the dynamic suffix-minima problem
//! with two optimizations over classic segment trees:
//!
//! * **Minima indexing** — every node `nd` stores a pair
//!   `(nd.min, nd.pos)` satisfying Eq. (2): `nd.pos` is the largest
//!   index of the minimum entry of its subtree, after excluding the
//!   indices already claimed by its ancestors. Suffix queries can then
//!   stop as soon as they meet a node with `nd.pos ≥ i`.
//! * **Sparse representation** — empty (`∞`) array entries are never
//!   represented. Every node holds exactly one non-empty entry, so the
//!   tree height is bounded by `min(log n, d)` where `d` is the number
//!   of non-empty entries (Lemma 1). Nodes carry *canonical* (dyadic)
//!   ranges; missing intermediate levels are materialized on demand via
//!   the lowest-common-ancestor construction of Algorithm 1.
//!
//! Additionally, subtrees whose canonical range is at most the block
//! size `b` are flattened into **block nodes** storing the subarray
//! directly (Figure 7); the paper's stress test selects `b = 32`.
//!
//! The implementation is allocation-lean (no `unsafe`): tree nodes live
//! in an index-based arena, and block subarrays live in a second shared
//! **block arena** — one flat `Vec<Pos>` carved into power-of-two
//! extents addressed by `u32` handles, with per-size-class free lists —
//! so neither structural churn nor block formation touches the global
//! allocator. Every query and update walks the tree iteratively, and
//! the min-heap invariant *value(parent) ≤ value(descendants)*
//! underpins the early stopping of both queries. Child links are a
//! two-element slot array and descents select the slot arithmetically
//! from the range compare (branchless binary search), so the hot walks
//! are straight-line index chases the branch predictor never has to
//! guess.

use crate::index::{Pos, INF};
use crate::suffix::SuffixMinima;

/// Sentinel for "no node" / "no block" links in the arenas.
const NIL: u32 = u32::MAX;

/// Default block-size threshold `b`; §5.1 selects 32 by stress testing
/// (reproduced by `repro -- blocksize`).
pub const DEFAULT_BLOCK_SIZE: u32 = 32;

#[derive(Debug, Clone)]
struct Node {
    /// Inclusive canonical (dyadic) range start.
    start: Pos,
    /// Inclusive canonical (dyadic) range end.
    end: Pos,
    /// Index of the entry stored at this node (for block nodes: the
    /// cached best index).
    pos: Pos,
    /// Value of the entry stored at this node (for block nodes: the
    /// cached minimum).
    min: Pos,
    /// Child links: slot 0 covers the lower half of the range, slot 1
    /// the upper. Descents compute the slot arithmetically
    /// (`usize::from(i > mid)`) and index this array, so the hot
    /// search loops carry no data-dependent branch on the compare.
    children: [u32; 2],
    /// Block-arena handle of the flattened subarray for block nodes
    /// ([`NIL`] for ordinary nodes). The extent's length is the node's
    /// range size `end - start + 1`.
    block: u32,
}

impl Node {
    #[inline]
    fn contains(&self, i: Pos) -> bool {
        self.start <= i && i <= self.end
    }

    #[inline]
    fn mid(&self) -> Pos {
        self.start + (self.end - self.start) / 2
    }

    #[inline]
    fn is_block(&self) -> bool {
        self.block != NIL
    }

    /// The child slot whose half-range contains `i` (0 = lower half,
    /// 1 = upper): the branchless descent step.
    #[inline]
    fn slot_of(&self, i: Pos) -> usize {
        usize::from(i > self.mid())
    }

    #[inline]
    fn block_len(&self) -> u32 {
        self.end - self.start + 1
    }
}

/// Entry ordering used throughout: smaller value wins; on equal values
/// the larger index wins (Eq. (2) takes the *largest* arg-min, which
/// maximizes the chance of early stops on suffix queries).
#[inline]
fn better(v1: Pos, p1: Pos, v2: Pos, p2: Pos) -> bool {
    v1 < v2 || (v1 == v2 && p1 > p2)
}

/// Shared storage for every block node's subarray: one flat `Vec<Pos>`
/// carved into power-of-two extents. Released extents are recycled
/// through per-size-class free lists; an extent released from the tail
/// shrinks the vector's length instead (keeping its capacity as
/// working-set slack — `memory_bytes` reports capacity), and an
/// emptied arena drops its whole allocation, so draining a tree
/// genuinely returns its block memory.
#[derive(Debug, Clone, Default)]
struct BlockArena {
    data: Vec<Pos>,
    /// Free extents per size class (`class = log2(len)`).
    free: Vec<Vec<u32>>,
    /// Cells sitting on free lists (for the accounting sanity checks).
    free_cells: usize,
}

impl BlockArena {
    /// Allocates an all-`INF` extent of `len` cells (`len` a power of
    /// two) and returns its handle.
    fn alloc(&mut self, len: u32) -> u32 {
        debug_assert!(len.is_power_of_two());
        let class = len.trailing_zeros() as usize;
        if let Some(off) = self.free.get_mut(class).and_then(Vec::pop) {
            self.free_cells -= len as usize;
            return off; // released extents are wiped to INF eagerly
        }
        let off = self.data.len() as u32;
        self.data.resize(self.data.len() + len as usize, INF);
        off
    }

    /// Returns the extent at `off` to the arena.
    fn release(&mut self, off: u32, len: u32) {
        let (o, l) = (off as usize, len as usize);
        if o + l == self.data.len() {
            self.data.truncate(o);
            return;
        }
        self.data[o..o + l].fill(INF);
        let class = len.trailing_zeros() as usize;
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        self.free[class].push(off);
        self.free_cells += l;
    }

    /// Drops every allocation (used once the tree holds no blocks).
    fn reset(&mut self) {
        *self = BlockArena::default();
    }

    #[inline]
    fn cells(&self, off: u32, len: u32) -> &[Pos] {
        &self.data[off as usize..(off + len) as usize]
    }

    fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Pos>()
            + self.free.capacity() * std::mem::size_of::<Vec<u32>>()
            + self
                .free
                .iter()
                .map(|f| f.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

/// A Sparse Segment Tree over an array of `len` entries in
/// `ℕ ∪ {∞}` (Algorithm 1).
///
/// ```
/// use csst_core::{SparseSegmentTree, SuffixMinima, INF};
///
/// let mut sst = SparseSegmentTree::with_len(8);
/// // Figure 6: A[2] = 65, A[3] = 42, A[0] = 59, A[7] = 13.
/// sst.update(2, 65);
/// sst.update(3, 42);
/// sst.update(0, 59);
/// sst.update(7, 13);
/// assert_eq!(sst.suffix_min(0), 13);
/// assert_eq!(sst.suffix_min(4), 13);
/// assert_eq!(sst.argleq(42), Some(7));
/// sst.update(7, INF); // erase
/// assert_eq!(sst.suffix_min(4), INF);
/// assert_eq!(sst.argleq(42), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct SparseSegmentTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    blocks: BlockArena,
    root: u32,
    len: usize,
    block_size: u32,
    density: usize,
    peak_density: usize,
    live_nodes: usize,
    peak_nodes: usize,
}

impl SparseSegmentTree {
    /// Creates an SST with a custom block-size threshold `b`.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0` or `len > 2^31`.
    pub fn with_block_size(len: usize, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(len <= 1 << 31, "SST supports arrays up to 2^31 entries");
        SparseSegmentTree {
            nodes: Vec::new(),
            free: Vec::new(),
            blocks: BlockArena::default(),
            root: NIL,
            len,
            block_size,
            density: 0,
            peak_density: 0,
            live_nodes: 0,
            peak_nodes: 0,
        }
    }

    /// Number of live arena nodes (block nodes count once).
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Largest number of live nodes reached so far.
    pub fn peak_node_count(&self) -> usize {
        self.peak_nodes
    }

    /// Height of the tree (0 for an empty tree); bounded by
    /// `min(log n, d)` per Lemma 1.
    pub fn height(&self) -> usize {
        fn rec(sst: &SparseSegmentTree, nd: u32) -> usize {
            if nd == NIL {
                return 0;
            }
            let n = &sst.nodes[nd as usize];
            1 + rec(sst, n.children[0]).max(rec(sst, n.children[1]))
        }
        rec(self, self.root)
    }

    /// Validates the structural invariants the query algorithms rely
    /// on; used by the test suite after every mutation step.
    ///
    /// Checked invariants:
    /// 1. node ranges are canonical (power-of-two sized and aligned)
    ///    and children lie strictly within their parent's halves;
    /// 2. the min-heap property: a node's cached value is ≤ every value
    ///    in its subtree (what lets `min`/`argleq` stop early);
    /// 3. every node's `pos` lies in its range and, for block nodes,
    ///    the `(min, pos)` cache matches the block contents exactly
    ///    (ties broken toward the larger index, per Eq. (2));
    /// 4. each array index is represented at most once;
    /// 5. the tracked density equals the number of stored entries;
    /// 6. live block extents and free-listed extents tile the block
    ///    arena exactly (no leaked or double-booked cells).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn assert_invariants(&self) {
        fn canonical(start: Pos, end: Pos) -> bool {
            let size = (end - start) as u64 + 1;
            size.is_power_of_two() && (start as u64).is_multiple_of(size)
        }
        fn rec(
            sst: &SparseSegmentTree,
            nd: u32,
            seen: &mut std::collections::HashSet<Pos>,
            block_cells: &mut usize,
        ) {
            let n = &sst.nodes[nd as usize];
            assert!(
                canonical(n.start, n.end),
                "range [{}, {}] is not canonical",
                n.start,
                n.end
            );
            if n.is_block() {
                *block_cells += n.block_len() as usize;
                let mut best: Option<(Pos, Pos)> = None;
                for (off, &v) in sst.blocks.cells(n.block, n.block_len()).iter().enumerate() {
                    if v == INF {
                        continue;
                    }
                    let p = n.start + off as Pos;
                    assert!(seen.insert(p), "index {p} stored twice");
                    best = match best {
                        Some((bv, bp)) if !better(v, p, bv, bp) => Some((bv, bp)),
                        _ => Some((v, p)),
                    };
                }
                let (bv, bp) = best.expect("live block node must be non-empty");
                assert_eq!((n.min, n.pos), (bv, bp), "stale block cache");
                assert!(n.children == [NIL; 2], "block node with children");
                return;
            }
            assert!(n.contains(n.pos), "entry index outside node range");
            assert!(seen.insert(n.pos), "index {} stored twice", n.pos);
            let mid = n.mid();
            for (child, is_left) in [(n.children[0], true), (n.children[1], false)] {
                if child == NIL {
                    continue;
                }
                let c = &sst.nodes[child as usize];
                if is_left {
                    assert!(
                        c.end <= mid,
                        "left child [{}, {}] beyond mid {mid}",
                        c.start,
                        c.end
                    );
                } else {
                    assert!(
                        c.start > mid,
                        "right child [{}, {}] before mid {mid}",
                        c.start,
                        c.end
                    );
                }
                // The early stops of `min`/`argleq` rely on the value
                // heap; the tie direction of Eq. (2) is a best-effort
                // optimization and not asserted.
                assert!(
                    n.min <= c.min,
                    "heap violation: parent value {} above child value {}",
                    n.min,
                    c.min
                );
                rec(sst, child, seen, block_cells);
            }
        }
        let mut seen = std::collections::HashSet::new();
        let mut block_cells = 0usize;
        if self.root != NIL {
            rec(self, self.root, &mut seen, &mut block_cells);
        }
        assert_eq!(seen.len(), self.density, "density counter out of sync");
        assert_eq!(
            block_cells + self.blocks.free_cells,
            self.blocks.data.len(),
            "block arena cells leaked or double-booked"
        );
    }

    /// Returns the value stored at index `i` ([`INF`] if empty).
    pub fn get(&self, i: usize) -> Pos {
        if i >= self.len {
            return INF;
        }
        let target = i as Pos;
        let mut nd = self.root;
        while nd != NIL {
            let n = &self.nodes[nd as usize];
            if !n.contains(target) {
                return INF;
            }
            if n.is_block() {
                return self.blocks.data[(n.block + (target - n.start)) as usize];
            }
            if n.pos == target {
                return n.min;
            }
            nd = n.children[n.slot_of(target)];
        }
        INF
    }

    /// All non-empty `(index, value)` entries, in no particular order.
    /// Intended for tests and diagnostics.
    pub fn entries(&self) -> Vec<(usize, Pos)> {
        let mut out = Vec::with_capacity(self.density);
        let mut stack = vec![self.root];
        while let Some(nd) = stack.pop() {
            if nd == NIL {
                continue;
            }
            let n = &self.nodes[nd as usize];
            if n.is_block() {
                for (off, &v) in self.blocks.cells(n.block, n.block_len()).iter().enumerate() {
                    if v != INF {
                        out.push((n.start as usize + off, v));
                    }
                }
                continue;
            }
            out.push((n.pos as usize, n.min));
            stack.push(n.children[0]);
            stack.push(n.children[1]);
        }
        out
    }

    // ----- arena plumbing -------------------------------------------------

    fn alloc(&mut self, node: Node) -> u32 {
        self.live_nodes += 1;
        self.peak_nodes = self.peak_nodes.max(self.live_nodes);
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.live_nodes -= 1;
        let n = &mut self.nodes[idx as usize];
        if n.block != NIL {
            let (off, len) = (n.block, n.block_len());
            n.block = NIL;
            self.blocks.release(off, len);
        }
        self.free.push(idx);
        if self.live_nodes == 0 {
            // An emptied tree returns the whole block arena to the
            // allocator (the node arena keeps its slots for reuse).
            self.blocks.reset();
        }
    }

    fn new_leaf(&mut self, pos: Pos, v: Pos) -> u32 {
        self.alloc(Node {
            start: pos,
            end: pos,
            pos,
            min: v,
            children: [NIL; 2],
            block: NIL,
        })
    }

    /// Repoints the link through which `nd` was reached: child `slot`
    /// of `parent`, or the root when `parent` is `NIL`.
    #[inline]
    fn relink(&mut self, parent: u32, slot: usize, child: u32) {
        if parent == NIL {
            self.root = child;
        } else {
            self.nodes[parent as usize].children[slot] = child;
        }
    }

    // ----- dyadic range arithmetic ----------------------------------------

    /// Smallest canonical (power-of-two aligned) range containing both
    /// the canonical range `[s, e]` and the index `pos`.
    #[inline]
    fn dyadic_lca(s: Pos, e: Pos, pos: Pos) -> (Pos, Pos) {
        let mut size = e - s + 1;
        let mut ns = s;
        while !(ns <= pos && pos <= ns + (size - 1)) {
            size <<= 1;
            ns &= !(size - 1);
        }
        (ns, ns + size - 1)
    }

    // ----- insertion (Algorithm 1: update / updateHelper / createLCA) -----

    /// Inserts `(pos, v)` into the subtree rooted at `nd`, which must
    /// contain `pos` in its range; maintains the heap invariant by
    /// swapping entries downward. A single iterative descent.
    fn insert(&mut self, nd: u32, mut pos: Pos, mut v: Pos) {
        let mut cur = nd;
        loop {
            debug_assert!(self.nodes[cur as usize].contains(pos));
            if self.nodes[cur as usize].is_block() {
                self.block_write(cur, pos, v);
                return;
            }
            let (slot, child) = {
                let n = &mut self.nodes[cur as usize];
                debug_assert!(
                    n.pos != pos,
                    "insert precondition: entry at pos was erased first"
                );
                if better(v, pos, n.min, n.pos) {
                    std::mem::swap(&mut n.min, &mut v);
                    std::mem::swap(&mut n.pos, &mut pos);
                }
                let slot = n.slot_of(pos);
                (slot, n.children[slot])
            };
            if child == NIL {
                let leaf = self.new_leaf(pos, v);
                self.relink(cur, slot, leaf);
                return;
            }
            if self.nodes[child as usize].contains(pos) {
                cur = child;
                continue;
            }
            let joined = self.join_lca(child, pos, v);
            self.relink(cur, slot, joined);
            return;
        }
    }

    /// `createLowestCommonAncestor` of Algorithm 1: `pos` lies outside
    /// the canonical range of `child`; build the node whose range is the
    /// dyadic LCA of the two. When that range is at most the block-size
    /// threshold the subtree is flattened into a block node instead.
    fn join_lca(&mut self, child: u32, pos: Pos, v: Pos) -> u32 {
        let (cs, ce) = {
            let c = &self.nodes[child as usize];
            (c.start, c.end)
        };
        let (ns, ne) = Self::dyadic_lca(cs, ce, pos);
        if ne - ns < self.block_size {
            let extent = self.blocks.alloc(ne - ns + 1);
            let block_idx = self.alloc(Node {
                start: ns,
                end: ne,
                pos: INF,
                min: INF,
                children: [NIL; 2],
                block: extent,
            });
            self.flatten_into(child, block_idx);
            self.block_write(block_idx, pos, v);
            return block_idx;
        }
        let mid = ns + (ne - ns) / 2;
        let child_slot = usize::from(cs > mid);
        let (cv, cp) = {
            let c = &self.nodes[child as usize];
            (c.min, c.pos)
        };
        if better(v, pos, cv, cp) {
            // New entry claims the LCA node; the existing subtree hangs
            // below unchanged.
            let mut children = [NIL; 2];
            children[child_slot] = child;
            self.alloc(Node {
                start: ns,
                end: ne,
                pos,
                min: v,
                children,
                block: NIL,
            })
        } else {
            // The existing subtree's top entry moves up to the LCA node
            // (preserving the heap invariant); the new entry becomes a
            // fresh leaf on the opposite side.
            let new_child = self.remove_top(child);
            let leaf = self.new_leaf(pos, v);
            let mut children = [NIL; 2];
            children[child_slot] = new_child;
            children[1 - child_slot] = leaf;
            self.alloc(Node {
                start: ns,
                end: ne,
                pos: cp,
                min: cv,
                children,
                block: NIL,
            })
        }
    }

    /// Walks `sub` with an explicit stack, moving every entry into the
    /// block node `block_idx` and releasing `sub`'s nodes (block
    /// extents included). The block cache is refreshed by the
    /// subsequent [`Self::block_write`].
    fn flatten_into(&mut self, sub: u32, block_idx: u32) {
        let mut stack = vec![sub];
        while let Some(nd) = stack.pop() {
            if nd == NIL {
                continue;
            }
            let n = &self.nodes[nd as usize];
            let kids = n.children;
            if n.is_block() {
                let (src, len, sub_start) = (n.block, n.block_len(), n.start);
                for off in 0..len {
                    let v = self.blocks.data[(src + off) as usize];
                    if v != INF {
                        self.block_set_raw(block_idx, sub_start + off, v);
                    }
                }
            } else {
                let (p, v) = (n.pos, n.min);
                self.block_set_raw(block_idx, p, v);
            }
            stack.push(kids[0]);
            stack.push(kids[1]);
            self.release(nd);
        }
    }

    /// Raw cell write into a block, updating the cache opportunistically.
    #[inline]
    fn block_set_raw(&mut self, block_idx: u32, pos: Pos, v: Pos) {
        let n = &self.nodes[block_idx as usize];
        let cell = (n.block + (pos - n.start)) as usize;
        self.blocks.data[cell] = v;
        let n = &mut self.nodes[block_idx as usize];
        if better(v, pos, n.min, n.pos) {
            n.min = v;
            n.pos = pos;
        }
    }

    /// Writes a (fresh) entry into a block node and keeps the cache
    /// exact. The cell must be empty (public `update` erases first).
    fn block_write(&mut self, block_idx: u32, pos: Pos, v: Pos) {
        debug_assert_eq!(
            {
                let n = &self.nodes[block_idx as usize];
                self.blocks.data[(n.block + (pos - n.start)) as usize]
            },
            INF,
            "block cell must be empty on insert"
        );
        self.block_set_raw(block_idx, pos, v);
    }

    /// Rescans a block to restore the exact `(min, pos)` cache.
    fn block_recache(&mut self, block_idx: u32) {
        let n = &self.nodes[block_idx as usize];
        let start = n.start;
        let mut best_v = INF;
        let mut best_p = INF;
        for (off, &v) in self.blocks.cells(n.block, n.block_len()).iter().enumerate() {
            if v == INF {
                continue;
            }
            let p = start + off as Pos;
            if best_v == INF || better(v, p, best_v, best_p) {
                best_v = v;
                best_p = p;
            }
        }
        let n = &mut self.nodes[block_idx as usize];
        n.min = best_v;
        n.pos = best_p;
    }

    // ----- removal ---------------------------------------------------------

    /// Removes the top entry of the subtree rooted at `nd`, promoting
    /// entries upward along the cheaper child in one iterative walk;
    /// returns the new subtree root (`NIL` if the subtree became
    /// empty).
    fn remove_top(&mut self, nd: u32) -> u32 {
        if self.nodes[nd as usize].is_block() {
            return self.block_remove_top(nd);
        }
        let mut kids = self.nodes[nd as usize].children;
        if kids == [NIL; 2] {
            self.release(nd);
            return NIL;
        }
        let mut cur = nd;
        loop {
            let pick_slot = match kids {
                [l, NIL] => {
                    debug_assert_ne!(l, NIL);
                    0
                }
                [NIL, _] => 1,
                [l, r] => {
                    let ln = &self.nodes[l as usize];
                    let rn = &self.nodes[r as usize];
                    usize::from(!better(ln.min, ln.pos, rn.min, rn.pos))
                }
            };
            let pick = kids[pick_slot];
            // Promote the child's entry into `cur`…
            let (pv, pp) = {
                let p = &self.nodes[pick as usize];
                (p.min, p.pos)
            };
            let n = &mut self.nodes[cur as usize];
            n.min = pv;
            n.pos = pp;
            // …then remove that entry from the child's subtree.
            if self.nodes[pick as usize].is_block() {
                let sub = self.block_remove_top(pick);
                self.relink(cur, pick_slot, sub);
                return nd;
            }
            let pk = self.nodes[pick as usize].children;
            if pk == [NIL; 2] {
                self.release(pick);
                self.relink(cur, pick_slot, NIL);
                return nd;
            }
            cur = pick;
            kids = pk;
        }
    }

    /// Removes a block node's cached best entry, recaching (and
    /// releasing the node when it empties). Returns the node or `NIL`.
    fn block_remove_top(&mut self, nd: u32) -> u32 {
        let n = &self.nodes[nd as usize];
        debug_assert_ne!(n.pos, INF, "remove_top on empty block");
        let cell = (n.block + (n.pos - n.start)) as usize;
        self.blocks.data[cell] = INF;
        self.block_recache(nd);
        if self.nodes[nd as usize].min == INF {
            self.release(nd);
            return NIL;
        }
        nd
    }

    /// Removes the entry at index `i` if present, descending
    /// iteratively; returns whether an entry was removed.
    fn erase(&mut self, i: Pos) -> bool {
        let mut parent = NIL;
        let mut slot = 0usize;
        let mut nd = self.root;
        loop {
            if nd == NIL {
                return false;
            }
            let n = &self.nodes[nd as usize];
            if !n.contains(i) {
                return false;
            }
            if n.is_block() {
                let cell = (n.block + (i - n.start)) as usize;
                if self.blocks.data[cell] == INF {
                    return false;
                }
                self.blocks.data[cell] = INF;
                if self.nodes[nd as usize].pos == i {
                    self.block_recache(nd);
                    if self.nodes[nd as usize].min == INF {
                        self.release(nd);
                        self.relink(parent, slot, NIL);
                    }
                }
                return true;
            }
            if n.pos == i {
                let sub = self.remove_top(nd);
                self.relink(parent, slot, sub);
                return true;
            }
            slot = n.slot_of(i);
            parent = nd;
            nd = n.children[slot];
        }
    }

    // ----- queries (Algorithm 1: min / argleq) ------------------------------

    /// Iterative suffix-minimum walk. At a node whose range intersects
    /// the suffix: stop early when the cached entry index is ≥ `i`
    /// (minima indexing); otherwise the right child lies entirely in
    /// the suffix — its cached minimum is its subtree's answer by the
    /// heap invariant — and only the left child needs descending.
    fn min_from(&self, i: Pos) -> Pos {
        let mut best = INF;
        let mut nd = self.root;
        while nd != NIL {
            let n = &self.nodes[nd as usize];
            if i > n.end {
                break;
            }
            if n.pos >= i && n.pos != INF {
                best = best.min(n.min);
                break;
            }
            if n.is_block() {
                let lo = i.max(n.start) - n.start;
                let cells = self.blocks.cells(n.block, n.block_len());
                best = best.min(cells[lo as usize..].iter().copied().min().unwrap_or(INF));
                break;
            }
            let slot = n.slot_of(i);
            if slot == 0 && n.children[1] != NIL {
                // The upper half lies entirely in the suffix: its
                // cached minimum is its subtree's answer by the heap
                // invariant.
                best = best.min(self.nodes[n.children[1] as usize].min);
            }
            nd = n.children[slot];
        }
        best
    }

    /// Iterative arg-leq walk, accumulating the best qualifying index.
    /// Every visited node's own entry qualifies (its value is the
    /// subtree minimum, checked ≤ `v` before visiting), so the walk
    /// descends toward larger indices: into the right child whenever it
    /// can still qualify, into the left otherwise.
    fn argleq_from(&self, v: Pos) -> Option<Pos> {
        let mut best: Option<Pos> = None;
        let mut nd = self.root;
        while nd != NIL {
            let n = &self.nodes[nd as usize];
            if n.min > v {
                // Heap invariant: every entry below is ≥ n.min > v.
                break;
            }
            if n.is_block() {
                let cells = self.blocks.cells(n.block, n.block_len());
                for off in (0..cells.len()).rev() {
                    if cells[off] <= v {
                        let p = n.start + off as Pos;
                        best = Some(best.map_or(p, |b| b.max(p)));
                        break;
                    }
                }
                break;
            }
            best = Some(best.map_or(n.pos, |b| b.max(n.pos)));
            let ends = n.children.map(|c| {
                if c == NIL {
                    None
                } else {
                    Some(self.nodes[c as usize].end)
                }
            });
            // Line 29: no child range extends past our own entry's
            // index, so nothing below can improve the answer.
            if ends.iter().all(|end| end.is_none_or(|e| n.pos >= e)) {
                break;
            }
            let right = n.children[1];
            nd = if right != NIL && self.nodes[right as usize].min <= v {
                right
            } else {
                n.children[0]
            };
        }
        best
    }
}

impl SuffixMinima for SparseSegmentTree {
    fn with_len(len: usize) -> Self {
        Self::with_block_size(len, DEFAULT_BLOCK_SIZE)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn ensure_len(&mut self, len: usize) {
        // Sparsity makes growth free: only the logical bound moves, no
        // node is touched and no memory is allocated.
        assert!(len <= 1 << 31, "SST supports arrays up to 2^31 entries");
        self.len = self.len.max(len);
    }

    fn update(&mut self, i: usize, v: Pos) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let pos = i as Pos;
        if self.erase(pos) {
            self.density -= 1;
        }
        if v == INF {
            return;
        }
        self.density += 1;
        self.peak_density = self.peak_density.max(self.density);
        if self.root == NIL {
            self.root = self.new_leaf(pos, v);
        } else if self.nodes[self.root as usize].contains(pos) {
            self.insert(self.root, pos, v);
        } else {
            self.root = self.join_lca(self.root, pos, v);
        }
    }

    #[inline]
    fn suffix_min(&self, i: usize) -> Pos {
        if i >= self.len {
            return INF;
        }
        self.min_from(i as Pos)
    }

    #[inline]
    fn argleq(&self, v: Pos) -> Option<usize> {
        // INF entries are "empty"; clamping below the sentinel keeps
        // them from qualifying (stored values are positions < INF).
        let v = v.min(INF - 1);
        self.argleq_from(v).map(|p| p as usize)
    }

    fn density(&self) -> usize {
        self.density
    }

    fn peak_density(&self) -> usize {
        self.peak_density
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.blocks.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix::NaiveSuffixArray;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_equiv(sst: &SparseSegmentTree, oracle: &NaiveSuffixArray) {
        let n = oracle.len();
        for i in 0..=n {
            assert_eq!(
                sst.suffix_min(i),
                oracle.suffix_min(i),
                "suffix_min({i}) mismatch"
            );
        }
        for v in [0, 1, 2, 3, 5, 10, 100, 1000, INF - 1, INF] {
            assert_eq!(sst.argleq(v), oracle.argleq(v), "argleq({v}) mismatch");
        }
        assert_eq!(sst.density(), oracle.density(), "density mismatch");
    }

    #[test]
    fn example_1_segment_tree_semantics() {
        let mut sst = SparseSegmentTree::with_len(4);
        for (i, v) in [6, 9, 8, 10].into_iter().enumerate() {
            sst.update(i, v);
        }
        assert_eq!(sst.suffix_min(0), 6);
        assert_eq!(sst.suffix_min(1), 8);
        assert_eq!(sst.suffix_min(2), 8);
        assert_eq!(sst.suffix_min(3), 10);
        assert_eq!(sst.argleq(7), Some(0));
        assert_eq!(sst.argleq(9), Some(2));
        assert_eq!(sst.argleq(11), Some(3));
        sst.update(3, 7);
        assert_eq!(sst.suffix_min(2), 7);
        assert_eq!(sst.argleq(7), Some(3));
    }

    #[test]
    fn example_4_sparse_node_counts() {
        // Use a block size of 1 so no block node forms and we can
        // observe the sparse tree shape of Figure 6.
        let mut sst = SparseSegmentTree::with_block_size(8, 1);
        sst.update(2, 65);
        assert_eq!(sst.node_count(), 1, "single-entry tree has one node");
        sst.update(3, 42);
        assert_eq!(sst.node_count(), 2);
        assert_eq!(sst.get(2), 65);
        assert_eq!(sst.get(3), 42);
        sst.update(0, 59);
        assert_eq!(sst.node_count(), 3);
        sst.update(7, 13);
        assert_eq!(sst.node_count(), 4);
        assert_eq!(sst.suffix_min(0), 13);
        assert_eq!(sst.suffix_min(1), 13);
        assert_eq!(sst.suffix_min(4), 13);
        assert_eq!(sst.argleq(50), Some(7));
        assert_eq!(sst.argleq(12), None);
    }

    #[test]
    fn example_5_blocks_flatten_dense_regions() {
        // Figure 7: one lone entry plus a dense far-away cluster.
        let mut sst = SparseSegmentTree::with_block_size(64, 8);
        sst.update(1, 50);
        for (i, v) in [
            (32, 11),
            (33, 10),
            (34, 15),
            (36, 13),
            (37, 22),
            (38, 24),
            (39, 29),
        ] {
            sst.update(i, v);
        }
        // The dense cluster shares one block node, so the node count
        // stays far below the number of entries.
        assert!(
            sst.node_count() <= 4,
            "dense cluster should flatten into a block: {} nodes",
            sst.node_count()
        );
        assert_eq!(sst.suffix_min(0), 10);
        assert_eq!(sst.suffix_min(34), 13);
        assert_eq!(sst.suffix_min(38), 24);
        assert_eq!(sst.argleq(10), Some(33));
        assert_eq!(sst.argleq(30), Some(39));
    }

    #[test]
    fn get_and_entries() {
        let mut sst = SparseSegmentTree::with_len(16);
        sst.update(3, 7);
        sst.update(12, 4);
        sst.update(5, 9);
        assert_eq!(sst.get(3), 7);
        assert_eq!(sst.get(12), 4);
        assert_eq!(sst.get(5), 9);
        assert_eq!(sst.get(0), INF);
        assert_eq!(sst.get(100), INF);
        let mut e = sst.entries();
        e.sort_unstable();
        assert_eq!(e, vec![(3, 7), (5, 9), (12, 4)]);
    }

    #[test]
    fn overwrite_and_erase() {
        let mut sst = SparseSegmentTree::with_len(8);
        sst.update(4, 10);
        sst.update(4, 3);
        assert_eq!(sst.get(4), 3);
        assert_eq!(sst.density(), 1);
        sst.update(4, INF);
        assert_eq!(sst.get(4), INF);
        assert_eq!(sst.density(), 0);
        assert_eq!(sst.node_count(), 0);
        assert_eq!(sst.suffix_min(0), INF);
        assert_eq!(sst.argleq(INF), None);
    }

    #[test]
    fn erase_root_promotes_children() {
        let mut sst = SparseSegmentTree::with_block_size(8, 1);
        sst.update(0, 1); // smallest value: sits at the (current) root
        sst.update(5, 2);
        sst.update(7, 3);
        sst.update(0, INF);
        assert_eq!(sst.suffix_min(0), 2);
        assert_eq!(sst.density(), 2);
        assert_eq!(sst.argleq(3), Some(7));
        sst.update(5, INF);
        assert_eq!(sst.suffix_min(0), 3);
        sst.update(7, INF);
        assert_eq!(sst.suffix_min(0), INF);
        assert_eq!(sst.node_count(), 0);
    }

    #[test]
    fn duplicate_values_prefer_largest_index() {
        let mut sst = SparseSegmentTree::with_len(16);
        sst.update(2, 5);
        sst.update(9, 5);
        sst.update(14, 5);
        assert_eq!(sst.argleq(5), Some(14));
        assert_eq!(sst.suffix_min(10), 5);
        sst.update(14, INF);
        assert_eq!(sst.argleq(5), Some(9));
    }

    #[test]
    fn len_one_and_zero() {
        let sst = SparseSegmentTree::with_len(0);
        assert_eq!(sst.suffix_min(0), INF);
        assert_eq!(sst.argleq(0), None);

        let mut sst = SparseSegmentTree::with_len(1);
        sst.update(0, 42);
        assert_eq!(sst.suffix_min(0), 42);
        assert_eq!(sst.argleq(42), Some(0));
        assert_eq!(sst.argleq(41), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn update_out_of_bounds_panics() {
        let mut sst = SparseSegmentTree::with_len(4);
        sst.update(4, 0);
    }

    #[test]
    fn height_respects_lemma_1() {
        // d entries far apart: height must stay ≤ min(log n, d) + O(1).
        let n = 1 << 16;
        let mut sst = SparseSegmentTree::with_block_size(n, 1);
        let mut rng = SmallRng::seed_from_u64(7);
        for d in 1..=14usize {
            let i = rng.gen_range(0..n);
            sst.update(i, rng.gen_range(0..1000));
            let height = sst.height();
            let log_n = (usize::BITS - (n - 1).leading_zeros()) as usize;
            assert!(
                height <= d.min(log_n) + 1,
                "height {height} exceeds bound at density {}",
                sst.density()
            );
        }
    }

    #[test]
    fn node_count_matches_density_without_blocks() {
        let mut sst = SparseSegmentTree::with_block_size(1 << 12, 1);
        let mut oracle = NaiveSuffixArray::with_len(1 << 12);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..2000 {
            let i = rng.gen_range(0..1 << 12);
            let v = if rng.gen_bool(0.3) {
                INF
            } else {
                rng.gen_range(0..500)
            };
            sst.update(i, v);
            oracle.update(i, v);
            assert_eq!(sst.node_count(), oracle.density());
        }
        assert_equiv(&sst, &oracle);
    }

    #[test]
    fn randomized_against_oracle_various_block_sizes() {
        for &bs in &[1u32, 2, 4, 8, 32, 256] {
            for n in [1usize, 2, 7, 64, 100, 257] {
                let mut sst = SparseSegmentTree::with_block_size(n, bs);
                let mut oracle = NaiveSuffixArray::with_len(n);
                let mut rng = SmallRng::seed_from_u64(n as u64 * 31 + bs as u64);
                for step in 0..600 {
                    let i = rng.gen_range(0..n);
                    let v = if rng.gen_bool(0.25) {
                        INF
                    } else {
                        rng.gen_range(0..50)
                    };
                    sst.update(i, v);
                    oracle.update(i, v);
                    if step % 7 == 0 {
                        assert_equiv(&sst, &oracle);
                    }
                }
                assert_equiv(&sst, &oracle);
            }
        }
    }

    #[test]
    fn ensure_len_is_free_and_preserves_entries() {
        let mut sst = SparseSegmentTree::with_len(4);
        sst.update(3, 9);
        let before = sst.memory_bytes();
        sst.ensure_len(1 << 20);
        assert_eq!(sst.len(), 1 << 20);
        assert_eq!(
            sst.memory_bytes(),
            before,
            "sparse growth allocates nothing"
        );
        assert_eq!(sst.suffix_min(0), 9);
        assert_eq!(sst.suffix_min(4), INF);
        sst.update(500_000, 2);
        assert_eq!(sst.suffix_min(4), 2);
        assert_eq!(sst.argleq(2), Some(500_000));
    }

    #[test]
    fn memory_shrinks_with_sparsity() {
        let n = 1 << 20;
        let mut sparse = SparseSegmentTree::with_len(n);
        for i in 0..8 {
            sparse.update(i * 1000, i as Pos);
        }
        // A dense segment tree over 2^20 entries costs ~8 MiB; the SST
        // should be orders of magnitude below that.
        assert!(sparse.memory_bytes() < 64 * 1024);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = SparseSegmentTree::with_len(32);
        a.update(5, 1);
        let mut b = a.clone();
        b.update(5, INF);
        assert_eq!(a.get(5), 1);
        assert_eq!(b.get(5), INF);
    }

    #[test]
    fn block_arena_recycles_extents() {
        let mut sst = SparseSegmentTree::with_block_size(1 << 12, 32);
        // Two dense clusters form two block nodes sharing the arena.
        for i in 0..16usize {
            sst.update(i, 100 + i as Pos);
            sst.update(512 + i, 200 + i as Pos);
        }
        sst.assert_invariants();
        let populated = sst.memory_bytes();
        // Erase one whole cluster: its extent is released (and the
        // arena bookkeeping stays exact).
        for i in 0..16usize {
            sst.update(512 + i, INF);
        }
        sst.assert_invariants();
        // Rebuild it: the recycled extent must be clean.
        for i in 0..16usize {
            sst.update(512 + i, 300 + i as Pos);
        }
        sst.assert_invariants();
        assert_eq!(sst.suffix_min(512), 300);
        assert!(
            sst.memory_bytes() <= populated,
            "recycled extent must not grow the arena"
        );
    }

    #[test]
    fn emptied_tree_releases_the_block_arena() {
        let mut sst = SparseSegmentTree::with_block_size(1 << 10, 32);
        for i in 0..64usize {
            sst.update(i, i as Pos + 1);
        }
        assert!(sst.memory_bytes() > std::mem::size_of::<SparseSegmentTree>());
        for i in 0..64usize {
            sst.update(i, INF);
        }
        assert_eq!(sst.node_count(), 0);
        assert_eq!(
            sst.blocks.data.capacity(),
            0,
            "emptied tree returns the block arena allocation"
        );
        sst.assert_invariants();
    }
}
