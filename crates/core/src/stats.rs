//! Density statistics matching the `q` column of the paper's tables.
//!
//! Tables 1–6 report, per benchmark, "the mean density among each
//! suffix minima array inside CSSTs when it obtained its densest form"
//! normalized by the chain length. [`DensityStats`] aggregates the
//! per-array peak densities of a CSST (or segment-tree) index.

/// Aggregated suffix-minima-array density statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityStats {
    /// Number of (off-diagonal) suffix-minima arrays, `k(k−1)`.
    pub arrays: usize,
    /// Largest peak density over all arrays (absolute entry count).
    pub max_peak: usize,
    /// Mean peak density over all arrays (absolute entry count).
    pub mean_peak: f64,
    /// The paper's `q`: mean peak density normalized by the chain
    /// capacity, over arrays that were touched at least once.
    pub q: f64,
}

impl DensityStats {
    /// Builds statistics from per-array `(peak_density, capacity)`
    /// pairs.
    pub fn from_arrays(peaks: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut arrays = 0usize;
        let mut max_peak = 0usize;
        let mut sum_peak = 0usize;
        let mut q_sum = 0.0f64;
        let mut q_count = 0usize;
        for (peak, cap) in peaks {
            arrays += 1;
            max_peak = max_peak.max(peak);
            sum_peak += peak;
            if peak > 0 && cap > 0 {
                q_sum += peak as f64 / cap as f64;
                q_count += 1;
            }
        }
        DensityStats {
            arrays,
            max_peak,
            mean_peak: if arrays == 0 {
                0.0
            } else {
                sum_peak as f64 / arrays as f64
            },
            q: if q_count == 0 {
                0.0
            } else {
                q_sum / q_count as f64
            },
        }
    }
}

impl Default for DensityStats {
    fn default() -> Self {
        DensityStats {
            arrays: 0,
            max_peak: 0,
            mean_peak: 0.0,
            q: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let s = DensityStats::from_arrays(std::iter::empty());
        assert_eq!(s.arrays, 0);
        assert_eq!(s.max_peak, 0);
        assert_eq!(s.mean_peak, 0.0);
        assert_eq!(s.q, 0.0);
        assert_eq!(s, DensityStats::default());
    }

    #[test]
    fn mixed_arrays() {
        // Two touched arrays (10/100 and 30/100) and one untouched.
        let s = DensityStats::from_arrays([(10, 100), (30, 100), (0, 100)]);
        assert_eq!(s.arrays, 3);
        assert_eq!(s.max_peak, 30);
        assert!((s.mean_peak - 40.0 / 3.0).abs() < 1e-9);
        assert!(
            (s.q - 0.2).abs() < 1e-9,
            "q should average only touched arrays"
        );
    }
}
