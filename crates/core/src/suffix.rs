//! The dynamic suffix minima problem (§3.1).
//!
//! An array `A` of `n` values in `ℕ ∪ {∞}` is maintained under point
//! updates, and two kinds of queries must be answered:
//!
//! * `min(A, i)` — the minimum value in the suffix `A[i:]`;
//! * `argleq(A, a)` — the largest index `i` with `A[i] ≤ a`.
//!
//! Dynamic reachability on a chain DAG with `k = 2` chains reduces to
//! this problem: store in `A[j1]` the earliest neighbour of `⟨t1, j1⟩`
//! in chain `t2` and the invariant Eq. (1) makes `successor`,
//! `predecessor` and `reachable` single suffix-minima queries.
//!
//! Implementations in this crate: [`SparseSegmentTree`] (the paper's
//! §3.2 structure), [`SegmentTree`](crate::SegmentTree) (the dense
//! baseline of \[Pavlogiannis 2019\]) and [`NaiveSuffixArray`] (an
//! `O(n)`-per-query reference oracle used by the test suite).
//!
//! [`SparseSegmentTree`]: crate::SparseSegmentTree

use crate::index::{Pos, INF};

/// Common interface of dynamic suffix-minima structures.
///
/// All indices are `usize` positions in `[0, len)`; values are [`Pos`]
/// with [`INF`] denoting an empty entry. `Send` is required so the
/// indexes built over these arrays satisfy the
/// [`PartialOrderIndex`](crate::PartialOrderIndex) Send bound (shard
/// workers own their index).
pub trait SuffixMinima: Send {
    /// Creates a structure representing an array of `len` entries, all
    /// initially empty (`∞`).
    fn with_len(len: usize) -> Self
    where
        Self: Sized;

    /// Logical length of the represented array.
    fn len(&self) -> usize;

    /// Grows the represented array to at least `len` entries (new
    /// entries are empty, `∞`). No-op if the array is already long
    /// enough. Callers that grow incrementally should double, so dense
    /// implementations stay amortized `O(1)` per added entry; sparse
    /// implementations grow for free.
    fn ensure_len(&mut self, len: usize);

    /// `true` if the represented array has length zero.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sets `A[i] = v`. Passing [`INF`] erases the entry.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    fn update(&mut self, i: usize, v: Pos);

    /// Returns `min(A[i:])`, or [`INF`] if the suffix is empty. Querying
    /// at `i >= len` returns [`INF`].
    fn suffix_min(&self, i: usize) -> Pos;

    /// Returns the largest index `i` with `A[i] ≤ v`, or `None` if no
    /// entry qualifies. Empty (`∞`) entries never qualify, even when
    /// `v == INF`.
    fn argleq(&self, v: Pos) -> Option<usize>;

    /// Number of non-empty entries (the array's *density*, §3.2).
    fn density(&self) -> usize;

    /// Largest density reached over the structure's lifetime (the `q`
    /// columns of the paper's tables report peak densities).
    fn peak_density(&self) -> usize {
        self.density()
    }

    /// Short name of the structure, used to label benchmark rows
    /// ("SSTs" for sparse segment trees, "STs" for dense ones).
    fn structure_name() -> &'static str
    where
        Self: Sized,
    {
        "SSTs"
    }

    /// Approximate heap footprint in bytes, for the paper's memory
    /// comparisons.
    fn memory_bytes(&self) -> usize;
}

/// Reference implementation: a plain `Vec<Pos>` answering queries by
/// linear scans.
///
/// Used as the correctness oracle in unit and property tests; `O(n)`
/// per query, so not fit for measurement.
///
/// ```
/// use csst_core::{NaiveSuffixArray, SuffixMinima, INF};
/// let mut a = NaiveSuffixArray::with_len(4);
/// a.update(1, 9);
/// a.update(2, 8);
/// assert_eq!(a.suffix_min(0), 8);
/// assert_eq!(a.suffix_min(3), INF);
/// assert_eq!(a.argleq(8), Some(2));
/// assert_eq!(a.argleq(7), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveSuffixArray {
    values: Vec<Pos>,
    density: usize,
    peak_density: usize,
}

impl SuffixMinima for NaiveSuffixArray {
    fn with_len(len: usize) -> Self {
        NaiveSuffixArray {
            values: vec![INF; len],
            density: 0,
            peak_density: 0,
        }
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn ensure_len(&mut self, len: usize) {
        if len > self.values.len() {
            self.values.resize(len, INF);
        }
    }

    fn update(&mut self, i: usize, v: Pos) {
        let old = self.values[i];
        if old == INF && v != INF {
            self.density += 1;
            self.peak_density = self.peak_density.max(self.density);
        } else if old != INF && v == INF {
            self.density -= 1;
        }
        self.values[i] = v;
    }

    fn suffix_min(&self, i: usize) -> Pos {
        self.values
            .get(i.min(self.values.len())..)
            .map(|s| s.iter().copied().min().unwrap_or(INF))
            .unwrap_or(INF)
    }

    fn argleq(&self, v: Pos) -> Option<usize> {
        self.values.iter().rposition(|&x| x != INF && x <= v)
    }

    fn density(&self) -> usize {
        self.density
    }

    fn peak_density(&self) -> usize {
        self.peak_density
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.values.capacity() * std::mem::size_of::<Pos>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_array() {
        let a = NaiveSuffixArray::with_len(0);
        assert!(a.is_empty());
        assert_eq!(a.suffix_min(0), INF);
        assert_eq!(a.argleq(INF), None);
    }

    #[test]
    fn example_1_from_paper() {
        // A = [6, 9, 8, 10] (Example 1).
        let mut a = NaiveSuffixArray::with_len(4);
        for (i, v) in [6, 9, 8, 10].into_iter().enumerate() {
            a.update(i, v);
        }
        assert_eq!(a.suffix_min(0), 6);
        assert_eq!(a.suffix_min(1), 8);
        assert_eq!(a.suffix_min(2), 8);
        assert_eq!(a.suffix_min(3), 10);
        assert_eq!(a.argleq(7), Some(0));
        assert_eq!(a.argleq(9), Some(2));
        assert_eq!(a.argleq(11), Some(3));
        // update(A, 3, 7) sets A[3] = 7.
        a.update(3, 7);
        assert_eq!(a.suffix_min(2), 7);
        assert_eq!(a.argleq(7), Some(3));
    }

    #[test]
    fn density_tracks_inf_transitions() {
        let mut a = NaiveSuffixArray::with_len(3);
        assert_eq!(a.density(), 0);
        a.update(0, 5);
        a.update(0, 6); // overwrite, still one entry
        assert_eq!(a.density(), 1);
        a.update(1, 2);
        assert_eq!(a.density(), 2);
        a.update(0, INF);
        assert_eq!(a.density(), 1);
        a.update(0, INF); // erasing empty entry is a no-op
        assert_eq!(a.density(), 1);
    }

    #[test]
    fn ensure_len_grows_with_empty_entries() {
        let mut a = NaiveSuffixArray::with_len(2);
        a.update(1, 3);
        a.ensure_len(5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.suffix_min(0), 3);
        assert_eq!(a.suffix_min(2), INF);
        assert_eq!(a.density(), 1);
        a.ensure_len(3); // shrinking is a no-op
        assert_eq!(a.len(), 5);
        a.update(4, 1);
        assert_eq!(a.suffix_min(2), 1);
    }

    #[test]
    fn suffix_min_past_end() {
        let mut a = NaiveSuffixArray::with_len(2);
        a.update(1, 3);
        assert_eq!(a.suffix_min(2), INF);
        assert_eq!(a.suffix_min(100), INF);
    }
}
