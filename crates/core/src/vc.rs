//! The Vector Clocks baseline ("VCs" in the paper's tables) and an
//! anchored variant.
//!
//! Vector clocks summarize, per event, the whole backward set of the
//! event as a `k`-entry integer array \[Mattern 1989\]. Reachability
//! queries are then `O(1)` lookups, but inserting an ordering between
//! events in the *middle* of the partial order requires propagating the
//! source's clock across up to `n` later events — the `O(nk)` cost the
//! paper's CSSTs eliminate.
//!
//! [`VectorClockIndex`] is the paper-faithful baseline, including both
//! §5.1 optimizations:
//!
//! 1. **Early-stop propagation** — pushing a clock forward along a
//!    chain stops as soon as a join no longer changes anything.
//! 2. **Lazy chain suffixes** — clocks are only materialized up to the
//!    last event of a chain with an incoming direct ordering; later
//!    events derive their clock from that high-water mark.
//!
//! Even with both optimizations, propagation walks the chain *event by
//! event*, which is the linear cost visible throughout the paper's
//! tables.
//!
//! Both variants are capacity-free: clocks are allocated at a strided
//! width that doubles as chains are witnessed, so adding a chain
//! re-lays out existing clocks only `O(log k)` times overall.
//!
//! [`AnchoredVectorClockIndex`] goes beyond the paper: clocks live only
//! at *anchors* (endpoints of cross-chain edges) and propagation jumps
//! from anchor to anchor. This makes updates behave like `O(d·k)`
//! instead of `O(n·k)` and is included as an ablation point (see
//! EXPERIMENTS.md); it shows how much of the CSST advantage comes from
//! sparsity alone.
//!
//! Neither variant supports deletion: a clock merges its inputs
//! irreversibly, which is precisely why fully dynamic analyses cannot
//! use VCs (§1.1).
//!
//! Query paths in both variants are **allocation-free** by
//! construction (audited alongside the worklist query engine of
//! [`DynamicPo`](crate::DynamicPo)): `reachable`/`predecessor` read one clock entry
//! and `successor` binary-searches the materialized rows (dense) or
//! anchors (anchored) in place. Only *updates* build owned clocks
//! (`full_clock`), which is inherent to clock propagation.

use crate::error::PoError;
use crate::index::{NodeId, Pos, ThreadId};
use crate::reach::{Domain, PartialOrderIndex};
use std::collections::{BTreeMap, VecDeque};

type Clock = Box<[Pos]>;

// ---------------------------------------------------------------------------
// Dense, paper-faithful vector clocks.
// ---------------------------------------------------------------------------

/// Vector-clock representation of a chain-DAG partial order (the
/// paper's "VCs" baseline).
///
/// Clock convention: `clock[t] = c` means the first `c` events of
/// chain `t` (positions `0..c`) happen at-or-before this event.
///
/// ```
/// use csst_core::{NodeId, PartialOrderIndex, VectorClockIndex};
/// # fn main() -> Result<(), csst_core::PoError> {
/// let mut po = VectorClockIndex::new();
/// po.insert_edge(NodeId::new(0, 10), NodeId::new(1, 20))?;
/// assert!(po.reachable(NodeId::new(0, 3), NodeId::new(1, 20)));
/// assert!(po.delete_edge(NodeId::new(0, 10), NodeId::new(1, 20)).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VectorClockIndex {
    dom: Domain,
    /// Allocated clock width (`≥ chains()`), doubled on growth.
    stride: usize,
    /// Per chain: flattened materialized clock rows
    /// (`mat_len × stride`).
    rows: Vec<Vec<Pos>>,
    /// Per chain: outgoing cross edges by source position.
    out: Vec<BTreeMap<Pos, Vec<NodeId>>>,
    edges: usize,
    join_work: u64,
}

impl VectorClockIndex {
    #[inline]
    fn k(&self) -> usize {
        self.dom.chains()
    }

    #[inline]
    fn mat_len(&self, t: usize) -> usize {
        self.rows[t].len().checked_div(self.stride).unwrap_or(0)
    }

    /// Clock entry of event `⟨t, j⟩` in dimension `dim`.
    fn entry(&self, t: usize, j: Pos, dim: usize) -> Pos {
        let m = self.mat_len(t);
        let base = if m == 0 {
            0
        } else {
            let row = (j as usize).min(m - 1);
            self.rows[t][row * self.stride + dim]
        };
        if dim == t {
            base.max(j + 1)
        } else {
            base
        }
    }

    /// Full clock of event `⟨t, j⟩` as an owned vector.
    fn full_clock(&self, t: usize, j: Pos) -> Clock {
        let mut clock: Clock = vec![0; self.stride].into_boxed_slice();
        let m = self.mat_len(t);
        if m > 0 {
            let row = (j as usize).min(m - 1);
            clock.copy_from_slice(&self.rows[t][row * self.stride..(row + 1) * self.stride]);
        }
        clock[t] = clock[t].max(j + 1);
        clock
    }

    /// Materializes clock rows of chain `t` up to position `upto`
    /// (inclusive) — §5.1 optimization 2 creates clocks only up to the
    /// last event with an incoming direct ordering.
    fn materialize(&mut self, t: usize, upto: Pos) {
        let s = self.stride;
        let mut m = self.mat_len(t);
        while m <= upto as usize {
            let mut row = if m == 0 {
                vec![0; s]
            } else {
                self.rows[t][(m - 1) * s..m * s].to_vec()
            };
            row[t] = m as Pos + 1;
            self.rows[t].extend_from_slice(&row);
            m += 1;
        }
    }

    /// Joins `src` into row `j` of chain `t`; returns whether anything
    /// changed.
    fn join_row(&mut self, t: usize, j: usize, src: &[Pos]) -> bool {
        let s = self.stride;
        let row = &mut self.rows[t][j * s..(j + 1) * s];
        let mut changed = false;
        for (d, &v) in row.iter_mut().zip(src) {
            self.join_work += 1;
            if v > *d {
                *d = v;
                changed = true;
            }
        }
        changed
    }

    /// Propagates from the freshly inserted edge `src → dst`,
    /// event-by-event along each receiving chain with early stop.
    fn propagate(&mut self, src: NodeId, dst: NodeId) {
        let mut queue: VecDeque<(NodeId, NodeId)> = VecDeque::new();
        queue.push_back((src, dst));
        while let Some((src, dst)) = queue.pop_front() {
            let src_clock = self.full_clock(src.thread.index(), src.pos);
            let t = dst.thread.index();
            debug_assert!((dst.pos as usize) < self.mat_len(t), "target materialized");
            let m = self.mat_len(t);
            let mut j = dst.pos as usize;
            // Event-by-event walk with early stop (optimization 1).
            while j < m {
                if !self.join_row(t, j, &src_clock) {
                    break;
                }
                if let Some(targets) = self.out[t].get(&(j as Pos)) {
                    for &tgt in targets.clone().iter() {
                        queue.push_back((NodeId::new(dst.thread, j as Pos), tgt));
                    }
                }
                j += 1;
            }
            if j == m {
                // The propagation reached the lazy suffix: derived
                // clocks changed, so edges leaving it must re-fire.
                let suffix: Vec<(Pos, Vec<NodeId>)> = self.out[t]
                    .range(m as Pos..)
                    .map(|(&p, v)| (p, v.clone()))
                    .collect();
                for (p, targets) in suffix {
                    for tgt in targets {
                        queue.push_back((NodeId::new(dst.thread, p), tgt));
                    }
                }
            }
        }
    }

    /// Widens every materialized clock to `new_stride` entries (new
    /// dimensions start at 0: nothing is known about fresh chains).
    fn grow_stride(&mut self, new_stride: usize) {
        let old = self.stride;
        for row_buf in &mut self.rows {
            if row_buf.is_empty() {
                continue;
            }
            let m = row_buf.len() / old;
            let mut widened = Vec::with_capacity(m * new_stride);
            for r in 0..m {
                widened.extend_from_slice(&row_buf[r * old..(r + 1) * old]);
                widened.resize((r + 1) * new_stride, 0);
            }
            *row_buf = widened;
        }
        self.stride = new_stride;
    }

    /// Total number of per-entry clock joins performed — the
    /// propagation work the paper's analysis of VCs predicts to be
    /// `O(nk)` per insertion.
    pub fn join_work(&self) -> u64 {
        self.join_work
    }

    /// Number of materialized clock rows across all chains.
    pub fn materialized_rows(&self) -> usize {
        (0..self.k()).map(|t| self.mat_len(t)).sum()
    }
}

impl PartialOrderIndex for VectorClockIndex {
    fn new() -> Self {
        VectorClockIndex {
            dom: Domain::new(),
            stride: 0,
            rows: Vec::new(),
            out: Vec::new(),
            edges: 0,
            join_work: 0,
        }
    }

    fn name(&self) -> &'static str {
        "VCs"
    }

    fn chains(&self) -> usize {
        self.dom.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.dom.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        if !self.dom.ensure_chain(chain) {
            return;
        }
        let k = self.dom.chains();
        if k > self.stride {
            self.grow_stride(k.next_power_of_two());
        }
        self.rows.resize(k, Vec::new());
        self.out.resize(k, BTreeMap::new());
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        // Positions need no physical storage: clocks materialize
        // lazily, so only the witnessed length advances.
        self.ensure_chain(chain);
        self.dom.ensure_len(chain, len);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        self.out[from.thread.index()]
            .entry(from.pos)
            .or_default()
            .push(to);
        self.materialize(to.thread.index(), to.pos);
        self.propagate(from, to);
        self.edges += 1;
    }

    fn delete_edge_raw(&mut self, _from: NodeId, _to: NodeId) -> Result<(), PoError> {
        Err(PoError::DeletionUnsupported {
            structure: "vector clocks",
        })
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        if from.thread.index() >= self.k() || to.thread.index() >= self.k() {
            return false;
        }
        self.entry(to.thread.index(), to.pos, from.thread.index()) > from.pos
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        // Rows are monotone along the chain: binary search for the
        // first event whose clock covers `from`.
        let s = self.stride;
        let m = self.mat_len(t2);
        let mut lo = 0usize;
        let mut hi = m;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.rows[t2][mid * s + t1] > from.pos {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if lo < m {
            Some(lo as Pos)
        } else {
            None // lazy suffix derives from the last row: same entry
        }
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        match self.entry(t1, from.pos, t2) {
            0 => None,
            c => Some(c - 1),
        }
    }

    fn memory_bytes(&self) -> usize {
        let rows: usize = self
            .rows
            .iter()
            .map(|r| r.capacity() * std::mem::size_of::<Pos>())
            .sum();
        let out: usize = self
            .out
            .iter()
            .map(|m| {
                m.values()
                    .map(|v| {
                        std::mem::size_of::<Pos>()
                            + std::mem::size_of::<Vec<NodeId>>()
                            + v.capacity() * std::mem::size_of::<NodeId>()
                    })
                    .sum::<usize>()
            })
            .sum();
        std::mem::size_of::<Self>() + self.dom.memory_bytes() + rows + out
    }
}

// ---------------------------------------------------------------------------
// Anchored vector clocks (beyond-paper ablation).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Anchor {
    idx: Pos,
    clock: Clock,
    out: Vec<NodeId>,
}

/// Anchored vector clocks: clocks live only at cross-edge endpoints and
/// propagation jumps anchor-to-anchor, making updates `O(d·k)`-ish
/// instead of `O(n·k)`.
///
/// Not part of the paper — an ablation showing how far a
/// sparsity-aware VC can close the gap to CSSTs (it still cannot
/// delete edges and its queries lack `argleq`-style predecessor
/// search inside chains).
#[derive(Debug, Clone)]
pub struct AnchoredVectorClockIndex {
    dom: Domain,
    /// Allocated clock width (`≥ chains()`), doubled on growth.
    stride: usize,
    chains: Vec<Vec<Anchor>>,
    edges: usize,
    join_work: u64,
}

impl AnchoredVectorClockIndex {
    #[inline]
    fn k(&self) -> usize {
        self.dom.chains()
    }

    fn anchor_at(&self, t: usize, idx: Pos) -> Result<usize, usize> {
        self.chains[t].binary_search_by_key(&idx, |a| a.idx)
    }

    fn clock_entry(&self, t: usize, j: Pos, dim: usize) -> Pos {
        let base = match self.anchor_at(t, j) {
            Ok(i) => Some(&self.chains[t][i]),
            Err(0) => None,
            Err(i) => Some(&self.chains[t][i - 1]),
        };
        let inherited = base.map_or(0, |a| a.clock[dim]);
        if dim == t {
            inherited.max(j + 1)
        } else {
            inherited
        }
    }

    fn full_clock(&self, t: usize, j: Pos) -> Clock {
        let mut clock: Clock = match self.anchor_at(t, j) {
            Ok(i) => self.chains[t][i].clock.clone(),
            Err(0) => vec![0; self.stride].into_boxed_slice(),
            Err(i) => self.chains[t][i - 1].clock.clone(),
        };
        clock[t] = clock[t].max(j + 1);
        clock
    }

    fn ensure_anchor(&mut self, t: usize, j: Pos) -> usize {
        match self.anchor_at(t, j) {
            Ok(i) => i,
            Err(i) => {
                let clock = self.full_clock(t, j);
                self.chains[t].insert(
                    i,
                    Anchor {
                        idx: j,
                        clock,
                        out: Vec::new(),
                    },
                );
                i
            }
        }
    }

    fn join(dst: &mut Clock, src: &[Pos], work: &mut u64) -> bool {
        let mut changed = false;
        for (d, &v) in dst.iter_mut().zip(src) {
            *work += 1;
            if v > *d {
                *d = v;
                changed = true;
            }
        }
        changed
    }

    fn propagate(&mut self, st: usize, sj: Pos, dt: usize, dj: Pos) {
        let mut queue: VecDeque<(usize, Pos, usize, Pos)> = VecDeque::new();
        queue.push_back((st, sj, dt, dj));
        while let Some((st, sj, dt, dj)) = queue.pop_front() {
            let src_clock = {
                let i = self.anchor_at(st, sj).expect("source anchored");
                self.chains[st][i].clock.clone()
            };
            let mut ai = self.anchor_at(dt, dj).expect("target anchored");
            loop {
                let mut work = 0u64;
                let anchor = &mut self.chains[dt][ai];
                let changed = Self::join(&mut anchor.clock, &src_clock, &mut work);
                self.join_work += work;
                if !changed {
                    break;
                }
                for target in self.chains[dt][ai].out.clone() {
                    queue.push_back((
                        dt,
                        self.chains[dt][ai].idx,
                        target.thread.index(),
                        target.pos,
                    ));
                }
                ai += 1;
                if ai >= self.chains[dt].len() {
                    break;
                }
            }
        }
    }

    /// Widens every anchor clock to `new_stride` entries.
    fn grow_stride(&mut self, new_stride: usize) {
        for chain in &mut self.chains {
            for anchor in chain.iter_mut() {
                let mut widened = vec![0; new_stride];
                widened[..anchor.clock.len()].copy_from_slice(&anchor.clock);
                anchor.clock = widened.into_boxed_slice();
            }
        }
        self.stride = new_stride;
    }

    /// Total per-entry clock joins (propagation work).
    pub fn join_work(&self) -> u64 {
        self.join_work
    }

    /// Number of materialized anchors.
    pub fn anchor_count(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }
}

impl PartialOrderIndex for AnchoredVectorClockIndex {
    fn new() -> Self {
        AnchoredVectorClockIndex {
            dom: Domain::new(),
            stride: 0,
            chains: Vec::new(),
            edges: 0,
            join_work: 0,
        }
    }

    fn name(&self) -> &'static str {
        "aVCs"
    }

    fn chains(&self) -> usize {
        self.dom.chains()
    }

    fn chain_len(&self, chain: ThreadId) -> usize {
        self.dom.chain_len(chain)
    }

    fn ensure_chain(&mut self, chain: ThreadId) {
        if !self.dom.ensure_chain(chain) {
            return;
        }
        let k = self.dom.chains();
        if k > self.stride {
            self.grow_stride(k.next_power_of_two());
        }
        self.chains.resize_with(k, Vec::new);
    }

    fn ensure_len(&mut self, chain: ThreadId, len: usize) {
        self.ensure_chain(chain);
        self.dom.ensure_len(chain, len);
    }

    fn insert_edge_raw(&mut self, from: NodeId, to: NodeId) {
        let (t1, j1) = (from.thread.index(), from.pos);
        let (t2, j2) = (to.thread.index(), to.pos);
        self.ensure_anchor(t1, j1);
        self.ensure_anchor(t2, j2);
        let i = self.anchor_at(t1, j1).expect("just anchored");
        self.chains[t1][i].out.push(to);
        self.propagate(t1, j1, t2, j2);
        self.edges += 1;
    }

    fn delete_edge_raw(&mut self, _from: NodeId, _to: NodeId) -> Result<(), PoError> {
        Err(PoError::DeletionUnsupported {
            structure: "anchored vector clocks",
        })
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from.thread == to.thread {
            return from.pos <= to.pos;
        }
        if from.thread.index() >= self.k() || to.thread.index() >= self.k() {
            return false;
        }
        self.clock_entry(to.thread.index(), to.pos, from.thread.index()) > from.pos
    }

    fn successor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        let anchors = &self.chains[t2];
        let i = anchors.partition_point(|a| a.clock[t1] <= from.pos);
        anchors.get(i).map(|a| a.idx)
    }

    fn predecessor(&self, from: NodeId, chain: ThreadId) -> Option<Pos> {
        let t1 = from.thread.index();
        let t2 = chain.index();
        if t1 == t2 {
            return Some(from.pos);
        }
        if t1 >= self.k() || t2 >= self.k() {
            return None;
        }
        match self.clock_entry(t1, from.pos, t2) {
            0 => None,
            c => Some(c - 1),
        }
    }

    fn memory_bytes(&self) -> usize {
        let anchors: usize = self
            .chains
            .iter()
            .map(|c| {
                c.iter()
                    .map(|a| {
                        std::mem::size_of::<Anchor>()
                            + a.clock.len() * std::mem::size_of::<Pos>()
                            + a.out.capacity() * std::mem::size_of::<NodeId>()
                    })
                    .sum::<usize>()
            })
            .sum();
        std::mem::size_of::<Self>() + self.dom.memory_bytes() + anchors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    /// Shared behavioural tests for both VC variants.
    fn basic_suite<P: PartialOrderIndex>() {
        let po = P::with_capacity(2, 10);
        assert!(po.reachable(n(0, 0), n(0, 5)));
        assert!(po.reachable(n(1, 3), n(1, 3)));
        assert!(!po.reachable(n(0, 5), n(0, 0)));
        assert!(!po.reachable(n(0, 0), n(1, 0)));

        let mut po = P::new();
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        assert!(po.reachable(n(0, 10), n(1, 20)));
        assert!(po.reachable(n(0, 0), n(1, 99)));
        assert!(!po.reachable(n(0, 11), n(1, 99)));
        assert!(!po.reachable(n(0, 10), n(1, 19)));
        assert_eq!(po.successor(n(0, 7), ThreadId(1)), Some(20));
        assert_eq!(po.predecessor(n(1, 20), ThreadId(0)), Some(10));
        assert_eq!(po.predecessor(n(1, 19), ThreadId(0)), None);
        assert!(po.delete_edge(n(0, 10), n(1, 20)).is_err());
        assert!(!po.supports_deletion());

        // Transitive propagation through existing middle edges, with
        // chains witnessed on demand.
        let mut po = P::new();
        po.insert_edge(n(1, 50), n(2, 60)).unwrap();
        po.insert_edge(n(0, 10), n(1, 20)).unwrap();
        assert!(po.reachable(n(0, 10), n(2, 60)));
        assert!(po.reachable(n(0, 0), n(2, 99)));
        assert!(!po.reachable(n(0, 11), n(2, 60)));
        assert_eq!(po.successor(n(0, 10), ThreadId(2)), Some(60));
        assert_eq!(po.predecessor(n(2, 60), ThreadId(0)), Some(10));

        // Diamond joins.
        let mut po = P::with_capacity(4, 50);
        po.insert_edge(n(0, 1), n(1, 2)).unwrap();
        po.insert_edge(n(0, 2), n(2, 3)).unwrap();
        po.insert_edge(n(1, 5), n(3, 8)).unwrap();
        po.insert_edge(n(2, 6), n(3, 7)).unwrap();
        assert!(po.reachable(n(0, 1), n(3, 8)));
        assert!(po.reachable(n(0, 2), n(3, 7)));
        assert!(!po.reachable(n(0, 3), n(3, 49)));
        assert_eq!(po.successor(n(0, 2), ThreadId(3)), Some(7));
        assert_eq!(po.predecessor(n(3, 7), ThreadId(0)), Some(2));
    }

    #[test]
    fn dense_vc_suite() {
        basic_suite::<VectorClockIndex>();
    }

    #[test]
    fn anchored_vc_suite() {
        basic_suite::<AnchoredVectorClockIndex>();
    }

    #[test]
    fn names() {
        assert_eq!(VectorClockIndex::new().name(), "VCs");
        assert_eq!(AnchoredVectorClockIndex::new().name(), "aVCs");
    }

    /// Insert edges on 2 chains, then pull in chain 5: old clocks
    /// must widen and answers stay consistent across the growth.
    fn growth_suite<P: PartialOrderIndex>() {
        let mut po = P::new();
        po.insert_edge(n(0, 4), n(1, 9)).unwrap();
        assert_eq!(po.chains(), 2);
        po.insert_edge(n(1, 12), n(5, 3)).unwrap();
        assert_eq!(po.chains(), 6);
        assert!(po.reachable(n(0, 4), n(5, 3)));
        assert!(po.reachable(n(0, 0), n(5, 40)));
        assert!(!po.reachable(n(0, 5), n(5, 40)));
        assert_eq!(po.successor(n(0, 4), ThreadId(5)), Some(3));
        assert_eq!(po.predecessor(n(5, 3), ThreadId(0)), Some(4));
        // Unwitnessed chains stay unconnected.
        assert!(!po.reachable(n(0, 0), n(9, 0)));
        assert_eq!(po.successor(n(0, 0), ThreadId(9)), None);
    }

    #[test]
    fn chain_growth_widens_existing_clocks() {
        growth_suite::<VectorClockIndex>();
        growth_suite::<AnchoredVectorClockIndex>();
    }

    #[test]
    fn dense_vc_materializes_whole_prefix() {
        let mut po = VectorClockIndex::new();
        po.insert_edge(n(0, 10), n(1, 50_000)).unwrap();
        // The paper's optimization 2 avoids the *suffix* only: the
        // target chain pays one clock row per event up to the edge.
        assert_eq!(po.materialized_rows(), 50_001);
        assert!(po.reachable(n(0, 3), n(1, 99_999)));
    }

    #[test]
    fn anchored_vc_stays_sparse() {
        let mut po = AnchoredVectorClockIndex::new();
        po.insert_edge(n(0, 10), n(1, 50_000)).unwrap();
        assert_eq!(po.anchor_count(), 2);
        assert!(po.reachable(n(0, 3), n(1, 99_999)));
        assert!(!po.reachable(n(0, 11), n(1, 99_999)));
    }

    #[test]
    fn dense_propagation_is_linear_anchored_is_not() {
        // Insert edges targeting early positions of a long chain; the
        // dense VC must walk every later materialized event, while the
        // anchored one touches only anchors.
        let n_events = 5_000u32;
        let mut dense = VectorClockIndex::with_capacity(3, n_events as usize);
        let mut anchored = AnchoredVectorClockIndex::with_capacity(3, n_events as usize);
        // Materialize the chain by a late incoming edge first.
        dense.insert_edge(n(0, 1), n(1, n_events - 1)).unwrap();
        anchored.insert_edge(n(0, 1), n(1, n_events - 1)).unwrap();
        let before_dense = dense.join_work();
        let before_anchored = anchored.join_work();
        // Now an edge into the very beginning of chain 1 propagates
        // across all materialized rows for the dense variant.
        dense.insert_edge(n(2, 0), n(1, 0)).unwrap();
        anchored.insert_edge(n(2, 0), n(1, 0)).unwrap();
        let dense_work = dense.join_work() - before_dense;
        let anchored_work = anchored.join_work() - before_anchored;
        assert!(
            dense_work > (n_events as u64) * 2,
            "dense propagation must walk the chain: {dense_work}"
        );
        assert!(
            anchored_work < 100,
            "anchored propagation must stay sparse: {anchored_work}"
        );
        // Both still answer identically.
        for j in [0u32, 1, 2_500, n_events - 1] {
            assert_eq!(
                dense.reachable(n(2, 0), n(1, j)),
                anchored.reachable(n(2, 0), n(1, j))
            );
        }
    }

    #[test]
    fn early_stop_limits_join_work() {
        let mut po = VectorClockIndex::with_capacity(2, 1000);
        // A ladder of edges inserted back to front: each insertion's
        // propagation stops quickly because later events already
        // dominate.
        for i in (0..100).rev() {
            po.insert_edge(n(0, i * 10), n(1, i * 10 + 5)).unwrap();
        }
        // Without the early stop this would be ~100 walks over the
        // full suffix (≈ 100·1000·2 joins); with it, far less.
        assert!(po.join_work() < 150_000, "join work: {}", po.join_work());
    }
}
