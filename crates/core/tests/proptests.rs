//! Property tests for the core data structures, checking the paper's
//! lemmas and the pairwise agreement of all representations against
//! the naive oracle.

use csst_core::{
    AnchoredVectorClockIndex, Csst, GraphIndex, IncrementalCsst, NaiveIndex, NaiveSuffixArray,
    NodeId, PartialOrderIndex, SegTreeIndex, SegmentTree, SparseSegmentTree, SuffixMinima,
    ThreadId, VectorClockIndex, INF,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Suffix minima: SST and dense segment tree vs the naive array.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SufOp {
    Update(usize, u32),
    Erase(usize),
    Min(usize),
    Argleq(u32),
}

fn suf_ops(len: usize) -> impl Strategy<Value = Vec<SufOp>> {
    let op = prop_oneof![
        (0..len, 0u32..64).prop_map(|(i, v)| SufOp::Update(i, v)),
        (0..len).prop_map(SufOp::Erase),
        (0..=len).prop_map(SufOp::Min),
        (0u32..70).prop_map(SufOp::Argleq),
    ];
    prop::collection::vec(op, 1..200)
}

fn check_suffix_impl<S: SuffixMinima + std::fmt::Debug>(
    len: usize,
    block: Option<u32>,
    ops: &[SufOp],
) {
    let mut s: Box<dyn SuffixMinima> = match block {
        Some(b) => Box::new(SparseSegmentTree::with_block_size(len, b)),
        None => Box::new(S::with_len(len)),
    };
    let mut oracle = NaiveSuffixArray::with_len(len);
    for op in ops {
        match *op {
            SufOp::Update(i, v) => {
                s.update(i, v);
                oracle.update(i, v);
            }
            SufOp::Erase(i) => {
                s.update(i, INF);
                oracle.update(i, INF);
            }
            SufOp::Min(i) => {
                assert_eq!(s.suffix_min(i), oracle.suffix_min(i), "suffix_min({i})");
            }
            SufOp::Argleq(v) => {
                assert_eq!(s.argleq(v), oracle.argleq(v), "argleq({v})");
            }
        }
        assert_eq!(s.density(), oracle.density());
    }
    // Final exhaustive sweep.
    for i in 0..=len {
        assert_eq!(s.suffix_min(i), oracle.suffix_min(i));
    }
    for v in 0..70 {
        assert_eq!(s.argleq(v), oracle.argleq(v));
    }
    assert_eq!(s.argleq(INF), oracle.argleq(INF));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sst_matches_oracle(len in 1usize..120, ops in suf_ops(120), block in 1u32..64) {
        let ops: Vec<_> = ops
            .into_iter()
            .map(|op| match op {
                SufOp::Update(i, v) => SufOp::Update(i % len, v),
                SufOp::Erase(i) => SufOp::Erase(i % len),
                SufOp::Min(i) => SufOp::Min(i.min(len)),
                o => o,
            })
            .collect();
        check_suffix_impl::<SparseSegmentTree>(len, Some(block), &ops);
    }

    #[test]
    fn segtree_matches_oracle(len in 1usize..120, ops in suf_ops(120)) {
        let ops: Vec<_> = ops
            .into_iter()
            .map(|op| match op {
                SufOp::Update(i, v) => SufOp::Update(i % len, v),
                SufOp::Erase(i) => SufOp::Erase(i % len),
                SufOp::Min(i) => SufOp::Min(i.min(len)),
                o => o,
            })
            .collect();
        check_suffix_impl::<SegmentTree>(len, None, &ops);
    }

    #[test]
    fn sst_height_bounded_by_density(
        updates in prop::collection::vec((0usize..4096, 0u32..1000), 1..24)
    ) {
        // Lemma 1 with block size 1 (pure sparse tree).
        let mut sst = SparseSegmentTree::with_block_size(4096, 1);
        for (i, v) in updates {
            sst.update(i, v);
            let d = sst.density();
            prop_assert!(sst.height() <= d.min(13),
                "height {} > min(log n, d={})", sst.height(), d);
        }
    }

    #[test]
    fn sst_node_count_equals_density_without_blocks(
        ops in prop::collection::vec((0usize..256, prop::option::of(0u32..50)), 1..150)
    ) {
        let mut sst = SparseSegmentTree::with_block_size(256, 1);
        let mut oracle = NaiveSuffixArray::with_len(256);
        for (i, v) in ops {
            let v = v.unwrap_or(INF);
            sst.update(i, v);
            oracle.update(i, v);
            prop_assert_eq!(sst.node_count(), oracle.density());
        }
    }

    #[test]
    fn sst_structural_invariants_hold_under_churn(
        len in 1usize..300,
        block in 1u32..64,
        ops in prop::collection::vec((0usize..300, prop::option::of(0u32..200)), 1..200)
    ) {
        // assert_invariants checks canonical ranges, the value heap,
        // exact block caches, uniqueness, and the density counter
        // after every single mutation.
        let mut sst = SparseSegmentTree::with_block_size(len, block);
        for (i, v) in ops {
            sst.update(i % len, v.unwrap_or(INF));
            sst.assert_invariants();
        }
    }
}

// ---------------------------------------------------------------------------
// Partial-order indexes vs the naive oracle.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum PoOp {
    /// Insert edge between (t1, j1) and (t2, j2); skipped if cyclic.
    Insert(u32, u32, u32, u32),
    /// Delete the i-th currently live edge (mod count).
    Delete(usize),
}

fn po_ops(k: u32, cap: u32, deletions: bool) -> impl Strategy<Value = Vec<PoOp>> {
    let ins =
        (0..k, 0..cap, 0..k, 0..cap).prop_map(|(t1, j1, t2, j2)| PoOp::Insert(t1, j1, t2, j2));
    let op = if deletions {
        prop_oneof![3 => ins, 1 => (0usize..64).prop_map(PoOp::Delete)].boxed()
    } else {
        ins.boxed()
    };
    prop::collection::vec(op, 1..60)
}

/// Issues the oracle scripts' query grid through the batched API and
/// asserts every answer equals the sequential one — the batched ==
/// sequential contract on the exact probe mix the scripts use,
/// including unwitnessed chains (`t = k`).
fn assert_batched_matches_sequential<P: PartialOrderIndex>(po: &P, k: u32, cap: u32) {
    let mut node_probes: Vec<(NodeId, ThreadId)> = Vec::new();
    let mut reach_probes: Vec<(NodeId, NodeId)> = Vec::new();
    for t1 in 0..=k {
        for j1 in (0..cap).step_by(3) {
            let u = NodeId::new(t1, j1);
            for t2 in 0..=k {
                node_probes.push((u, ThreadId(t2)));
                reach_probes.push((u, NodeId::new(t2, (j1 * 7 + t2) % cap)));
            }
        }
    }
    let (mut s, mut p, mut r) = (Vec::new(), Vec::new(), Vec::new());
    po.successor_batch(&node_probes, &mut s);
    po.predecessor_batch(&node_probes, &mut p);
    po.reachable_batch(&reach_probes, &mut r);
    for (i, &(u, c)) in node_probes.iter().enumerate() {
        assert_eq!(
            s[i],
            po.successor(u, c),
            "{}: batched successor({u}, {c})",
            po.name()
        );
        assert_eq!(
            p[i],
            po.predecessor(u, c),
            "{}: batched predecessor({u}, {c})",
            po.name()
        );
    }
    for (i, &(u, v)) in reach_probes.iter().enumerate() {
        assert_eq!(
            r[i],
            po.reachable(u, v),
            "{}: batched reachable({u}, {v})",
            po.name()
        );
    }
}

/// Applies ops to the structure under test and the oracle, checking all
/// queries after every step on a subsampled grid.
fn run_po_against_oracle<P: PartialOrderIndex>(k: u32, cap: u32, ops: &[PoOp]) {
    let mut sut = P::with_capacity(k as usize, cap as usize);
    let mut oracle = NaiveIndex::with_capacity(k as usize, cap as usize);
    let mut live: Vec<(NodeId, NodeId)> = Vec::new();
    for &op in ops {
        match op {
            PoOp::Insert(t1, j1, t2, j2) => {
                let (t1, t2) = (t1 % k, t2 % k);
                if t1 == t2 {
                    continue;
                }
                let u = NodeId::new(t1, j1);
                let v = NodeId::new(t2, j2);
                // Keep the relation acyclic: the oracle decides.
                if oracle.reachable(v, u) {
                    continue;
                }
                sut.insert_edge(u, v).unwrap();
                oracle.insert_edge(u, v).unwrap();
                live.push((u, v));
            }
            PoOp::Delete(i) => {
                if live.is_empty() || !sut.supports_deletion() {
                    continue;
                }
                let (u, v) = live.swap_remove(i % live.len());
                sut.delete_edge(u, v).unwrap();
                oracle.delete_edge(u, v).unwrap();
            }
        }
        // Check a grid of queries.
        for t1 in 0..k {
            for j1 in (0..cap).step_by(3) {
                let u = NodeId::new(t1, j1);
                for t2 in 0..k {
                    let c = ThreadId(t2);
                    assert_eq!(
                        sut.successor(u, c),
                        oracle.successor(u, c),
                        "{}: successor({u}, {c}) after {} edges",
                        sut.name(),
                        live.len()
                    );
                    assert_eq!(
                        sut.predecessor(u, c),
                        oracle.predecessor(u, c),
                        "{}: predecessor({u}, {c})",
                        sut.name()
                    );
                    for j2 in (0..cap).step_by(4) {
                        let v = NodeId::new(t2, j2);
                        assert_eq!(
                            sut.reachable(u, v),
                            oracle.reachable(u, v),
                            "{}: reachable({u}, {v})",
                            sut.name()
                        );
                    }
                }
            }
        }
        assert_batched_matches_sequential(&sut, k, cap);
    }
}

/// Applies one random insert/delete/query script to *all five*
/// representations simultaneously and checks that every `reachable` and
/// `successor` answer is identical across them (and the naive oracle).
///
/// The incremental structures ([`IncrementalCsst`], [`SegTreeIndex`],
/// [`VectorClockIndex`]) cannot delete, so after every deletion they
/// are rebuilt from the surviving edge set — which by definition must
/// leave them agreeing with the fully dynamic structures.
fn run_cross_structure_script(k: u32, cap: u32, ops: &[PoOp]) {
    let (ku, capu) = (k as usize, cap as usize);
    let mut csst = Csst::with_capacity(ku, capu);
    let mut graph = GraphIndex::with_capacity(ku, capu);
    let mut oracle = NaiveIndex::with_capacity(ku, capu);
    let mut live: Vec<(NodeId, NodeId)> = Vec::new();
    for &op in ops {
        match op {
            PoOp::Insert(t1, j1, t2, j2) => {
                let (t1, t2) = (t1 % k, t2 % k);
                if t1 == t2 {
                    continue;
                }
                let u = NodeId::new(t1, j1);
                let v = NodeId::new(t2, j2);
                if oracle.reachable(v, u) {
                    continue; // keep the relation acyclic
                }
                csst.insert_edge(u, v).unwrap();
                graph.insert_edge(u, v).unwrap();
                oracle.insert_edge(u, v).unwrap();
                live.push((u, v));
            }
            PoOp::Delete(i) => {
                if live.is_empty() {
                    continue;
                }
                let (u, v) = live.swap_remove(i % live.len());
                csst.delete_edge(u, v).unwrap();
                graph.delete_edge(u, v).unwrap();
                oracle.delete_edge(u, v).unwrap();
            }
        }
        // Rebuild the insert-only structures over the surviving edges.
        let mut inc = IncrementalCsst::with_capacity(ku, capu);
        let mut st = SegTreeIndex::with_capacity(ku, capu);
        let mut vc = VectorClockIndex::with_capacity(ku, capu);
        for &(u, v) in &live {
            inc.insert_edge(u, v).unwrap();
            st.insert_edge(u, v).unwrap();
            vc.insert_edge(u, v).unwrap();
        }
        // Every structure must answer every query identically.
        for t1 in 0..k {
            for j1 in (0..cap).step_by(3) {
                let u = NodeId::new(t1, j1);
                for t2 in 0..k {
                    let c = ThreadId(t2);
                    let expect = oracle.successor(u, c);
                    for (name, got) in [
                        ("Csst", csst.successor(u, c)),
                        ("GraphIndex", graph.successor(u, c)),
                        ("IncrementalCsst", inc.successor(u, c)),
                        ("SegTreeIndex", st.successor(u, c)),
                        ("VectorClockIndex", vc.successor(u, c)),
                    ] {
                        assert_eq!(got, expect, "{name}: successor({u}, {c})");
                    }
                    for j2 in (0..cap).step_by(4) {
                        let v = NodeId::new(t2, j2);
                        let expect = oracle.reachable(u, v);
                        for (name, got) in [
                            ("Csst", csst.reachable(u, v)),
                            ("GraphIndex", graph.reachable(u, v)),
                            ("IncrementalCsst", inc.reachable(u, v)),
                            ("SegTreeIndex", st.reachable(u, v)),
                            ("VectorClockIndex", vc.reachable(u, v)),
                        ] {
                            assert_eq!(got, expect, "{name}: reachable({u}, {v})");
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Capacity-free growth: random scripts interleaving append/ensure_chain
// with inserts, deletes, and queries.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum GrowthOp {
    /// Append one event to chain `t` via the streaming entry point.
    Append(u32),
    /// Witness chain `t` (possibly far beyond the current count).
    EnsureChain(u32),
    /// Witness `len` events on chain `t`.
    EnsureLen(u32, u32),
    /// Insert edge `(t1, j1) → (t2, j2)`; positions may lie well past
    /// anything witnessed so far (implicit growth). Skipped if cyclic.
    Insert(u32, u32, u32, u32),
    /// Delete the i-th currently live edge (mod count).
    Delete(usize),
}

fn growth_ops(k: u32, deletions: bool) -> impl Strategy<Value = Vec<GrowthOp>> {
    let op = prop_oneof![
        2 => (0..k).prop_map(GrowthOp::Append),
        1 => (0..k).prop_map(GrowthOp::EnsureChain),
        1 => (0..k, 1u32..40).prop_map(|(t, l)| GrowthOp::EnsureLen(t, l)),
        4 => (0..k, 0u32..30, 0..k, 0u32..30)
            .prop_map(|(t1, j1, t2, j2)| GrowthOp::Insert(t1, j1, t2, j2)),
        if deletions { 1 } else { 0 } => (0usize..64).prop_map(GrowthOp::Delete),
    ];
    prop::collection::vec(op, 1..50)
}

/// Answers of `po` over a query grid covering the witnessed domain and
/// a margin beyond it.
fn query_grid<P: PartialOrderIndex>(
    po: &P,
    k: u32,
    cap: u32,
) -> Vec<(Option<u32>, Option<u32>, bool)> {
    let mut out = Vec::new();
    for t1 in 0..k {
        for j1 in (0..cap).step_by(4) {
            let u = NodeId::new(t1, j1);
            for t2 in 0..k {
                let c = ThreadId(t2);
                out.push((
                    po.successor(u, c),
                    po.predecessor(u, c),
                    po.reachable(u, NodeId::new(t2, (j1 * 7 + t2) % cap)),
                ));
            }
        }
    }
    out
}

/// Runs one growth script on `P`, cross-validated against the naive and
/// graph oracles after every step, and asserts that *pure growth* of
/// the domain never changes any query answer.
fn run_growth_script<P: PartialOrderIndex>(ops: &[GrowthOp]) {
    let (k, cap) = (6u32, 36u32);
    let mut sut = P::new();
    let mut naive = NaiveIndex::new();
    let mut graph = GraphIndex::new();
    let mut live: Vec<(NodeId, NodeId)> = Vec::new();
    for &op in ops {
        match op {
            GrowthOp::Append(t) => {
                let a = sut.append(t);
                assert_eq!(a, naive.append(t), "{}: append", sut.name());
                assert_eq!(a, graph.append(t));
                assert_eq!(sut.chain_len(ThreadId(t)), naive.chain_len(ThreadId(t)));
            }
            GrowthOp::EnsureChain(t) => {
                sut.ensure_chain(ThreadId(t));
                naive.ensure_chain(ThreadId(t));
                graph.ensure_chain(ThreadId(t));
                assert!(sut.chains() > t as usize);
            }
            GrowthOp::EnsureLen(t, len) => {
                sut.ensure_len(ThreadId(t), len as usize);
                naive.ensure_len(ThreadId(t), len as usize);
                graph.ensure_len(ThreadId(t), len as usize);
                assert!(sut.chain_len(ThreadId(t)) >= len as usize);
            }
            GrowthOp::Insert(t1, j1, t2, j2) => {
                if t1 == t2 {
                    continue;
                }
                let u = NodeId::new(t1, j1);
                let v = NodeId::new(t2, j2);
                if naive.reachable(v, u) {
                    continue; // keep the relation acyclic
                }
                sut.insert_edge(u, v).unwrap();
                naive.insert_edge(u, v).unwrap();
                graph.insert_edge(u, v).unwrap();
                live.push((u, v));
            }
            GrowthOp::Delete(i) => {
                if live.is_empty() || !sut.supports_deletion() {
                    continue;
                }
                let (u, v) = live.swap_remove(i % live.len());
                sut.delete_edge(u, v).unwrap();
                naive.delete_edge(u, v).unwrap();
                graph.delete_edge(u, v).unwrap();
            }
        }
        // Cross-validate every query against both oracles, including
        // nodes and chains beyond anything witnessed.
        for t1 in 0..k {
            for j1 in (0..cap).step_by(5) {
                let u = NodeId::new(t1, j1);
                for t2 in 0..=k {
                    let c = ThreadId(t2);
                    let expect = naive.successor(u, c);
                    assert_eq!(
                        sut.successor(u, c),
                        expect,
                        "{}: successor({u}, {c})",
                        sut.name()
                    );
                    assert_eq!(graph.successor(u, c), expect, "graph: successor({u}, {c})");
                    let expect = naive.predecessor(u, c);
                    assert_eq!(
                        sut.predecessor(u, c),
                        expect,
                        "{}: predecessor({u}, {c})",
                        sut.name()
                    );
                    assert_eq!(graph.predecessor(u, c), expect);
                    let v = NodeId::new(t2, (j1 * 3 + t2) % cap);
                    let expect = naive.reachable(u, v);
                    assert_eq!(
                        sut.reachable(u, v),
                        expect,
                        "{}: reachable({u}, {v})",
                        sut.name()
                    );
                    assert_eq!(graph.reachable(u, v), expect);
                }
            }
        }
    }
    // Pure growth must never change an answer: snapshot, grow far past
    // the witnessed domain, and compare.
    let before = query_grid(&sut, k, cap);
    for t in 0..k {
        sut.ensure_len(ThreadId(t), 4 * cap as usize);
    }
    sut.ensure_chain(ThreadId(2 * k));
    let after = query_grid(&sut, k, cap);
    assert_eq!(
        before,
        after,
        "{}: growth changed query answers",
        sut.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_five_structures_agree_on_random_scripts(
        k in 2u32..5,
        ops in po_ops(5, 10, true)
    ) {
        run_cross_structure_script(k, 10, &ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_csst_matches_oracle(k in 2u32..5, ops in po_ops(5, 12, true)) {
        run_po_against_oracle::<Csst>(k, 12, &ops);
    }

    #[test]
    fn graph_matches_oracle(k in 2u32..5, ops in po_ops(5, 12, true)) {
        run_po_against_oracle::<GraphIndex>(k, 12, &ops);
    }

    #[test]
    fn incremental_csst_matches_oracle(k in 2u32..5, ops in po_ops(5, 12, false)) {
        run_po_against_oracle::<IncrementalCsst>(k, 12, &ops);
    }

    #[test]
    fn segtree_index_matches_oracle(k in 2u32..5, ops in po_ops(5, 12, false)) {
        run_po_against_oracle::<SegTreeIndex>(k, 12, &ops);
    }

    #[test]
    fn vector_clock_matches_oracle(k in 2u32..5, ops in po_ops(5, 12, false)) {
        run_po_against_oracle::<VectorClockIndex>(k, 12, &ops);
    }

    #[test]
    fn insert_then_delete_is_identity(
        k in 2u32..5,
        base in po_ops(5, 12, false),
        extra in po_ops(5, 12, false)
    ) {
        // Build a base partial order, snapshot all reachability
        // answers, push extra edges, delete them in reverse, and check
        // the snapshot is restored (the Figure 1c workflow).
        let cap = 12u32;
        let mut po = Csst::with_capacity(k as usize, cap as usize);
        let mut oracle = NaiveIndex::with_capacity(k as usize, cap as usize);
        for &op in &base {
            if let PoOp::Insert(t1, j1, t2, j2) = op {
                let (t1, t2) = (t1 % k, t2 % k);
                if t1 == t2 { continue; }
                let (u, v) = (NodeId::new(t1, j1), NodeId::new(t2, j2));
                if oracle.reachable(v, u) { continue; }
                po.insert_edge(u, v).unwrap();
                oracle.insert_edge(u, v).unwrap();
            }
        }
        let snapshot: Vec<bool> = (0..k)
            .flat_map(|t1| (0..cap).map(move |j1| (t1, j1)))
            .flat_map(|(t1, j1)| {
                (0..k).flat_map(move |t2| (0..cap).map(move |j2| (t1, j1, t2, j2)))
            })
            .map(|(t1, j1, t2, j2)| po.reachable(NodeId::new(t1, j1), NodeId::new(t2, j2)))
            .collect();
        let mut pushed = Vec::new();
        for &op in &extra {
            if let PoOp::Insert(t1, j1, t2, j2) = op {
                let (t1, t2) = (t1 % k, t2 % k);
                if t1 == t2 { continue; }
                let (u, v) = (NodeId::new(t1, j1), NodeId::new(t2, j2));
                if oracle.reachable(v, u) { continue; }
                po.insert_edge(u, v).unwrap();
                oracle.insert_edge(u, v).unwrap();
                pushed.push((u, v));
            }
        }
        for (u, v) in pushed.into_iter().rev() {
            po.delete_edge(u, v).unwrap();
        }
        let restored: Vec<bool> = (0..k)
            .flat_map(|t1| (0..cap).map(move |j1| (t1, j1)))
            .flat_map(|(t1, j1)| {
                (0..k).flat_map(move |t2| (0..cap).map(move |j2| (t1, j1, t2, j2)))
            })
            .map(|(t1, j1, t2, j2)| po.reachable(NodeId::new(t1, j1), NodeId::new(t2, j2)))
            .collect();
        prop_assert_eq!(snapshot, restored);
    }

    #[test]
    fn growth_scripts_match_oracles(ops in growth_ops(6, true)) {
        run_growth_script::<Csst>(&ops);
        run_growth_script::<GraphIndex>(&ops);
    }

    #[test]
    fn growth_scripts_match_oracles_insert_only(ops in growth_ops(6, false)) {
        run_growth_script::<IncrementalCsst>(&ops);
        run_growth_script::<SegTreeIndex>(&ops);
        run_growth_script::<VectorClockIndex>(&ops);
    }

    #[test]
    fn lemma_7_incremental_density_bound(ops in po_ops(4, 24, false)) {
        // The density of every transitive array stays bounded by the
        // cross-chain density d of the direct-edge graph.
        let k = 4usize;
        let cap = 24usize;
        let mut po = IncrementalCsst::with_capacity(k, cap);
        let mut oracle = NaiveIndex::with_capacity(k, cap);
        // Direct out-edge source positions per chain.
        let mut sources: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); k];
        for &op in &ops {
            if let PoOp::Insert(t1, j1, t2, j2) = op {
                if t1 == t2 { continue; }
                let (u, v) = (NodeId::new(t1, j1), NodeId::new(t2, j2));
                if oracle.reachable(v, u) { continue; }
                po.insert_edge(u, v).unwrap();
                oracle.insert_edge(u, v).unwrap();
                sources[t1 as usize].insert(j1);
            }
        }
        let d = sources.iter().map(|s| s.len()).max().unwrap_or(0);
        let stats = po.density_stats();
        prop_assert!(
            stats.max_peak <= d,
            "array density {} exceeds cross-chain density {}",
            stats.max_peak,
            d
        );
    }
}

// ---------------------------------------------------------------------------
// The worklist query engine: memoized and memo-free CSSTs against the
// naive and graph oracles, with epochs rolling mid-script.
// ---------------------------------------------------------------------------

/// Runs one insert/delete script on a memoized CSST, a memo-disabled
/// CSST, and both oracles, interleaving a query grid after every
/// update. Every query is issued **twice** per index so the memoized
/// one answers the repeat from its closure cache at that exact epoch —
/// inserts and deletes in the script then genuinely roll the epoch
/// between bursts. With `forward_only`, target positions are rewritten
/// past their sources so the engine's Dijkstra mode (single-pop
/// finalization, bounded early exit) answers; otherwise backward edges
/// keep it on the chaotic-iteration fallback.
fn run_query_engine_script(k: u32, cap: u32, ops: &[PoOp], forward_only: bool) {
    let mut memoized = Csst::new();
    let mut bare = Csst::new();
    bare.set_query_memo_capacity(0);
    let mut naive = NaiveIndex::new();
    let mut graph = GraphIndex::new();
    let mut live: Vec<(NodeId, NodeId)> = Vec::new();
    for &op in ops {
        match op {
            PoOp::Insert(t1, j1, t2, j2) => {
                let (t1, t2) = (t1 % k, t2 % k);
                if t1 == t2 {
                    continue;
                }
                let j2 = if forward_only { j1 + 1 + j2 % 5 } else { j2 };
                let (u, v) = (NodeId::new(t1, j1), NodeId::new(t2, j2));
                if naive.reachable(v, u) {
                    continue; // keep the relation acyclic
                }
                for po in [&mut memoized, &mut bare] {
                    po.insert_edge(u, v).unwrap();
                }
                naive.insert_edge(u, v).unwrap();
                graph.insert_edge(u, v).unwrap();
                live.push((u, v));
            }
            PoOp::Delete(i) => {
                if live.is_empty() {
                    continue;
                }
                let (u, v) = live.swap_remove(i % live.len());
                for po in [&mut memoized, &mut bare] {
                    po.delete_edge(u, v).unwrap();
                }
                naive.delete_edge(u, v).unwrap();
                graph.delete_edge(u, v).unwrap();
            }
        }
        for t1 in 0..k {
            for j1 in (0..cap).step_by(3) {
                let u = NodeId::new(t1, j1);
                for t2 in 0..=k {
                    let c = ThreadId(t2);
                    let exp_s = naive.successor(u, c);
                    let exp_p = naive.predecessor(u, c);
                    assert_eq!(graph.successor(u, c), exp_s, "graph successor({u}, {c})");
                    assert_eq!(graph.predecessor(u, c), exp_p);
                    for _ in 0..2 {
                        assert_eq!(memoized.successor(u, c), exp_s, "memo successor({u}, {c})");
                        assert_eq!(bare.successor(u, c), exp_s, "bare successor({u}, {c})");
                        assert_eq!(memoized.predecessor(u, c), exp_p);
                        assert_eq!(bare.predecessor(u, c), exp_p);
                    }
                    let v = NodeId::new(t2, (j1 * 7 + t2) % cap);
                    let exp_r = naive.reachable(u, v);
                    assert_eq!(graph.reachable(u, v), exp_r);
                    for _ in 0..2 {
                        assert_eq!(memoized.reachable(u, v), exp_r, "memo reachable({u}, {v})");
                        assert_eq!(bare.reachable(u, v), exp_r);
                    }
                }
            }
        }
        // The same grid through the batched sweeps, with the memo both
        // hot (memoized, just warmed by the sequential queries above)
        // and disabled (bare).
        assert_batched_matches_sequential(&memoized, k, cap);
        assert_batched_matches_sequential(&bare, k, cap);
        assert_batched_matches_sequential(&graph, k, cap);
    }
}

/// Exercises the batched sweeps beyond the bitset frontier width: with
/// `k > MAX_BITSET_CHAINS` the worklist takes the stamped-list fallback
/// path. Edges are applied in `insert_edges` bursts so query epochs
/// roll mid-script and the hot-source memo refresh runs between
/// checkpoints.
fn run_wide_k_batched_script(k: u32, cap: u32, ops: &[PoOp]) {
    let mut po = Csst::new();
    let mut naive = NaiveIndex::new();
    let mut burst: Vec<(NodeId, NodeId)> = Vec::new();
    for chunk in ops.chunks(5) {
        burst.clear();
        for &op in chunk {
            let PoOp::Insert(t1, j1, t2, j2) = op else {
                continue;
            };
            let (t1, t2) = (t1 % k, t2 % k);
            if t1 == t2 {
                continue;
            }
            let (u, v) = (NodeId::new(t1, j1 % cap), NodeId::new(t2, j2 % cap));
            if naive.reachable(v, u) {
                continue; // keep the relation acyclic
            }
            naive.insert_edge(u, v).unwrap();
            burst.push((u, v));
        }
        po.insert_edges(&burst).unwrap(); // rolls the query epoch
        assert_batched_matches_sequential(&po, k, cap);
        // Spot-check the sequential path against the oracle so the
        // batched comparison above is anchored to ground truth.
        for &(u, v) in &burst {
            assert!(po.reachable(u, v));
            assert_eq!(
                po.successor(u, ThreadId(v.thread.0)),
                naive.successor(u, ThreadId(v.thread.0))
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn query_engine_matches_oracles_with_and_without_memo(
        k in 2u32..5,
        ops in po_ops(5, 12, true)
    ) {
        run_query_engine_script(k, 12, &ops, false);
    }

    #[test]
    fn query_engine_dijkstra_mode_matches_oracles(
        k in 2u32..5,
        ops in po_ops(5, 12, true)
    ) {
        run_query_engine_script(k, 12, &ops, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn wide_k_batched_matches_sequential(ops in po_ops(66, 6, false)) {
        // 66 chains > MAX_BITSET_CHAINS (64): the stamped-list
        // fallback frontier, not the u64 bitset, drives the sweeps.
        run_wide_k_batched_script(66, 6, &ops);
    }
}

// ---------------------------------------------------------------------------
// Batched insertion: insert_edges(batch) == sequential insert_edge.
// ---------------------------------------------------------------------------

/// Query-grid snapshot used to compare two indexes exhaustively.
fn po_snapshot<P: PartialOrderIndex>(
    po: &P,
    k: u32,
    cap: u32,
) -> Vec<(Option<u32>, Option<u32>, bool)> {
    let mut out = Vec::new();
    for t1 in 0..=k {
        for j1 in 0..cap {
            let u = NodeId::new(t1, j1);
            for t2 in 0..=k {
                let c = ThreadId(t2);
                out.push((
                    po.successor(u, c),
                    po.predecessor(u, c),
                    po.reachable(u, NodeId::new(t2, (j1 * 5 + t2) % cap)),
                ));
            }
        }
    }
    out
}

/// Applies the same acyclic batches to `P` twice — once through
/// `insert_edges`, once edge-by-edge — and to the naive and graph
/// oracles, asserting all four agree on every query after every batch.
fn run_batch_vs_sequential<P: PartialOrderIndex>(
    k: u32,
    cap: u32,
    raw: &[Vec<(u32, u32, u32, u32)>],
) {
    let mut batched = P::new();
    let mut sequential = P::new();
    let mut naive = NaiveIndex::new();
    let mut graph = GraphIndex::new();
    // The planner replays sequential-application semantics to keep the
    // relation acyclic, considering earlier edges of the same batch.
    let mut planner = NaiveIndex::new();
    for ops in raw {
        let mut batch: Vec<(NodeId, NodeId)> = Vec::new();
        for &(t1, j1, t2, j2) in ops {
            let (t1, t2) = (t1 % k, t2 % k);
            if t1 == t2 {
                continue;
            }
            let (u, v) = (NodeId::new(t1, j1 % cap), NodeId::new(t2, j2 % cap));
            if planner.reachable(v, u) {
                continue;
            }
            planner.insert_edge(u, v).unwrap();
            batch.push((u, v));
        }
        batched.insert_edges(&batch).unwrap();
        for &(u, v) in &batch {
            sequential.insert_edge(u, v).unwrap();
            naive.insert_edge(u, v).unwrap();
            graph.insert_edge(u, v).unwrap();
        }
        assert_eq!(
            po_snapshot(&batched, k, cap),
            po_snapshot(&sequential, k, cap),
            "{}: batch != sequential",
            batched.name()
        );
        assert_eq!(
            po_snapshot(&batched, k, cap),
            po_snapshot(&naive, k, cap),
            "{}: batch != naive oracle",
            batched.name()
        );
        assert_eq!(
            po_snapshot(&batched, k, cap),
            po_snapshot(&graph, k, cap),
            "{}: batch != graph oracle",
            batched.name()
        );
        assert_eq!(batched.chains(), sequential.chains());
        for t in 0..k {
            assert_eq!(
                batched.chain_len(ThreadId(t)),
                sequential.chain_len(ThreadId(t)),
                "{}: batch grew the domain differently",
                batched.name()
            );
        }
    }
}

fn batch_scripts(k: u32, cap: u32) -> impl Strategy<Value = Vec<Vec<(u32, u32, u32, u32)>>> {
    prop::collection::vec(
        prop::collection::vec((0..k, 0..cap, 0..k, 0..cap), 1..12),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_inserts_match_sequential(raw in batch_scripts(5, 14)) {
        run_batch_vs_sequential::<Csst>(5, 14, &raw);
        run_batch_vs_sequential::<GraphIndex>(5, 14, &raw);
        run_batch_vs_sequential::<IncrementalCsst>(5, 14, &raw);
        run_batch_vs_sequential::<SegTreeIndex>(5, 14, &raw);
        run_batch_vs_sequential::<VectorClockIndex>(5, 14, &raw);
        run_batch_vs_sequential::<AnchoredVectorClockIndex>(5, 14, &raw);
    }

    #[test]
    fn batched_inserts_preserve_density_stats(raw in batch_scripts(4, 12)) {
        // Density statistics (the q column) must not depend on whether
        // edges arrived batched or sequentially.
        let mut batched = Csst::new();
        let mut sequential = Csst::new();
        let mut inc_batched = IncrementalCsst::new();
        let mut inc_sequential = IncrementalCsst::new();
        let mut planner = NaiveIndex::new();
        for ops in &raw {
            let mut batch: Vec<(NodeId, NodeId)> = Vec::new();
            for &(t1, j1, t2, j2) in ops {
                let (t1, t2) = (t1 % 4, t2 % 4);
                if t1 == t2 {
                    continue;
                }
                let (u, v) = (NodeId::new(t1, j1 % 12), NodeId::new(t2, j2 % 12));
                if planner.reachable(v, u) {
                    continue;
                }
                planner.insert_edge(u, v).unwrap();
                batch.push((u, v));
            }
            batched.insert_edges(&batch).unwrap();
            inc_batched.insert_edges(&batch).unwrap();
            for &(u, v) in &batch {
                sequential.insert_edge(u, v).unwrap();
                inc_sequential.insert_edge(u, v).unwrap();
            }
            prop_assert_eq!(batched.density_stats(), sequential.density_stats());
            prop_assert_eq!(batched.edge_count(), sequential.edge_count());
            prop_assert_eq!(inc_batched.density_stats(), inc_sequential.density_stats());
            prop_assert_eq!(batched.memory_bytes(), sequential.memory_bytes());
        }
    }
}

#[test]
fn batched_insert_errors_match_sequential_and_are_atomic() {
    use csst_core::{PoError, MAX_CHAINS};
    let good = (NodeId::new(0, 1), NodeId::new(1, 2));
    let same_chain = (NodeId::new(2, 1), NodeId::new(2, 5));
    let out_of_range = (NodeId::new(MAX_CHAINS as u32, 0), NodeId::new(0, 0));

    // The reported error is the first the sequential loop would hit…
    let mut po = Csst::new();
    let err = po
        .insert_edges(&[good, same_chain, out_of_range])
        .unwrap_err();
    let mut seq = Csst::new();
    let seq_err = [good, same_chain, out_of_range]
        .iter()
        .find_map(|&(u, v)| seq.insert_edge(u, v).err())
        .expect("sequential loop errors too");
    assert_eq!(err, seq_err);
    assert!(matches!(err, PoError::SameChain { .. }));

    // …but unlike the sequential loop, nothing was applied.
    assert_eq!(po.edge_count(), 0);
    assert_eq!(
        po.chains(),
        0,
        "validation failure must not grow the domain"
    );
    assert!(!po.reachable(good.0, good.1));

    // A valid batch then applies cleanly.
    po.insert_edges(&[good]).unwrap();
    assert_eq!(po.edge_count(), 1);
    assert!(po.reachable(good.0, good.1));

    // Empty batches are a no-op.
    po.insert_edges(&[]).unwrap();
    assert_eq!(po.edge_count(), 1);
}
