//! `csst-client` — driver for the `csst-serve` service.
//!
//! ```text
//! csst-client --connect ADDR [--analysis NAME] [--index csst|st|vc|graph]
//!             [--shards N] [--window N] [--format binary|text|rapid]
//!             (--input FILE | --demo ANALYSIS) [--query Q]...
//!             [--check-batch] [--shutdown] [--retry N]
//!             [--stall-ms N] [--disconnect-after N]
//! ```
//!
//! Streams a trace (from a file in the chosen format, or a registry
//! demo workload) into a server session, runs any `--query` strings
//! online, prints the final report, and exits with the report's exit
//! code. `--check-batch` reruns the analysis locally through the batch
//! registry and fails (exit 1) unless the two reports match exactly —
//! the service-equals-batch check the CI smoke test is built on.
//! (Note: the rapid format interns thread/lock ids by order of
//! appearance, so `--check-batch --format rapid` can flag relabeled —
//! not wrong — reports; use binary or text for exact comparison.)
//! `--shutdown` stops the server afterwards.
//!
//! The robustness hooks: `--retry N` retries the connection with
//! exponential backoff (for servers still starting up), `--stall-ms N`
//! sleeps mid-session (to trip the server's idle timeout), and
//! `--disconnect-after N` streams only the first N events and drops the
//! connection without FINISH (an unclean disconnect the server must
//! absorb). The chaos suite (`scripts/fault_smoke.sh`) is built on
//! these.

use csst_analyses::registry;
use csst_serve::proto::WireFormat;
use csst_serve::{Client, Hello};
use csst_trace::{binary, rapid, text, Trace};
use std::process::ExitCode;

struct Args {
    connect: String,
    hello: Hello,
    input: Option<String>,
    demo: Option<String>,
    queries: Vec<String>,
    check_batch: bool,
    shutdown: bool,
    retry: u32,
    stall_ms: u64,
    disconnect_after: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: String::new(),
        hello: Hello::default(),
        input: None,
        demo: None,
        queries: Vec::new(),
        check_batch: false,
        shutdown: false,
        retry: 1,
        stall_ms: 0,
        disconnect_after: None,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => args.connect = value(&mut it, "--connect")?,
            "--analysis" => args.hello.analysis = value(&mut it, "--analysis")?,
            "--index" => args.hello.index = value(&mut it, "--index")?,
            "--shards" => {
                args.hello.shards = value(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "--shards wants a number".to_string())?;
            }
            "--window" => {
                args.hello.window = Some(
                    value(&mut it, "--window")?
                        .parse()
                        .map_err(|_| "--window wants a number".to_string())?,
                );
            }
            "--format" => {
                let v = value(&mut it, "--format")?;
                args.hello.format = WireFormat::parse(&v)
                    .ok_or_else(|| format!("unknown format `{v}` (binary|text|rapid)"))?;
            }
            "--input" => args.input = Some(value(&mut it, "--input")?),
            "--demo" => args.demo = Some(value(&mut it, "--demo")?),
            "--query" => args.queries.push(value(&mut it, "--query")?),
            "--check-batch" => args.check_batch = true,
            "--shutdown" => args.shutdown = true,
            "--retry" => {
                args.retry = value(&mut it, "--retry")?
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--retry wants a positive number".to_string())?;
            }
            "--stall-ms" => {
                args.stall_ms = value(&mut it, "--stall-ms")?
                    .parse()
                    .map_err(|_| "--stall-ms wants a number".to_string())?;
            }
            "--disconnect-after" => {
                args.disconnect_after = Some(
                    value(&mut it, "--disconnect-after")?
                        .parse()
                        .map_err(|_| "--disconnect-after wants a number".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: csst-client --connect ADDR [--analysis NAME] [--index KIND] \
                     [--shards N] [--window N] [--format binary|text|rapid] \
                     (--input FILE | --demo ANALYSIS) [--query Q]... [--check-batch] [--shutdown] \
                     [--retry N] [--stall-ms N] [--disconnect-after N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    if args.connect.is_empty() {
        return Err("--connect is required".into());
    }
    Ok(args)
}

fn load_trace(args: &Args) -> Result<Trace, String> {
    if let Some(path) = &args.input {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        return match args.hello.format {
            WireFormat::Binary => binary::parse(&bytes).map_err(|e| format!("{path}: {e}")),
            WireFormat::Text => {
                let s = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8"))?;
                text::parse(&s).map_err(|e| format!("{path}: {e}"))
            }
            WireFormat::Rapid => {
                let s = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8"))?;
                rapid::parse(&s).map_err(|e| format!("{path}: {e}"))
            }
        };
    }
    let name = args.demo.as_deref().unwrap_or(&args.hello.analysis);
    Ok(registry::resolve(name)?.demo_trace())
}

fn run(args: &Args) -> Result<u8, String> {
    let trace = load_trace(args)?;
    let mut client = Client::open_with_retry(&args.connect, &args.hello, args.retry)
        .map_err(|e| format!("open session: {e}"))?;
    if args.stall_ms > 0 {
        // Chaos-suite hook: sit idle mid-session so the server's idle
        // timeout fires.
        std::thread::sleep(std::time::Duration::from_millis(args.stall_ms));
    }
    if let Some(n) = args.disconnect_after {
        // Chaos-suite hook: stream a prefix, then vanish without
        // FINISH — an unclean disconnect the server must absorb.
        let mut prefix = Trace::new(0);
        for (id, ev) in trace.iter_order().take(n) {
            prefix.push(id.thread, ev.kind);
        }
        client
            .send_trace(&prefix)
            .map_err(|e| format!("send trace: {e}"))?;
        println!("disconnecting uncleanly after {n} event(s)");
        drop(client);
        return Ok(0);
    }
    client
        .send_trace(&trace)
        .map_err(|e| format!("send trace: {e}"))?;
    for q in &args.queries {
        let answer = client.query(q).map_err(|e| format!("query `{q}`: {e}"))?;
        println!("query `{q}` -> {answer}");
    }
    let report = client.finish().map_err(|e| format!("finish: {e}"))?;
    println!("{}", report.summary);
    for line in &report.lines {
        println!("{line}");
    }
    let mut exit = report.exit_code;
    if args.check_batch {
        let entry = registry::resolve(&args.hello.analysis)?;
        let kind = registry::IndexKind::parse(&args.hello.index)
            .ok_or_else(|| format!("unknown index `{}`", args.hello.index))?;
        let local = entry.run(&trace, kind, args.hello.window)?;
        if local.summary == report.summary
            && local.lines == report.lines
            && local.exit_code == report.exit_code
        {
            println!("check-batch: service report matches the batch analyzer");
        } else {
            eprintln!(
                "check-batch: MISMATCH\n  batch:   {} ({} line(s), exit {})\n  service: {} ({} line(s), exit {})",
                local.summary,
                local.lines.len(),
                local.exit_code,
                report.summary,
                report.lines.len(),
                report.exit_code
            );
            exit = 1;
        }
    }
    if args.shutdown {
        Client::shutdown_server(&args.connect).map_err(|e| format!("shutdown: {e}"))?;
        println!("server shutdown requested");
    }
    Ok(exit)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
