//! `csst-serve` — the long-running streaming analysis service.
//!
//! ```text
//! csst-serve [--listen tcp:HOST:PORT | --listen unix:/path]
//! ```
//!
//! Prints `listening on <addr>` once bound (with the OS-chosen port
//! for `tcp:…:0`), serves sessions until a client sends SHUTDOWN, then
//! exits 0. See `csst-client --help` for the driver.

use csst_serve::Server;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut listen = "tcp:127.0.0.1:0".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => {
                    eprintln!("--listen needs an address (tcp:HOST:PORT or unix:/path)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: csst-serve [--listen tcp:HOST:PORT | --listen unix:/path]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let server = match Server::bind(&listen) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(1)
        }
    }
}
