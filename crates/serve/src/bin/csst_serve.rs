//! `csst-serve` — the long-running streaming analysis service.
//!
//! ```text
//! csst-serve [--listen tcp:HOST:PORT | --listen unix:/path]
//!            [--idle-timeout-ms N] [--query-deadline-ms N]
//!            [--max-sessions N] [--faults SPEC]
//! ```
//!
//! Prints `listening on <addr>` once bound (with the OS-chosen port
//! for `tcp:…:0`), serves sessions until a client sends SHUTDOWN, then
//! exits 0. See `csst-client --help` for the driver.
//!
//! `--faults` takes a deterministic fault-injection spec (see
//! `csst_serve::fault`); when absent, the `CSST_FAULTS` environment
//! variable is consulted, so the chaos suite can inject faults without
//! touching the command line.

use csst_serve::{FaultPlan, Server, ServerCfg};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut listen = "tcp:127.0.0.1:0".to_string();
    let mut cfg = ServerCfg::default();
    let mut faults_flag: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parsed = loop {
        let Some(arg) = args.next() else {
            break Ok(());
        };
        let result = match arg.as_str() {
            "--listen" => value(&mut args, "--listen").map(|v| listen = v),
            "--idle-timeout-ms" => value(&mut args, "--idle-timeout-ms").and_then(|v| {
                v.parse::<u64>()
                    .map(|ms| cfg.idle_timeout = Duration::from_millis(ms))
                    .map_err(|_| "--idle-timeout-ms wants a number".into())
            }),
            "--query-deadline-ms" => value(&mut args, "--query-deadline-ms").and_then(|v| {
                v.parse::<u64>()
                    .map(|ms| cfg.query_deadline = Duration::from_millis(ms))
                    .map_err(|_| "--query-deadline-ms wants a number".into())
            }),
            "--max-sessions" => value(&mut args, "--max-sessions").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| cfg.max_sessions = n.max(1))
                    .map_err(|_| "--max-sessions wants a number".into())
            }),
            "--faults" => value(&mut args, "--faults").map(|v| faults_flag = Some(v)),
            "--help" | "-h" => {
                println!(
                    "usage: csst-serve [--listen tcp:HOST:PORT | --listen unix:/path] \
                     [--idle-timeout-ms N] [--query-deadline-ms N] [--max-sessions N] \
                     [--faults SPEC]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown argument `{other}` (see --help)")),
        };
        if let Err(e) = result {
            break Err(e);
        }
    };
    if let Err(e) = parsed {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    let faults = match faults_flag {
        Some(spec) => FaultPlan::parse(&spec),
        None => FaultPlan::from_env(),
    };
    match faults {
        Ok(plan) => {
            if !plan.is_empty() {
                eprintln!("csst-serve: fault injection active");
            }
            cfg.faults = plan;
        }
        Err(e) => {
            eprintln!("bad fault spec: {e}");
            return ExitCode::from(2);
        }
    }
    let server = match Server::bind_with(&listen, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(1)
        }
    }
}
