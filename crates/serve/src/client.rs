//! Client side of the `csst-serve` protocol: one [`Client`] per
//! session.

use crate::proto::{
    read_frame, write_frame, Hello, Report, WireFormat, T_ANSWER, T_ERROR, T_EVENTS, T_FINISH,
    T_HELLO, T_OK, T_QUERY, T_REPORT, T_SHUTDOWN,
};
use crate::server::{connect, ReadWrite};
use csst_trace::{binary, rapid, text, Trace};
use std::io;

/// Events per EVENTS frame when streaming a recorded trace.
const EVENTS_PER_FRAME: usize = 512;

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A connected session.
pub struct Client {
    stream: Box<dyn ReadWrite>,
    format: WireFormat,
}

impl Client {
    /// Connects to `addr` (`tcp:HOST:PORT` or `unix:/path`) and opens
    /// a session with `hello`.
    ///
    /// # Errors
    ///
    /// Connection errors, or the server's ERROR reply (e.g. an unknown
    /// analysis) surfaced as `InvalidData`.
    pub fn open(addr: &str, hello: &Hello) -> io::Result<Client> {
        let mut stream = connect(addr)?;
        write_frame(&mut stream, T_HELLO, &hello.encode())?;
        match read_frame(&mut stream)? {
            Some((T_OK, _)) => Ok(Client {
                stream,
                format: hello.format,
            }),
            Some((T_ERROR, msg)) => Err(proto_err(String::from_utf8_lossy(&msg).into_owned())),
            Some((tag, _)) => Err(proto_err(format!("unexpected HELLO reply tag {tag:#04x}"))),
            None => Err(proto_err("server closed during handshake")),
        }
    }

    /// Connects only to ask the server to shut down.
    ///
    /// # Errors
    ///
    /// Connection errors or a non-OK reply.
    pub fn shutdown_server(addr: &str) -> io::Result<()> {
        let mut stream = connect(addr)?;
        write_frame(&mut stream, T_SHUTDOWN, b"")?;
        match read_frame(&mut stream)? {
            Some((T_OK, _)) => Ok(()),
            other => Err(proto_err(format!("unexpected SHUTDOWN reply: {other:?}"))),
        }
    }

    /// Streams a recorded trace as chunked EVENTS frames in the
    /// session's wire format.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send_trace(&mut self, trace: &Trace) -> io::Result<()> {
        match self.format {
            WireFormat::Binary => {
                let mut buf = Vec::new();
                let mut n = 0;
                for (id, ev) in trace.iter_order() {
                    binary::encode_event(id.thread, &ev.kind, &mut buf);
                    n += 1;
                    if n == EVENTS_PER_FRAME {
                        write_frame(&mut self.stream, T_EVENTS, &buf)?;
                        buf.clear();
                        n = 0;
                    }
                }
                if !buf.is_empty() {
                    write_frame(&mut self.stream, T_EVENTS, &buf)?;
                }
            }
            WireFormat::Text | WireFormat::Rapid => {
                // Line formats are cheap to emit whole; one frame.
                let payload = match self.format {
                    WireFormat::Text => text::write(trace),
                    _ => rapid::write(trace),
                };
                write_frame(&mut self.stream, T_EVENTS, payload.as_bytes())?;
            }
        }
        Ok(())
    }

    /// Sends one raw EVENTS payload (already in the wire format).
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn send_events_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, T_EVENTS, payload)
    }

    /// Runs an online query; the server's ERROR reply becomes `Err`.
    ///
    /// # Errors
    ///
    /// Transport errors, or the query error message as `InvalidData`.
    pub fn query(&mut self, q: &str) -> io::Result<String> {
        write_frame(&mut self.stream, T_QUERY, q.as_bytes())?;
        match read_frame(&mut self.stream)? {
            Some((T_ANSWER, payload)) => Ok(String::from_utf8_lossy(&payload).into_owned()),
            Some((T_ERROR, msg)) => Err(proto_err(String::from_utf8_lossy(&msg).into_owned())),
            Some((tag, _)) => Err(proto_err(format!("unexpected QUERY reply tag {tag:#04x}"))),
            None => Err(proto_err("server closed mid-session")),
        }
    }

    /// Ends the stream and fetches the final report.
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's ERROR reply.
    pub fn finish(mut self) -> io::Result<Report> {
        write_frame(&mut self.stream, T_FINISH, b"")?;
        match read_frame(&mut self.stream)? {
            Some((T_REPORT, payload)) => Report::decode(&payload).map_err(proto_err),
            Some((T_ERROR, msg)) => Err(proto_err(String::from_utf8_lossy(&msg).into_owned())),
            Some((tag, _)) => Err(proto_err(format!("unexpected FINISH reply tag {tag:#04x}"))),
            None => Err(proto_err("server closed before the report")),
        }
    }
}
