//! Client side of the `csst-serve` protocol: one [`Client`] per
//! session.

use crate::proto::{
    read_frame, write_frame, Hello, Report, WireFormat, T_ANSWER, T_ERROR, T_EVENTS, T_FINISH,
    T_HELLO, T_OK, T_QUERY, T_REPORT, T_SHUTDOWN,
};
use crate::server::{connect, ReadWrite};
use csst_trace::{binary, rapid, text, Trace};
use std::io;
use std::time::Duration;

/// Events per EVENTS frame when streaming a recorded trace.
const EVENTS_PER_FRAME: usize = 512;

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Failures worth a reconnect attempt: the server may simply not be up
/// (yet), or the connection died mid-handshake.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotFound
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// A connected session.
pub struct Client {
    stream: Box<dyn ReadWrite>,
    format: WireFormat,
}

impl Client {
    /// Connects to `addr` (`tcp:HOST:PORT` or `unix:/path`) and opens
    /// a session with `hello`.
    ///
    /// # Errors
    ///
    /// Connection errors, or the server's ERROR reply (e.g. an unknown
    /// analysis) surfaced as `InvalidData`.
    pub fn open(addr: &str, hello: &Hello) -> io::Result<Client> {
        let mut stream = connect(addr)?;
        write_frame(&mut stream, T_HELLO, &hello.encode())?;
        match read_frame(&mut stream)? {
            Some((T_OK, _)) => Ok(Client {
                stream,
                format: hello.format,
            }),
            Some((T_ERROR, msg)) => Err(proto_err(String::from_utf8_lossy(&msg).into_owned())),
            Some((tag, _)) => Err(proto_err(format!("unexpected HELLO reply tag {tag:#04x}"))),
            None => Err(proto_err("server closed during handshake")),
        }
    }

    /// [`open`](Self::open) with reconnect: up to `attempts` tries,
    /// sleeping with exponential backoff plus deterministic jitter
    /// (50ms base, doubling, capped at ~2s) between them. Only
    /// transient failures are retried — connection refused/reset/
    /// aborted, a missing Unix socket, timeouts; a server that answers
    /// with an ERROR (e.g. an unknown analysis) fails immediately.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted, or the
    /// first non-retryable error.
    pub fn open_with_retry(addr: &str, hello: &Hello, attempts: u32) -> io::Result<Client> {
        let mut backoff = Duration::from_millis(50);
        // Deterministic jitter (seeded by the address) keeps retries
        // reproducible while still de-synchronizing client herds.
        let mut jitter: u64 = addr.bytes().fold(0x9E37_79B9_97F4_A7C5, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01B3)
        });
        let mut attempt = 0;
        loop {
            attempt += 1;
            match Client::open(addr, hello) {
                Ok(client) => return Ok(client),
                Err(e) if attempt < attempts && is_retryable(&e) => {
                    jitter ^= jitter << 13;
                    jitter ^= jitter >> 7;
                    jitter ^= jitter << 17;
                    let jitter_ms = jitter % (1 + backoff.as_millis() as u64 / 2);
                    std::thread::sleep(backoff + Duration::from_millis(jitter_ms));
                    backoff = (backoff * 2).min(Duration::from_secs(2));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Connects only to ask the server to shut down.
    ///
    /// # Errors
    ///
    /// Connection errors or a non-OK reply.
    pub fn shutdown_server(addr: &str) -> io::Result<()> {
        let mut stream = connect(addr)?;
        write_frame(&mut stream, T_SHUTDOWN, b"")?;
        match read_frame(&mut stream)? {
            Some((T_OK, _)) => Ok(()),
            other => Err(proto_err(format!("unexpected SHUTDOWN reply: {other:?}"))),
        }
    }

    /// A failed mid-stream write usually means the server already sent
    /// a structured ERROR and closed its end; when such a frame is
    /// still waiting in the socket buffer, report *it* instead of the
    /// bare `broken pipe`/`connection reset` the write produced.
    fn surface_server_error(&mut self, e: io::Error) -> io::Error {
        if let Ok(Some((T_ERROR, msg))) = read_frame(&mut self.stream) {
            return proto_err(String::from_utf8_lossy(&msg).into_owned());
        }
        e
    }

    /// Streams a recorded trace as chunked EVENTS frames in the
    /// session's wire format.
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's pending ERROR reply when the
    /// session was already rejected mid-stream.
    pub fn send_trace(&mut self, trace: &Trace) -> io::Result<()> {
        match self.format {
            WireFormat::Binary => {
                let mut buf = Vec::new();
                let mut n = 0;
                for (id, ev) in trace.iter_order() {
                    binary::encode_event(id.thread, &ev.kind, &mut buf);
                    n += 1;
                    if n == EVENTS_PER_FRAME {
                        if let Err(e) = write_frame(&mut self.stream, T_EVENTS, &buf) {
                            return Err(self.surface_server_error(e));
                        }
                        buf.clear();
                        n = 0;
                    }
                }
                if !buf.is_empty() {
                    if let Err(e) = write_frame(&mut self.stream, T_EVENTS, &buf) {
                        return Err(self.surface_server_error(e));
                    }
                }
            }
            WireFormat::Text | WireFormat::Rapid => {
                // Line formats are cheap to emit whole; one frame.
                let payload = match self.format {
                    WireFormat::Text => text::write(trace),
                    _ => rapid::write(trace),
                };
                if let Err(e) = write_frame(&mut self.stream, T_EVENTS, payload.as_bytes()) {
                    return Err(self.surface_server_error(e));
                }
            }
        }
        Ok(())
    }

    /// Sends one raw EVENTS payload (already in the wire format).
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's pending ERROR reply when the
    /// session was already rejected mid-stream.
    pub fn send_events_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        if let Err(e) = write_frame(&mut self.stream, T_EVENTS, payload) {
            return Err(self.surface_server_error(e));
        }
        Ok(())
    }

    /// Runs an online query; the server's ERROR reply becomes `Err`.
    ///
    /// # Errors
    ///
    /// Transport errors, or the query error message as `InvalidData`.
    pub fn query(&mut self, q: &str) -> io::Result<String> {
        write_frame(&mut self.stream, T_QUERY, q.as_bytes())?;
        match read_frame(&mut self.stream)? {
            Some((T_ANSWER, payload)) => Ok(String::from_utf8_lossy(&payload).into_owned()),
            Some((T_ERROR, msg)) => Err(proto_err(String::from_utf8_lossy(&msg).into_owned())),
            Some((tag, _)) => Err(proto_err(format!("unexpected QUERY reply tag {tag:#04x}"))),
            None => Err(proto_err("server closed mid-session")),
        }
    }

    /// Ends the stream and fetches the final report.
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's ERROR reply.
    pub fn finish(mut self) -> io::Result<Report> {
        write_frame(&mut self.stream, T_FINISH, b"")?;
        match read_frame(&mut self.stream)? {
            Some((T_REPORT, payload)) => Report::decode(&payload).map_err(proto_err),
            Some((T_ERROR, msg)) => Err(proto_err(String::from_utf8_lossy(&msg).into_owned())),
            Some((tag, _)) => Err(proto_err(format!("unexpected FINISH reply tag {tag:#04x}"))),
            None => Err(proto_err("server closed before the report")),
        }
    }
}
