//! The `csst-serve` error taxonomy.
//!
//! Every failure the service can contain is a [`ServeError`] variant,
//! replacing the panics and `unwrap`s of the happy-path implementation.
//! The taxonomy draws the containment boundaries explicitly:
//!
//! * **session-fatal** errors ([`Protocol`](ServeError::Protocol),
//!   [`Decode`](ServeError::Decode), [`Deadline`](ServeError::Deadline),
//!   [`Backpressure`](ServeError::Backpressure), [`Io`](ServeError::Io))
//!   end one session with a structured ERROR frame; every other session
//!   and the server itself keep running;
//! * **component-fatal** errors ([`WorkerPanic`](ServeError::WorkerPanic))
//!   kill one shard worker; the owning engine degrades to its
//!   sequential fallback and the session still produces a correct
//!   report;
//! * **recoverable** errors ([`Query`](ServeError::Query)) answer one
//!   frame with an ERROR reply and leave the session open.
//!
//! On the wire, an ERROR frame payload is `<code>: <message>` where
//! `<code>` is the stable machine-readable [`ServeError::code`] — the
//! fault-injection smoke suite greps for the codes, so they are part of
//! the protocol surface.

use std::fmt;
use std::io;
use std::time::Duration;

/// A contained `csst-serve` failure (see the [module docs](self) for
/// the containment boundaries).
#[derive(Debug)]
pub enum ServeError {
    /// A transport error on the session's socket.
    Io(io::Error),
    /// The peer violated the framing or session protocol (bad HELLO,
    /// unexpected tag, oversized/zero-length frame).
    Protocol(String),
    /// An EVENTS payload failed to decode (the stream position is
    /// unknowable afterwards, so the session ends).
    Decode(String),
    /// An online query was malformed or unsupported; the session
    /// stays open.
    Query(String),
    /// A shard or witness worker panicked; the message carries the
    /// captured panic payload.
    WorkerPanic(String),
    /// A bounded channel stayed full past the send deadline.
    Backpressure {
        /// The shard whose channel was full.
        shard: usize,
        /// How long the sender waited before giving up.
        waited: Duration,
    },
    /// An operation missed its deadline (flush barrier, idle session,
    /// query).
    Deadline {
        /// What timed out (`"flush"`, `"idle session"`, …).
        what: &'static str,
        /// The deadline that was exceeded.
        after: Duration,
    },
    /// The server is shutting down or refusing new work.
    Unavailable(String),
}

impl ServeError {
    /// The stable machine-readable error code carried on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Io(_) => "io",
            ServeError::Protocol(_) => "protocol",
            ServeError::Decode(_) => "decode",
            ServeError::Query(_) => "query",
            ServeError::WorkerPanic(_) => "panic",
            ServeError::Backpressure { .. } => "backpressure",
            ServeError::Deadline { .. } => "deadline",
            ServeError::Unavailable(_) => "unavailable",
        }
    }

    /// Serializes as an ERROR frame payload: `<code>: <message>`.
    pub fn to_frame(&self) -> Vec<u8> {
        format!("{}: {}", self.code(), self).into_bytes()
    }

    /// True when the error ends the whole session (as opposed to a
    /// query-level error answered in place).
    pub fn is_session_fatal(&self) -> bool {
        !matches!(self, ServeError::Query(_))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Protocol(m)
            | ServeError::Decode(m)
            | ServeError::Query(m)
            | ServeError::Unavailable(m) => f.write_str(m),
            ServeError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            ServeError::Backpressure { shard, waited } => write!(
                f,
                "channel to shard {shard} full for {}ms",
                waited.as_millis()
            ),
            ServeError::Deadline { what, after } => {
                write!(f, "{what} missed its {}ms deadline", after.as_millis())
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Extracts a human-readable message from a caught panic payload
/// (`&str` and `String` payloads verbatim, anything else a
/// placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_frames_carry_them() {
        let e = ServeError::WorkerPanic("boom".into());
        assert_eq!(e.code(), "panic");
        assert_eq!(e.to_frame(), b"panic: worker panicked: boom".to_vec());
        let e = ServeError::Backpressure {
            shard: 3,
            waited: Duration::from_millis(250),
        };
        assert_eq!(e.code(), "backpressure");
        assert!(String::from_utf8(e.to_frame()).unwrap().contains("shard 3"));
        let e = ServeError::Deadline {
            what: "flush",
            after: Duration::from_millis(10),
        };
        assert!(String::from_utf8(e.to_frame())
            .unwrap()
            .starts_with("deadline: flush"));
    }

    #[test]
    fn only_query_errors_keep_the_session_open() {
        assert!(!ServeError::Query("bad".into()).is_session_fatal());
        assert!(ServeError::Decode("bad".into()).is_session_fatal());
        assert!(ServeError::Protocol("bad".into()).is_session_fatal());
    }

    #[test]
    fn panic_messages_are_extracted() {
        let b: Box<dyn std::any::Any + Send> = Box::new("dry");
        assert_eq!(panic_message(b.as_ref()), "dry");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("wet"));
        assert_eq!(panic_message(b.as_ref()), "wet");
        let b: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(b.as_ref()), "opaque panic payload");
    }
}
