//! Deterministic fault injection for the serve subsystem.
//!
//! A [`FaultPlan`] is a small list of *one-shot triggers*, each naming
//! an injection **site**, an occurrence **count** and an **action**.
//! The sites are compiled into the pipeline and the session loop —
//! always present, free when the plan is empty — so a chaos run and a
//! production run execute the same code. Plans are built from a spec
//! string (the `csst-serve --faults` flag or the `CSST_FAULTS`
//! environment variable):
//!
//! ```text
//! panic-worker=<slot>@<n>      hb shard worker <slot> panics on its <n>th message
//! panic-witness=<slot>@<n>     race witness worker <slot> panics on its <n>th check
//! delay-send=<slot>@<n>:<ms>   the <n>th batch sent to shard <slot> is delayed <ms> ms
//! drop-send=<slot>@<n>         the <n>th batch sent to shard <slot> is dropped
//! corrupt-events=<n>           the <n>th EVENTS payload is corrupted (seeded byte
//!                              flip + clobbered record header)
//! reset-conn=<n>               the connection is reset after <n> frames are read
//! seed=<s>                     xorshift seed for the corrupt-byte choice
//! ```
//!
//! Items are comma-separated; counts are 1-based. Every trigger fires
//! **exactly once** (atomic occurrence counters shared across clones),
//! which is what makes degraded-mode recovery testable: after the
//! injected worker panic, the sequential replay of the same events does
//! not re-fire the fault. All randomness is a seeded xorshift — two
//! runs with the same plan and the same traffic inject the same faults.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Injection sites (see the [module docs](self) for the spec syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// One message processed by hb shard worker `slot`.
    WorkerMsg(usize),
    /// One witness check run by race witness worker `slot`.
    WitnessCheck(usize),
    /// One batch send to shard `slot`'s channel.
    Send(usize),
    /// One EVENTS frame payload about to be decoded.
    EventsFrame,
    /// One frame read off a session socket.
    FrameRead,
}

/// What a fired trigger does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic the current thread (`panic-worker`/`panic-witness`).
    Panic,
    /// Sleep before proceeding (`delay-send`).
    Delay(Duration),
    /// Silently drop the message (`drop-send`).
    Drop,
    /// Flip one seeded byte of the payload (`corrupt-events`).
    Corrupt,
    /// Reset the connection (`reset-conn`).
    Reset,
}

#[derive(Debug)]
struct Trigger {
    site: Site,
    /// Fires on the `at`-th matching occurrence (1-based).
    at: u64,
    action: Action,
    seen: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    triggers: Vec<Trigger>,
    seed: u64,
}

/// A shared, deterministic fault plan; cloning shares the one-shot
/// trigger state. The default plan is empty and injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

/// One xorshift64* step — the only randomness fault injection uses.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultPlan {
    /// The empty plan: every site is a no-op.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan has no triggers.
    pub fn is_empty(&self) -> bool {
        self.inner.triggers.is_empty()
    }

    /// Builds a plan from the `CSST_FAULTS` environment variable; an
    /// unset/empty variable yields the empty plan.
    ///
    /// # Errors
    ///
    /// The parse error of a malformed spec.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("CSST_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec),
            _ => Ok(FaultPlan::none()),
        }
    }

    /// Parses a comma-separated spec string (see the [module
    /// docs](self) for the grammar).
    ///
    /// # Errors
    ///
    /// A message naming the malformed item.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut triggers = Vec::new();
        let mut seed = 0xC557_FA17u64; // default seed: arbitrary but fixed
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("malformed fault `{item}` (want key=value)"))?;
            if key == "seed" {
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed `{value}`"))?;
                continue;
            }
            let bad = || format!("malformed fault `{item}`");
            let parse_at = |s: &str| -> Result<u64, String> {
                s.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(bad)
            };
            let parse_slot_at = |s: &str| -> Result<(usize, u64), String> {
                let (slot, at) = s.split_once('@').ok_or_else(bad)?;
                Ok((slot.parse::<usize>().map_err(|_| bad())?, parse_at(at)?))
            };
            let (site, at, action) = match key {
                "panic-worker" => {
                    let (slot, at) = parse_slot_at(value)?;
                    (Site::WorkerMsg(slot), at, Action::Panic)
                }
                "panic-witness" => {
                    let (slot, at) = parse_slot_at(value)?;
                    (Site::WitnessCheck(slot), at, Action::Panic)
                }
                "drop-send" => {
                    let (slot, at) = parse_slot_at(value)?;
                    (Site::Send(slot), at, Action::Drop)
                }
                "delay-send" => {
                    let (head, ms) = value.rsplit_once(':').ok_or_else(bad)?;
                    let (slot, at) = parse_slot_at(head)?;
                    let ms = ms.parse::<u64>().map_err(|_| bad())?;
                    (
                        Site::Send(slot),
                        at,
                        Action::Delay(Duration::from_millis(ms)),
                    )
                }
                "corrupt-events" => (Site::EventsFrame, parse_at(value)?, Action::Corrupt),
                "reset-conn" => (Site::FrameRead, parse_at(value)?, Action::Reset),
                _ => return Err(format!("unknown fault kind `{key}`")),
            };
            triggers.push(Trigger {
                site,
                at,
                action,
                seen: AtomicU64::new(0),
            });
        }
        Ok(FaultPlan {
            inner: Arc::new(Inner { triggers, seed }),
        })
    }

    /// Number of triggers that have fired so far (shared across
    /// clones) — lets tests assert an injected fault actually hit.
    pub fn fired(&self) -> usize {
        self.inner
            .triggers
            .iter()
            .filter(|t| t.seen.load(Ordering::Relaxed) >= t.at)
            .count()
    }

    /// Records one occurrence at `site` and returns the action of a
    /// trigger firing exactly now, if any. Callers are expected to
    /// apply the action (the plan cannot panic on the caller's behalf
    /// at every site).
    pub fn fire(&self, site: Site) -> Option<Action> {
        let mut fired = None;
        for t in &self.inner.triggers {
            if t.site == site {
                let seen = t.seen.fetch_add(1, Ordering::Relaxed) + 1;
                if seen == t.at {
                    fired = Some(t.action);
                }
            }
        }
        fired
    }

    /// [`Site::WorkerMsg`] helper: panics with a recognizable message
    /// when the trigger fires.
    pub fn on_worker_msg(&self, slot: usize) {
        if self.fire(Site::WorkerMsg(slot)) == Some(Action::Panic) {
            panic!("injected fault: shard worker {slot} panic");
        }
    }

    /// [`Site::WitnessCheck`] helper: panics with a recognizable
    /// message when the trigger fires.
    pub fn on_witness_check(&self, slot: usize) {
        if self.fire(Site::WitnessCheck(slot)) == Some(Action::Panic) {
            panic!("injected fault: witness worker {slot} panic");
        }
    }

    /// [`Site::Send`] helper: applies a delay in place and reports
    /// whether the batch must be dropped.
    pub fn on_send(&self, slot: usize) -> bool {
        match self.fire(Site::Send(slot)) {
            Some(Action::Delay(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(Action::Drop) => true,
            _ => false,
        }
    }

    /// [`Site::EventsFrame`] helper: corrupts `payload` in place when
    /// the trigger fires; returns whether it did.
    ///
    /// Two mutations: a seeded byte flip somewhere in the payload
    /// (position varies with `seed`), plus the first record's length
    /// prefix clobbered to an impossible value — a flipped value byte
    /// alone can still decode, and an injected corruption that goes
    /// unnoticed would silently skip the scenario it exists to force.
    /// What the decoder does with the mess (a positioned error, never
    /// a panic) is pinned separately by the CSTB corruption proptests.
    pub fn on_events_frame(&self, payload: &mut [u8]) -> bool {
        if self.fire(Site::EventsFrame) == Some(Action::Corrupt) && !payload.is_empty() {
            let mut state = self.inner.seed;
            let pos = (xorshift(&mut state) as usize) % payload.len();
            let bit = (xorshift(&mut state) % 8) as u8;
            payload[pos] = !payload[pos].rotate_left(bit as u32);
            if payload.len() >= 2 {
                payload[0] = 0xFF;
                payload[1] = 0xFF;
            }
            return true;
        }
        false
    }

    /// [`Site::FrameRead`] helper: true when the connection must be
    /// reset now.
    pub fn on_frame_read(&self) -> bool {
        self.fire(Site::FrameRead) == Some(Action::Reset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar_and_one_shot_firing() {
        let plan = FaultPlan::parse(
            "panic-worker=1@3, drop-send=0@2, delay-send=2@1:5, corrupt-events=2, \
             reset-conn=4, seed=42",
        )
        .unwrap();
        assert!(!plan.is_empty());
        // panic-worker=1@3: third message on slot 1, exactly once.
        assert_eq!(plan.fire(Site::WorkerMsg(0)), None);
        assert_eq!(plan.fire(Site::WorkerMsg(1)), None);
        assert_eq!(plan.fire(Site::WorkerMsg(1)), None);
        assert_eq!(plan.fire(Site::WorkerMsg(1)), Some(Action::Panic));
        assert_eq!(plan.fire(Site::WorkerMsg(1)), None, "one-shot");
        // Clones share trigger state.
        let clone = plan.clone();
        assert!(!clone.on_send(2), "delay fires on first send");
        assert_eq!(plan.fire(Site::Send(0)), None);
        assert!(plan.on_send(0), "drop fires on second send");
        // corrupt-events=2: second frame only.
        let mut payload = vec![1, 2, 3, 4];
        assert!(!plan.on_events_frame(&mut payload));
        assert_eq!(payload, vec![1, 2, 3, 4]);
        assert!(plan.on_events_frame(&mut payload));
        assert_ne!(payload, vec![1, 2, 3, 4]);
        // reset-conn=4.
        for _ in 0..3 {
            assert!(!plan.on_frame_read());
        }
        assert!(plan.on_frame_read());
        assert!(!plan.on_frame_read());
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::parse(&format!("corrupt-events=1,seed={seed}")).unwrap();
            let mut payload = vec![0u8; 64];
            plan.on_events_frame(&mut payload);
            payload
        };
        assert_eq!(run(7), run(7), "same seed, same corruption");
        assert_ne!(run(7), run(8), "different seed, different corruption");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "panic-worker",
            "panic-worker=1",
            "panic-worker=x@1",
            "panic-worker=1@0",
            "delay-send=1@2",
            "frobnicate=1@2",
            "seed=xyz",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must not parse");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn empty_plan_is_free_of_actions() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.fire(Site::WorkerMsg(0)), None);
        assert!(!plan.on_send(0));
        assert!(!plan.on_frame_read());
        let mut p = vec![9u8; 8];
        assert!(!plan.on_events_frame(&mut p));
        assert_eq!(p, vec![9u8; 8]);
    }
}
