//! Sharded streaming happens-before detection.
//!
//! [`ShardedHb`] is the multi-core form of
//! [`csst_analyses::hb::HbDetector`]: the same analysis, with the
//! expensive half — the per-variable access-frontier reachability
//! probes — partitioned across N shard workers, each owning a full
//! index replica it probes locally.
//!
//! ## Why the sharded and sequential detectors agree bit-for-bit
//!
//! * The router runs the *same* [`SyncTracker`] as the sequential
//!   detector, so both derive the same synchronization edges in the
//!   same order, and counts `sync_edges` by checked insertion into its
//!   own replica — the identical code path.
//! * Edges are broadcast to every worker through its FIFO channel,
//!   interleaved with the routed accesses in global stream order, so
//!   the probe for the access with sequence number `s` sees exactly
//!   the edges the sequential detector had inserted before event `s` —
//!   and by the core's growth-invariance guarantee, the replica
//!   answering with shorter chains (it never appends) gives the same
//!   reachability answers as the sequential index.
//! * Each reported race is tagged `(seq, probe_idx)` — the event's
//!   global sequence number and its position in the event's
//!   deterministic probe order — so sorting the merged race list
//!   reproduces the sequential report order exactly.
//!
//! Accesses are routed by variable (`var % shards`): all probes of one
//! variable's frontier land on one worker, which therefore owns that
//! frontier outright — no cross-shard state, only cross-shard *edges*,
//! which flow through the channels.
//!
//! ## Fault containment
//!
//! A shard worker is a panic-isolation boundary: its loop runs under
//! [`catch_unwind`](std::panic::catch_unwind). A panicking worker
//! flushes nothing further, records its panic message in the shared
//! failure cell, *poisons* its watermark slot (so router barriers fail
//! fast instead of spinning) and then keeps draining its channel into
//! the void so the router's bounded sends never wedge on a dead
//! peer. Every router-side operation returns a
//! [`ServeError`] instead of panicking: sends time out into
//! [`ServeError::Backpressure`], barriers into
//! [`ServeError::Deadline`], and worker death surfaces as
//! [`ServeError::WorkerPanic`] — at which point the caller (the
//! service session) degrades to the sequential detector.

use crate::error::{panic_message, ServeError};
use crate::shard::{drain, BatchSender, ShardCfg, Watermarks};
use csst_analyses::hb::{AccessFrontier, SyncTracker};
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Trace, VarId};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A race observation tagged for deterministic merging: the reporting
/// access's global sequence number and the probe's position within
/// that access's frontier sweep.
type RaceTag = (u64, usize, NodeId, NodeId);

/// Locks the shared race buffer, recovering from mutex poisoning: the
/// buffer's invariant (a list of independently-appended observations)
/// survives a panicking appender, so the poison flag carries no
/// information the failure cell does not already carry.
fn lock_races(races: &Mutex<Vec<RaceTag>>) -> MutexGuard<'_, Vec<RaceTag>> {
    races
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

enum HbMsg {
    /// A synchronization edge (broadcast to every shard).
    Edge(NodeId, NodeId),
    /// A plain access routed to the shard owning `var`'s frontier.
    Access {
        seq: u64,
        id: NodeId,
        var: VarId,
        write: bool,
    },
    /// Stream position marker: publish to the watermark slot once
    /// everything before it is merged.
    Watermark(u64),
}

struct Worker {
    tx: BatchSender<HbMsg>,
    join: JoinHandle<usize>,
}

/// Report of a sharded HB run; identical in content to the sequential
/// [`HbReport`](csst_analyses::hb::HbReport) over the same stream.
#[derive(Debug, Clone)]
pub struct ShardedHbReport {
    /// HB-races in the sequential detector's report order.
    pub races: Vec<(NodeId, NodeId)>,
    /// Synchronization edges inserted.
    pub sync_edges: usize,
    /// Events ingested.
    pub events: u64,
    /// Worker count the pipeline ran with.
    pub shards: usize,
    /// Approximate heap footprint per shard (replica + frontier).
    pub shard_bytes: Vec<usize>,
}

/// The sharded streaming HB detector (see the [module docs](self)).
pub struct ShardedHb<P> {
    cfg: ShardCfg,
    sync: SyncTracker,
    /// The router's own replica: answers online ordering queries and
    /// counts `sync_edges` through the same checked-insert path as the
    /// sequential detector.
    router: P,
    sync_edges: usize,
    seq: u64,
    edge_buf: Vec<(NodeId, NodeId)>,
    workers: Vec<Worker>,
    watermarks: Watermarks,
    races: Arc<Mutex<Vec<RaceTag>>>,
    /// First worker panic message, if any (shared with the workers).
    failure: Arc<Mutex<Option<String>>>,
    /// Sequence number of the last broadcast watermark.
    last_watermark: u64,
}

/// The happy-path worker body; panics unwind into [`worker_loop`]'s
/// containment wrapper.
fn worker_body<P: PartialOrderIndex>(
    rx: &std::sync::mpsc::Receiver<Vec<HbMsg>>,
    watermarks: &Watermarks,
    slot: usize,
    races: &Mutex<Vec<RaceTag>>,
    cfg: &ShardCfg,
) -> usize {
    let mut replica = P::new();
    let mut frontier = AccessFrontier::new();
    let mut local: Vec<RaceTag> = Vec::new();
    drain(rx, |msg| {
        cfg.faults.on_worker_msg(slot);
        match msg {
            HbMsg::Edge(src, dst) => {
                replica.ensure_len(src.thread, src.pos as usize + 1);
                replica.ensure_len(dst.thread, dst.pos as usize + 1);
                // The router already validated the edge on its replica;
                // checked insert keeps the replicas identical even for
                // edges the router rejected.
                let _ = replica.insert_edge_checked(src, dst);
            }
            HbMsg::Access {
                seq,
                id,
                var,
                write,
            } => {
                replica.ensure_len(id.thread, id.pos as usize + 1);
                frontier.on_access(&replica, id, var, write, |probe_idx, src| {
                    local.push((seq, probe_idx, src, id));
                });
            }
            HbMsg::Watermark(seq) => {
                // Everything before the marker is merged; make the local
                // observations visible before publishing the watermark so
                // a router that saw the watermark also sees the races.
                if !local.is_empty() {
                    lock_races(races).append(&mut local);
                }
                watermarks.publish(slot, seq);
            }
        }
    });
    if !local.is_empty() {
        lock_races(races).append(&mut local);
    }
    replica.memory_bytes() + frontier.memory_bytes()
}

/// Panic-isolation wrapper around [`worker_body`]: a panic records its
/// message, poisons the watermark slot (routers waiting on it fail
/// fast) and leaves a drain-and-discard loop behind so the router's
/// bounded sends never block on a dead worker.
fn worker_loop<P: PartialOrderIndex>(
    rx: std::sync::mpsc::Receiver<Vec<HbMsg>>,
    watermarks: Watermarks,
    slot: usize,
    races: Arc<Mutex<Vec<RaceTag>>>,
    failure: Arc<Mutex<Option<String>>>,
    cfg: ShardCfg,
) -> usize {
    let body =
        std::panic::AssertUnwindSafe(|| worker_body::<P>(&rx, &watermarks, slot, &races, &cfg));
    match std::panic::catch_unwind(body) {
        Ok(bytes) => bytes,
        Err(payload) => {
            let msg = format!("shard worker {slot}: {}", panic_message(payload.as_ref()));
            failure
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get_or_insert(msg);
            watermarks.poison(slot);
            while rx.recv().is_ok() {}
            0
        }
    }
}

impl<P: PartialOrderIndex + 'static> ShardedHb<P> {
    /// Spawns the shard workers and returns a pipeline ready to ingest.
    pub fn new(cfg: ShardCfg) -> Self {
        let shards = cfg.shards.max(1);
        let watermarks = Watermarks::new(shards);
        let races: Arc<Mutex<Vec<RaceTag>>> = Arc::new(Mutex::new(Vec::new()));
        let failure: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let workers = (0..shards)
            .map(|slot| {
                let (tx, rx) = sync_channel::<Vec<HbMsg>>(cfg.channel_capacity.max(1));
                let wm = watermarks.clone();
                let races = Arc::clone(&races);
                let failure = Arc::clone(&failure);
                let worker_cfg = cfg.clone();
                let join = std::thread::Builder::new()
                    .name(format!("csst-hb-shard-{slot}"))
                    .spawn(move || worker_loop::<P>(rx, wm, slot, races, failure, worker_cfg))
                    .expect("spawn shard worker");
                Worker {
                    tx: BatchSender::new(tx, slot, &cfg),
                    join,
                }
            })
            .collect();
        ShardedHb {
            sync: SyncTracker::new(),
            router: P::new(),
            sync_edges: 0,
            seq: 0,
            edge_buf: Vec::new(),
            workers,
            watermarks,
            races,
            failure,
            last_watermark: 0,
            cfg,
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Events ingested so far.
    pub fn events(&self) -> u64 {
        self.seq
    }

    /// True once any shard worker has died; the pipeline's results are
    /// no longer complete and the caller should degrade or finish.
    pub fn failed(&self) -> bool {
        self.watermarks.any_poisoned()
    }

    /// The first worker panic message, if any worker has died.
    pub fn failure(&self) -> Option<String> {
        self.failure
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Ingests one event: derives its sync edges on the router,
    /// broadcasts them to every shard, and routes its access work to
    /// the shard owning the variable.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when a worker channel stays full
    /// past the send timeout. (A *dead* worker does not error here —
    /// its channel drains into the void; death is surfaced as
    /// [`ServeError::WorkerPanic`] by the next barrier, or via
    /// [`failed`](Self::failed).)
    pub fn feed(&mut self, thread: ThreadId, event: EventKind) -> Result<(), ServeError> {
        self.seq += 1;
        let seq = self.seq;
        self.edge_buf.clear();
        let id = self.sync.feed(thread, &event, &mut self.edge_buf);
        let appended = self.router.append(thread);
        debug_assert_eq!(appended, id, "tracker and router replica disagree");
        for &(src, dst) in &self.edge_buf {
            if self.router.insert_edge_checked(src, dst).is_ok() {
                self.sync_edges += 1;
            }
            for w in &mut self.workers {
                w.tx.push(HbMsg::Edge(src, dst))?;
            }
        }
        if let EventKind::Read { var, .. } | EventKind::Write { var, .. } = event {
            let shard = var.0 as usize % self.workers.len();
            self.workers[shard].tx.push(HbMsg::Access {
                seq,
                id,
                var,
                write: matches!(event, EventKind::Write { .. }),
            })?;
        }
        if seq - self.last_watermark >= self.cfg.epoch_events as u64 {
            self.broadcast_watermark(seq)?;
        }
        Ok(())
    }

    fn broadcast_watermark(&mut self, seq: u64) -> Result<(), ServeError> {
        self.last_watermark = seq;
        for w in &mut self.workers {
            w.tx.push(HbMsg::Watermark(seq))?;
            w.tx.flush()?;
        }
        Ok(())
    }

    /// Barrier: every shard merges the full prefix ingested so far.
    /// Queries answered after a flush observe no half-merged state.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanic`] when a shard worker has died,
    /// [`ServeError::Deadline`] when the barrier misses the configured
    /// flush deadline, [`ServeError::Backpressure`] on a wedged
    /// channel.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        let seq = self.seq;
        self.broadcast_watermark(seq)?;
        self.watermarks
            .wait_until(seq, self.cfg.flush_deadline)
            .map_err(|e| self.attach_failure(e))
    }

    /// Swaps the generic poisoned-watermark message for the worker's
    /// actual panic message when it is already available.
    fn attach_failure(&self, e: ServeError) -> ServeError {
        match (&e, self.failure()) {
            (ServeError::WorkerPanic(_), Some(msg)) => ServeError::WorkerPanic(msg),
            _ => e,
        }
    }

    /// Online ordering query against the fully-merged prefix: is `a`
    /// ordered before `b` in the happens-before order built so far?
    /// Flushes first, so the answer is final for the current prefix.
    ///
    /// # Errors
    ///
    /// The flush barrier's errors ([`flush`](Self::flush)).
    pub fn ordered(&mut self, a: NodeId, b: NodeId) -> Result<bool, ServeError> {
        self.flush()?;
        Ok(self.router.reachable(a, b))
    }

    /// Snapshot of the races found in the fully-merged prefix, in the
    /// sequential detector's report order.
    ///
    /// # Errors
    ///
    /// The flush barrier's errors ([`flush`](Self::flush)).
    pub fn races_snapshot(&mut self) -> Result<Vec<(NodeId, NodeId)>, ServeError> {
        self.flush()?;
        let mut tagged = lock_races(&self.races).clone();
        tagged.sort_by_key(|&(seq, probe, _, _)| (seq, probe));
        Ok(tagged
            .into_iter()
            .map(|(_, _, src, dst)| (src, dst))
            .collect())
    }

    /// Flushes, stops the workers and produces the merged report.
    ///
    /// Always joins every worker thread — even on error, no thread is
    /// leaked — and a worker-join failure is reported as a
    /// [`ServeError::WorkerPanic`], never propagated as a panic.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanic`] when any worker died (the report
    /// would be missing that shard's races), plus the flush barrier's
    /// errors.
    pub fn finish(mut self) -> Result<ShardedHbReport, ServeError> {
        let flushed = self.flush();
        let shards = self.workers.len();
        let mut shard_bytes = Vec::with_capacity(shards);
        let mut join_failure: Option<ServeError> = None;
        for w in std::mem::take(&mut self.workers) {
            drop(w.tx); // hang up: the worker drains and returns
            match w.join.join() {
                Ok(bytes) => shard_bytes.push(bytes),
                // Unreachable in practice (the worker catches its own
                // panics), but a join failure must stay a report-level
                // error, not a propagated panic.
                Err(payload) => {
                    join_failure = Some(ServeError::WorkerPanic(panic_message(payload.as_ref())))
                }
            }
        }
        if let Some(msg) = self.failure() {
            return Err(ServeError::WorkerPanic(msg));
        }
        if let Some(e) = join_failure {
            return Err(e);
        }
        flushed?;
        let mut tagged = std::mem::take(&mut *lock_races(&self.races));
        tagged.sort_by_key(|&(seq, probe, _, _)| (seq, probe));
        Ok(ShardedHbReport {
            races: tagged
                .into_iter()
                .map(|(_, _, src, dst)| (src, dst))
                .collect(),
            sync_edges: self.sync_edges,
            events: self.seq,
            shards,
            shard_bytes,
        })
    }

    /// Batch convenience: streams a recorded trace through the
    /// pipeline.
    ///
    /// # Errors
    ///
    /// The errors of [`feed`](Self::feed) and [`finish`](Self::finish).
    pub fn run(trace: &Trace, cfg: ShardCfg) -> Result<ShardedHbReport, ServeError> {
        let mut hb = ShardedHb::<P>::new(cfg);
        for (id, ev) in trace.iter_order() {
            hb.feed(id.thread, ev.kind)?;
        }
        hb.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use csst_analyses::hb;
    use csst_core::{IncrementalCsst, VectorClockIndex};
    use csst_trace::gen::{racy_program, RacyProgramCfg};
    use std::time::Duration;

    #[test]
    fn matches_sequential_detector_across_shard_counts() {
        for seed in 0..2 {
            let trace = racy_program(&RacyProgramCfg {
                threads: 5,
                events_per_thread: 300,
                vars: 6,
                locks: 2,
                lock_frac: 0.5,
                shared_frac: 0.4,
                seed,
                ..Default::default()
            });
            let seq = hb::detect::<VectorClockIndex>(&trace);
            for shards in [1, 2, 4] {
                let cfg = ShardCfg {
                    batch: 8,
                    epoch_events: 64,
                    ..ShardCfg::with_shards(shards)
                };
                let sharded = ShardedHb::<VectorClockIndex>::run(&trace, cfg).unwrap();
                assert_eq!(sharded.races, seq.races, "seed {seed} shards {shards}");
                assert_eq!(sharded.sync_edges, seq.sync_edges, "seed {seed}");
                assert_eq!(sharded.shard_bytes.len(), shards);
            }
        }
    }

    #[test]
    fn online_queries_observe_merged_prefixes() {
        use csst_trace::{EventKind as K, LockId, VarId};
        let mut hb = ShardedHb::<IncrementalCsst>::new(ShardCfg::with_shards(2));
        hb.feed(
            ThreadId(0),
            K::Write {
                var: VarId(0),
                value: 1,
            },
        )
        .unwrap();
        hb.feed(ThreadId(0), K::Release { lock: LockId(0) })
            .unwrap();
        hb.feed(ThreadId(1), K::Acquire { lock: LockId(0) })
            .unwrap();
        hb.feed(
            ThreadId(1),
            K::Write {
                var: VarId(0),
                value: 2,
            },
        )
        .unwrap();
        assert!(hb.ordered(NodeId::new(0, 0), NodeId::new(1, 1)).unwrap());
        assert!(!hb.ordered(NodeId::new(1, 0), NodeId::new(0, 0)).unwrap());
        assert!(hb.races_snapshot().unwrap().is_empty());
        hb.feed(
            ThreadId(2),
            K::Write {
                var: VarId(0),
                value: 3,
            },
        )
        .unwrap();
        assert_eq!(
            hb.races_snapshot().unwrap(),
            vec![(NodeId::new(1, 1), NodeId::new(2, 0))]
        );
        let report = hb.finish().unwrap();
        assert_eq!(report.events, 5);
        assert_eq!(report.sync_edges, 1);
    }

    #[test]
    fn injected_worker_panic_is_contained_and_reported() {
        let trace = racy_program(&RacyProgramCfg {
            threads: 4,
            events_per_thread: 100,
            vars: 4,
            shared_frac: 0.6,
            ..Default::default()
        });
        let cfg = ShardCfg {
            epoch_events: 16,
            flush_deadline: Duration::from_secs(5),
            faults: FaultPlan::parse("panic-worker=0@10").unwrap(),
            ..ShardCfg::with_shards(2)
        };
        // The panic must neither unwind into this thread nor hang the
        // pipeline: it surfaces as a typed WorkerPanic at the barrier
        // or at finish.
        match ShardedHb::<VectorClockIndex>::run(&trace, cfg) {
            Err(ServeError::WorkerPanic(msg)) => {
                assert!(msg.contains("injected fault"), "{msg}");
            }
            Ok(_) => panic!("a dead shard must not produce a clean report"),
            Err(other) => panic!("want WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn dropped_watermark_times_out_instead_of_hanging() {
        use csst_trace::{EventKind as K, VarId};
        let cfg = ShardCfg {
            flush_deadline: Duration::from_millis(30),
            faults: FaultPlan::parse("drop-send=0@1").unwrap(),
            ..ShardCfg::with_shards(1)
        };
        let mut hb = ShardedHb::<VectorClockIndex>::new(cfg);
        hb.feed(
            ThreadId(0),
            K::Write {
                var: VarId(0),
                value: 1,
            },
        )
        .unwrap();
        // The first send to shard 0 carries this flush's watermark and
        // is dropped: the barrier must time out, not spin forever.
        match hb.flush() {
            Err(ServeError::Deadline { what, .. }) => assert_eq!(what, "flush barrier"),
            other => panic!("want Deadline, got {other:?}"),
        }
        // The next flush broadcasts a fresh watermark that does get
        // through; the pipeline recovers. (The dropped access makes the
        // report incomplete, which is exactly what the fault models —
        // the *structure* stays live.)
        hb.flush().unwrap();
        drop(hb.finish());
    }
}
