//! # csst-serve — sharded multi-core ingest and the streaming analysis
//! service
//!
//! The paper frames CSSTs as the data structure for *online* analyses
//! over unbounded event streams. This crate supplies the systems layer
//! that claim implies:
//!
//! * **Sharded ingest pipeline** ([`shard`], [`hb`], [`race`]) — a
//!   router/worker design that partitions the expensive per-event work
//!   of a streaming analysis across N cores. Each shard worker owns a
//!   capacity-free index replica; cross-shard information (sync edges,
//!   fork/join resolution) flows through bounded MPSC channels, and an
//!   epoch/watermark protocol guarantees queries only observe
//!   fully-merged prefixes. The sharded engines report *bit-identical*
//!   results to their sequential counterparts — the equivalence is
//!   pinned by unit tests here and property tests in the workspace
//!   `tests/`.
//! * **`csst-serve`** ([`server`], [`proto`]) — a long-running service
//!   accepting concurrent trace sessions over TCP or Unix sockets with
//!   length-prefixed framing; each session picks its analysis, index
//!   representation, wire format ([`csst_trace::binary`], text or
//!   rapid), shard count and window in the HELLO frame, streams
//!   events, and can interleave online race/ordering queries before
//!   collecting a final report formatted exactly like the batch CLI's.
//! * **`csst-client`** ([`client`]) — the driver: stream a trace file
//!   or a registry demo workload into a server, query it, fetch the
//!   report, optionally cross-check against a local batch run.
//! * **Fault containment** ([`error`], [`fault`]) — a [`ServeError`]
//!   taxonomy replaces panics and unwraps throughout the subsystem;
//!   `catch_unwind` boundaries at session threads, shard workers and
//!   witness workers keep any single-component failure contained to
//!   one session (which degrades to the sequential engine or receives
//!   a structured ERROR frame) while the server and every other
//!   session keep running. A deterministic, seeded [`FaultPlan`]
//!   injection layer (env/flag-driven) exercises those boundaries in
//!   `scripts/fault_smoke.sh` and the `faults` integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod fault;
pub mod hb;
pub mod proto;
pub mod race;
pub mod server;
pub mod shard;

pub use client::Client;
pub use error::ServeError;
pub use fault::FaultPlan;
pub use hb::{ShardedHb, ShardedHbReport};
pub use proto::{Hello, Report, WireFormat};
pub use race::{ShardedRace, ShardedRaceReport};
pub use server::{Server, ServerCfg};
pub use shard::ShardCfg;
