//! The `csst-serve` session protocol: length-prefixed frames over a
//! byte stream (TCP or Unix socket).
//!
//! Every frame is `[len: u32 LE][tag: u8][payload]` where `len` counts
//! the tag byte plus the payload. Client-to-server tags:
//!
//! | tag | meaning |
//! |---|---|
//! | [`T_HELLO`] | open a session; payload = UTF-8 `key=value` pairs |
//! | [`T_EVENTS`] | a chunk of trace events in the session's format |
//! | [`T_QUERY`] | an online query against the merged prefix |
//! | [`T_FINISH`] | end of stream: run/emit the final report |
//! | [`T_SHUTDOWN`] | stop the whole server after this session |
//!
//! Server-to-client: [`T_OK`], [`T_REPORT`], [`T_ANSWER`] and
//! [`T_ERROR`]. [`T_EVENTS`] payloads carry whole events only — binary
//! records ([`csst_trace::binary`]) or complete text/rapid lines — so a
//! frame boundary is always an event boundary.
//!
//! An ERROR payload is UTF-8 `<code>: <message>`, where `<code>` is the
//! machine-readable failure class from
//! [`ServeError::code`](crate::ServeError::code) (`io`, `protocol`,
//! `decode`, `query`, `panic`, `backpressure`, `deadline`,
//! `unavailable`). Every code except `query` is session-fatal: the
//! server closes the session right after the frame (with a lingering
//! drain so the frame actually arrives).
//!
//! Reading is strict: a stream ending mid-frame, a zero-length frame
//! or a frame above [`MAX_FRAME`] is an error, never a panic; a clean
//! EOF *between* frames reads as `None`.

use std::io::{self, Read, Write};

/// Client→server: open a session.
pub const T_HELLO: u8 = 0x01;
/// Client→server: a chunk of trace events.
pub const T_EVENTS: u8 = 0x02;
/// Client→server: an online query against the merged prefix.
pub const T_QUERY: u8 = 0x03;
/// Client→server: end of stream, produce the report.
pub const T_FINISH: u8 = 0x04;
/// Client→server: stop the server once this connection closes.
pub const T_SHUTDOWN: u8 = 0x05;
/// Server→client: acknowledgement without data.
pub const T_OK: u8 = 0x81;
/// Server→client: the final report.
pub const T_REPORT: u8 = 0x82;
/// Server→client: an online query answer.
pub const T_ANSWER: u8 = 0x83;
/// Server→client: a session error (payload = message).
pub const T_ERROR: u8 = 0x8F;

/// Largest accepted frame (tag + payload), 16 MiB: large enough for
/// any realistic event chunk, small enough to reject corrupt length
/// fields before allocating.
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one frame.
///
/// # Errors
///
/// Propagates transport errors; refuses payloads above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame: `Ok(None)` on clean EOF at a frame boundary,
/// `Ok(Some((tag, payload)))` otherwise.
///
/// # Errors
///
/// `UnexpectedEof` when the stream ends mid-frame; `InvalidData` for
/// zero-length or oversized frames; otherwise the transport error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "closed between frames" (fine) from "closed inside
    // the length prefix" (truncation).
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length frame (a frame always carries a tag)",
        ));
    }
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame body",
            )
        } else {
            e
        }
    })?;
    let tag = body[0];
    body.remove(0);
    Ok(Some((tag, body)))
}

/// Trace encoding of a session's [`T_EVENTS`] payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Length-prefixed binary records ([`csst_trace::binary`]).
    #[default]
    Binary,
    /// The line-based [`csst_trace::text`] format.
    Text,
    /// The RAPID/STD compatibility format ([`csst_trace::rapid`]).
    Rapid,
}

impl WireFormat {
    /// Parses a `format=` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "binary" => Some(WireFormat::Binary),
            "text" => Some(WireFormat::Text),
            "rapid" => Some(WireFormat::Rapid),
            _ => None,
        }
    }

    /// The `format=` name.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Binary => "binary",
            WireFormat::Text => "text",
            WireFormat::Rapid => "rapid",
        }
    }
}

/// A parsed HELLO payload: the session configuration.
#[derive(Debug, Clone)]
pub struct Hello {
    /// Analysis name (registry name: `hb`, `race`, …).
    pub analysis: String,
    /// Index representation name (`csst`, `st`, `vc`, `graph`).
    pub index: String,
    /// Event encoding of the session's EVENTS frames.
    pub format: WireFormat,
    /// Shard workers for the sharded engines.
    pub shards: usize,
    /// Tumbling-window size, if windowed.
    pub window: Option<usize>,
}

impl Default for Hello {
    fn default() -> Self {
        Hello {
            analysis: "hb".into(),
            index: "csst".into(),
            format: WireFormat::Binary,
            shards: 1,
            window: None,
        }
    }
}

impl Hello {
    /// Serializes as the `key=value` HELLO payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut s = format!(
            "analysis={} index={} format={} shards={}",
            self.analysis,
            self.index,
            self.format.name(),
            self.shards
        );
        if let Some(w) = self.window {
            s.push_str(&format!(" window={w}"));
        }
        s.into_bytes()
    }

    /// Parses a HELLO payload; unknown keys are rejected so client and
    /// server cannot silently disagree about a session option.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending pair.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "HELLO is not UTF-8".to_string())?;
        let mut hello = Hello::default();
        for pair in text.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed HELLO pair `{pair}`"))?;
            match key {
                "analysis" => hello.analysis = value.to_string(),
                "index" => hello.index = value.to_string(),
                "format" => {
                    hello.format = WireFormat::parse(value)
                        .ok_or_else(|| format!("unknown format `{value}`"))?;
                }
                "shards" => {
                    hello.shards = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| (1..=64).contains(&s))
                        .ok_or_else(|| format!("bad shards value `{value}` (want 1..=64)"))?;
                }
                "window" => {
                    hello.window = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&w| w > 0)
                            .ok_or_else(|| format!("bad window value `{value}`"))?,
                    );
                }
                _ => return Err(format!("unknown HELLO key `{key}`")),
            }
        }
        Ok(hello)
    }
}

/// A final session report, as carried by a [`T_REPORT`] frame:
/// `exit_code\nsummary\nline…` (one detail line per row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Process exit code the batch CLI would have reported.
    pub exit_code: u8,
    /// One-line summary.
    pub summary: String,
    /// Per-finding detail lines.
    pub lines: Vec<String>,
}

impl Report {
    /// Serializes as a REPORT payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut s = format!("{}\n{}", self.exit_code, self.summary);
        for line in &self.lines {
            s.push('\n');
            s.push_str(line);
        }
        s.into_bytes()
    }

    /// Parses a REPORT payload.
    ///
    /// # Errors
    ///
    /// A message when the payload is not UTF-8 or lacks the exit-code
    /// header.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "REPORT is not UTF-8".to_string())?;
        let mut lines = text.lines();
        let exit_code = lines
            .next()
            .and_then(|l| l.parse::<u8>().ok())
            .ok_or_else(|| "REPORT lacks an exit-code header".to_string())?;
        let summary = lines
            .next()
            .ok_or_else(|| "REPORT lacks a summary line".to_string())?
            .to_string();
        Ok(Report {
            exit_code,
            summary,
            lines: lines.map(str::to_string).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, T_HELLO, b"analysis=hb").unwrap();
        write_frame(&mut buf, T_FINISH, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((T_HELLO, b"analysis=hb".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some((T_FINISH, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_frames_are_errors() {
        // Truncated length prefix.
        let mut r: &[u8] = &[1, 0];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncated body.
        let mut buf = Vec::new();
        write_frame(&mut buf, T_EVENTS, b"abcdef").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Zero-length frame.
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Oversized frame.
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn hello_roundtrip_and_validation() {
        let hello = Hello {
            analysis: "race".into(),
            index: "graph".into(),
            format: WireFormat::Text,
            shards: 4,
            window: Some(256),
        };
        let back = Hello::decode(&hello.encode()).unwrap();
        assert_eq!(back.analysis, "race");
        assert_eq!(back.index, "graph");
        assert_eq!(back.format, WireFormat::Text);
        assert_eq!(back.shards, 4);
        assert_eq!(back.window, Some(256));
        assert!(Hello::decode(b"bogus").is_err());
        assert!(Hello::decode(b"frobnicate=1").is_err());
        assert!(Hello::decode(b"shards=0").is_err());
        assert!(Hello::decode(b"format=yaml").is_err());
        assert!(Hello::decode(b"").is_ok(), "all-defaults HELLO");
    }

    #[test]
    fn report_roundtrip() {
        let report = Report {
            exit_code: 1,
            summary: "2 hb-race(s); 5 synchronization edge(s)".into(),
            lines: vec![
                "hb-race between a and b".into(),
                "hb-race between c and d".into(),
            ],
        };
        assert_eq!(Report::decode(&report.encode()).unwrap(), report);
        assert!(Report::decode(b"").is_err());
        assert!(Report::decode(b"nope").is_err());
    }
}
