//! Sharded M2-style race prediction.
//!
//! [`ShardedRace`] is the multi-core form of
//! [`csst_analyses::race::RacePredictor`]. The analysis splits
//! naturally:
//!
//! * the streaming base order (fork/join + reads-from) is cheap and
//!   inherently sequential — the router builds it with the same
//!   [`BaseOrderBuilder`] as the sequential predictor;
//! * candidate enumeration and selection
//!   ([`enumerate_candidates`]/[`select_candidates`]) are deterministic
//!   and *independent of witness outcomes*, so the set of pairs to
//!   check is fixed before any parallel work starts;
//! * the per-candidate witness checks — rebuilding and saturating a
//!   closure per pair, the expensive part — fan out across N workers
//!   in contiguous ranges of the selected list. Each worker builds its
//!   own [`ClosureCtx`] over the shared window trace and a fresh index
//!   per check; results merge back in candidate order.
//!
//! Because the checked-candidate list and each individual verdict are
//! exactly the sequential predictor's, the merged race list is
//! bit-identical to the sequential report for every shard count —
//! windowed or not.
//!
//! ## Fault containment
//!
//! Witness workers are panic-isolation boundaries: each chunk runs
//! under [`catch_unwind`], and a panicked
//! chunk is *re-checked sequentially* on the caller thread — witness
//! checks are pure functions of the window trace, so the retried
//! verdicts (and therefore the report) are identical to a run where no
//! worker died. Only a panic that reproduces in the sequential retry
//! surfaces, as a typed [`ServeError::WorkerPanic`].

use crate::error::{panic_message, ServeError};
use crate::fault::FaultPlan;
use csst_analyses::race::{enumerate_candidates, select_candidates, RaceCfg};
use csst_analyses::saturation::{witness_co_enabled, ClosureCtx, SaturationCfg};
use csst_analyses::{BaseOrderBuilder, WindowStats};
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// Report of a sharded race-prediction run; identical in content to
/// the sequential [`RaceReport`](csst_analyses::race::RaceReport).
#[derive(Debug, Clone)]
pub struct ShardedRaceReport {
    /// Predicted races (global event ids), in the sequential report
    /// order.
    pub races: Vec<(NodeId, NodeId)>,
    /// Candidate pairs witness-checked.
    pub candidates: usize,
    /// Edges inserted while building the base order.
    pub base_inserted: usize,
    /// Streaming/windowing counters.
    pub window: WindowStats,
    /// Worker count the witness checks fanned out over.
    pub shards: usize,
}

/// The sharded race predictor (see the [module docs](self)).
pub struct ShardedRace<P> {
    cfg: RaceCfg,
    shards: usize,
    faults: FaultPlan,
    builder: BaseOrderBuilder<P>,
    races: Vec<(NodeId, NodeId)>,
    candidates: usize,
    /// Witness chunks that panicked and were recovered sequentially.
    recovered_chunks: usize,
}

/// Checks one chunk of candidate pairs, writing verdicts in place.
/// Pure modulo the injected faults, so a panicked chunk can be redone
/// from scratch.
fn check_chunk<P: PartialOrderIndex>(
    ctx: &ClosureCtx<'_>,
    sat: &SaturationCfg,
    faults: &FaultPlan,
    slot: usize,
    pairs: &[(NodeId, NodeId)],
    out: &mut [bool],
) {
    for (&(e1, e2), v) in pairs.iter().zip(out.iter_mut()) {
        faults.on_witness_check(slot);
        *v = witness_co_enabled::<P>(ctx, sat, &[e1, e2]);
    }
}

impl<P: PartialOrderIndex> ShardedRace<P> {
    /// Creates a predictor fanning witness checks over `shards`
    /// workers.
    pub fn new(cfg: RaceCfg, shards: usize) -> Self {
        Self::with_faults(cfg, shards, FaultPlan::none())
    }

    /// [`new`](Self::new) with a deterministic fault-injection plan
    /// exercising the witness-worker containment boundary.
    pub fn with_faults(cfg: RaceCfg, shards: usize, faults: FaultPlan) -> Self {
        ShardedRace {
            builder: BaseOrderBuilder::observing(cfg.window),
            cfg,
            shards: shards.max(1),
            faults,
            races: Vec::new(),
            candidates: 0,
            recovered_chunks: 0,
        }
    }

    /// Races found in completed (retired) windows so far.
    pub fn races_so_far(&self) -> &[(NodeId, NodeId)] {
        &self.races
    }

    /// Witness chunks whose worker panicked and whose checks were
    /// recovered by the sequential retry.
    pub fn recovered_chunks(&self) -> usize {
        self.recovered_chunks
    }

    /// Ingests one event, analyzing and retiring the window when full.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanic`] when a witness check panics even in
    /// the sequential retry (see [the module docs](self)).
    pub fn feed(&mut self, thread: ThreadId, event: EventKind) -> Result<(), ServeError> {
        self.builder.feed(thread, event);
        if self.builder.window_full() {
            self.analyze_window()?;
            self.builder.retire_window();
        }
        Ok(())
    }

    /// Candidate generation sequentially, witness checks in parallel;
    /// chunks whose worker panicked are redone sequentially inline.
    fn analyze_window(&mut self) -> Result<(), ServeError> {
        let shards = self.shards;
        let sat = self.cfg.saturation.clone();
        let faults = self.faults.clone();
        let (trace, win) = self.builder.split();
        if trace.total_events() == 0 {
            return Ok(());
        }
        let candidates = enumerate_candidates(trace, self.cfg.recent);
        let remaining = self.cfg.max_candidates.saturating_sub(self.candidates);
        let checked = select_candidates(&win, trace, &candidates, remaining);
        self.candidates += checked.len();
        if checked.is_empty() {
            return Ok(());
        }
        let chunk = checked.len().div_ceil(shards);
        let mut verdicts = vec![false; checked.len()];
        let n_chunks = checked.len().div_ceil(chunk);
        let panicked: Vec<AtomicBool> = (0..n_chunks).map(|_| AtomicBool::new(false)).collect();
        std::thread::scope(|s| {
            for (slot, (pairs, out)) in checked
                .chunks(chunk)
                .zip(verdicts.chunks_mut(chunk))
                .enumerate()
            {
                let sat = &sat;
                let faults = &faults;
                let panicked = &panicked[slot];
                s.spawn(move || {
                    // Each worker saturates its own closure context —
                    // contexts are pure functions of the window trace.
                    // A panicking check unwinds no further than this
                    // chunk: the verdicts are recomputed sequentially
                    // by the caller (partial writes to `out` are fine,
                    // the retry overwrites the whole chunk).
                    let chunk_body = AssertUnwindSafe(|| {
                        let ctx = ClosureCtx::new(trace, None);
                        check_chunk::<P>(&ctx, sat, faults, slot, pairs, out);
                    });
                    if catch_unwind(chunk_body).is_err() {
                        panicked.store(true, Ordering::Release);
                    }
                });
            }
        });
        // Degraded mode: redo panicked chunks on this thread. The
        // one-shot fault triggers have already fired, so an injected
        // panic does not reproduce; a *real* deterministic panic does,
        // and is surfaced as a typed error instead of unwinding.
        for (slot, flag) in panicked.iter().enumerate() {
            if !flag.load(Ordering::Acquire) {
                continue;
            }
            self.recovered_chunks += 1;
            let pairs = &checked[slot * chunk..((slot + 1) * chunk).min(checked.len())];
            let out = &mut verdicts[slot * chunk..((slot + 1) * chunk).min(checked.len())];
            let retry = AssertUnwindSafe(|| {
                let ctx = ClosureCtx::new(trace, None);
                check_chunk::<P>(&ctx, &sat, &faults, slot, pairs, out);
            });
            if let Err(payload) = catch_unwind(retry) {
                return Err(ServeError::WorkerPanic(format!(
                    "witness worker {slot}: {}",
                    panic_message(payload.as_ref())
                )));
            }
        }
        for (&(e1, e2), &racy) in checked.iter().zip(&verdicts) {
            if racy {
                self.races.push((win.to_global(e1), win.to_global(e2)));
            }
        }
        Ok(())
    }

    /// Analyzes the final window and produces the merged report.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanic`] when the final window's witness
    /// checks panic even in the sequential retry.
    pub fn finish(mut self) -> Result<ShardedRaceReport, ServeError> {
        self.analyze_window()?;
        Ok(ShardedRaceReport {
            races: self.races,
            candidates: self.candidates,
            base_inserted: self.builder.base_inserted(),
            window: self.builder.stats(),
            shards: self.shards,
        })
    }

    /// Batch convenience: streams a recorded trace through the
    /// predictor.
    ///
    /// # Errors
    ///
    /// The errors of [`feed`](Self::feed) and [`finish`](Self::finish).
    pub fn run(
        trace: &Trace,
        cfg: RaceCfg,
        shards: usize,
    ) -> Result<ShardedRaceReport, ServeError> {
        let mut r = ShardedRace::<P>::new(cfg, shards);
        for (id, ev) in trace.iter_order() {
            r.feed(id.thread, ev.kind)?;
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_analyses::race;
    use csst_core::{Csst, IncrementalCsst};
    use csst_trace::gen::{racy_program, RacyProgramCfg};

    #[test]
    fn matches_sequential_predictor_across_shard_counts() {
        for seed in 0..2 {
            let trace = racy_program(&RacyProgramCfg {
                threads: 4,
                events_per_thread: 60,
                vars: 4,
                locks: 2,
                lock_frac: 0.5,
                write_frac: 0.5,
                shared_frac: 0.6,
                seed,
            });
            let cfg = RaceCfg {
                max_candidates: 60,
                ..Default::default()
            };
            let seq = race::predict::<IncrementalCsst>(&trace, &cfg);
            for shards in [1, 2, 4] {
                let sharded =
                    ShardedRace::<IncrementalCsst>::run(&trace, cfg.clone(), shards).unwrap();
                assert_eq!(sharded.races, seq.races, "seed {seed} shards {shards}");
                assert_eq!(sharded.candidates, seq.candidates, "seed {seed}");
            }
        }
    }

    #[test]
    fn windowed_runs_match_too() {
        let trace = racy_program(&RacyProgramCfg {
            threads: 4,
            events_per_thread: 80,
            lock_frac: 0.3,
            shared_frac: 0.5,
            ..Default::default()
        });
        let cfg = RaceCfg {
            window: Some(64),
            ..Default::default()
        };
        let seq = race::predict::<Csst>(&trace, &cfg);
        let sharded = ShardedRace::<Csst>::run(&trace, cfg, 3).unwrap();
        assert_eq!(sharded.races, seq.races);
        assert_eq!(sharded.candidates, seq.candidates);
        assert_eq!(sharded.window.windows, seq.window.windows);
    }

    #[test]
    fn panicked_witness_chunk_is_recovered_sequentially() {
        let trace = racy_program(&RacyProgramCfg {
            threads: 4,
            events_per_thread: 60,
            vars: 4,
            locks: 2,
            lock_frac: 0.5,
            write_frac: 0.5,
            shared_frac: 0.6,
            seed: 1,
        });
        let cfg = RaceCfg {
            max_candidates: 60,
            window: Some(64),
            ..Default::default()
        };
        let seq = race::predict::<Csst>(&trace, &cfg);
        let faults = FaultPlan::parse("panic-witness=0@1").unwrap();
        let mut sharded = ShardedRace::<Csst>::with_faults(cfg.clone(), 2, faults);
        for (id, ev) in trace.iter_order() {
            sharded.feed(id.thread, ev.kind).unwrap();
        }
        assert_eq!(sharded.recovered_chunks(), 1, "the chunk must have died");
        let report = sharded.finish().unwrap();
        // Degraded-mode verdicts are identical to the sequential run.
        assert_eq!(report.races, seq.races);
        assert_eq!(report.candidates, seq.candidates);
    }
}
