//! Sharded M2-style race prediction.
//!
//! [`ShardedRace`] is the multi-core form of
//! [`csst_analyses::race::RacePredictor`]. The analysis splits
//! naturally:
//!
//! * the streaming base order (fork/join + reads-from) is cheap and
//!   inherently sequential — the router builds it with the same
//!   [`BaseOrderBuilder`] as the sequential predictor;
//! * candidate enumeration and selection
//!   ([`enumerate_candidates`]/[`select_candidates`]) are deterministic
//!   and *independent of witness outcomes*, so the set of pairs to
//!   check is fixed before any parallel work starts;
//! * the per-candidate witness checks — rebuilding and saturating a
//!   closure per pair, the expensive part — fan out across N workers
//!   in contiguous ranges of the selected list. Each worker builds its
//!   own [`ClosureCtx`] over the shared window trace and a fresh index
//!   per check; results merge back in candidate order.
//!
//! Because the checked-candidate list and each individual verdict are
//! exactly the sequential predictor's, the merged race list is
//! bit-identical to the sequential report for every shard count —
//! windowed or not.

use csst_analyses::race::{enumerate_candidates, select_candidates, RaceCfg};
use csst_analyses::saturation::{witness_co_enabled, ClosureCtx};
use csst_analyses::{BaseOrderBuilder, WindowStats};
use csst_core::{NodeId, PartialOrderIndex, ThreadId};
use csst_trace::{EventKind, Trace};

/// Report of a sharded race-prediction run; identical in content to
/// the sequential [`RaceReport`](csst_analyses::race::RaceReport).
#[derive(Debug, Clone)]
pub struct ShardedRaceReport {
    /// Predicted races (global event ids), in the sequential report
    /// order.
    pub races: Vec<(NodeId, NodeId)>,
    /// Candidate pairs witness-checked.
    pub candidates: usize,
    /// Edges inserted while building the base order.
    pub base_inserted: usize,
    /// Streaming/windowing counters.
    pub window: WindowStats,
    /// Worker count the witness checks fanned out over.
    pub shards: usize,
}

/// The sharded race predictor (see the [module docs](self)).
pub struct ShardedRace<P> {
    cfg: RaceCfg,
    shards: usize,
    builder: BaseOrderBuilder<P>,
    races: Vec<(NodeId, NodeId)>,
    candidates: usize,
}

impl<P: PartialOrderIndex> ShardedRace<P> {
    /// Creates a predictor fanning witness checks over `shards`
    /// workers.
    pub fn new(cfg: RaceCfg, shards: usize) -> Self {
        ShardedRace {
            builder: BaseOrderBuilder::observing(cfg.window),
            cfg,
            shards: shards.max(1),
            races: Vec::new(),
            candidates: 0,
        }
    }

    /// Races found in completed (retired) windows so far.
    pub fn races_so_far(&self) -> &[(NodeId, NodeId)] {
        &self.races
    }

    /// Ingests one event, analyzing and retiring the window when full.
    pub fn feed(&mut self, thread: ThreadId, event: EventKind) {
        self.builder.feed(thread, event);
        if self.builder.window_full() {
            self.analyze_window();
            self.builder.retire_window();
        }
    }

    /// Candidate generation sequentially, witness checks in parallel.
    fn analyze_window(&mut self) {
        let shards = self.shards;
        let sat = self.cfg.saturation.clone();
        let (trace, win) = self.builder.split();
        if trace.total_events() == 0 {
            return;
        }
        let candidates = enumerate_candidates(trace, self.cfg.recent);
        let remaining = self.cfg.max_candidates.saturating_sub(self.candidates);
        let checked = select_candidates(&win, trace, &candidates, remaining);
        self.candidates += checked.len();
        if checked.is_empty() {
            return;
        }
        let chunk = checked.len().div_ceil(shards);
        let mut verdicts = vec![false; checked.len()];
        std::thread::scope(|s| {
            for (pairs, out) in checked.chunks(chunk).zip(verdicts.chunks_mut(chunk)) {
                let sat = &sat;
                s.spawn(move || {
                    // Each worker saturates its own closure context —
                    // contexts are pure functions of the window trace.
                    let ctx = ClosureCtx::new(trace, None);
                    for (&(e1, e2), v) in pairs.iter().zip(out.iter_mut()) {
                        *v = witness_co_enabled::<P>(&ctx, sat, &[e1, e2]);
                    }
                });
            }
        });
        for (&(e1, e2), &racy) in checked.iter().zip(&verdicts) {
            if racy {
                self.races.push((win.to_global(e1), win.to_global(e2)));
            }
        }
    }

    /// Analyzes the final window and produces the merged report.
    pub fn finish(mut self) -> ShardedRaceReport {
        self.analyze_window();
        ShardedRaceReport {
            races: self.races,
            candidates: self.candidates,
            base_inserted: self.builder.base_inserted(),
            window: self.builder.stats(),
            shards: self.shards,
        }
    }

    /// Batch convenience: streams a recorded trace through the
    /// predictor.
    pub fn run(trace: &Trace, cfg: RaceCfg, shards: usize) -> ShardedRaceReport {
        let mut r = ShardedRace::<P>::new(cfg, shards);
        for (id, ev) in trace.iter_order() {
            r.feed(id.thread, ev.kind);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csst_analyses::race;
    use csst_core::{Csst, IncrementalCsst};
    use csst_trace::gen::{racy_program, RacyProgramCfg};

    #[test]
    fn matches_sequential_predictor_across_shard_counts() {
        for seed in 0..2 {
            let trace = racy_program(&RacyProgramCfg {
                threads: 4,
                events_per_thread: 60,
                vars: 4,
                locks: 2,
                lock_frac: 0.5,
                write_frac: 0.5,
                shared_frac: 0.6,
                seed,
            });
            let cfg = RaceCfg {
                max_candidates: 60,
                ..Default::default()
            };
            let seq = race::predict::<IncrementalCsst>(&trace, &cfg);
            for shards in [1, 2, 4] {
                let sharded = ShardedRace::<IncrementalCsst>::run(&trace, cfg.clone(), shards);
                assert_eq!(sharded.races, seq.races, "seed {seed} shards {shards}");
                assert_eq!(sharded.candidates, seq.candidates, "seed {seed}");
            }
        }
    }

    #[test]
    fn windowed_runs_match_too() {
        let trace = racy_program(&RacyProgramCfg {
            threads: 4,
            events_per_thread: 80,
            lock_frac: 0.3,
            shared_frac: 0.5,
            ..Default::default()
        });
        let cfg = RaceCfg {
            window: Some(64),
            ..Default::default()
        };
        let seq = race::predict::<Csst>(&trace, &cfg);
        let sharded = ShardedRace::<Csst>::run(&trace, cfg, 3);
        assert_eq!(sharded.races, seq.races);
        assert_eq!(sharded.candidates, seq.candidates);
        assert_eq!(sharded.window.windows, seq.window.windows);
    }
}
