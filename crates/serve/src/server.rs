//! The long-running `csst-serve` analysis service.
//!
//! [`Server`] listens on a TCP or Unix socket, accepts any number of
//! concurrent trace sessions (one thread per connection) and speaks
//! the [`proto`](crate::proto) framing. Each session configures its
//! analysis in the HELLO frame; `hb` and `race` sessions run on the
//! sharded engines ([`ShardedHb`]/[`ShardedRace`]) and support online
//! queries against the fully-merged prefix, every other registry
//! analysis runs in buffered batch mode at FINISH. Reports are
//! formatted through the same code paths as the batch
//! [`registry`] runs, so a service report is
//! byte-identical to `csst_analyze` over the same events.
//!
//! ## Fault containment
//!
//! A session is the failure domain. Every session thread runs under
//! `catch_unwind`, malformed input of any kind (bad frames, oversized
//! frames, undecodable events, unknown queries) is answered with a
//! structured ERROR frame (`<code>: <message>`, see
//! [`ServeError::code`]) and at worst ends *that* session, and socket
//! reads/writes carry timeouts so a stalled peer cannot pin a thread
//! forever. When a shard worker of an `hb` session panics, the session
//! *degrades*: the event stream (buffered in the engine for exactly
//! this purpose) is replayed into the sequential
//! [`HbDetector`], whose report is byte-identical to the batch CLI's —
//! the session finishes correctly, just slower. `race` sessions degrade
//! a level lower (panicked witness chunks are re-checked sequentially
//! inside [`ShardedRace`]), so a worker panic never even surfaces here.
//!
//! Shutdown is cooperative: a SHUTDOWN frame flips the server's stop
//! flag; the accept loop (polling, non-blocking) notices, stops
//! accepting, joins every session thread and removes its Unix socket
//! file. Exit is clean — no thread is left behind, which the service
//! smoke test checks by asserting on the process exit code.

use crate::error::{panic_message, ServeError};
use crate::fault::FaultPlan;
use crate::hb::ShardedHb;
use crate::proto::{
    read_frame, write_frame, Hello, Report, WireFormat, MAX_FRAME, T_ANSWER, T_ERROR, T_EVENTS,
    T_FINISH, T_HELLO, T_OK, T_QUERY, T_REPORT, T_SHUTDOWN,
};
use crate::race::ShardedRace;
use crate::shard::ShardCfg;
use csst_analyses::hb::HbDetector;
use csst_analyses::race::RaceCfg;
use csst_analyses::registry::{self, IndexKind, RunOutput};
use csst_analyses::Analysis;
use csst_core::{
    Csst, GraphIndex, IncrementalCsst, NodeId, PartialOrderIndex, SegTreeIndex, ThreadId,
    VectorClockIndex,
};
use csst_trace::{binary, rapid, text, EventKind, Trace};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server-wide robustness configuration: deadlines, session limits and
/// the fault-injection plan.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Socket read timeout: how long a session may sit idle (no frame
    /// from the peer) before it is closed with a `deadline` ERROR.
    /// Zero disables the timeout.
    pub idle_timeout: Duration,
    /// Deadline for online queries and final-report flush barriers
    /// (maps to the sharded engines' flush deadline).
    pub query_deadline: Duration,
    /// Socket write timeout and sharded-channel send timeout: how long
    /// a send may block on a slow consumer before failing with
    /// `backpressure`/`io`.
    pub send_timeout: Duration,
    /// Concurrent session cap; further connections are refused with an
    /// `unavailable` ERROR.
    pub max_sessions: usize,
    /// Deterministic fault-injection plan (empty in production); see
    /// [`FaultPlan`].
    pub faults: FaultPlan,
}

impl Default for ServerCfg {
    fn default() -> Self {
        ServerCfg {
            idle_timeout: Duration::from_secs(120),
            query_deadline: Duration::from_secs(30),
            send_timeout: Duration::from_secs(10),
            max_sessions: 64,
            faults: FaultPlan::none(),
        }
    }
}

/// One streaming analysis session: events in, queries and a final
/// report out.
trait SessionEngine: Send {
    /// Ingests one event.
    fn feed(&mut self, thread: ThreadId, kind: EventKind) -> Result<(), ServeError>;
    /// Answers an online query against the fully-merged prefix.
    /// `Err(ServeError::Query(_))` answers the frame and keeps the
    /// session open; any other error is session-fatal.
    fn query(&mut self, q: &str) -> Result<String, ServeError>;
    /// Produces the final report (same formatting as the batch CLI).
    fn finish(self: Box<Self>) -> Result<Report, ServeError>;
}

fn report_from(out: RunOutput) -> Report {
    Report {
        exit_code: out.exit_code,
        summary: out.summary,
        lines: out.lines,
    }
}

/// `ordered <t1> <p1> <t2> <p2>` → two node ids.
fn parse_ordered_query(q: &str) -> Option<(NodeId, NodeId)> {
    let mut it = q.split_whitespace();
    if it.next()? != "ordered" {
        return None;
    }
    let mut num = || it.next()?.parse::<u32>().ok();
    let (t1, p1, t2, p2) = (num()?, num()?, num()?, num()?);
    Some((NodeId::new(t1, p1), NodeId::new(t2, p2)))
}

/// Formats an hb report exactly like the batch registry entry, from
/// either the sharded or the sequential detector's results.
fn hb_report(races: &[(NodeId, NodeId)], sync_edges: usize) -> Report {
    Report {
        exit_code: (!races.is_empty()) as u8,
        summary: format!(
            "{} hb-race(s); {} synchronization edge(s)",
            races.len(),
            sync_edges
        ),
        lines: races
            .iter()
            .take(20)
            .map(|(a, b)| format!("hb-race between {a} and {b}"))
            .collect(),
    }
}

/// The hb session engine: normally the sharded pipeline, with the
/// sequential [`HbDetector`] as the degraded mode a worker panic falls
/// back to. The event stream is buffered (the price of the fallback:
/// memory linear in the stream) so the degraded detector can replay it
/// and produce a report byte-identical to the batch CLI's.
struct HbEngine<P: PartialOrderIndex + 'static> {
    hb: Option<ShardedHb<P>>,
    degraded: Option<HbDetector<P>>,
    buffer: Trace,
    events: u64,
}

impl<P: PartialOrderIndex + 'static> HbEngine<P> {
    fn new(cfg: ShardCfg) -> Self {
        HbEngine {
            hb: Some(ShardedHb::<P>::new(cfg)),
            degraded: None,
            buffer: Trace::new(0),
            events: 0,
        }
    }

    /// Tears down the sharded pipeline and replays the buffered stream
    /// into a fresh sequential detector.
    fn degrade(&mut self, reason: &ServeError) -> &mut HbDetector<P> {
        if let Some(hb) = self.hb.take() {
            // Join the surviving workers; the result is void (the dead
            // shard's races are missing), the replay recomputes it all.
            let _ = hb.finish();
        }
        eprintln!("csst-serve: session degraded to sequential hb engine: {reason}");
        let mut det = HbDetector::<P>::new(());
        for (id, ev) in self.buffer.iter_order() {
            det.feed(id.thread, ev.kind);
        }
        self.degraded.insert(det)
    }

    /// Runs `op` on the sharded engine, degrading on a worker panic;
    /// `fallback` answers from the sequential detector (used both when
    /// already degraded and right after degrading).
    fn with_engine<T>(
        &mut self,
        op: impl FnOnce(&mut ShardedHb<P>) -> Result<T, ServeError>,
        fallback: impl Fn(&mut HbDetector<P>) -> T,
    ) -> Result<T, ServeError> {
        if let Some(det) = self.degraded.as_mut() {
            return Ok(fallback(det));
        }
        let hb = self.hb.as_mut().expect("sharded engine");
        match op(hb) {
            Ok(v) => Ok(v),
            Err(e @ ServeError::WorkerPanic(_)) => Ok(fallback(self.degrade(&e))),
            Err(e) => Err(e),
        }
    }
}

impl<P: PartialOrderIndex + 'static> SessionEngine for HbEngine<P> {
    fn feed(&mut self, thread: ThreadId, kind: EventKind) -> Result<(), ServeError> {
        self.events += 1;
        if let Some(det) = self.degraded.as_mut() {
            det.feed(thread, kind);
            return Ok(());
        }
        self.buffer.push(thread, kind);
        let hb = self.hb.as_mut().expect("sharded engine");
        match hb.feed(thread, kind) {
            Ok(()) if !hb.failed() => Ok(()),
            Ok(()) => {
                // A worker died between barriers; degrade eagerly
                // instead of buffering more work for a dead pipeline.
                let e = ServeError::WorkerPanic(
                    self.hb
                        .as_ref()
                        .and_then(|hb| hb.failure())
                        .unwrap_or_else(|| "shard worker died".into()),
                );
                self.degrade(&e);
                Ok(())
            }
            Err(e @ ServeError::WorkerPanic(_)) => {
                self.degrade(&e);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn query(&mut self, q: &str) -> Result<String, ServeError> {
        if let Some((a, b)) = parse_ordered_query(q) {
            return self.with_engine(
                |hb| Ok(hb.ordered(a, b)?.to_string()),
                |det| det.index().reachable(a, b).to_string(),
            );
        }
        match q.trim() {
            "races" => self.with_engine(
                |hb| Ok(hb.races_snapshot()?.len().to_string()),
                |det| det.races().len().to_string(),
            ),
            "events" => Ok(self.events.to_string()),
            _ => Err(ServeError::Query(format!(
                "unknown query `{q}`; hb supports `ordered t1 p1 t2 p2`, `races`, `events`"
            ))),
        }
    }

    fn finish(mut self: Box<Self>) -> Result<Report, ServeError> {
        if self.degraded.is_none() {
            match self.hb.take().expect("sharded engine").finish() {
                Ok(r) => return Ok(hb_report(&r.races, r.sync_edges)),
                Err(e @ ServeError::WorkerPanic(_)) => {
                    self.degrade(&e);
                }
                Err(e) => return Err(e),
            }
        }
        let det = self.degraded.take().expect("degraded detector");
        let r = det.finish();
        Ok(hb_report(&r.races, r.sync_edges))
    }
}

struct RaceEngine<P: PartialOrderIndex> {
    race: ShardedRace<P>,
}

impl<P: PartialOrderIndex> SessionEngine for RaceEngine<P> {
    fn feed(&mut self, thread: ThreadId, kind: EventKind) -> Result<(), ServeError> {
        // Witness-worker panics are already recovered inside the
        // sharded predictor (sequential chunk retry); an error here is
        // genuinely fatal.
        self.race.feed(thread, kind)
    }

    fn query(&mut self, q: &str) -> Result<String, ServeError> {
        match q.trim() {
            "races" => Ok(self.race.races_so_far().len().to_string()),
            _ => Err(ServeError::Query(format!(
                "unknown query `{q}`; race supports `races` (completed windows only)"
            ))),
        }
    }

    fn finish(self: Box<Self>) -> Result<Report, ServeError> {
        let r = self.race.finish()?;
        // Mirrors the registry's race formatting exactly.
        Ok(Report {
            exit_code: (!r.races.is_empty()) as u8,
            summary: format!(
                "{} race(s) predicted from {} candidate(s)",
                r.races.len(),
                r.candidates
            ),
            lines: r
                .races
                .iter()
                .map(|(a, b)| format!("race between {a} and {b}"))
                .collect(),
        })
    }
}

/// Fallback for the registry analyses without a sharded engine:
/// buffer the stream, run the batch entry at FINISH.
struct BatchEngine {
    name: String,
    index: IndexKind,
    window: Option<usize>,
    trace: Trace,
}

impl SessionEngine for BatchEngine {
    fn feed(&mut self, thread: ThreadId, kind: EventKind) -> Result<(), ServeError> {
        self.trace.push(thread, kind);
        Ok(())
    }

    fn query(&mut self, q: &str) -> Result<String, ServeError> {
        match q.trim() {
            "events" => Ok(self.trace.total_events().to_string()),
            _ => Err(ServeError::Query(format!(
                "analysis `{}` runs in batch mode; only `events` is queryable online",
                self.name
            ))),
        }
    }

    fn finish(self: Box<Self>) -> Result<Report, ServeError> {
        let entry = match registry::resolve(&self.name) {
            Ok(entry) => entry,
            Err(e) => {
                return Ok(Report {
                    exit_code: 2,
                    summary: e,
                    lines: Vec::new(),
                })
            }
        };
        // The batch run is the session's compute; a panic inside an
        // analysis must not take the session thread down silently.
        let run = AssertUnwindSafe(|| entry.run(&self.trace, self.index, self.window));
        match catch_unwind(run) {
            Ok(Ok(out)) => Ok(report_from(out)),
            Ok(Err(e)) => Ok(Report {
                exit_code: 2,
                summary: e,
                lines: Vec::new(),
            }),
            Err(payload) => Err(ServeError::WorkerPanic(format!(
                "batch analysis `{}`: {}",
                self.name,
                panic_message(payload.as_ref())
            ))),
        }
    }
}

/// Builds the session engine a HELLO asks for.
fn make_engine(hello: &Hello, cfg: &ServerCfg) -> Result<Box<dyn SessionEngine>, String> {
    let index = IndexKind::parse(&hello.index)
        .ok_or_else(|| format!("unknown index `{}` (csst|st|vc|graph)", hello.index))?;
    let shard_cfg = ShardCfg {
        send_timeout: cfg.send_timeout,
        flush_deadline: cfg.query_deadline,
        faults: cfg.faults.clone(),
        ..ShardCfg::with_shards(hello.shards)
    };
    match hello.analysis.as_str() {
        "hb" => {
            if hello.window.is_some() {
                return Err(
                    "hb is genuinely online and buffers nothing; windowing does not apply".into(),
                );
            }
            Ok(match index {
                IndexKind::Csst => Box::new(HbEngine::<IncrementalCsst>::new(shard_cfg)),
                IndexKind::SegTree => Box::new(HbEngine::<SegTreeIndex>::new(shard_cfg)),
                IndexKind::VectorClock => Box::new(HbEngine::<VectorClockIndex>::new(shard_cfg)),
                IndexKind::Graph => Box::new(HbEngine::<GraphIndex>::new(shard_cfg)),
            })
        }
        "race" => {
            let race_cfg = RaceCfg {
                window: hello.window,
                ..Default::default()
            };
            let shards = hello.shards;
            let faults = cfg.faults.clone();
            Ok(match (hello.window, index) {
                (None, IndexKind::Csst) => Box::new(RaceEngine {
                    race: ShardedRace::<IncrementalCsst>::with_faults(race_cfg, shards, faults),
                }),
                (None, IndexKind::SegTree) => Box::new(RaceEngine {
                    race: ShardedRace::<SegTreeIndex>::with_faults(race_cfg, shards, faults),
                }),
                (None, IndexKind::VectorClock) => Box::new(RaceEngine {
                    race: ShardedRace::<VectorClockIndex>::with_faults(race_cfg, shards, faults),
                }),
                (None, IndexKind::Graph) => Box::new(RaceEngine {
                    race: ShardedRace::<GraphIndex>::with_faults(race_cfg, shards, faults),
                }),
                (Some(_), IndexKind::Csst) => Box::new(RaceEngine {
                    race: ShardedRace::<Csst>::with_faults(race_cfg, shards, faults),
                }),
                (Some(_), IndexKind::Graph) => Box::new(RaceEngine {
                    race: ShardedRace::<GraphIndex>::with_faults(race_cfg, shards, faults),
                }),
                (Some(_), other) => {
                    return Err(format!(
                        "windowed runs retire edges and need a fully dynamic index \
                         (csst|graph), got `{}`",
                        other.name()
                    ))
                }
            })
        }
        other => {
            registry::resolve(other)?;
            Ok(Box::new(BatchEngine {
                name: other.to_string(),
                index,
                window: hello.window,
                trace: Trace::new(0),
            }))
        }
    }
}

fn feed_events(
    engine: &mut dyn SessionEngine,
    format: WireFormat,
    payload: &[u8],
) -> Result<(), ServeError> {
    match format {
        WireFormat::Binary => {
            for (thread, kind) in
                binary::decode_events(payload).map_err(|e| ServeError::Decode(e.to_string()))?
            {
                engine.feed(thread, kind)?;
            }
        }
        WireFormat::Text | WireFormat::Rapid => {
            let input = std::str::from_utf8(payload)
                .map_err(|_| ServeError::Decode("text frame is not UTF-8".to_string()))?;
            let trace = match format {
                WireFormat::Text => text::parse(input),
                _ => rapid::parse(input),
            }
            .map_err(|e| ServeError::Decode(e.to_string()))?;
            for (id, ev) in trace.iter_order() {
                engine.feed(id.thread, ev.kind)?;
            }
        }
    }
    Ok(())
}

/// Classifies a frame-read failure: `Some(err)` is answered with a
/// structured ERROR frame before closing, `None` closes silently (the
/// peer is gone; nobody is listening for a reply).
fn classify_read_error(e: io::Error, idle_timeout: Duration) -> Option<ServeError> {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Some(ServeError::Deadline {
            what: "idle session",
            after: idle_timeout,
        }),
        io::ErrorKind::InvalidData => Some(ServeError::Protocol(e.to_string())),
        io::ErrorKind::UnexpectedEof => Some(ServeError::Protocol(e.to_string())),
        _ => None,
    }
}

/// How long a fatally-closed session keeps reading (and discarding)
/// the peer's in-flight data before dropping the socket. Closing a TCP
/// socket with unread data resets the connection, which would destroy
/// the structured ERROR frame still sitting in the peer's receive
/// buffer — this lingering window lets it arrive.
const LINGER_TIMEOUT: Duration = Duration::from_millis(250);

/// An accepted session transport: framed I/O plus the linger hook a
/// fatal close needs (a no-op for non-socket streams).
trait SessionStream: Read + Write {
    /// Switches the transport to the short [`LINGER_TIMEOUT`] read
    /// deadline for the pre-close drain.
    fn begin_linger(&mut self) {}
}

impl SessionStream for TcpStream {
    fn begin_linger(&mut self) {
        let _ = self.set_read_timeout(Some(LINGER_TIMEOUT));
    }
}

impl SessionStream for UnixStream {
    fn begin_linger(&mut self) {
        let _ = self.set_read_timeout(Some(LINGER_TIMEOUT));
    }
}

/// Lingering close: after a fatal ERROR reply, discard the peer's
/// already-sent data — bounded in bytes and, via
/// [`SessionStream::begin_linger`], in time — so the kernel delivers
/// the ERROR instead of resetting the connection.
fn drain_before_close<S: SessionStream>(stream: &mut S) {
    stream.begin_linger();
    let mut scratch = [0u8; 8192];
    let mut budget = MAX_FRAME;
    while budget > 0 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Runs one session over an accepted connection. Returns `true` if the
/// peer asked the whole server to shut down. All failures are contained
/// here: the only way out is a clean return.
fn handle_session<S: SessionStream>(stream: &mut S, cfg: &ServerCfg) -> bool {
    /// Writes a structured ERROR frame, best-effort (the peer may
    /// already be gone).
    fn send_error<S: Read + Write>(stream: &mut S, e: &ServeError) {
        let _ = write_frame(stream, T_ERROR, &e.to_frame());
    }
    /// [`send_error`] for a session-fatal failure: the ERROR frame
    /// followed by the lingering drain, so it survives the close.
    fn send_fatal<S: SessionStream>(stream: &mut S, e: &ServeError) {
        send_error(stream, e);
        drain_before_close(stream);
    }
    /// Reads the next frame, containing every failure mode.
    fn next_frame<S: SessionStream>(
        stream: &mut S,
        cfg: &ServerCfg,
    ) -> Result<Option<(u8, Vec<u8>)>, ()> {
        if cfg.faults.on_frame_read() {
            return Err(()); // injected connection reset: vanish
        }
        match read_frame(stream) {
            Ok(frame) => Ok(frame),
            Err(e) => {
                if let Some(serr) = classify_read_error(e, cfg.idle_timeout) {
                    send_fatal(stream, &serr);
                }
                Err(())
            }
        }
    }

    // First frame must be the HELLO.
    let hello = match next_frame(stream, cfg) {
        Ok(Some((T_HELLO, payload))) => match Hello::decode(&payload) {
            Ok(hello) => hello,
            Err(e) => {
                send_fatal(stream, &ServeError::Protocol(e));
                return false;
            }
        },
        Ok(Some((T_SHUTDOWN, _))) => {
            let _ = write_frame(stream, T_OK, b"");
            return true;
        }
        Ok(Some((tag, _))) => {
            send_fatal(
                stream,
                &ServeError::Protocol(format!(
                    "expected HELLO as the first frame, got tag {tag:#04x}"
                )),
            );
            return false;
        }
        Ok(None) | Err(()) => return false,
    };
    let mut engine = match make_engine(&hello, cfg) {
        Ok(engine) => engine,
        Err(e) => {
            send_fatal(stream, &ServeError::Protocol(e));
            return false;
        }
    };
    if write_frame(stream, T_OK, b"").is_err() {
        return false;
    }
    loop {
        match next_frame(stream, cfg) {
            Ok(Some((T_EVENTS, mut payload))) => {
                // Injected corruption flips a payload byte here; the
                // decoder must turn it into a structured error, never
                // a panic (the CSTB proptests pin totality).
                let _ = cfg.faults.on_events_frame(&mut payload);
                if let Err(e) = feed_events(engine.as_mut(), hello.format, &payload) {
                    // Malformed events poison the session (the stream
                    // position is unknowable); report and stop.
                    send_fatal(stream, &e);
                    return false;
                }
            }
            Ok(Some((T_QUERY, payload))) => {
                let q = String::from_utf8_lossy(&payload);
                match engine.query(&q) {
                    Ok(answer) => {
                        if write_frame(stream, T_ANSWER, answer.as_bytes()).is_err() {
                            return false;
                        }
                    }
                    Err(e) => {
                        if e.is_session_fatal() {
                            send_fatal(stream, &e);
                            return false;
                        }
                        send_error(stream, &e);
                    }
                }
            }
            Ok(Some((T_FINISH, _))) => {
                match engine.finish() {
                    Ok(report) => {
                        let _ = write_frame(stream, T_REPORT, &report.encode());
                    }
                    Err(e) => send_fatal(stream, &e),
                }
                return false;
            }
            Ok(Some((T_SHUTDOWN, _))) => {
                let _ = write_frame(stream, T_OK, b"");
                return true;
            }
            Ok(Some((tag, _))) => {
                send_fatal(
                    stream,
                    &ServeError::Protocol(format!("unexpected frame tag {tag:#04x}")),
                );
                return false;
            }
            Ok(None) | Err(()) => return false, // peer hung up without FINISH
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, std::path::PathBuf),
}

/// A ready-to-run session body, produced by the accept loop and moved
/// onto its own thread (it owns the accepted stream).
type SessionFn = Box<dyn FnOnce(&ServerCfg) -> bool + Send>;

/// The `csst-serve` service: a polling accept loop over a TCP or Unix
/// listener, one session thread per connection.
pub struct Server {
    listener: Listener,
    stop: Arc<AtomicBool>,
    cfg: ServerCfg,
}

/// Applies the configured socket timeouts to an accepted stream.
/// Accepted sockets may inherit the listener's non-blocking flag, so it
/// is cleared explicitly first.
macro_rules! configure_stream {
    ($s:expr, $cfg:expr) => {{
        let ok = $s.set_nonblocking(false).is_ok()
            && $s.set_read_timeout(non_zero(&$cfg.idle_timeout)).is_ok()
            && $s.set_write_timeout(non_zero(&$cfg.send_timeout)).is_ok();
        ok
    }};
}

fn non_zero(d: &Duration) -> Option<Duration> {
    (!d.is_zero()).then_some(*d)
}

impl Server {
    /// Binds with the default robustness configuration; see
    /// [`bind_with`](Self::bind_with).
    ///
    /// # Errors
    ///
    /// Address syntax and bind errors.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Server::bind_with(addr, ServerCfg::default())
    }

    /// Binds to `tcp:HOST:PORT` (port 0 picks a free port) or
    /// `unix:/path` (an existing socket file is replaced), with
    /// explicit deadlines, session limits and fault plan.
    ///
    /// # Errors
    ///
    /// Address syntax and bind errors.
    pub fn bind_with(addr: &str, cfg: ServerCfg) -> io::Result<Server> {
        let listener = if let Some(tcp) = addr.strip_prefix("tcp:") {
            Listener::Tcp(TcpListener::bind(tcp)?)
        } else if let Some(path) = addr.strip_prefix("unix:") {
            let path = std::path::PathBuf::from(path);
            let _ = std::fs::remove_file(&path);
            Listener::Unix(UnixListener::bind(&path)?, path)
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address `{addr}` must start with tcp: or unix:"),
            ));
        };
        Ok(Server {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
            cfg,
        })
    }

    /// The bound address in connectable `tcp:`/`unix:` form (useful
    /// with `tcp:…:0`, where the OS picked the port).
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => format!("tcp:{addr}"),
                Err(_) => "tcp:<unknown>".to_string(),
            },
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }

    /// A handle that flips the server's stop flag (same effect as a
    /// SHUTDOWN frame), for embedding the server in tests.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until a SHUTDOWN frame (or the stop handle) stops the
    /// loop, then joins every session thread and cleans up.
    ///
    /// # Errors
    ///
    /// Listener configuration errors; everything that happens inside a
    /// session — I/O failures, protocol violations, analysis panics —
    /// only ends that session.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let cfg = Arc::new(self.cfg);
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::Acquire) {
            sessions.retain(|h| !h.is_finished());
            let at_capacity = sessions.len() >= cfg.max_sessions;
            let accepted: Option<SessionFn> = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((mut s, _)) => {
                        if at_capacity || !configure_stream!(s, cfg) {
                            refuse(&mut s, at_capacity);
                            None
                        } else {
                            Some(Box::new(move |cfg| session_thread(&mut s, cfg)))
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                Listener::Unix(l, _) => match l.accept() {
                    Ok((mut s, _)) => {
                        if at_capacity || !configure_stream!(s, cfg) {
                            refuse(&mut s, at_capacity);
                            None
                        } else {
                            Some(Box::new(move |cfg| session_thread(&mut s, cfg)))
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(session) => {
                    let stop = Arc::clone(&self.stop);
                    let cfg = Arc::clone(&cfg);
                    sessions.push(std::thread::spawn(move || {
                        if session(&cfg) {
                            stop.store(true, Ordering::Release);
                        }
                    }));
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        for h in sessions {
            let _ = h.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Refuses a connection that cannot be served (session cap reached or
/// the socket could not be configured), best-effort. The lingering
/// drain eats the peer's pending HELLO so the refusal is delivered
/// instead of a connection reset.
fn refuse(stream: &mut impl SessionStream, at_capacity: bool) {
    let e = if at_capacity {
        ServeError::Unavailable("session limit reached; retry later".into())
    } else {
        ServeError::Unavailable("failed to configure the session socket".into())
    };
    let _ = write_frame(stream, T_ERROR, &e.to_frame());
    drain_before_close(stream);
}

/// The per-connection thread body: [`handle_session`] under a
/// `catch_unwind` boundary, so even a bug that escapes the per-engine
/// containment ends one session (with a best-effort ERROR frame), not
/// the server.
fn session_thread<S: SessionStream>(stream: &mut S, cfg: &ServerCfg) -> bool {
    match catch_unwind(AssertUnwindSafe(|| handle_session(stream, cfg))) {
        Ok(shutdown) => shutdown,
        Err(payload) => {
            let e = ServeError::WorkerPanic(panic_message(payload.as_ref()));
            let _ = write_frame(stream, T_ERROR, &e.to_frame());
            drain_before_close(stream);
            false
        }
    }
}

/// Connects to a `tcp:`/`unix:` address (the client side of
/// [`Server::bind`] syntax).
///
/// # Errors
///
/// Address syntax and connection errors.
pub fn connect(addr: &str) -> io::Result<Box<dyn ReadWrite>> {
    if let Some(tcp) = addr.strip_prefix("tcp:") {
        Ok(Box::new(TcpStream::connect(tcp)?))
    } else if let Some(path) = addr.strip_prefix("unix:") {
        Ok(Box::new(UnixStream::connect(path)?))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address `{addr}` must start with tcp: or unix:"),
        ))
    }
}

/// A bidirectional byte stream (object-safe `Read + Write`).
pub trait ReadWrite: Read + Write + Send {}
impl<T: Read + Write + Send> ReadWrite for T {}
