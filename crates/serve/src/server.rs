//! The long-running `csst-serve` analysis service.
//!
//! [`Server`] listens on a TCP or Unix socket, accepts any number of
//! concurrent trace sessions (one thread per connection) and speaks
//! the [`proto`](crate::proto) framing. Each session configures its
//! analysis in the HELLO frame; `hb` and `race` sessions run on the
//! sharded engines ([`ShardedHb`]/[`ShardedRace`]) and support online
//! queries against the fully-merged prefix, every other registry
//! analysis runs in buffered batch mode at FINISH. Reports are
//! formatted through the same code paths as the batch
//! [`registry`] runs, so a service report is
//! byte-identical to `csst_analyze` over the same events.
//!
//! Shutdown is cooperative: a SHUTDOWN frame flips the server's stop
//! flag; the accept loop (polling, non-blocking) notices, stops
//! accepting, joins every session thread and removes its Unix socket
//! file. Exit is clean — no thread is left behind, which the service
//! smoke test checks by asserting on the process exit code.

use crate::hb::ShardedHb;
use crate::proto::{
    read_frame, write_frame, Hello, Report, WireFormat, T_ANSWER, T_ERROR, T_EVENTS, T_FINISH,
    T_HELLO, T_OK, T_QUERY, T_REPORT, T_SHUTDOWN,
};
use crate::race::ShardedRace;
use crate::shard::ShardCfg;
use csst_analyses::race::RaceCfg;
use csst_analyses::registry::{self, IndexKind, RunOutput};
use csst_core::{
    Csst, GraphIndex, IncrementalCsst, NodeId, PartialOrderIndex, SegTreeIndex, ThreadId,
    VectorClockIndex,
};
use csst_trace::{binary, rapid, text, EventKind, Trace};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One streaming analysis session: events in, queries and a final
/// report out.
trait SessionEngine: Send {
    /// Ingests one event.
    fn feed(&mut self, thread: ThreadId, kind: EventKind);
    /// Answers an online query against the fully-merged prefix.
    fn query(&mut self, q: &str) -> Result<String, String>;
    /// Produces the final report (same formatting as the batch CLI).
    fn finish(self: Box<Self>) -> Report;
}

fn report_from(out: RunOutput) -> Report {
    Report {
        exit_code: out.exit_code,
        summary: out.summary,
        lines: out.lines,
    }
}

/// `ordered <t1> <p1> <t2> <p2>` → two node ids.
fn parse_ordered_query(q: &str) -> Option<(NodeId, NodeId)> {
    let mut it = q.split_whitespace();
    if it.next()? != "ordered" {
        return None;
    }
    let mut num = || it.next()?.parse::<u32>().ok();
    let (t1, p1, t2, p2) = (num()?, num()?, num()?, num()?);
    Some((NodeId::new(t1, p1), NodeId::new(t2, p2)))
}

struct HbEngine<P: PartialOrderIndex + 'static> {
    hb: ShardedHb<P>,
}

impl<P: PartialOrderIndex + 'static> SessionEngine for HbEngine<P> {
    fn feed(&mut self, thread: ThreadId, kind: EventKind) {
        self.hb.feed(thread, kind);
    }

    fn query(&mut self, q: &str) -> Result<String, String> {
        if let Some((a, b)) = parse_ordered_query(q) {
            return Ok(self.hb.ordered(a, b).to_string());
        }
        match q.trim() {
            "races" => Ok(self.hb.races_snapshot().len().to_string()),
            "events" => Ok(self.hb.events().to_string()),
            _ => Err(format!(
                "unknown query `{q}`; hb supports `ordered t1 p1 t2 p2`, `races`, `events`"
            )),
        }
    }

    fn finish(self: Box<Self>) -> Report {
        let r = self.hb.finish();
        // Mirrors the registry's hb formatting exactly.
        Report {
            exit_code: (!r.races.is_empty()) as u8,
            summary: format!(
                "{} hb-race(s); {} synchronization edge(s)",
                r.races.len(),
                r.sync_edges
            ),
            lines: r
                .races
                .iter()
                .take(20)
                .map(|(a, b)| format!("hb-race between {a} and {b}"))
                .collect(),
        }
    }
}

struct RaceEngine<P: PartialOrderIndex> {
    race: ShardedRace<P>,
}

impl<P: PartialOrderIndex> SessionEngine for RaceEngine<P> {
    fn feed(&mut self, thread: ThreadId, kind: EventKind) {
        self.race.feed(thread, kind);
    }

    fn query(&mut self, q: &str) -> Result<String, String> {
        match q.trim() {
            "races" => Ok(self.race.races_so_far().len().to_string()),
            _ => Err(format!(
                "unknown query `{q}`; race supports `races` (completed windows only)"
            )),
        }
    }

    fn finish(self: Box<Self>) -> Report {
        let r = self.race.finish();
        // Mirrors the registry's race formatting exactly.
        Report {
            exit_code: (!r.races.is_empty()) as u8,
            summary: format!(
                "{} race(s) predicted from {} candidate(s)",
                r.races.len(),
                r.candidates
            ),
            lines: r
                .races
                .iter()
                .map(|(a, b)| format!("race between {a} and {b}"))
                .collect(),
        }
    }
}

/// Fallback for the registry analyses without a sharded engine:
/// buffer the stream, run the batch entry at FINISH.
struct BatchEngine {
    name: String,
    index: IndexKind,
    window: Option<usize>,
    trace: Trace,
}

impl SessionEngine for BatchEngine {
    fn feed(&mut self, thread: ThreadId, kind: EventKind) {
        self.trace.push(thread, kind);
    }

    fn query(&mut self, q: &str) -> Result<String, String> {
        match q.trim() {
            "events" => Ok(self.trace.total_events().to_string()),
            _ => Err(format!(
                "analysis `{}` runs in batch mode; only `events` is queryable online",
                self.name
            )),
        }
    }

    fn finish(self: Box<Self>) -> Report {
        let entry = match registry::resolve(&self.name) {
            Ok(entry) => entry,
            Err(e) => {
                return Report {
                    exit_code: 2,
                    summary: e,
                    lines: Vec::new(),
                }
            }
        };
        match entry.run(&self.trace, self.index, self.window) {
            Ok(out) => report_from(out),
            Err(e) => Report {
                exit_code: 2,
                summary: e,
                lines: Vec::new(),
            },
        }
    }
}

/// Builds the session engine a HELLO asks for.
fn make_engine(hello: &Hello) -> Result<Box<dyn SessionEngine>, String> {
    let index = IndexKind::parse(&hello.index)
        .ok_or_else(|| format!("unknown index `{}` (csst|st|vc|graph)", hello.index))?;
    let shard_cfg = ShardCfg::with_shards(hello.shards);
    match hello.analysis.as_str() {
        "hb" => {
            if hello.window.is_some() {
                return Err(
                    "hb is genuinely online and buffers nothing; windowing does not apply".into(),
                );
            }
            Ok(match index {
                IndexKind::Csst => Box::new(HbEngine {
                    hb: ShardedHb::<IncrementalCsst>::new(shard_cfg),
                }),
                IndexKind::SegTree => Box::new(HbEngine {
                    hb: ShardedHb::<SegTreeIndex>::new(shard_cfg),
                }),
                IndexKind::VectorClock => Box::new(HbEngine {
                    hb: ShardedHb::<VectorClockIndex>::new(shard_cfg),
                }),
                IndexKind::Graph => Box::new(HbEngine {
                    hb: ShardedHb::<GraphIndex>::new(shard_cfg),
                }),
            })
        }
        "race" => {
            let cfg = RaceCfg {
                window: hello.window,
                ..Default::default()
            };
            let shards = hello.shards;
            Ok(match (hello.window, index) {
                (None, IndexKind::Csst) => Box::new(RaceEngine {
                    race: ShardedRace::<IncrementalCsst>::new(cfg, shards),
                }),
                (None, IndexKind::SegTree) => Box::new(RaceEngine {
                    race: ShardedRace::<SegTreeIndex>::new(cfg, shards),
                }),
                (None, IndexKind::VectorClock) => Box::new(RaceEngine {
                    race: ShardedRace::<VectorClockIndex>::new(cfg, shards),
                }),
                (None, IndexKind::Graph) => Box::new(RaceEngine {
                    race: ShardedRace::<GraphIndex>::new(cfg, shards),
                }),
                (Some(_), IndexKind::Csst) => Box::new(RaceEngine {
                    race: ShardedRace::<Csst>::new(cfg, shards),
                }),
                (Some(_), IndexKind::Graph) => Box::new(RaceEngine {
                    race: ShardedRace::<GraphIndex>::new(cfg, shards),
                }),
                (Some(_), other) => {
                    return Err(format!(
                        "windowed runs retire edges and need a fully dynamic index \
                         (csst|graph), got `{}`",
                        other.name()
                    ))
                }
            })
        }
        other => {
            registry::resolve(other)?;
            Ok(Box::new(BatchEngine {
                name: other.to_string(),
                index,
                window: hello.window,
                trace: Trace::new(0),
            }))
        }
    }
}

fn feed_events(
    engine: &mut dyn SessionEngine,
    format: WireFormat,
    payload: &[u8],
) -> Result<(), String> {
    match format {
        WireFormat::Binary => {
            for (thread, kind) in binary::decode_events(payload).map_err(|e| e.to_string())? {
                engine.feed(thread, kind);
            }
        }
        WireFormat::Text | WireFormat::Rapid => {
            let input =
                std::str::from_utf8(payload).map_err(|_| "text frame is not UTF-8".to_string())?;
            let trace = match format {
                WireFormat::Text => text::parse(input),
                _ => rapid::parse(input),
            }
            .map_err(|e| e.to_string())?;
            for (id, ev) in trace.iter_order() {
                engine.feed(id.thread, ev.kind);
            }
        }
    }
    Ok(())
}

/// Runs one session over an accepted connection. Returns `true` if the
/// peer asked the whole server to shut down.
fn handle_session<S: Read + Write>(stream: &mut S) -> io::Result<bool> {
    // First frame must be the HELLO.
    let hello = match read_frame(stream)? {
        Some((T_HELLO, payload)) => match Hello::decode(&payload) {
            Ok(hello) => hello,
            Err(e) => {
                write_frame(stream, T_ERROR, e.as_bytes())?;
                return Ok(false);
            }
        },
        Some((T_SHUTDOWN, _)) => {
            write_frame(stream, T_OK, b"")?;
            return Ok(true);
        }
        Some((tag, _)) => {
            let msg = format!("expected HELLO as the first frame, got tag {tag:#04x}");
            write_frame(stream, T_ERROR, msg.as_bytes())?;
            return Ok(false);
        }
        None => return Ok(false),
    };
    let mut engine = match make_engine(&hello) {
        Ok(engine) => engine,
        Err(e) => {
            write_frame(stream, T_ERROR, e.as_bytes())?;
            return Ok(false);
        }
    };
    write_frame(stream, T_OK, b"")?;
    loop {
        match read_frame(stream)? {
            Some((T_EVENTS, payload)) => {
                if let Err(e) = feed_events(engine.as_mut(), hello.format, &payload) {
                    // Malformed events poison the session (the stream
                    // position is unknowable); report and stop.
                    write_frame(stream, T_ERROR, e.as_bytes())?;
                    return Ok(false);
                }
            }
            Some((T_QUERY, payload)) => {
                let q = String::from_utf8_lossy(&payload);
                match engine.query(&q) {
                    Ok(answer) => write_frame(stream, T_ANSWER, answer.as_bytes())?,
                    Err(e) => write_frame(stream, T_ERROR, e.as_bytes())?,
                }
            }
            Some((T_FINISH, _)) => {
                let report = engine.finish();
                write_frame(stream, T_REPORT, &report.encode())?;
                return Ok(false);
            }
            Some((T_SHUTDOWN, _)) => {
                write_frame(stream, T_OK, b"")?;
                return Ok(true);
            }
            Some((tag, _)) => {
                let msg = format!("unexpected frame tag {tag:#04x}");
                write_frame(stream, T_ERROR, msg.as_bytes())?;
                return Ok(false);
            }
            None => return Ok(false), // peer hung up without FINISH
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, std::path::PathBuf),
}

/// The `csst-serve` service: a polling accept loop over a TCP or Unix
/// listener, one session thread per connection.
pub struct Server {
    listener: Listener,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds to `tcp:HOST:PORT` (port 0 picks a free port) or
    /// `unix:/path` (an existing socket file is replaced).
    ///
    /// # Errors
    ///
    /// Address syntax and bind errors.
    pub fn bind(addr: &str) -> io::Result<Server> {
        let listener = if let Some(tcp) = addr.strip_prefix("tcp:") {
            Listener::Tcp(TcpListener::bind(tcp)?)
        } else if let Some(path) = addr.strip_prefix("unix:") {
            let path = std::path::PathBuf::from(path);
            let _ = std::fs::remove_file(&path);
            Listener::Unix(UnixListener::bind(&path)?, path)
        } else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address `{addr}` must start with tcp: or unix:"),
            ));
        };
        Ok(Server {
            listener,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address in connectable `tcp:`/`unix:` form (useful
    /// with `tcp:…:0`, where the OS picked the port).
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(addr) => format!("tcp:{addr}"),
                Err(_) => "tcp:<unknown>".to_string(),
            },
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }

    /// A handle that flips the server's stop flag (same effect as a
    /// SHUTDOWN frame), for embedding the server in tests.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves until a SHUTDOWN frame (or the stop handle) stops the
    /// loop, then joins every session thread and cleans up.
    ///
    /// # Errors
    ///
    /// Listener configuration errors; per-session I/O errors only end
    /// that session.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::Acquire) {
            let accepted: Option<Box<dyn FnOnce() -> bool + Send>> = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((mut s, _)) => {
                        Some(Box::new(move || handle_session(&mut s).unwrap_or(false)))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
                Listener::Unix(l, _) => match l.accept() {
                    Ok((mut s, _)) => {
                        Some(Box::new(move || handle_session(&mut s).unwrap_or(false)))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => return Err(e),
                },
            };
            match accepted {
                Some(session) => {
                    let stop = Arc::clone(&self.stop);
                    sessions.push(std::thread::spawn(move || {
                        if session() {
                            stop.store(true, Ordering::Release);
                        }
                    }));
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
            sessions.retain(|h| !h.is_finished());
        }
        for h in sessions {
            let _ = h.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Connects to a `tcp:`/`unix:` address (the client side of
/// [`Server::bind`] syntax).
///
/// # Errors
///
/// Address syntax and connection errors.
pub fn connect(addr: &str) -> io::Result<Box<dyn ReadWrite>> {
    if let Some(tcp) = addr.strip_prefix("tcp:") {
        Ok(Box::new(TcpStream::connect(tcp)?))
    } else if let Some(path) = addr.strip_prefix("unix:") {
        Ok(Box::new(UnixStream::connect(path)?))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address `{addr}` must start with tcp: or unix:"),
        ))
    }
}

/// A bidirectional byte stream (object-safe `Read + Write`).
pub trait ReadWrite: Read + Write + Send {}
impl<T: Read + Write + Send> ReadWrite for T {}
