//! Shared plumbing of the sharded ingest pipeline: configuration,
//! bounded per-worker channels with message batching, and the
//! epoch/watermark protocol that lets the router tell when every shard
//! has merged a prefix of the event stream.
//!
//! The pipeline is a router/worker design. The **router** (the thread
//! calling [`feed`](crate::ShardedHb::feed)) assigns each event its
//! global sequence number, derives the synchronization edges it induces
//! and decides which shard owns its expensive work; **workers** own the
//! per-shard state (an index replica plus the frontier of the variables
//! routed to them) and apply messages strictly in stream order. All
//! cross-shard information — sync edges, fork/join resolution — flows
//! through the same bounded MPSC channels as the routed work, so a
//! worker that processes message `n` has, by construction, merged every
//! edge the first `n` messages carried.
//!
//! **Watermarks.** Every [`ShardCfg::epoch_events`] events (and on
//! every explicit flush) the router broadcasts the current sequence
//! number; each worker publishes it to its atomic watermark slot after
//! draining everything before it. `Watermarks::wait_until` then gives
//! the router a barrier: once every slot is ≥ `seq`, the prefix up to
//! `seq` is fully merged on every shard, and query answers drawn from
//! the merged state are final. Queries never observe a half-merged
//! suffix because they are answered only behind that barrier.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;

/// Configuration of a sharded ingest pipeline.
#[derive(Debug, Clone)]
pub struct ShardCfg {
    /// Number of shard workers (each owns one index replica and one
    /// slice of the per-variable state). `1` degenerates to a pipeline
    /// with a single worker — useful as the scaling baseline.
    pub shards: usize,
    /// Messages per channel send: the router coalesces up to this many
    /// messages per worker before paying a channel round-trip.
    pub batch: usize,
    /// Bound of each worker channel, in batches. Backpressure: a full
    /// channel blocks the router rather than growing a queue.
    pub channel_capacity: usize,
    /// Watermark broadcast period, in events.
    pub epoch_events: usize,
}

impl Default for ShardCfg {
    fn default() -> Self {
        ShardCfg {
            shards: 2,
            batch: 128,
            channel_capacity: 64,
            epoch_events: 1024,
        }
    }
}

impl ShardCfg {
    /// A pipeline with `shards` workers and default batching.
    pub fn with_shards(shards: usize) -> Self {
        ShardCfg {
            shards: shards.max(1),
            ..Default::default()
        }
    }
}

/// One atomic watermark slot per worker; the router's view of how far
/// every shard has merged the stream.
#[derive(Debug, Clone)]
pub struct Watermarks {
    slots: Arc<Vec<AtomicU64>>,
}

impl Watermarks {
    /// Creates `n` zeroed slots.
    pub fn new(n: usize) -> Self {
        Watermarks {
            slots: Arc::new((0..n).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Publishes worker `i`'s merged prefix (called by the worker after
    /// draining every message before the watermark).
    pub fn publish(&self, i: usize, seq: u64) {
        self.slots[i].store(seq, Ordering::Release);
    }

    /// Blocks (spinning with yields; watermark gaps are bounded by the
    /// channel capacity, so waits are short) until every worker has
    /// merged the prefix up to `seq`.
    pub fn wait_until(&self, seq: u64) {
        for slot in self.slots.iter() {
            while slot.load(Ordering::Acquire) < seq {
                thread::yield_now();
            }
        }
    }
}

/// Router-side handle of one worker channel: a bounded sender plus the
/// pending batch being coalesced.
#[derive(Debug)]
pub struct BatchSender<M> {
    tx: SyncSender<Vec<M>>,
    pending: Vec<M>,
    batch: usize,
}

impl<M> BatchSender<M> {
    /// Wraps a bounded sender; batches of up to `batch` messages.
    pub fn new(tx: SyncSender<Vec<M>>, batch: usize) -> Self {
        BatchSender {
            tx,
            pending: Vec::with_capacity(batch),
            batch: batch.max(1),
        }
    }

    /// Queues one message, sending the batch when full. Blocks on a
    /// full channel (backpressure).
    pub fn push(&mut self, msg: M) {
        self.pending.push(msg);
        if self.pending.len() >= self.batch {
            self.flush();
        }
    }

    /// Sends the pending batch, if any.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.pending, Vec::with_capacity(self.batch));
        // The worker only ever stops after its channel is dropped, so a
        // send can fail only when the worker panicked; surface that at
        // join time, not here.
        let _ = self.tx.try_send(batch).map_err(|e| match e {
            TrySendError::Full(batch) => {
                let _ = self.tx.send(batch);
            }
            TrySendError::Disconnected(_) => {}
        });
    }
}

/// Worker-side batch iterator: drains batches off the channel until the
/// router hangs up, yielding messages in stream order.
pub fn drain<M>(rx: &Receiver<Vec<M>>, mut apply: impl FnMut(M)) {
    while let Ok(batch) = rx.recv() {
        for msg in batch {
            apply(msg);
        }
    }
}
