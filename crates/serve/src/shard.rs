//! Shared plumbing of the sharded ingest pipeline: configuration,
//! bounded per-worker channels with message batching, and the
//! epoch/watermark protocol that lets the router tell when every shard
//! has merged a prefix of the event stream.
//!
//! The pipeline is a router/worker design. The **router** (the thread
//! calling [`feed`](crate::ShardedHb::feed)) assigns each event its
//! global sequence number, derives the synchronization edges it induces
//! and decides which shard owns its expensive work; **workers** own the
//! per-shard state (an index replica plus the frontier of the variables
//! routed to them) and apply messages strictly in stream order. All
//! cross-shard information — sync edges, fork/join resolution — flows
//! through the same bounded MPSC channels as the routed work, so a
//! worker that processes message `n` has, by construction, merged every
//! edge the first `n` messages carried.
//!
//! **Watermarks.** Every [`ShardCfg::epoch_events`] events (and on
//! every explicit flush) the router broadcasts the current sequence
//! number; each worker publishes it to its atomic watermark slot after
//! draining everything before it. `Watermarks::wait_until` then gives
//! the router a barrier: once every slot is ≥ `seq`, the prefix up to
//! `seq` is fully merged on every shard, and query answers drawn from
//! the merged state are final. Queries never observe a half-merged
//! suffix because they are answered only behind that barrier.
//!
//! **Fault containment.** Nothing here blocks forever: sends time out
//! into [`ServeError::Backpressure`], barrier waits time out into
//! [`ServeError::Deadline`], and a worker that dies *poisons* its
//! watermark slot ([`Watermarks::poison`]) so a waiting router fails
//! fast with [`ServeError::WorkerPanic`] instead of spinning on a
//! watermark that will never advance.

use crate::error::ServeError;
use crate::fault::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Watermark value a dying worker publishes: any barrier waiting on the
/// slot fails fast with a [`ServeError::WorkerPanic`].
pub const POISONED: u64 = u64::MAX;

/// Configuration of a sharded ingest pipeline.
#[derive(Debug, Clone)]
pub struct ShardCfg {
    /// Number of shard workers (each owns one index replica and one
    /// slice of the per-variable state). `1` degenerates to a pipeline
    /// with a single worker — useful as the scaling baseline.
    pub shards: usize,
    /// Messages per channel send: the router coalesces up to this many
    /// messages per worker before paying a channel round-trip.
    pub batch: usize,
    /// Bound of each worker channel, in batches. Backpressure: a full
    /// channel blocks the router rather than growing a queue.
    pub channel_capacity: usize,
    /// Watermark broadcast period, in events.
    pub epoch_events: usize,
    /// How long a send may wait on a full channel before it fails with
    /// [`ServeError::Backpressure`].
    pub send_timeout: Duration,
    /// How long a flush barrier may wait for the workers' watermarks
    /// before it fails with [`ServeError::Deadline`].
    pub flush_deadline: Duration,
    /// Deterministic fault injection plan (empty in production).
    pub faults: FaultPlan,
}

impl Default for ShardCfg {
    fn default() -> Self {
        ShardCfg {
            shards: 2,
            batch: 128,
            channel_capacity: 64,
            epoch_events: 1024,
            send_timeout: Duration::from_secs(10),
            flush_deadline: Duration::from_secs(30),
            faults: FaultPlan::none(),
        }
    }
}

impl ShardCfg {
    /// A pipeline with `shards` workers and default batching.
    pub fn with_shards(shards: usize) -> Self {
        ShardCfg {
            shards: shards.max(1),
            ..Default::default()
        }
    }
}

/// One atomic watermark slot per worker; the router's view of how far
/// every shard has merged the stream.
#[derive(Debug, Clone)]
pub struct Watermarks {
    slots: Arc<Vec<AtomicU64>>,
}

impl Watermarks {
    /// Creates `n` zeroed slots.
    pub fn new(n: usize) -> Self {
        Watermarks {
            slots: Arc::new((0..n).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Publishes worker `i`'s merged prefix (called by the worker after
    /// draining every message before the watermark).
    pub fn publish(&self, i: usize, seq: u64) {
        self.slots[i].store(seq, Ordering::Release);
    }

    /// Marks worker `i` dead: barriers waiting on the slot fail fast
    /// instead of spinning forever.
    pub fn poison(&self, i: usize) {
        self.slots[i].store(POISONED, Ordering::Release);
    }

    /// True when any worker has poisoned its slot.
    pub fn any_poisoned(&self) -> bool {
        self.slots
            .iter()
            .any(|s| s.load(Ordering::Acquire) == POISONED)
    }

    /// Blocks (spinning with yields; watermark gaps are bounded by the
    /// channel capacity, so waits are short) until every worker has
    /// merged the prefix up to `seq`, a slot is poisoned, or `deadline`
    /// elapses.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerPanic`] on a poisoned slot,
    /// [`ServeError::Deadline`] when the barrier misses `deadline`.
    pub fn wait_until(&self, seq: u64, deadline: Duration) -> Result<(), ServeError> {
        let start = Instant::now();
        for (i, slot) in self.slots.iter().enumerate() {
            loop {
                let mark = slot.load(Ordering::Acquire);
                if mark == POISONED {
                    return Err(ServeError::WorkerPanic(format!(
                        "shard worker {i} died before merging the stream prefix"
                    )));
                }
                if mark >= seq {
                    break;
                }
                if start.elapsed() > deadline {
                    return Err(ServeError::Deadline {
                        what: "flush barrier",
                        after: deadline,
                    });
                }
                thread::yield_now();
            }
        }
        Ok(())
    }
}

/// Router-side handle of one worker channel: a bounded sender plus the
/// pending batch being coalesced.
#[derive(Debug)]
pub struct BatchSender<M> {
    tx: SyncSender<Vec<M>>,
    pending: Vec<M>,
    batch: usize,
    slot: usize,
    timeout: Duration,
    faults: FaultPlan,
}

impl<M> BatchSender<M> {
    /// Wraps worker `slot`'s bounded sender; batches of up to
    /// `cfg.batch` messages, sends bounded by `cfg.send_timeout`.
    pub fn new(tx: SyncSender<Vec<M>>, slot: usize, cfg: &ShardCfg) -> Self {
        BatchSender {
            tx,
            pending: Vec::with_capacity(cfg.batch),
            batch: cfg.batch.max(1),
            slot,
            timeout: cfg.send_timeout,
            faults: cfg.faults.clone(),
        }
    }

    /// Queues one message, sending the batch when full.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when the channel stays full past
    /// the send timeout (the worker is wedged, not merely busy).
    pub fn push(&mut self, msg: M) -> Result<(), ServeError> {
        self.pending.push(msg);
        if self.pending.len() >= self.batch {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends the pending batch, if any. A disconnected channel (the
    /// worker panicked and its discard loop also ended) is *not* an
    /// error here — worker death is detected and reported through the
    /// poisoned watermark, and dropping the batch is then harmless.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] on a send-timeout.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.pending, Vec::with_capacity(self.batch));
        if self.faults.on_send(self.slot) {
            return Ok(()); // injected drop-send: the batch vanishes
        }
        let mut batch = batch;
        let start = Instant::now();
        loop {
            match self.tx.try_send(batch) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Ok(()),
                Err(TrySendError::Full(b)) => {
                    if start.elapsed() > self.timeout {
                        return Err(ServeError::Backpressure {
                            shard: self.slot,
                            waited: start.elapsed(),
                        });
                    }
                    batch = b;
                    thread::yield_now();
                }
            }
        }
    }
}

/// Worker-side batch iterator: drains batches off the channel until the
/// router hangs up, yielding messages in stream order.
pub fn drain<M>(rx: &Receiver<Vec<M>>, mut apply: impl FnMut(M)) {
    while let Ok(batch) = rx.recv() {
        for msg in batch {
            apply(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    #[test]
    fn poisoned_watermark_fails_the_barrier_fast() {
        let wm = Watermarks::new(2);
        wm.publish(0, 10);
        wm.poison(1);
        assert!(wm.any_poisoned());
        match wm.wait_until(5, Duration::from_secs(5)) {
            Err(ServeError::WorkerPanic(msg)) => assert!(msg.contains("worker 1"), "{msg}"),
            other => panic!("want WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn barrier_times_out_into_a_deadline_error() {
        let wm = Watermarks::new(1);
        match wm.wait_until(1, Duration::from_millis(20)) {
            Err(ServeError::Deadline { what, .. }) => assert_eq!(what, "flush barrier"),
            other => panic!("want Deadline, got {other:?}"),
        }
        wm.publish(0, 1);
        assert!(wm.wait_until(1, Duration::from_millis(20)).is_ok());
    }

    #[test]
    fn full_channel_times_out_into_backpressure() {
        let (tx, _rx) = sync_channel::<Vec<u8>>(1);
        let cfg = ShardCfg {
            batch: 1,
            send_timeout: Duration::from_millis(20),
            ..Default::default()
        };
        let mut sender = BatchSender::new(tx, 3, &cfg);
        sender.push(1).unwrap(); // fills the only slot (receiver never drains)
        match sender.push(2) {
            Err(ServeError::Backpressure { shard, .. }) => assert_eq!(shard, 3),
            other => panic!("want Backpressure, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_channel_is_not_a_send_error() {
        let (tx, rx) = sync_channel::<Vec<u8>>(1);
        drop(rx);
        let cfg = ShardCfg {
            batch: 1,
            ..Default::default()
        };
        let mut sender = BatchSender::new(tx, 0, &cfg);
        assert!(sender.push(1).is_ok(), "death is reported via watermarks");
    }
}
